//! Cross-layer tests of the unified trace/observability layer: the same
//! `Recorder` carries spans from the DES kernel through the engines, the
//! deployment pipeline and the scenario layer, and every derived number
//! (breakdowns, deployment reports, exported JSON) is a view over it.

use harborsim::container::deploy::DeployPlan;
use harborsim::container::runtime::ExecutionEnvironment;
use harborsim::des::trace::TraceBuffer;
use harborsim::des::trace::{Recorder, SpanCategory};
use harborsim::hw::presets;
use harborsim::mpi::CommBreakdown;
use harborsim::study::scenario::{EngineKind, Execution, Scenario};
use harborsim::study::traceviz::chrome_trace_json;
use harborsim::study::workloads;

fn small_plan(engine: EngineKind) -> harborsim::study::scenario::ScenarioPlan {
    Scenario::new(presets::lenox(), workloads::artery_cfd_small())
        .execution(Execution::singularity_self_contained())
        .nodes(2)
        .ranks_per_node(8)
        .engine(engine)
        .compile()
        .expect("compiles")
}

/// Both engines must attribute time to the same phase families on a shared
/// scenario. Absolute totals differ (one analytic track vs one DES track
/// per rank, and the DES job is truncated), so compare each category's
/// *share* of the attributed time — that is scale-free — and require the
/// load-bearing categories to be non-empty in both traces.
#[test]
fn analytic_and_des_traces_agree_at_phase_level() {
    const CATS: [SpanCategory; 3] = [
        SpanCategory::Compute,
        SpanCategory::Halo,
        SpanCategory::Allreduce,
    ];
    let share = |buf: &TraceBuffer, cat: SpanCategory| -> f64 {
        let total: f64 = CATS.iter().map(|&c| buf.total(c).as_secs_f64()).sum();
        buf.total(cat).as_secs_f64() / total
    };
    let analytic = small_plan(EngineKind::Analytic).capture_trace(7);
    let des = small_plan(EngineKind::Des {
        max_steps_per_kind: 5,
    })
    .capture_trace(7);
    for cat in CATS {
        let a = share(&analytic, cat);
        let d = share(&des, cat);
        assert!(a > 0.0, "analytic {} must be non-empty", cat.label());
        assert!(d > 0.0, "des {} must be non-empty", cat.label());
        let ratio = d / a;
        assert!(
            (0.1..10.0).contains(&ratio),
            "{}: analytic share {a:.4} vs des share {d:.4} (ratio {ratio:.2})",
            cat.label()
        );
    }
}

/// Determinism end to end: the same plan and seed produce a bit-identical
/// trace buffer; a different seed produces a different one.
#[test]
fn same_seed_yields_bit_identical_trace() {
    let plan = small_plan(EngineKind::Des {
        max_steps_per_kind: 5,
    });
    let a = plan.capture_trace(11);
    let b = plan.capture_trace(11);
    assert!(!a.is_empty());
    assert_eq!(a, b, "same seed must replay the same trace");
    let c = plan.capture_trace(12);
    assert_ne!(a, c, "different seeds must differ somewhere");
}

/// The acceptance criterion of the refactor: a chrome-trace export of the
/// Docker 112x1 Lenox configuration contains non-empty compute, halo,
/// allreduce and bridge span categories.
#[test]
fn docker_112x1_chrome_trace_has_all_span_families() {
    let plan = Scenario::new(presets::lenox(), workloads::artery_cfd_lenox())
        .execution(Execution::docker())
        .nodes(4)
        .ranks_per_node(28)
        .compile()
        .expect("compiles");
    let buf = plan.capture_trace(1);
    for cat in [
        SpanCategory::Compute,
        SpanCategory::Halo,
        SpanCategory::Allreduce,
        SpanCategory::Bridge,
        SpanCategory::Run,
    ] {
        assert!(buf.count(cat) > 0, "category {} is empty", cat.label());
    }
    let json = chrome_trace_json(&[("docker-112x1".to_string(), buf)]);
    for cat in ["compute", "halo", "allreduce", "bridge"] {
        assert!(
            json.contains(&format!(r#""cat":"{cat}""#)),
            "chrome trace misses {cat} events"
        );
    }
}

/// The result's breakdown is exactly the shared roll-up over the emitted
/// spans — no engine-private accounting can drift from the trace.
#[test]
fn comm_breakdown_is_the_trace_rollup() {
    for engine in [
        EngineKind::Analytic,
        EngineKind::Des {
            max_steps_per_kind: 20,
        },
    ] {
        let plan = small_plan(engine);
        let mut rec = Recorder::capturing();
        let outcome = plan.execute(3, &mut rec);
        // the DES plan truncates nothing at 20 steps/kind, so the recorder
        // roll-up and the result's derived view coincide exactly
        assert_eq!(
            CommBreakdown::from_trace(rec.rollup()),
            outcome.result.comm,
            "{}",
            plan.engine_name()
        );
        assert!(outcome.result.comm.total().as_secs_f64() > 0.0);
    }
}

/// An engine run with the no-op recorder still reports exact elapsed time
/// and traffic counters; only the trace-derived attribution fields zero.
#[test]
fn recorder_off_preserves_elapsed_and_traffic() {
    let plan = small_plan(EngineKind::Analytic);
    let on = plan.execute(5, &mut Recorder::aggregating());
    let mut off = Recorder::off();
    let quiet = plan.execute(5, &mut off);
    assert_eq!(on.elapsed, quiet.elapsed);
    assert_eq!(
        on.result.inter_node_msgs + on.result.intra_node_msgs,
        quiet.result.inter_node_msgs + quiet.result.intra_node_msgs
    );
    assert_eq!(quiet.result.compute.as_nanos(), 0);
    assert!(off.buffer().is_empty());
}

/// The deployment report is a derived view over its trace: per-node ready
/// times are the Start span ends, bytes are counters.
#[test]
fn deployment_report_is_derived_from_its_trace() {
    let cluster = presets::lenox();
    let image = harborsim::container::BuildEngine::self_contained(cluster.node.cpu.clone())
        .build(&harborsim::container::build::alya_recipe())
        .expect("builds")
        .manifest;
    let plan = DeployPlan {
        nodes: 4,
        env: ExecutionEnvironment::docker(),
        image,
        shared_storage: cluster.shared_storage,
        registry_uplink_bps: 117e6,
        shifter_udi_cached: false,
        docker_layers_cached: false,
    };
    let mut rec = Recorder::capturing();
    let report = plan.run(&mut rec);
    let buf = rec.take_buffer();
    let start_ends: Vec<_> = buf
        .spans()
        .iter()
        .filter(|s| s.category == SpanCategory::Start)
        .map(|s| s.end)
        .collect();
    assert_eq!(start_ends.len(), 4, "one start span per node");
    let makespan = start_ends.iter().max().unwrap().as_secs_f64();
    assert_eq!(report.makespan.as_secs_f64(), makespan);
    assert!(buf.count(SpanCategory::Pull) > 0);
    assert!(buf.count(SpanCategory::Unpack) > 0);
    assert_eq!(
        rec.rollup().counter("bytes_pulled") as u64,
        report.bytes_pulled
    );
    assert!(report.bytes_pulled > 0);
}
