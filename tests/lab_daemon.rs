//! Integration tests for the lab daemon: concurrent socket clients must
//! see exactly the results a serial in-process replay produces — on both
//! front ends (epoll reactor and the thread-per-connection fallback) —
//! the sharded cache counters must conserve the aggregate under the
//! storm, campaign scripts must run (and fail typed) over the wire, the
//! reactor must hold hundreds of keep-alive connections over a small
//! worker pool, and hostile framing (oversized heads and bodies, garbled
//! lengths, slow-loris dribble) must be answered with the right status
//! and a close, never a hang.

use harborsim::hw::presets;
use harborsim::study::lab::daemon::{LabClient, LabDaemon, ServeMode};
use harborsim::study::lab::{CampaignRowKind, LabRequest, LabResponse, PlanKey, QueryEngine};
use harborsim::study::scenario::{Execution, Outcome, Scenario};
use harborsim::study::workloads;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::{Arc, Barrier};
use std::time::Duration;

const CLIENTS: usize = 8;
const REQUESTS_PER_CLIENT: usize = 12;

/// A small grid of distinct scenarios; index i picks scenario and seed.
fn grid_scenario(i: usize) -> (Scenario, u64) {
    let nodes = [1u32, 2, 3, 4][i % 4];
    let seed = (i / 4) as u64 % 3;
    (
        Scenario::new(presets::lenox(), workloads::artery_cfd_small())
            .execution(Execution::singularity_self_contained())
            .nodes(nodes)
            .ranks_per_node(14),
        seed,
    )
}

fn assert_same_outcome(label: &str, over_wire: &Outcome, direct: &Outcome) {
    assert_eq!(
        over_wire.elapsed, direct.elapsed,
        "{label}: elapsed must be bit-identical over the wire"
    );
    assert_eq!(
        over_wire.result, direct.result,
        "{label}: the full result must survive the wire"
    );
    assert_eq!(over_wire.deployment.is_some(), direct.deployment.is_some());
}

/// The tentpole acceptance test: CLIENTS threads hammer one daemon over
/// real sockets; every response must be bit-identical to a serial
/// in-process replay of the same (scenario, seed) schedule, and the
/// per-shard cache counters must add up exactly to the aggregate. Runs
/// against both front ends — the reactor and the threaded fallback must
/// be indistinguishable at the protocol level.
fn storm_matches_the_serial_replay(mode: ServeMode) {
    let engine = Arc::new(QueryEngine::new());
    let daemon = LabDaemon::bind("127.0.0.1:0", Arc::clone(&engine), CLIENTS)
        .expect("bind loopback")
        .mode(mode);
    let addr = daemon.local_addr();
    let handle = daemon.spawn();

    let barrier = Arc::new(Barrier::new(CLIENTS));
    let workers: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut client = LabClient::connect(addr).expect("connect");
                barrier.wait();
                (0..REQUESTS_PER_CLIENT)
                    .map(|r| {
                        // overlapping schedules: clients collide on both
                        // plans and (plan, seed) pairs
                        let i = (c + r) % (4 * 3);
                        let (scenario, seed) = grid_scenario(i);
                        let outcome = client
                            .query(&LabRequest::execute(scenario, seed))
                            .expect("query succeeds")
                            .into_outcome();
                        (i, outcome)
                    })
                    .collect::<Vec<_>>()
            })
        })
        .collect();
    let answered: Vec<(usize, Outcome)> = workers
        .into_iter()
        .flat_map(|w| w.join().expect("client thread panics"))
        .collect();

    // serial replay on a fresh engine, same schedule, no daemon
    let serial = QueryEngine::new();
    for (i, over_wire) in &answered {
        let (scenario, seed) = grid_scenario(*i);
        let direct = serial
            .handle(LabRequest::execute(scenario, seed))
            .into_outcome();
        assert_same_outcome(&format!("grid point {i}"), over_wire, &direct);
    }
    assert_eq!(answered.len(), CLIENTS * REQUESTS_PER_CLIENT);

    // counter conservation across shards, fetched over the wire
    let mut client = LabClient::connect(addr).expect("connect");
    let stats = client.stats().expect("stats query").into_stats();
    let shard_sum =
        |f: fn(&harborsim::study::CacheStats) -> u64| stats.per_shard.iter().map(f).sum::<u64>();
    assert_eq!(shard_sum(|s| s.hits), stats.cache.hits);
    assert_eq!(shard_sum(|s| s.misses), stats.cache.misses);
    assert_eq!(shard_sum(|s| s.waits), stats.cache.waits);
    assert_eq!(
        stats.per_shard.iter().map(|s| s.entries).sum::<usize>(),
        stats.cache.entries
    );
    // 4 grid plans + the 4 warm-started paper-cluster plans
    assert_eq!(stats.cache.misses, 8, "{:?}", stats.cache);
    assert_eq!(
        stats.cache.hits + stats.cache.waits + stats.cache.misses,
        (CLIENTS * REQUESTS_PER_CLIENT) as u64 + 4,
        "every request resolves through the cache exactly once \
         (+4 warm-start compiles): {:?}",
        stats.cache
    );

    // the wire view carries the daemon block the in-process view lacks
    let d = stats.daemon.as_ref().expect("daemon stats over the wire");
    assert_eq!(d.mode, mode.name());
    assert_eq!(d.accept_errors, 0);
    assert!(d.open_conns >= 1, "the stats connection itself is open");

    handle.shutdown();
    // in-process view agrees with the wire view
    assert_eq!(engine.stats().hits, stats.cache.hits);
}

#[test]
fn concurrent_clients_match_the_serial_replay_on_the_reactor() {
    storm_matches_the_serial_replay(ServeMode::Reactor);
}

#[test]
fn concurrent_clients_match_the_serial_replay_on_the_threaded_fallback() {
    storm_matches_the_serial_replay(ServeMode::Threaded);
}

/// Campaigns run server-side: one `.hsim` script over the socket, rows
/// come back labelled and fingerprinted exactly as a local compile
/// computes them.
#[test]
fn campaign_scripts_run_over_the_socket() {
    let daemon =
        LabDaemon::bind("127.0.0.1:0", Arc::new(QueryEngine::new()), 2).expect("bind loopback");
    let handle = daemon.spawn();
    let mut client = LabClient::connect(handle.addr()).expect("connect");

    let script = "seeds quick\n\
                  campaign \"wire probe\" {\n\
                  \x20 cluster lenox\n\
                  \x20 workload cfd-small\n\
                  \x20 env singularity self-contained\n\
                  \x20 rpn 14\n\
                  \x20 sweep nodes [1, 2]\n\
                  }\n";
    let report = client
        .query(&LabRequest::Campaign {
            script: script.into(),
        })
        .expect("campaign query")
        .into_campaign();
    assert_eq!(report.campaigns.len(), 1);
    let result = &report.campaigns[0];
    assert_eq!(result.name, "wire probe");
    assert_eq!(result.rows.len(), 2);
    for (row, nodes) in result.rows.iter().zip([1u32, 2]) {
        let scenario = Scenario::new(presets::lenox(), workloads::artery_cfd_small())
            .execution(Execution::singularity_self_contained())
            .nodes(nodes)
            .ranks_per_node(14);
        let expect = PlanKey::of(&scenario, None)
            .expect("cacheable")
            .fingerprint();
        assert_eq!(row.fingerprint, expect, "row {}", row.label);
        match &row.kind {
            CampaignRowKind::Closed { mean_elapsed_s } => assert!(*mean_elapsed_s > 0.0),
            other => panic!("expected a closed row, got {other:?}"),
        }
    }

    // a broken script comes back as a typed, positioned error
    let err = client
        .query(&LabRequest::Campaign {
            script: "seeds quick\ncampaign \"x\" {\n  cluster atlantis\n}\n".into(),
        })
        .expect("transport succeeds");
    match err {
        LabResponse::Error(harborsim::study::HarborError::Script(e)) => {
            assert_eq!(e.span.line, 3, "error carries the offending line: {e}");
            assert!(e.to_string().contains("atlantis"), "{e}");
        }
        other => panic!("expected a typed script error, got {other:?}"),
    }
    handle.shutdown();
}

/// Admission batching is observable end-to-end: when concurrent socket
/// clients ask for the same (plan, seed), the daemon executes once and
/// every client still gets the full, identical outcome.
#[test]
fn identical_wire_queries_share_executes_without_changing_results() {
    let engine = Arc::new(QueryEngine::new());
    let daemon = LabDaemon::bind("127.0.0.1:0", Arc::clone(&engine), 8).expect("bind loopback");
    let addr = daemon.local_addr();
    let handle = daemon.spawn();

    let barrier = Arc::new(Barrier::new(8));
    let outcomes: Vec<Outcome> = (0..8)
        .map(|_| {
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut client = LabClient::connect(addr).expect("connect");
                barrier.wait();
                // many rounds of the same (plan, seed) maximizes the
                // chance of in-flight twins; correctness must hold at
                // any batching rate, including zero
                (0..6)
                    .map(|_| {
                        client
                            .query(&LabRequest::execute(grid_scenario(0).0, 42))
                            .expect("query")
                            .into_outcome()
                    })
                    .collect::<Vec<_>>()
            })
        })
        .collect::<Vec<_>>()
        .into_iter()
        .flat_map(|w| w.join().expect("client panics"))
        .collect();

    let direct = QueryEngine::new()
        .handle(LabRequest::execute(grid_scenario(0).0, 42))
        .into_outcome();
    for o in &outcomes {
        assert_same_outcome("shared execute", o, &direct);
    }
    handle.shutdown();
}

/// The multiplexing acceptance test: 256 keep-alive connections stay
/// open simultaneously over a 4-worker pool, every one of them
/// answering queries, and the daemon's own stats report the count. The
/// threaded fallback cannot pass this (open connections are bounded by
/// pool size); the reactor exists so this holds.
#[cfg(target_os = "linux")]
#[test]
fn reactor_holds_256_simultaneous_keepalive_connections() {
    const CONNS: usize = 256;
    let engine = Arc::new(QueryEngine::new());
    let daemon = LabDaemon::bind("127.0.0.1:0", engine, 4)
        .expect("bind loopback")
        .mode(ServeMode::Reactor);
    let addr = daemon.local_addr();
    let handle = daemon.spawn();

    let mut clients: Vec<LabClient> = (0..CONNS)
        .map(|i| LabClient::connect(addr).unwrap_or_else(|e| panic!("connect {i}: {e}")))
        .collect();
    // two passes so every socket proves it survives between requests
    for pass in 0..2 {
        for (i, client) in clients.iter_mut().enumerate() {
            let (scenario, _) = grid_scenario(i % 12);
            let response = client
                .query(&LabRequest::plan(scenario))
                .unwrap_or_else(|e| panic!("pass {pass} conn {i}: {e}"));
            assert!(
                matches!(response, LabResponse::Plan(_)),
                "pass {pass} conn {i}: {response:?}"
            );
        }
    }
    let stats = clients[0].stats().expect("stats").into_stats();
    let d = stats.daemon.expect("daemon stats over the wire");
    assert_eq!(d.mode, "reactor");
    assert!(
        d.open_conns >= CONNS as u64,
        "the reactor must hold all {CONNS} keep-alive connections at once, held {}",
        d.open_conns
    );
    drop(clients);
    handle.shutdown();
}

/// Write raw bytes, half-close, and collect whatever the daemon says
/// before it closes the connection.
fn raw_roundtrip(addr: std::net::SocketAddr, bytes: &[u8]) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(bytes).expect("write request bytes");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    let mut out = Vec::new();
    stream.read_to_end(&mut out).expect("daemon must close");
    String::from_utf8_lossy(&out).into_owned()
}

/// Hostile framing gets the right status and a close on both front
/// ends: oversized heads 431, oversized declared bodies 413, garbled
/// Content-Length 400 — never a hang, never a wedged worker.
fn hostile_framing_is_rejected(mode: ServeMode) {
    let daemon = LabDaemon::bind("127.0.0.1:0", Arc::new(QueryEngine::new()), 2)
        .expect("bind loopback")
        .mode(mode);
    let addr = daemon.local_addr();
    let handle = daemon.spawn();

    let huge_head = format!(
        "GET /v1/stats HTTP/1.1\r\nX-Pad: {}\r\n\r\n",
        "a".repeat(9 * 1024)
    );
    let reply = raw_roundtrip(addr, huge_head.as_bytes());
    assert!(reply.starts_with("HTTP/1.1 431"), "{mode:?}: {reply:?}");

    let huge_body = "POST /v1/lab HTTP/1.1\r\nContent-Length: 9000000\r\n\r\n";
    let reply = raw_roundtrip(addr, huge_body.as_bytes());
    assert!(reply.starts_with("HTTP/1.1 413"), "{mode:?}: {reply:?}");

    let garbled = "POST /v1/lab HTTP/1.1\r\nContent-Length: banana\r\n\r\n";
    let reply = raw_roundtrip(addr, garbled.as_bytes());
    assert!(reply.starts_with("HTTP/1.1 400"), "{mode:?}: {reply:?}");

    // the daemon is still healthy afterwards
    let mut client = LabClient::connect(addr).expect("connect after abuse");
    let stats = client.stats().expect("stats after abuse").into_stats();
    assert_eq!(stats.daemon.expect("daemon stats").accept_errors, 0);
    handle.shutdown();
}

#[test]
fn hostile_framing_is_rejected_on_the_reactor() {
    hostile_framing_is_rejected(ServeMode::Reactor);
}

#[test]
fn hostile_framing_is_rejected_on_the_threaded_fallback() {
    hostile_framing_is_rejected(ServeMode::Threaded);
}

/// A slow-loris connection dribbling a partial head times out with a
/// 408 and a close — and while it dribbles, healthy clients keep
/// getting served (the whole point of the per-request deadline).
fn slow_loris_times_out_without_wedging(mode: ServeMode) {
    let daemon = LabDaemon::bind("127.0.0.1:0", Arc::new(QueryEngine::new()), 2)
        .expect("bind loopback")
        .mode(mode)
        .read_timeout(Duration::from_millis(300));
    let addr = daemon.local_addr();
    let handle = daemon.spawn();

    let mut loris = TcpStream::connect(addr).expect("loris connects");
    loris.write_all(b"GET /v1/st").expect("partial head");

    // the daemon must serve this while the loris holds its socket open
    let mut healthy = LabClient::connect(addr).expect("healthy client connects");
    let stats = healthy
        .stats()
        .expect("healthy client served mid-loris")
        .into_stats();
    assert!(stats.daemon.is_some());

    loris
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    let mut out = Vec::new();
    loris.read_to_end(&mut out).expect("daemon must close");
    let reply = String::from_utf8_lossy(&out);
    assert!(reply.starts_with("HTTP/1.1 408"), "{mode:?}: {reply:?}");
    handle.shutdown();
}

#[test]
fn slow_loris_times_out_without_wedging_the_reactor() {
    slow_loris_times_out_without_wedging(ServeMode::Reactor);
}

#[test]
fn slow_loris_times_out_without_wedging_the_threaded_fallback() {
    slow_loris_times_out_without_wedging(ServeMode::Threaded);
}

/// Pipelined requests on one connection come back in request order,
/// each a complete typed response — the framing layer may never
/// interleave or reorder.
fn pipelined_requests_come_back_in_order(mode: ServeMode) {
    let daemon = LabDaemon::bind("127.0.0.1:0", Arc::new(QueryEngine::new()), 2)
        .expect("bind loopback")
        .mode(mode);
    let addr = daemon.local_addr();
    let handle = daemon.spawn();

    let mut client = LabClient::connect(addr).expect("connect");
    let (scenario, _) = grid_scenario(1);
    let responses = client
        .query_pipelined(&[LabRequest::plan(scenario), LabRequest::Stats])
        .expect("pipelined batch");
    assert_eq!(responses.len(), 2);
    assert!(
        matches!(responses[0], LabResponse::Plan(_)),
        "first response answers the first request: {:?}",
        responses[0]
    );
    assert!(
        matches!(responses[1], LabResponse::Stats(_)),
        "second response answers the second request: {:?}",
        responses[1]
    );
    handle.shutdown();
}

#[test]
fn pipelined_requests_come_back_in_order_on_the_reactor() {
    pipelined_requests_come_back_in_order(ServeMode::Reactor);
}

#[test]
fn pipelined_requests_come_back_in_order_on_the_threaded_fallback() {
    pipelined_requests_come_back_in_order(ServeMode::Threaded);
}

/// Shutdown under load drains instead of wedging: clients racing a
/// shutdown either get a real answer or a typed 503/socket error, the
/// shutdown completes promptly, and every in-flight answer is still
/// bit-identical to the serial replay.
fn shutdown_under_load_drains(mode: ServeMode) {
    let daemon = LabDaemon::bind("127.0.0.1:0", Arc::new(QueryEngine::new()), 4)
        .expect("bind loopback")
        .mode(mode);
    let addr = daemon.local_addr();
    let handle = daemon.spawn();

    let clients: Vec<_> = (0..6)
        .map(|c| {
            std::thread::spawn(move || {
                let mut answered = Vec::new();
                for r in 0..60 {
                    let Ok(mut client) = LabClient::connect(addr) else {
                        break; // daemon gone: a clean refusal, not a hang
                    };
                    let i = (c + r) % 12;
                    let (scenario, seed) = grid_scenario(i);
                    match client.query(&LabRequest::execute(scenario, seed)) {
                        Ok(LabResponse::Execute(outcome)) => answered.push((i, *outcome)),
                        // late arrival: the daemon said 503 in a typed
                        // error instead of silently dropping the socket
                        Ok(LabResponse::Error(_)) | Err(_) => break,
                        Ok(other) => panic!("unexpected response {other:?}"),
                    }
                }
                answered
            })
        })
        .collect();
    std::thread::sleep(Duration::from_millis(50));
    handle.shutdown();

    let serial = QueryEngine::new();
    for worker in clients {
        for (i, over_wire) in worker.join().expect("client thread panicked") {
            let (scenario, seed) = grid_scenario(i);
            let direct = serial
                .handle(LabRequest::execute(scenario, seed))
                .into_outcome();
            assert_same_outcome(&format!("racing grid point {i}"), &over_wire, &direct);
        }
    }
}

#[test]
fn shutdown_under_load_drains_on_the_reactor() {
    shutdown_under_load_drains(ServeMode::Reactor);
}

#[test]
fn shutdown_under_load_drains_on_the_threaded_fallback() {
    shutdown_under_load_drains(ServeMode::Threaded);
}
