//! Integration tests for the lab daemon: concurrent socket clients must
//! see exactly the results a serial in-process replay produces, the
//! sharded cache counters must conserve the aggregate under the storm,
//! and campaign scripts must run (and fail typed) over the wire.

use harborsim::hw::presets;
use harborsim::study::lab::daemon::{LabClient, LabDaemon};
use harborsim::study::lab::{CampaignRowKind, LabRequest, LabResponse, PlanKey, QueryEngine};
use harborsim::study::scenario::{Execution, Outcome, Scenario};
use harborsim::study::workloads;
use std::sync::{Arc, Barrier};

const CLIENTS: usize = 8;
const REQUESTS_PER_CLIENT: usize = 12;

/// A small grid of distinct scenarios; index i picks scenario and seed.
fn grid_scenario(i: usize) -> (Scenario, u64) {
    let nodes = [1u32, 2, 3, 4][i % 4];
    let seed = (i / 4) as u64 % 3;
    (
        Scenario::new(presets::lenox(), workloads::artery_cfd_small())
            .execution(Execution::singularity_self_contained())
            .nodes(nodes)
            .ranks_per_node(14),
        seed,
    )
}

fn assert_same_outcome(label: &str, over_wire: &Outcome, direct: &Outcome) {
    assert_eq!(
        over_wire.elapsed, direct.elapsed,
        "{label}: elapsed must be bit-identical over the wire"
    );
    assert_eq!(
        over_wire.result, direct.result,
        "{label}: the full result must survive the wire"
    );
    assert_eq!(over_wire.deployment.is_some(), direct.deployment.is_some());
}

/// The tentpole acceptance test: CLIENTS threads hammer one daemon over
/// real sockets; every response must be bit-identical to a serial
/// in-process replay of the same (scenario, seed) schedule, and the
/// per-shard cache counters must add up exactly to the aggregate.
#[test]
fn concurrent_clients_match_the_serial_replay_bit_for_bit() {
    let engine = Arc::new(QueryEngine::new());
    let daemon =
        LabDaemon::bind("127.0.0.1:0", Arc::clone(&engine), CLIENTS).expect("bind loopback");
    let addr = daemon.local_addr();
    let handle = daemon.spawn();

    let barrier = Arc::new(Barrier::new(CLIENTS));
    let workers: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut client = LabClient::connect(addr).expect("connect");
                barrier.wait();
                (0..REQUESTS_PER_CLIENT)
                    .map(|r| {
                        // overlapping schedules: clients collide on both
                        // plans and (plan, seed) pairs
                        let i = (c + r) % (4 * 3);
                        let (scenario, seed) = grid_scenario(i);
                        let outcome = client
                            .query(&LabRequest::execute(scenario, seed))
                            .expect("query succeeds")
                            .into_outcome();
                        (i, outcome)
                    })
                    .collect::<Vec<_>>()
            })
        })
        .collect();
    let answered: Vec<(usize, Outcome)> = workers
        .into_iter()
        .flat_map(|w| w.join().expect("client thread panics"))
        .collect();

    // serial replay on a fresh engine, same schedule, no daemon
    let serial = QueryEngine::new();
    for (i, over_wire) in &answered {
        let (scenario, seed) = grid_scenario(*i);
        let direct = serial
            .handle(LabRequest::execute(scenario, seed))
            .into_outcome();
        assert_same_outcome(&format!("grid point {i}"), over_wire, &direct);
    }
    assert_eq!(answered.len(), CLIENTS * REQUESTS_PER_CLIENT);

    // counter conservation across shards, fetched over the wire
    let mut client = LabClient::connect(addr).expect("connect");
    let stats = client.stats().expect("stats query").into_stats();
    let shard_sum =
        |f: fn(&harborsim::study::CacheStats) -> u64| stats.per_shard.iter().map(f).sum::<u64>();
    assert_eq!(shard_sum(|s| s.hits), stats.cache.hits);
    assert_eq!(shard_sum(|s| s.misses), stats.cache.misses);
    assert_eq!(shard_sum(|s| s.waits), stats.cache.waits);
    assert_eq!(
        stats.per_shard.iter().map(|s| s.entries).sum::<usize>(),
        stats.cache.entries
    );
    // 4 grid plans + the 4 warm-started paper-cluster plans
    assert_eq!(stats.cache.misses, 8, "{:?}", stats.cache);
    assert_eq!(
        stats.cache.hits + stats.cache.waits + stats.cache.misses,
        (CLIENTS * REQUESTS_PER_CLIENT) as u64 + 4,
        "every request resolves through the cache exactly once \
         (+4 warm-start compiles): {:?}",
        stats.cache
    );

    handle.shutdown();
    // in-process view agrees with the wire view
    assert_eq!(engine.stats().hits, stats.cache.hits);
}

/// Campaigns run server-side: one `.hsim` script over the socket, rows
/// come back labelled and fingerprinted exactly as a local compile
/// computes them.
#[test]
fn campaign_scripts_run_over_the_socket() {
    let daemon =
        LabDaemon::bind("127.0.0.1:0", Arc::new(QueryEngine::new()), 2).expect("bind loopback");
    let handle = daemon.spawn();
    let mut client = LabClient::connect(handle.addr()).expect("connect");

    let script = "seeds quick\n\
                  campaign \"wire probe\" {\n\
                  \x20 cluster lenox\n\
                  \x20 workload cfd-small\n\
                  \x20 env singularity self-contained\n\
                  \x20 rpn 14\n\
                  \x20 sweep nodes [1, 2]\n\
                  }\n";
    let report = client
        .query(&LabRequest::Campaign {
            script: script.into(),
        })
        .expect("campaign query")
        .into_campaign();
    assert_eq!(report.campaigns.len(), 1);
    let result = &report.campaigns[0];
    assert_eq!(result.name, "wire probe");
    assert_eq!(result.rows.len(), 2);
    for (row, nodes) in result.rows.iter().zip([1u32, 2]) {
        let scenario = Scenario::new(presets::lenox(), workloads::artery_cfd_small())
            .execution(Execution::singularity_self_contained())
            .nodes(nodes)
            .ranks_per_node(14);
        let expect = PlanKey::of(&scenario, None)
            .expect("cacheable")
            .fingerprint();
        assert_eq!(row.fingerprint, expect, "row {}", row.label);
        match &row.kind {
            CampaignRowKind::Closed { mean_elapsed_s } => assert!(*mean_elapsed_s > 0.0),
            other => panic!("expected a closed row, got {other:?}"),
        }
    }

    // a broken script comes back as a typed, positioned error
    let err = client
        .query(&LabRequest::Campaign {
            script: "seeds quick\ncampaign \"x\" {\n  cluster atlantis\n}\n".into(),
        })
        .expect("transport succeeds");
    match err {
        LabResponse::Error(harborsim::study::HarborError::Script(e)) => {
            assert_eq!(e.span.line, 3, "error carries the offending line: {e}");
            assert!(e.to_string().contains("atlantis"), "{e}");
        }
        other => panic!("expected a typed script error, got {other:?}"),
    }
    handle.shutdown();
}

/// Admission batching is observable end-to-end: when concurrent socket
/// clients ask for the same (plan, seed), the daemon executes once and
/// every client still gets the full, identical outcome.
#[test]
fn identical_wire_queries_share_executes_without_changing_results() {
    let engine = Arc::new(QueryEngine::new());
    let daemon = LabDaemon::bind("127.0.0.1:0", Arc::clone(&engine), 8).expect("bind loopback");
    let addr = daemon.local_addr();
    let handle = daemon.spawn();

    let barrier = Arc::new(Barrier::new(8));
    let outcomes: Vec<Outcome> = (0..8)
        .map(|_| {
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut client = LabClient::connect(addr).expect("connect");
                barrier.wait();
                // many rounds of the same (plan, seed) maximizes the
                // chance of in-flight twins; correctness must hold at
                // any batching rate, including zero
                (0..6)
                    .map(|_| {
                        client
                            .query(&LabRequest::execute(grid_scenario(0).0, 42))
                            .expect("query")
                            .into_outcome()
                    })
                    .collect::<Vec<_>>()
            })
        })
        .collect::<Vec<_>>()
        .into_iter()
        .flat_map(|w| w.join().expect("client panics"))
        .collect();

    let direct = QueryEngine::new()
        .handle(LabRequest::execute(grid_scenario(0).0, 42))
        .into_outcome();
    for o in &outcomes {
        assert_same_outcome("shared execute", o, &direct);
    }
    handle.shutdown();
}
