//! Golden determinism tests for the compile-once API: a compiled
//! [`ScenarioPlan`] must produce bit-identical results to the one-shot
//! `try_run` path, for both engines, across seeds and repeated executions.

use harborsim::des::trace::Recorder;
use harborsim::hw::presets;
use harborsim::study::scenario::{EngineKind, Execution, Scenario};
use harborsim::study::workloads;

fn scenario(engine: EngineKind) -> Scenario {
    Scenario::new(presets::marenostrum4(), workloads::artery_cfd_small())
        .execution(Execution::singularity_system_specific())
        .nodes(2)
        .ranks_per_node(24)
        .threads_per_rank(2)
        .engine(engine)
}

#[test]
fn plan_execution_is_bit_identical_to_try_run() {
    for engine in [
        EngineKind::Analytic,
        EngineKind::Des {
            max_steps_per_kind: 3,
        },
    ] {
        let sc = scenario(engine);
        let plan = sc.compile().expect("compiles");
        for seed in [0u64, 1, 42, 1 << 40, u64::MAX] {
            let via_plan = plan.execute(seed, &mut Recorder::aggregating());
            let via_run = sc.try_run(seed).expect("runs");
            assert_eq!(
                via_plan.elapsed.as_secs_f64().to_bits(),
                via_run.elapsed.as_secs_f64().to_bits(),
                "elapsed diverged for seed {seed}"
            );
            assert_eq!(
                via_plan.result.compute.as_secs_f64().to_bits(),
                via_run.result.compute.as_secs_f64().to_bits(),
                "compute diverged for seed {seed}"
            );
            assert_eq!(
                via_plan.result.inter_node_msgs,
                via_run.result.inter_node_msgs
            );
            assert_eq!(
                via_plan.result.inter_node_bytes,
                via_run.result.inter_node_bytes
            );
        }
    }
}

#[test]
fn repeated_plan_executions_do_not_drift() {
    let plan = scenario(EngineKind::Analytic).compile().expect("compiles");
    let first = plan
        .execute(9, &mut Recorder::off())
        .elapsed
        .as_secs_f64()
        .to_bits();
    for _ in 0..10 {
        assert_eq!(
            plan.execute(9, &mut Recorder::off())
                .elapsed
                .as_secs_f64()
                .to_bits(),
            first
        );
    }
}

#[test]
fn distinct_seeds_still_vary() {
    // determinism must not collapse into seed-independence: the jitter
    // model has to see the seed
    let plan = scenario(EngineKind::Analytic).compile().expect("compiles");
    let a = plan.execute(1, &mut Recorder::off()).elapsed.as_secs_f64();
    let b = plan.execute(2, &mut Recorder::off()).elapsed.as_secs_f64();
    assert_ne!(a.to_bits(), b.to_bits());
}
