//! Integration tests for the lab query engine: the plan-cache fingerprint
//! must distinguish every scenario-builder knob, and a storm of identical
//! concurrent queries must compile exactly one plan.
//!
//! The single-flight test asserts around the process-wide compile counter
//! ([`harborsim::study::scenario::plans_compiled`]); the fingerprint test
//! only computes keys and compiles nothing, so the two share this binary
//! without perturbing the counter.

use std::sync::{Arc, Barrier};

use harborsim::hw::presets;
use harborsim::mpi::Placement;
use harborsim::study::lab::{PlanKey, QueryEngine};
use harborsim::study::scenario::{plans_compiled, EngineKind, Execution, Scenario};
use harborsim::study::workloads;

fn base() -> Scenario {
    Scenario::new(presets::lenox(), workloads::artery_cfd_small())
        .execution(Execution::singularity_self_contained())
        .nodes(4)
        .ranks_per_node(8)
        .threads_per_rank(1)
}

fn key(scenario: Scenario) -> PlanKey {
    PlanKey::of(&scenario, None).expect("artery case opts into memoization")
}

/// Property over the whole builder surface: flipping any single knob —
/// cluster, case, execution environment, every shape axis, engine,
/// deployment, placement, taper, each degraded-link entry — must move the
/// fingerprint, and every pair of variants must stay distinct from every
/// other (one changed field must never cancel another).
#[test]
fn plan_key_distinguishes_every_builder_knob() {
    let variants: Vec<(&str, PlanKey)> = vec![
        ("base", key(base())),
        (
            "cluster",
            key(
                Scenario::new(presets::marenostrum4(), workloads::artery_cfd_small())
                    .execution(Execution::singularity_self_contained())
                    .nodes(4)
                    .ranks_per_node(8)
                    .threads_per_rank(1),
            ),
        ),
        (
            "case",
            key(
                Scenario::new(presets::lenox(), workloads::artery_cfd_lenox())
                    .execution(Execution::singularity_self_contained())
                    .nodes(4)
                    .ranks_per_node(8)
                    .threads_per_rank(1),
            ),
        ),
        ("env", key(base().execution(Execution::bare_metal()))),
        ("nodes", key(base().nodes(8))),
        ("ranks_per_node", key(base().ranks_per_node(16))),
        ("threads_per_rank", key(base().threads_per_rank(2))),
        (
            "engine",
            key(base().engine(EngineKind::Des {
                max_steps_per_kind: 3,
            })),
        ),
        (
            "engine-budget",
            key(base().engine(EngineKind::Des {
                max_steps_per_kind: 4,
            })),
        ),
        ("deploy", key(base().with_deployment())),
        ("placement", key(base().placement(Placement::RoundRobin))),
        ("taper", key(base().spine_taper(0.5))),
        ("taper-value", key(base().spine_taper(0.25))),
        // a *different* taper value than the builder variants above: the
        // key stores the resolved taper, so builder 0.5 and fallback 0.5
        // coincide by design (asserted below)
        (
            "fallback-taper",
            PlanKey::of(&base(), Some(0.75)).expect("memoizable"),
        ),
        ("degraded", key(base().degrade_node_uplink(0, 0.5))),
        ("degraded-node", key(base().degrade_node_uplink(1, 0.5))),
        ("degraded-factor", key(base().degrade_node_uplink(0, 0.25))),
        (
            "degraded-pair",
            key(base()
                .degrade_node_uplink(0, 0.5)
                .degrade_node_uplink(1, 0.25)),
        ),
    ];
    for (i, (name_a, a)) in variants.iter().enumerate() {
        for (name_b, b) in variants.iter().skip(i + 1) {
            assert_ne!(a, b, "knob {name_a} and knob {name_b} collide");
        }
    }

    // sanity on the other direction: identical builders agree, the
    // explicit builder taper shadows the engine fallback, and the
    // degraded-link multiset is order-insensitive
    assert_eq!(key(base()), key(base()));
    assert_eq!(
        PlanKey::of(&base().spine_taper(0.5), Some(0.25)),
        PlanKey::of(&base().spine_taper(0.5), None),
        "an explicit builder taper must shadow the engine fallback"
    );
    assert_eq!(
        PlanKey::of(&base(), Some(0.5)),
        PlanKey::of(&base().spine_taper(0.5), None),
        "the resolved taper is what is fingerprinted, not its provenance"
    );
    assert_eq!(
        key(base()
            .degrade_node_uplink(0, 0.5)
            .degrade_node_uplink(1, 0.25)),
        key(base()
            .degrade_node_uplink(1, 0.25)
            .degrade_node_uplink(0, 0.5)),
        "degradation is multiplicative; entry order must not split the cache"
    );
}

/// A workload without a memo key is uncacheable by design, not an error.
#[test]
fn memoization_is_opt_in() {
    use harborsim::alya::workload::AlyaCase;
    use harborsim::mpi::workload::JobProfile;
    struct Anonymous;
    impl AlyaCase for Anonymous {
        fn name(&self) -> &str {
            "anonymous"
        }
        fn job_profile(&self, ranks: u32) -> JobProfile {
            workloads::artery_cfd_small().job_profile(ranks)
        }
    }
    let sc = Scenario::new(presets::lenox(), Anonymous)
        .nodes(2)
        .ranks_per_node(8);
    assert!(PlanKey::of(&sc, None).is_none());
}

/// The acceptance criterion of the single-flight cache: 64 threads racing
/// the same scenario through one engine must compile exactly one plan —
/// one miss, 63 hits or in-flight waits, nothing recompiled after the
/// winner lands.
#[test]
fn sixty_four_concurrent_identical_queries_compile_one_plan() {
    let lab = Arc::new(QueryEngine::new());
    let before = plans_compiled();
    let barrier = Arc::new(Barrier::new(64));
    let handles: Vec<_> = (0..64)
        .map(|_| {
            let lab = Arc::clone(&lab);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                let plan = lab.plan(&base()).expect("scenario compiles");
                assert!(plan.rank_map().ranks() > 0);
            })
        })
        .collect();
    for h in handles {
        h.join().expect("query thread panics");
    }
    assert_eq!(
        plans_compiled() - before,
        1,
        "64 identical concurrent queries must share one compile"
    );
    let stats = lab.stats();
    assert_eq!(stats.misses, 1, "exactly one thread wins the compile");
    assert_eq!(
        stats.hits + stats.waits,
        63,
        "every loser is served the winner's plan"
    );
    assert_eq!(stats.entries, 1);
    assert_eq!(stats.uncached, 0);
}

/// The point of sharding the plan cache: under the same 64-thread storm,
/// spreading keys over shards must not *increase* mutex contention, and
/// the per-shard counters must conserve the aggregate exactly (nothing
/// double- or under-counted when the locks split). On multi-core hosts
/// the single-mutex engine piles up try-lock failures that the sharded
/// engine avoids — when real contention shows up (hundreds of failed
/// try-locks), the reduction is asserted strictly. On a single hardware
/// thread both counts hover near zero and the difference is scheduler
/// noise, so the storms are aggregated over rounds and the comparison
/// carries one-failed-try-lock-per-thread slack rather than betting the
/// suite on a timing coin flip.
#[test]
fn sharding_reduces_lock_contention_under_the_storm() {
    use harborsim::study::lab::PlanCache;

    // 8 distinct scenarios -> 8 distinct plan keys (Lenox has 4 nodes,
    // so the grid is nodes x ranks-per-node)
    let scenarios: Vec<fn() -> Scenario> = vec![
        || base().nodes(1).ranks_per_node(4),
        || base().nodes(2).ranks_per_node(4),
        || base().nodes(3).ranks_per_node(4),
        || base().nodes(4).ranks_per_node(4),
        || base().nodes(1).ranks_per_node(8),
        || base().nodes(2).ranks_per_node(8),
        || base().nodes(3).ranks_per_node(8),
        || base().nodes(4).ranks_per_node(8),
    ];
    let storm = |lab: &Arc<QueryEngine>| {
        let barrier = Arc::new(Barrier::new(64));
        let handles: Vec<_> = (0..64)
            .map(|t| {
                let lab = Arc::clone(lab);
                let barrier = Arc::clone(&barrier);
                let mk = scenarios[t % scenarios.len()];
                std::thread::spawn(move || {
                    barrier.wait();
                    for _ in 0..50 {
                        let plan = lab.plan(&mk()).expect("scenario compiles");
                        assert!(plan.rank_map().ranks() > 0);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("storm thread panics");
        }
    };

    let (mut s1, mut s8) = (0u64, 0u64);
    for _ in 0..3 {
        let single = Arc::new(QueryEngine::with_cache(PlanCache::with_shards(64, 1)));
        let sharded = Arc::new(QueryEngine::with_cache(PlanCache::with_shards(64, 8)));
        storm(&single);
        storm(&sharded);

        for (name, lab) in [("single", &single), ("sharded", &sharded)] {
            let total = lab.stats();
            let shards = lab.shard_stats();
            assert_eq!(
                shards.iter().map(|s| s.hits).sum::<u64>(),
                total.hits,
                "{name}: shard hits must conserve the aggregate"
            );
            assert_eq!(
                shards.iter().map(|s| s.misses).sum::<u64>(),
                total.misses,
                "{name}: shard misses must conserve the aggregate"
            );
            assert_eq!(
                shards.iter().map(|s| s.contended).sum::<u64>(),
                total.contended,
                "{name}: shard contention must conserve the aggregate"
            );
            assert_eq!(total.misses, 8, "{name}: one compile per distinct key");
            assert_eq!(
                total.hits + total.waits,
                64 * 50 - 8,
                "{name}: every other access is served from cache"
            );
        }
        assert_eq!(single.shard_stats().len(), 1);
        assert_eq!(sharded.shard_stats().len(), 8);
        s1 += single.stats().contended;
        s8 += sharded.stats().contended;
    }
    assert!(
        s8 <= s1 + 64,
        "sharding must not increase lock contention: sharded {s8} vs single {s1}"
    );
    if s1 >= 512 {
        assert!(
            s8 < s1,
            "under real contention sharding must reduce it: sharded {s8} vs single {s1}"
        );
    }
}
