//! Differential determinism for open-system campaigns: the shard count
//! of the DES engine is an *execution* knob, not a model knob, so an
//! open campaign — whose per-class solver times come from sharded DES
//! plans — must be bit-identical serial vs any shard count, down to the
//! captured trace.
//!
//! The grid runs on MareNostrum4 with jobs wider than one leaf group
//! (48 nodes), the only regime where the conservative-parallel event
//! cores actually engage; on smaller topologies sharding falls back to
//! the serial loop and the test would pass vacuously.

use harborsim::des::trace::Recorder;
use harborsim::hw::presets;
use harborsim::study::lab::QueryEngine;
use harborsim::study::scenario::{EngineKind, Execution, Scenario};
use harborsim::study::{run_open_campaign, workloads, MixSpec, OpenSpec};

/// A short MareNostrum4 open campaign whose node mix straddles two leaf
/// groups. Low rate keeps the job count (and test time) small.
fn mn4_open(shards: u32) -> Scenario {
    let spec = OpenSpec {
        rate_per_s: 0.004,
        horizon_s: 1500.0,
        tenants: 3,
        node_mix: MixSpec {
            s: 1.2,
            values: vec![50, 56],
        },
        workload_mix: MixSpec::single("cfd-small".to_string()),
        env_mix: MixSpec {
            s: 1.1,
            values: vec![Execution::docker(), Execution::shifter()],
        },
    };
    Scenario::new(presets::marenostrum4(), workloads::artery_cfd_small())
        .ranks_per_node(1)
        .engine(EngineKind::Des {
            max_steps_per_kind: 2,
        })
        .shards(shards)
        .open_campaign(spec)
}

#[test]
fn open_campaigns_are_bit_identical_across_shard_counts() {
    let lab = QueryEngine::new();
    let mut renders = Vec::new();
    let mut traces = Vec::new();
    for shards in [1, 2, 4] {
        let scenario = mn4_open(shards);
        let mut rec = Recorder::capturing();
        let report = run_open_campaign(&lab, &scenario, 7, &mut rec).expect("open campaign runs");
        assert!(report.jobs > 0, "shards {shards}: campaign sampled no jobs");
        renders.push(format!("{report:?}"));
        traces.push(rec.take_buffer());
    }
    assert_eq!(
        renders[0], renders[1],
        "open report must be bit-identical serial vs 2 shards"
    );
    assert_eq!(
        renders[0], renders[2],
        "open report must be bit-identical serial vs 4 shards"
    );
    assert!(!traces[0].is_empty(), "the capture recorded spans");
    assert_eq!(
        traces[0], traces[1],
        "trace must be bit-identical serial vs 2 shards"
    );
    assert_eq!(
        traces[0], traces[2],
        "trace must be bit-identical serial vs 4 shards"
    );
}

#[test]
fn different_seeds_give_different_campaigns() {
    let lab = QueryEngine::new();
    let scenario = mn4_open(1);
    let a = run_open_campaign(&lab, &scenario, 7, &mut Recorder::off()).expect("runs");
    let b = run_open_campaign(&lab, &scenario, 8, &mut Recorder::off()).expect("runs");
    assert_ne!(
        format!("{a:?}"),
        format!("{b:?}"),
        "the arrival process must actually depend on the seed"
    );
}
