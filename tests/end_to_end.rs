//! End-to-end pipeline tests: recipe → image → registry → deployment →
//! containerized run, on each of the paper's machines.

use harborsim::container::build::{alya_recipe, BuildEngine};
use harborsim::container::{Containment, Registry, RuntimeKind};
use harborsim::hw::presets;
use harborsim::study::scenario::{Execution, Scenario};
use harborsim::study::workloads;
use std::collections::HashSet;

#[test]
fn full_pipeline_on_lenox() {
    let cluster = presets::lenox();
    // build and push
    let build = BuildEngine::self_contained(cluster.node.cpu.clone())
        .build(&alya_recipe())
        .expect("builds");
    let mut registry = Registry::new();
    registry.push("alya-artery:v1", &build.manifest);
    assert!(registry.manifest("alya-artery:v1").is_ok());
    // pull plan from a cold node
    let plan = registry
        .plan_pull("alya-artery:v1", &HashSet::new())
        .expect("plan");
    assert!(plan.bytes() > 100_000_000);

    // deploy + run under every technology Lenox offers
    for env in [
        Execution::bare_metal(),
        Execution::docker(),
        Execution::singularity_self_contained(),
        Execution::shifter(),
    ] {
        let outcome = Scenario::new(cluster.clone(), workloads::artery_cfd_small())
            .execution(env)
            .nodes(4)
            .ranks_per_node(28)
            .with_deployment()
            .run(9);
        assert!(outcome.elapsed.as_secs_f64() > 0.0, "{}", env.label());
        let dep = outcome.deployment.expect("deployment");
        assert!(
            dep.makespan.as_secs_f64() > 0.0,
            "{} deployment",
            env.label()
        );
    }
}

#[test]
fn bare_metal_is_fastest_execution_on_lenox() {
    let run = |env: Execution| {
        Scenario::new(presets::lenox(), workloads::artery_cfd_small())
            .execution(env)
            .nodes(4)
            .ranks_per_node(28)
            .run(4)
            .elapsed
            .as_secs_f64()
    };
    let bare = run(Execution::bare_metal());
    for env in [
        Execution::docker(),
        Execution::singularity_self_contained(),
        Execution::shifter(),
    ] {
        assert!(
            run(env) >= bare * 0.999,
            "{} should not beat bare metal",
            env.label()
        );
    }
}

#[test]
fn hpc_containers_beat_docker_at_scale_in_mpi() {
    let run = |env: Execution| {
        Scenario::new(presets::lenox(), workloads::artery_cfd_lenox())
            .execution(env)
            .nodes(4)
            .ranks_per_node(28)
            .run(4)
            .elapsed
            .as_secs_f64()
    };
    let sing = run(Execution::singularity_self_contained());
    let shift = run(Execution::shifter());
    let dock = run(Execution::docker());
    assert!(dock > 1.3 * sing, "docker {dock} vs singularity {sing}");
    assert!(dock > 1.3 * shift, "docker {dock} vs shifter {shift}");
}

#[test]
fn every_cluster_runs_its_installed_stack() {
    for cluster in presets::all() {
        for runtime in [
            RuntimeKind::BareMetal,
            RuntimeKind::Docker,
            RuntimeKind::Singularity,
            RuntimeKind::Shifter,
        ] {
            let env = Execution {
                runtime,
                containment: Containment::SelfContained,
            };
            let available = runtime.available_on(&cluster.software);
            let rpn = cluster.node.cores().min(16);
            let result = Scenario::new(cluster.clone(), workloads::artery_cfd_small())
                .execution(env)
                .nodes(2)
                .ranks_per_node(rpn)
                .try_run(1);
            assert_eq!(
                result.is_ok(),
                available,
                "{} on {}",
                runtime.label(),
                cluster.name
            );
        }
    }
}

#[test]
fn system_specific_image_smaller_but_host_bound() {
    let mn4 = presets::marenostrum4();
    let sc = BuildEngine::self_contained(mn4.node.cpu.clone())
        .build(&alya_recipe())
        .unwrap()
        .manifest;
    let ss = BuildEngine::system_specific(mn4.node.cpu.clone(), mn4.interconnect)
        .build(&alya_recipe())
        .unwrap()
        .manifest;
    assert!(ss.uncompressed_bytes() < sc.uncompressed_bytes());
    assert!(sc.required_host_libs.is_empty());
    assert!(ss.required_host_libs.iter().any(|l| l == "libpsm2"));
}

#[test]
fn fsi_needs_more_comm_than_cfd() {
    // the coupled case adds interface traffic and extra reductions
    let run = |fsi: bool| {
        let sc = if fsi {
            Scenario::new(presets::marenostrum4(), workloads::artery_fsi_small())
        } else {
            Scenario::new(presets::marenostrum4(), workloads::artery_cfd_small())
        };
        sc.execution(Execution::singularity_system_specific())
            .nodes(2)
            .ranks_per_node(48)
            .run(2)
            .result
    };
    let cfd = run(false);
    let fsi = run(true);
    assert!(fsi.inter_node_msgs > cfd.inter_node_msgs);
}
