//! Cross-validation: the message-level DES engine and the closed-form
//! analytic engine must agree on the workloads the study runs.
//!
//! Exact agreement is impossible (the DES resolves queueing and per-rank
//! jitter the closed forms summarize), so agreement means "within a factor
//! band" — tight for compute-bound jobs, looser for contention-heavy ones.

use harborsim::des::{Recorder, RngStream};
use harborsim::hw::presets;
use harborsim::mpi::analytic::{AnalyticEngine, EngineConfig};
use harborsim::mpi::mapping::Placement;
use harborsim::mpi::workload::{factor3, CommPhase, JobProfile, StepProfile};
use harborsim::mpi::{DesEngine, RankMap, SimResult};
use harborsim::net::{DataPath, NetworkModel, Topology, TransportSelection};
use harborsim::study::scenario::EngineKind;
use harborsim::study::script::compile::compile;
use harborsim::study::script::generator::random_script;

fn engines_on(
    map: RankMap,
    network: NetworkModel,
    node: harborsim::hw::NodeSpec,
) -> (AnalyticEngine, DesEngine) {
    let config = EngineConfig::default();
    let a = AnalyticEngine::new(node.clone(), network.clone(), map, config.clone());
    // the engines share one route table, as a compiled scenario plan does
    let d = DesEngine::with_routes(node, network, map, config, a.routes().clone());
    (a, d)
}

fn engines(
    nodes: u32,
    rpn: u32,
    path: DataPath,
    selection: TransportSelection,
) -> (AnalyticEngine, DesEngine) {
    let cluster = presets::lenox();
    let network = NetworkModel::compose(
        cluster.interconnect,
        selection,
        path,
        Topology::small_cluster(),
    );
    engines_on(RankMap::block(nodes, rpn, 1), network, cluster.node)
}

/// MareNostrum4's tapered fat tree at `nodes` (crossing leaf switches
/// from 49 nodes up), under either placement.
fn mn4_engines(nodes: u32, rpn: u32, placement: Placement) -> (AnalyticEngine, DesEngine) {
    let cluster = presets::marenostrum4();
    let network = NetworkModel::compose(
        cluster.interconnect,
        TransportSelection::Native,
        DataPath::Host,
        Topology::mn4_fat_tree(),
    );
    let map = RankMap {
        nodes,
        ranks_per_node: rpn,
        threads_per_rank: 1,
        placement,
    };
    engines_on(map, network, cluster.node)
}

fn ratio(job: &JobProfile, nodes: u32, rpn: u32, path: DataPath) -> f64 {
    let (a, d) = engines(nodes, rpn, path, TransportSelection::Native);
    let ta = a.run(job, 1).elapsed.as_secs_f64();
    let td = d.run(job, 1).elapsed.as_secs_f64();
    assert!(ta > 0.0 && td > 0.0);
    td / ta
}

#[test]
fn compute_bound_jobs_agree_tightly() {
    let job = JobProfile::uniform(
        StepProfile {
            flops_per_rank: 1e9,
            imbalance: 1.02,
            regions: 10.0,
            comm: vec![CommPhase::Allreduce {
                bytes: 8,
                repeats: 2,
            }],
        },
        5,
    );
    let r = ratio(&job, 2, 8, DataPath::Host);
    assert!((0.8..1.25).contains(&r), "compute-bound ratio {r}");
}

#[test]
fn halo_dominated_jobs_agree() {
    let job = JobProfile::uniform(
        StepProfile {
            flops_per_rank: 1e7,
            imbalance: 1.0,
            regions: 1.0,
            comm: vec![CommPhase::Halo1D {
                bytes: 200_000,
                repeats: 10,
            }],
        },
        5,
    );
    let r = ratio(&job, 4, 8, DataPath::Host);
    assert!((0.5..2.0).contains(&r), "halo ratio {r}");
}

#[test]
fn halo3d_jobs_agree() {
    let dims = factor3(32);
    let job = JobProfile::uniform(
        StepProfile {
            flops_per_rank: 5e7,
            imbalance: 1.01,
            regions: 2.0,
            comm: vec![CommPhase::Halo3D {
                dims,
                bytes: 50_000,
                repeats: 6,
            }],
        },
        4,
    );
    let r = ratio(&job, 4, 8, DataPath::Host);
    assert!((0.4..2.2).contains(&r), "halo3d ratio {r}");
}

#[test]
fn allreduce_heavy_jobs_agree() {
    let job = JobProfile::uniform(
        StepProfile {
            flops_per_rank: 1e7,
            imbalance: 1.0,
            regions: 1.0,
            comm: vec![CommPhase::Allreduce {
                bytes: 8,
                repeats: 60,
            }],
        },
        5,
    );
    let r = ratio(&job, 4, 8, DataPath::Host);
    assert!((0.4..2.5).contains(&r), "allreduce ratio {r}");
}

#[test]
fn fat_tree_engines_agree_under_both_placements() {
    // 64 nodes of a 48-node-per-leaf fat tree: traffic crosses the
    // tapered spine, under both the production placement and the
    // locality-blind one. Both engines derive costs from the same route
    // table, so the band holds and the traffic counters match exactly.
    let job = JobProfile::uniform(
        StepProfile {
            flops_per_rank: 5e7,
            imbalance: 1.01,
            regions: 2.0,
            comm: vec![
                CommPhase::Halo1D {
                    bytes: 50_000,
                    repeats: 4,
                },
                CommPhase::Allreduce {
                    bytes: 8,
                    repeats: 8,
                },
            ],
        },
        3,
    );
    for placement in [Placement::Block, Placement::RoundRobin] {
        let (a, d) = mn4_engines(64, 4, placement);
        let ra = a.run(&job, 1);
        let rd = d.run(&job, 1);
        let r = rd.elapsed.as_secs_f64() / ra.elapsed.as_secs_f64();
        assert!(
            (0.4..2.5).contains(&r),
            "fat-tree {placement:?} ratio {r} (analytic {}, des {})",
            ra.elapsed.as_secs_f64(),
            rd.elapsed.as_secs_f64()
        );
        assert_eq!(ra.inter_node_msgs, rd.inter_node_msgs, "{placement:?}");
        assert_eq!(ra.inter_node_bytes, rd.inter_node_bytes, "{placement:?}");
        // same routes, same fluid accounting: per-link byte counters agree
        let bytes =
            |res: &harborsim::mpi::SimResult| res.links.iter().map(|l| l.bytes).collect::<Vec<_>>();
        assert_eq!(bytes(&ra), bytes(&rd), "{placement:?}");
    }
}

#[test]
fn engines_agree_on_the_docker_penalty() {
    // both engines must attribute a comparable *relative* slowdown to the
    // Docker bridge — that relative factor is Fig. 1's content
    let job = JobProfile::uniform(
        StepProfile {
            flops_per_rank: 2e8,
            imbalance: 1.02,
            regions: 4.0,
            comm: vec![
                CommPhase::Halo1D {
                    bytes: 60_000,
                    repeats: 8,
                },
                CommPhase::Allreduce {
                    bytes: 8,
                    repeats: 16,
                },
            ],
        },
        4,
    );
    let rel = |path: DataPath| -> (f64, f64) {
        let (a_host, d_host) = engines(4, 14, DataPath::Host, TransportSelection::Native);
        let (a_dock, d_dock) = engines(4, 14, path, TransportSelection::Native);
        (
            a_dock.run(&job, 1).elapsed.as_secs_f64() / a_host.run(&job, 1).elapsed.as_secs_f64(),
            d_dock.run(&job, 1).elapsed.as_secs_f64() / d_host.run(&job, 1).elapsed.as_secs_f64(),
        )
    };
    let (ra, rd) = rel(DataPath::docker_default_bridge());
    assert!(
        ra > 1.02 && rd > 1.02,
        "both engines must see a penalty: {ra} {rd}"
    );
    let gap = (ra - rd).abs() / ra;
    assert!(
        gap < 0.5,
        "penalty attribution differs too much: analytic {ra:.2}x vs des {rd:.2}x"
    );
}

#[test]
fn message_counters_match_exactly() {
    // traffic accounting is structural, not temporal: the engines must
    // agree to the message
    let dims = factor3(16);
    let job = JobProfile::uniform(
        StepProfile {
            flops_per_rank: 1e6,
            imbalance: 1.0,
            regions: 1.0,
            comm: vec![
                CommPhase::Halo3D {
                    dims,
                    bytes: 1000,
                    repeats: 2,
                },
                CommPhase::Gather { bytes_per_rank: 64 },
                CommPhase::Bcast { bytes: 512 },
            ],
        },
        3,
    );
    let (a, d) = engines(2, 8, DataPath::Host, TransportSelection::Native);
    let ra = a.run(&job, 1);
    let rd = d.run(&job, 1);
    assert_eq!(ra.inter_node_msgs, rd.inter_node_msgs);
    assert_eq!(ra.inter_node_bytes, rd.inter_node_bytes);
}

/// Run a DES engine capturing its trace, returning the result and the
/// order-insensitive trace fingerprint.
fn run_printed(engine: &DesEngine, job: &JobProfile, seed: u64) -> (SimResult, u64) {
    let mut rec = Recorder::capturing();
    let result = engine.run_traced(job, seed, &mut rec);
    (result, rec.take_buffer().fingerprint())
}

#[test]
fn sharded_des_agrees_at_256_nodes() {
    // The paper's largest validation scale: 256 nodes crossing six leaf
    // switches of MareNostrum4's tapered fat tree. The sharded engine
    // must reproduce the serial engine bit for bit — results AND trace
    // fingerprints — at every shard count, under a workload exercising
    // halos, allreduces, and collectives together.
    let job = JobProfile::uniform(
        StepProfile {
            flops_per_rank: 5e7,
            imbalance: 1.01,
            regions: 2.0,
            comm: vec![
                CommPhase::Halo1D {
                    bytes: 50_000,
                    repeats: 2,
                },
                CommPhase::Allreduce {
                    bytes: 8,
                    repeats: 4,
                },
                CommPhase::Bcast { bytes: 4096 },
            ],
        },
        2,
    );
    let seed = 7;
    let (_, serial) = mn4_engines(256, 4, Placement::Block);
    let (want, want_print) = run_printed(&serial, &job, seed);
    for shards in [2, 4, 8] {
        let (_, d) = mn4_engines(256, 4, Placement::Block);
        let d = d.with_shards(shards);
        let (got, got_print) = run_printed(&d, &job, seed);
        assert_eq!(want, got, "{shards} shards: result drifted from serial");
        assert_eq!(
            want_print, got_print,
            "{shards} shards: trace fingerprint drifted from serial"
        );
    }
}

#[test]
fn sharded_des_agrees_on_generated_scenarios() {
    // Property test: whatever scenario the script fuzzer produces, the
    // DES engine is bit-identical at shards 1, 2, 4, and 8 — full
    // SimResult (elapsed, breakdowns, counters, per-link usage) and the
    // order-insensitive trace fingerprint. Scenarios the compiler
    // accepts but the plan layer rejects (placement violations, runtimes
    // the cluster lacks) fail identically at every shard count, so they
    // are skipped rather than compared.
    let mut compared = 0;
    for i in 0..12u64 {
        let script = random_script(&mut RngStream::new(0x5AD).derive_idx(i));
        let compiled = compile(&script).unwrap_or_else(|e| panic!("fuzz script {i}: {e}"));
        let taper = compiled.taper;
        for campaign in compiled.campaigns {
            let name = campaign.name.clone();
            // two grid points per campaign keep the sweep cross-products
            // from blowing up the runtime; the points still cover every
            // knob the generator can emit
            for mut run in campaign.runs.into_iter().take(2) {
                run.scenario.engine = EngineKind::Des {
                    max_steps_per_kind: 2,
                };
                run.scenario.shards = 1;
                let serial = match run.scenario.compile_with(taper) {
                    Ok(plan) => plan,
                    Err(_) => continue,
                };
                let seed = 11 + i;
                let mut rec = Recorder::capturing();
                let want = serial.execute(seed, &mut rec);
                let want_print = rec.take_buffer().fingerprint();
                for shards in [2, 4, 8] {
                    run.scenario.shards = shards;
                    let plan = run.scenario.compile_with(taper).expect("serial compiled");
                    let mut rec = Recorder::capturing();
                    let got = plan.execute(seed, &mut rec);
                    let got_print = rec.take_buffer().fingerprint();
                    assert_eq!(
                        want.result, got.result,
                        "fuzz script {i}, campaign {name}, {shards} shards"
                    );
                    assert_eq!(
                        want_print, got_print,
                        "fuzz script {i}, campaign {name}, {shards} shards: trace fingerprint"
                    );
                }
                compared += 1;
            }
        }
    }
    assert!(
        compared >= 8,
        "fuzzer produced too few runnable DES scenarios ({compared})"
    );
}
