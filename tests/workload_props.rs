//! Property-based tests over the workload IR and the performance models.

use harborsim::alya::workload::{AlyaCase, ArteryCfd};
use harborsim::hw::presets;
use harborsim::mpi::analytic::{AnalyticEngine, EngineConfig};
use harborsim::mpi::workload::{factor3, grid_coords, grid_neighbors, JobProfile, StepProfile};
use harborsim::mpi::RankMap;
use harborsim::net::{DataPath, NetworkModel, Topology, TransportSelection};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn factor3_always_covers(p in 1u32..20_000) {
        let (a, b, c) = factor3(p);
        prop_assert_eq!(a as u64 * b as u64 * c as u64, p as u64);
        prop_assert!(a >= b && b >= c);
    }

    #[test]
    fn grid_neighbors_are_symmetric(p in 2u32..600) {
        let dims = factor3(p);
        for r in 0..p {
            for nb in grid_neighbors(r, dims) {
                prop_assert!(nb < p);
                prop_assert!(grid_neighbors(nb, dims).contains(&r));
            }
        }
    }

    #[test]
    fn grid_coords_bijective(p in 1u32..2_000) {
        let dims = factor3(p);
        let mut seen = vec![false; p as usize];
        for r in 0..p {
            let (x, y, z) = grid_coords(r, dims);
            prop_assert!(x < dims.0 && y < dims.1 && z < dims.2);
            let back = x + dims.0 * (y + dims.1 * z);
            prop_assert_eq!(back, r);
            seen[r as usize] = true;
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn truncation_preserves_flops(steps in 1u32..2_000, keep in 1u32..50) {
        let job = JobProfile::uniform(
            StepProfile::compute_only(1e8, 4.0),
            steps,
        );
        let (short, mult) = job.truncated(keep);
        let full = job.total_flops(16);
        let scaled = short.total_flops(16) * mult;
        prop_assert!((full - scaled).abs() / full < 1e-9);
    }

    #[test]
    fn cfd_workload_total_flops_rank_invariant(ranks in 1u32..4_096) {
        let case = ArteryCfd::small();
        let f = case.job_profile(ranks).total_flops(ranks);
        let f1 = case.job_profile(1).total_flops(1);
        prop_assert!((f - f1).abs() / f1 < 1e-9);
    }

    #[test]
    fn elapsed_monotone_in_compute(flops in 1e6f64..1e11) {
        let engine = engine(2, 8, DataPath::Host, TransportSelection::Native);
        let t = |f: f64| engine
            .run(&JobProfile::uniform(StepProfile::compute_only(f, 1.0), 3), 1)
            .elapsed;
        prop_assert!(t(flops) < t(flops * 2.0));
    }

    #[test]
    fn docker_never_faster_than_host(seed in 0u64..500) {
        let case = ArteryCfd::small();
        let job = case.job_profile(16);
        let host = engine(2, 8, DataPath::Host, TransportSelection::Native)
            .run(&job, seed).elapsed;
        let dock = engine(2, 8, DataPath::docker_default_bridge(), TransportSelection::Native)
            .run(&job, seed).elapsed;
        prop_assert!(dock >= host);
    }

    #[test]
    fn fallback_never_faster_than_native(seed in 0u64..500, nodes in 1u32..16) {
        let case = ArteryCfd::small();
        let job = case.job_profile(nodes * 8);
        let native = ib_engine(nodes, TransportSelection::Native).run(&job, seed).elapsed;
        let fallback = ib_engine(nodes, TransportSelection::TcpFallback).run(&job, seed).elapsed;
        prop_assert!(fallback >= native);
    }
}

fn engine(
    nodes: u32,
    rpn: u32,
    path: DataPath,
    selection: TransportSelection,
) -> AnalyticEngine {
    let cluster = presets::lenox();
    AnalyticEngine {
        node: cluster.node,
        network: NetworkModel::compose(
            cluster.interconnect,
            selection,
            path,
            Topology::small_cluster(),
        ),
        map: RankMap::block(nodes, rpn, 1),
        config: EngineConfig::default(),
    }
}

fn ib_engine(nodes: u32, selection: TransportSelection) -> AnalyticEngine {
    let cluster = presets::cte_power();
    AnalyticEngine {
        node: cluster.node,
        network: NetworkModel::compose(
            cluster.interconnect,
            selection,
            DataPath::Host,
            Topology::cte_fat_tree(),
        ),
        map: RankMap::block(nodes, 8, 1),
        config: EngineConfig::default(),
    }
}
