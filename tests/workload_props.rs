//! Property-style tests over the workload IR and the performance models,
//! driven by deterministic `RngStream` case generation.

use harborsim::alya::workload::{AlyaCase, ArteryCfd};
use harborsim::des::RngStream;
use harborsim::hw::presets;
use harborsim::mpi::analytic::{AnalyticEngine, EngineConfig};
use harborsim::mpi::workload::{factor3, grid_coords, grid_neighbors, JobProfile, StepProfile};
use harborsim::mpi::RankMap;
use harborsim::net::{DataPath, NetworkModel, Topology, TransportSelection};
use harborsim::study::script::{self, generator, parse};

fn cases(label: &str, n: u64) -> impl Iterator<Item = RngStream> {
    let root = RngStream::new(0x3089_0005).derive(label);
    (0..n).map(move |i| root.derive_idx(i))
}

#[test]
fn factor3_always_covers() {
    for mut rng in cases("factor3", 64) {
        let p = 1 + rng.below(19_999) as u32;
        let (a, b, c) = factor3(p);
        assert_eq!(a as u64 * b as u64 * c as u64, p as u64);
        assert!(a >= b && b >= c);
    }
}

#[test]
fn grid_neighbors_are_symmetric() {
    for mut rng in cases("grid-neighbors", 64) {
        let p = 2 + rng.below(598) as u32;
        let dims = factor3(p);
        for r in 0..p {
            for nb in grid_neighbors(r, dims) {
                assert!(nb < p);
                assert!(grid_neighbors(nb, dims).contains(&r));
            }
        }
    }
}

#[test]
fn grid_coords_bijective() {
    for mut rng in cases("grid-coords", 64) {
        let p = 1 + rng.below(1_999) as u32;
        let dims = factor3(p);
        let mut seen = vec![false; p as usize];
        for r in 0..p {
            let (x, y, z) = grid_coords(r, dims);
            assert!(x < dims.0 && y < dims.1 && z < dims.2);
            let back = x + dims.0 * (y + dims.1 * z);
            assert_eq!(back, r);
            seen[r as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}

#[test]
fn truncation_preserves_flops() {
    for mut rng in cases("truncation", 64) {
        let steps = 1 + rng.below(1_999) as u32;
        let keep = 1 + rng.below(49) as u32;
        let job = JobProfile::uniform(StepProfile::compute_only(1e8, 4.0), steps);
        let (short, mult) = job.truncated(keep);
        let full = job.total_flops(16);
        let scaled = short.total_flops(16) * mult;
        assert!((full - scaled).abs() / full < 1e-9);
    }
}

#[test]
fn cfd_workload_total_flops_rank_invariant() {
    for mut rng in cases("flops-invariant", 64) {
        let ranks = 1 + rng.below(4_095) as u32;
        let case = ArteryCfd::small();
        let f = case.job_profile(ranks).total_flops(ranks);
        let f1 = case.job_profile(1).total_flops(1);
        assert!((f - f1).abs() / f1 < 1e-9);
    }
}

#[test]
fn elapsed_monotone_in_compute() {
    for mut rng in cases("monotone-compute", 64) {
        let flops = rng.uniform_range(1e6, 1e11);
        let engine = engine(2, 8, DataPath::Host, TransportSelection::Native);
        let t = |f: f64| {
            engine
                .run(
                    &JobProfile::uniform(StepProfile::compute_only(f, 1.0), 3),
                    1,
                )
                .elapsed
        };
        assert!(t(flops) < t(flops * 2.0));
    }
}

#[test]
fn docker_never_faster_than_host() {
    for mut rng in cases("docker-vs-host", 64) {
        let seed = rng.below(500);
        let case = ArteryCfd::small();
        let job = case.job_profile(16);
        let host = engine(2, 8, DataPath::Host, TransportSelection::Native)
            .run(&job, seed)
            .elapsed;
        let dock = engine(
            2,
            8,
            DataPath::docker_default_bridge(),
            TransportSelection::Native,
        )
        .run(&job, seed)
        .elapsed;
        assert!(dock >= host);
    }
}

#[test]
fn fallback_never_faster_than_native() {
    for mut rng in cases("fallback-vs-native", 64) {
        let seed = rng.below(500);
        let nodes = 1 + rng.below(15) as u32;
        let case = ArteryCfd::small();
        let job = case.job_profile(nodes * 8);
        let native = ib_engine(nodes, TransportSelection::Native)
            .run(&job, seed)
            .elapsed;
        let fallback = ib_engine(nodes, TransportSelection::TcpFallback)
            .run(&job, seed)
            .elapsed;
        assert!(fallback >= native);
    }
}

#[test]
fn random_scripts_round_trip_through_the_printer() {
    for mut rng in cases("script-roundtrip", 64) {
        let ast = generator::random_script(&mut rng);
        let printed = ast.to_string();
        let reparsed = parse(&printed).unwrap_or_else(|e| panic!("{e}\n---\n{printed}"));
        assert_eq!(ast, reparsed, "pretty-print must be a parser fixpoint");
        let a = script::compile(&ast).unwrap_or_else(|e| panic!("{e}\n---\n{printed}"));
        let b = script::compile(&reparsed).unwrap();
        assert_eq!(
            a.fingerprints(),
            b.fingerprints(),
            "round-trip changed plan keys:\n{printed}"
        );
    }
}

#[test]
fn random_scripts_compile_without_panicking() {
    for mut rng in cases("script-compile", 128) {
        let ast = generator::random_script(&mut rng);
        let src = ast.to_string();
        // generated scripts are well-formed by construction: they must
        // compile, and every run must carry a real plan-key fingerprint
        let compiled = script::compile_str(&src).unwrap_or_else(|e| panic!("{e}\n---\n{src}"));
        for fp in compiled.fingerprints() {
            assert_ne!(fp, 0, "generated run lost its memo key:\n{src}");
        }
    }
}

#[test]
fn mutated_scripts_never_panic_the_front_end() {
    for mut rng in cases("script-mutate", 128) {
        let src = generator::random_script(&mut rng).to_string();
        let mut broken = src;
        for _ in 0..4 {
            broken = generator::mutate(&broken, &mut rng);
            // errors are fine — panics and hangs are not
            let _ = script::compile_str(&broken);
        }
    }
}

fn engine(nodes: u32, rpn: u32, path: DataPath, selection: TransportSelection) -> AnalyticEngine {
    let cluster = presets::lenox();
    AnalyticEngine::new(
        cluster.node,
        NetworkModel::compose(
            cluster.interconnect,
            selection,
            path,
            Topology::small_cluster(),
        ),
        RankMap::block(nodes, rpn, 1),
        EngineConfig::default(),
    )
}

fn ib_engine(nodes: u32, selection: TransportSelection) -> AnalyticEngine {
    let cluster = presets::cte_power();
    AnalyticEngine::new(
        cluster.node,
        NetworkModel::compose(
            cluster.interconnect,
            selection,
            DataPath::Host,
            Topology::cte_fat_tree(),
        ),
        RankMap::block(nodes, 8, 1),
        EngineConfig::default(),
    )
}
