//! A multi-seed, multi-point deployment sweep must build the container
//! image exactly once: compilation shares one `BuildEngine` run per CPU
//! model, and plan execution never rebuilds.
//!
//! This lives in its own test binary so the process-wide build counter
//! ([`harborsim::container::builds_executed`]) sees no unrelated builds.

use harborsim::container::builds_executed;
use harborsim::hw::presets;
use harborsim::study::runner::{default_seeds, sweep};
use harborsim::study::scenario::{Execution, Scenario};
use harborsim::study::workloads;

#[test]
fn multi_seed_deployment_sweep_builds_one_image() {
    let mk = |nodes: u32| {
        Scenario::new(presets::lenox(), workloads::artery_cfd_small())
            .execution(Execution::singularity_self_contained())
            .nodes(nodes)
            .ranks_per_node(14)
            .with_deployment()
    };

    let before = builds_executed();
    let times = sweep([1u32, 2, 4].map(|n| move || mk(n)), default_seeds());
    let after = builds_executed();

    assert_eq!(times.len(), 3);
    assert!(times.iter().all(|t| *t > 0.0));
    assert_eq!(
        after - before,
        1,
        "3 sweep points x 5 seeds with deployment must share one image build"
    );

    // and a second sweep on the same CPU model reuses the cached image:
    // zero further builds
    let again = sweep([2u32, 3].map(|n| move || mk(n)), &[1, 2, 3]);
    assert_eq!(again.len(), 2);
    assert_eq!(
        builds_executed() - after,
        0,
        "image cache must be shared across sweeps"
    );
}
