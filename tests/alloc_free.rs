//! The cached-plan hot path performs no per-step heap allocations.
//!
//! Two guarantees, asserted with a counting global allocator:
//!
//! 1. `LinkSchedule` round costing reuses its buffers — a reset + deposit
//!    cycle on a warmed schedule allocates **exactly zero**.
//! 2. Both engines' `run_traced` cost is constant in the step count: a run
//!    with 10x the steps performs the *same number* of allocations as a
//!    short run, because everything that scales with steps (events, link
//!    tallies, per-rank queues, message state) lives in pooled scratch.
//!    Per-run setup (taking the scratch box, assembling `SimResult`) may
//!    allocate, but only O(1) per run.

use harborsim_des::trace::Recorder;
use harborsim_mpi::analytic::EngineConfig;
use harborsim_mpi::workload::{CommPhase, JobProfile, StepProfile};
use harborsim_mpi::{AnalyticEngine, DesEngine, RankMap};
use harborsim_net::{DataPath, LinkGraph, LinkSchedule, NetworkModel, RouteTable};
use harborsim_net::{Topology, TransportSelection};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

struct CountingAlloc;

// SAFETY: delegates directly to `System`; the counter is a relaxed atomic.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[test]
fn link_schedule_round_costing_allocates_exactly_zero() {
    let graph = LinkGraph::build(
        &Topology::FatTree {
            nodes_per_leaf: 2,
            hop_latency_s: 1e-6,
            taper: 0.5,
        },
        8,
        1e9,
        1e9,
    );
    let table = RouteTable::build(graph, (0..16).map(|r| r / 2).collect());
    let mut sched = LinkSchedule::new(table.graph().len());
    let round = |sched: &mut LinkSchedule| {
        sched.reset();
        for src in 0..16u32 {
            let dst = (src + 2) % 16;
            sched.add(table.graph(), &table.route(src, dst), 64 * 1024);
        }
        sched.wire_seconds()
    };
    let warm = round(&mut sched);
    let before = allocations();
    let mut acc = 0.0;
    for _ in 0..1000 {
        acc += round(&mut sched);
    }
    let during = allocations() - before;
    assert!(acc > 0.0 && warm > 0.0);
    assert_eq!(
        during, 0,
        "LinkSchedule reset+deposit must reuse its buffers (saw {during} allocations)"
    );
}

fn job(reps: u32) -> JobProfile {
    JobProfile::uniform(
        StepProfile {
            flops_per_rank: 1e7,
            imbalance: 1.02,
            regions: 4.0,
            comm: vec![
                CommPhase::Halo1D {
                    bytes: 10_000,
                    repeats: 4,
                },
                CommPhase::Allreduce {
                    bytes: 8,
                    repeats: 8,
                },
            ],
        },
        reps,
    )
}

fn network() -> NetworkModel {
    NetworkModel::compose(
        harborsim_hw::InterconnectKind::GigabitEthernet,
        TransportSelection::Native,
        DataPath::Host,
        Topology::small_cluster(),
    )
}

/// Allocation count of one untraced run.
fn count_run(run: &dyn Fn(&JobProfile) -> harborsim_mpi::SimResult, job: &JobProfile) -> u64 {
    let before = allocations();
    let r = run(job);
    assert!(r.elapsed.as_nanos() > 0);
    allocations() - before
}

#[test]
fn des_engine_allocations_are_constant_in_step_count() {
    let engine = DesEngine::new(
        harborsim_hw::presets::lenox().node,
        network(),
        RankMap::block(4, 28, 1),
        EngineConfig::default(),
    );
    let run = |j: &JobProfile| engine.run_traced(j, 1, &mut Recorder::off());
    let (short, long) = (job(2), job(20));
    // warm the scratch pool (and every lazily-grown buffer) with the
    // larger variant first
    run(&long);
    run(&short);
    let a_short = count_run(&run, &short);
    let a_long = count_run(&run, &long);
    assert_eq!(
        a_short, a_long,
        "10x the steps must not change the DES engine's allocation count \
         (short={a_short}, long={a_long}): the event loop is leaking \
         per-step allocations"
    );
}

#[test]
fn analytic_engine_allocations_are_constant_in_step_count() {
    let engine = AnalyticEngine::new(
        harborsim_hw::presets::lenox().node,
        network(),
        RankMap::block(4, 28, 1),
        EngineConfig::default(),
    );
    let run = |j: &JobProfile| engine.run_traced(j, 1, &mut Recorder::off());
    let (short, long) = (job(2), job(20));
    run(&long);
    run(&short);
    let a_short = count_run(&run, &short);
    let a_long = count_run(&run, &long);
    assert_eq!(
        a_short, a_long,
        "10x the steps must not change the analytic engine's allocation \
         count (short={a_short}, long={a_long}): round costing is leaking \
         per-step allocations"
    );
}
