//! Hygiene for every committed `.hsim` campaign script: each file must
//! parse clean, carry no trailing whitespace, and end with a newline —
//! the same bar CI holds Rust sources to.

use std::path::{Path, PathBuf};

use harborsim::study::script::parse;

/// Every directory that may hold committed `.hsim` files.
const SCRIPT_DIRS: [&str; 3] = ["crates/core/src/experiments", "scripts", "examples"];

fn hsim_files() -> Vec<PathBuf> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut files = Vec::new();
    for dir in SCRIPT_DIRS {
        let Ok(entries) = std::fs::read_dir(root.join(dir)) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.extension().is_some_and(|e| e == "hsim") {
                files.push(path);
            }
        }
    }
    files.sort();
    files
}

#[test]
fn the_expected_scripts_are_committed() {
    let names: Vec<String> = hsim_files()
        .iter()
        .map(|p| p.file_name().unwrap().to_string_lossy().into_owned())
        .collect();
    for expected in [
        "fig1.hsim",
        "fig2.hsim",
        "fig3.hsim",
        "ext_locality.hsim",
        "ext_degraded.hsim",
        "repro_full.hsim",
        "repro_quick.hsim",
        "repro_quick_ablate_taper.hsim",
        "repro_oversub_2to1.hsim",
        "repro_open_quick.hsim",
        "quickstart.hsim",
        "scale_out.hsim",
        "deployment_storm.hsim",
        "ext_open_system.hsim",
    ] {
        assert!(names.contains(&expected.to_string()), "missing {expected}");
    }
}

#[test]
fn every_committed_script_parses_clean() {
    for path in hsim_files() {
        let src = std::fs::read_to_string(&path).unwrap();
        if let Err(e) = parse(&src) {
            panic!("{}: {e}", path.display());
        }
    }
}

#[test]
fn scripts_have_no_trailing_whitespace_and_end_with_newline() {
    for path in hsim_files() {
        let src = std::fs::read_to_string(&path).unwrap();
        assert!(
            src.ends_with('\n') && !src.ends_with("\n\n"),
            "{}: must end with exactly one newline",
            path.display()
        );
        for (i, line) in src.lines().enumerate() {
            assert!(
                line == line.trim_end(),
                "{}:{}: trailing whitespace",
                path.display(),
                i + 1
            );
            assert!(
                !line.contains('\t'),
                "{}:{}: tabs are not used in scripts",
                path.display(),
                i + 1
            );
        }
    }
}
