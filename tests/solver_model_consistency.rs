//! The workload model must describe what the real solver actually does.
//!
//! The mini-Alya CFD solver runs decomposed over the functional thread MPI
//! and counts its halo exchanges and CG iterations; the `ArteryCfd`
//! workload model claims a communication structure per step. These tests
//! tie the two together: the model's claimed exchange counts and flop
//! composition must match the instrumented solver.

use harborsim::alya::cfd::{
    CfdConfig, CfdSolver, FLOPS_CG_ITER, FLOPS_CORRECTION, FLOPS_DIVERGENCE, FLOPS_MOMENTUM,
};
use harborsim::alya::dist::run_distributed;
use harborsim::alya::mesh::TubeMesh;
use harborsim::alya::workload::{AlyaCase, ArteryCfd};
use harborsim::mpi::workload::CommPhase;

#[test]
fn solver_flop_counters_match_model_constants() {
    let mesh = TubeMesh::cylinder(13, 13, 24, 5.0);
    let cfg = CfdConfig::stable(&mesh, 40.0, 0.1);
    let mut solver = CfdSolver::new(mesh, cfg);
    solver.run(10);
    let active = solver.mesh.active_cells() as f64;
    let expected =
        solver.stats.steps as f64 * active * (FLOPS_MOMENTUM + FLOPS_DIVERGENCE + FLOPS_CORRECTION)
            + solver.stats.cg_iters as f64 * active * FLOPS_CG_ITER;
    let rel = (solver.stats.flops - expected).abs() / expected;
    assert!(rel < 1e-12, "counter drift {rel}");

    // and the workload model composes exactly these constants
    let case = ArteryCfd {
        label: "probe".into(),
        active_cells: active,
        timesteps: 1,
        cg_iters: 20,
    };
    assert_eq!(
        case.flops_per_cell_step(),
        FLOPS_MOMENTUM + FLOPS_DIVERGENCE + FLOPS_CORRECTION + 20.0 * FLOPS_CG_ITER
    );
}

#[test]
fn distributed_solver_halo_count_matches_model_structure() {
    let mesh = TubeMesh::cylinder(11, 11, 24, 4.0);
    let cfg = CfdConfig::stable(&mesh, 30.0, 0.1);
    let steps = 5;
    let dist = run_distributed(&mesh, &cfg, 3, steps);

    // instrumented solver: per step 6 velocity-field exchanges + 1 pressure
    // warm-start + cg_iters direction exchanges + 1 final pressure; plus 3
    // closing exchanges
    let measured = dist.halo_exchanges;
    let expected = steps as u64 * 8 + dist.cg_iters + 3;
    assert_eq!(measured, expected);

    // the workload model claims, per step: 2 bundled 3-field halos + (cg+2)
    // pressure halos — the same 8 + cg structure (bundling the 3 velocity
    // fields into one message per neighbour, as production codes do)
    let mean_cg = (dist.cg_iters as f64 / steps as f64).round() as u32;
    let case = ArteryCfd {
        label: "probe".into(),
        active_cells: mesh.active_cells() as f64,
        timesteps: 1,
        cg_iters: mean_cg,
    };
    let job = case.job_profile(3);
    let halo_exchanges_claimed: u32 = job.steps[0]
        .0
        .comm
        .iter()
        .map(|c| match c {
            CommPhase::Halo3D { repeats, .. } | CommPhase::Halo1D { repeats, .. } => *repeats,
            _ => 0,
        })
        .sum();
    // model: 2 + (cg+2); solver: 6 + 2 + cg (unbundled velocity fields)
    assert_eq!(halo_exchanges_claimed, 2 + mean_cg + 2);
    let solver_exchanges_bundled = 2 + mean_cg + 2; // 6 field-exchanges = 2 bundled
    assert_eq!(halo_exchanges_claimed, solver_exchanges_bundled);
}

#[test]
fn model_halo_bytes_match_subdomain_surfaces() {
    // for a slab decomposition the true interface is the tube cross-section;
    // the model uses the isotropic (cells/rank)^(2/3) surface. For rank
    // counts where slabs are near-cubic the two must agree closely.
    let mesh = TubeMesh::cylinder(17, 17, 68, 7.0);
    let cells = mesh.active_cells() as f64;
    let cross_section_bytes = mesh.cross_section_cells() as f64 * 8.0;
    // pick ranks so each slab is about as thick as the tube is wide
    let ranks = (mesh.nz / mesh.nx) as u32; // 4 slabs of 17 planes
    let case = ArteryCfd {
        label: "probe".into(),
        active_cells: cells,
        timesteps: 1,
        cg_iters: 10,
    };
    let job = case.job_profile(ranks);
    let model_bytes = job.steps[0]
        .0
        .comm
        .iter()
        .find_map(|c| match c {
            CommPhase::Halo3D { bytes, repeats, .. } if *repeats > 2 => Some(*bytes),
            _ => None,
        })
        .expect("pressure halo phase") as f64;
    let ratio = model_bytes / cross_section_bytes;
    assert!(
        (0.4..2.5).contains(&ratio),
        "model {model_bytes} vs geometric {cross_section_bytes} (ratio {ratio})"
    );
}
