//! Golden tests for the lab wire protocol: the exact JSON of every
//! request and response variant is pinned, byte for byte.
//!
//! The wire format is the daemon's public contract — an external client
//! built against these strings must keep working — so any drift in
//! field names, field order, number formatting, or the version envelope
//! fails here first, deliberately. (The simulation itself is
//! deterministic, which is what lets the *response* bodies be golden:
//! the same scenario and seed produce the same nanosecond counts on
//! every machine, as `determinism_golden.rs` separately guarantees.)
//!
//! If a change to these strings is intentional, bump
//! [`WIRE_VERSION`](harborsim::study::lab::wire::WIRE_VERSION) and
//! update the goldens together.

use harborsim::hw::presets;
use harborsim::study::lab::wire::{
    decode_request, decode_response, encode_request, encode_response,
};
use harborsim::study::lab::{
    CampaignReport, CampaignResult, CampaignRow, CampaignRowKind, DaemonStats, EngineStats,
    LabRequest, LabResponse, Query, QueryEngine,
};
use harborsim::study::scenario::{Execution, Scenario};
use harborsim::study::workloads;
use harborsim::study::CacheStats;

fn sc() -> Scenario {
    Scenario::new(presets::lenox(), workloads::artery_cfd_small())
        .execution(Execution::singularity_self_contained())
        .nodes(2)
        .ranks_per_node(14)
}

const SCENARIO_JSON: &str = r#"{"cluster":"lenox","workload":"cfd-small","env":"singularity self-contained","nodes":2,"rpn":14,"tpr":1,"engine":{"kind":"analytic"},"deploy":false,"placement":"block","taper":null,"degraded":[],"shards":1,"open":null}"#;

/// Encode, pin, decode, re-encode: the golden string is both the
/// encoder's output and a fixed point of decode ∘ encode.
fn pin_request(req: &LabRequest, golden: &str) {
    let encoded = encode_request(req).expect("request encodes");
    assert_eq!(encoded, golden);
    let decoded = decode_request(&encoded).expect("golden request decodes");
    assert_eq!(encode_request(&decoded).expect("re-encodes"), golden);
}

fn pin_response(resp: &LabResponse, golden: &str) {
    let encoded = encode_response(resp);
    assert_eq!(encoded, golden);
    let decoded = decode_response(&encoded).expect("golden response decodes");
    assert_eq!(encode_response(&decoded), golden);
}

#[test]
fn request_plan_is_pinned() {
    pin_request(
        &LabRequest::plan(sc()),
        &format!(r#"{{"v":1,"kind":"plan","scenario":{SCENARIO_JSON}}}"#),
    );
}

#[test]
fn request_execute_is_pinned() {
    pin_request(
        &LabRequest::execute(sc(), 7),
        &format!(r#"{{"v":1,"kind":"execute","scenario":{SCENARIO_JSON},"seed":7}}"#),
    );
}

#[test]
fn request_batch_is_pinned() {
    pin_request(
        &LabRequest::Batch {
            queries: vec![Query::new(sc(), &[1, 2])],
        },
        &format!(
            r#"{{"v":1,"kind":"batch","queries":[{{"scenario":{SCENARIO_JSON},"seeds":[1,2]}}]}}"#
        ),
    );
}

#[test]
fn request_campaign_is_pinned() {
    pin_request(
        &LabRequest::Campaign {
            script: "seeds quick\n".into(),
        },
        r#"{"v":1,"kind":"campaign","script":"seeds quick\n"}"#,
    );
}

#[test]
fn request_stats_is_pinned() {
    pin_request(&LabRequest::Stats, r#"{"v":1,"kind":"stats"}"#);
}

#[test]
fn response_plan_is_pinned() {
    let lab = QueryEngine::new();
    pin_response(
        &lab.handle(LabRequest::plan(sc())),
        r#"{"v":1,"kind":"plan","plan":{"fingerprint":"ad6313171d03757a","engine":"analytic","ranks":28,"deployment":false}}"#,
    );
}

#[test]
fn response_execute_is_pinned() {
    let lab = QueryEngine::new();
    pin_response(
        &lab.handle(LabRequest::execute(sc(), 7)),
        r#"{"v":1,"kind":"execute","outcome":{"elapsed_ns":71248977,"result":{"elapsed_ns":71248977,"compute_ns":2637528,"comm":{"halo_ns":22889723,"allreduce_ns":45360068,"pairs_ns":0,"other_ns":361658},"inter_node_msgs":8490,"intra_node_msgs":22005,"inter_node_bytes":3837140,"links":[{"label":"node0:up","busy_s":0.01639324786324786,"bytes":1918010},{"label":"node1:up","busy_s":0.016402820512820507,"bytes":1919130},{"label":"node0:down","busy_s":0.016402820512820507,"bytes":1919130},{"label":"node1:down","busy_s":0.01639324786324786,"bytes":1918010},{"label":"leaf0:spine-up","busy_s":0,"bytes":0},{"label":"leaf0:spine-down","busy_s":0,"bytes":0}],"engine":"analytic"},"deployment":null}}"#,
    );
}

#[test]
fn response_batch_is_pinned() {
    let lab = QueryEngine::new();
    pin_response(
        &lab.handle(LabRequest::Batch {
            queries: vec![Query::new(sc(), &[1])],
        }),
        r#"{"v":1,"kind":"batch","results":[{"ok":[{"elapsed_ns":71109337,"result":{"elapsed_ns":71109337,"compute_ns":0,"comm":{"halo_ns":0,"allreduce_ns":0,"pairs_ns":0,"other_ns":0},"inter_node_msgs":8490,"intra_node_msgs":22005,"inter_node_bytes":3837140,"links":[{"label":"node0:up","busy_s":0.01639324786324786,"bytes":1918010},{"label":"node1:up","busy_s":0.016402820512820507,"bytes":1919130},{"label":"node0:down","busy_s":0.016402820512820507,"bytes":1919130},{"label":"node1:down","busy_s":0.01639324786324786,"bytes":1918010},{"label":"leaf0:spine-up","busy_s":0,"bytes":0},{"label":"leaf0:spine-down","busy_s":0,"bytes":0}],"engine":"analytic"},"deployment":null}]}]}"#,
    );
}

#[test]
fn response_campaign_is_pinned() {
    // covers both row kinds and the hex fingerprint encoding
    pin_response(
        &LabResponse::Campaign(CampaignReport {
            campaigns: vec![CampaignResult {
                name: "probe".into(),
                rows: vec![
                    CampaignRow {
                        label: "(base)".into(),
                        fingerprint: 0x00ff00ff00ff00ff,
                        kind: CampaignRowKind::Closed {
                            mean_elapsed_s: 12.5,
                        },
                    },
                    CampaignRow {
                        label: "n=2".into(),
                        fingerprint: 0x0123456789abcdef,
                        kind: CampaignRowKind::Open {
                            jobs: 40,
                            utilization: 0.5,
                            wait_p50_s: 1.5,
                            wait_p99_s: 9.0,
                        },
                    },
                ],
            }],
        }),
        r#"{"v":1,"kind":"campaign","campaigns":[{"name":"probe","rows":[{"label":"(base)","fingerprint":"00ff00ff00ff00ff","closed":{"mean_elapsed_s":12.5}},{"label":"n=2","fingerprint":"0123456789abcdef","open":{"jobs":40,"utilization":0.5,"wait_p50_s":1.5,"wait_p99_s":9}}]}]}"#,
    );
}

#[test]
fn response_stats_is_pinned() {
    pin_response(
        &LabResponse::Stats(EngineStats {
            cache: CacheStats {
                hits: 5,
                misses: 2,
                waits: 1,
                uncached: 0,
                contended: 3,
                entries: 2,
            },
            per_shard: vec![CacheStats {
                hits: 5,
                misses: 2,
                waits: 1,
                uncached: 0,
                contended: 3,
                entries: 2,
            }],
            batched_executes: 4,
            daemon: None,
        }),
        r#"{"v":1,"kind":"stats","cache":{"hits":5,"misses":2,"waits":1,"uncached":0,"contended":3,"entries":2},"per_shard":[{"hits":5,"misses":2,"waits":1,"uncached":0,"contended":3,"entries":2}],"batched_executes":4}"#,
    );
}

/// The daemon block is additive: an in-process stats response (daemon
/// `None`) pins to exactly the pre-reactor golden above, and a daemon-
/// served one appends the block without touching any earlier byte.
#[test]
fn response_stats_with_daemon_block_is_pinned() {
    pin_response(
        &LabResponse::Stats(EngineStats {
            cache: CacheStats {
                hits: 5,
                misses: 2,
                waits: 1,
                uncached: 0,
                contended: 3,
                entries: 2,
            },
            per_shard: vec![CacheStats {
                hits: 5,
                misses: 2,
                waits: 1,
                uncached: 0,
                contended: 3,
                entries: 2,
            }],
            batched_executes: 4,
            daemon: Some(DaemonStats {
                mode: "reactor".to_string(),
                accept_errors: 1,
                late_503s: 2,
                open_conns: 256,
            }),
        }),
        r#"{"v":1,"kind":"stats","cache":{"hits":5,"misses":2,"waits":1,"uncached":0,"contended":3,"entries":2},"per_shard":[{"hits":5,"misses":2,"waits":1,"uncached":0,"contended":3,"entries":2}],"batched_executes":4,"daemon":{"mode":"reactor","accept_errors":1,"late_503s":2,"open_conns":256}}"#,
    );
}

#[test]
fn response_script_error_is_pinned() {
    let lab = QueryEngine::new();
    pin_response(
        &lab.handle(LabRequest::Campaign {
            script: "nonsense\n".into(),
        }),
        r#"{"v":1,"kind":"error","error":{"type":"script","stage":"parse","line":1,"col":1,"msg":"unknown directive `nonsense` (expected seeds, taper, shards, trace, experiments, or campaign)"}}"#,
    );
}

#[test]
fn response_runtime_error_is_pinned() {
    // Docker genuinely is not installed on CTE-POWER in the paper's
    // software table, so this is the natural typed-error probe
    let lab = QueryEngine::new();
    pin_response(
        &lab.handle(LabRequest::execute(
            Scenario::new(presets::cte_power(), workloads::artery_cfd_small())
                .execution(Execution::docker()),
            1,
        )),
        r#"{"v":1,"kind":"error","error":{"type":"runtime-unavailable","runtime":"Docker","cluster":"CTE-POWER"}}"#,
    );
}
