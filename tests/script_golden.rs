//! Golden equivalence between the scenario DSL and the builder API.
//!
//! Every committed `.hsim` campaign must compile to **bit-identical**
//! [`PlanKey`] fingerprints as a hand-built replica of the grid it
//! replaced, and every CI-exercised `reproduce_all` flag combination must
//! have an equivalent committed script under `scripts/`. If a script and
//! its replica ever drift, the figure silently stops measuring what the
//! paper measured — these tests make that a loud failure.

use harborsim::hw::presets;
use harborsim::mpi::Placement;
use harborsim::study::experiments::{ext_degraded, ext_locality, fig1, fig2, fig3};
use harborsim::study::lab::PlanKey;
use harborsim::study::scenario::{Execution, Scenario};
use harborsim::study::script::ast::ExperimentsSpec;
use harborsim::study::script::{compile_str, flags_script, CompiledCampaign};
use harborsim::study::workloads;

/// Canonical fingerprint of a hand-built scenario, no fallback taper.
fn fp(s: Scenario) -> u64 {
    PlanKey::of(&s, None)
        .expect("replica scenarios are memoizable")
        .fingerprint()
}

/// Assert the compiled campaign's grid equals the replica, in order.
fn assert_grid(campaign: &CompiledCampaign, replica: Vec<Scenario>, what: &str) {
    assert_eq!(campaign.runs.len(), replica.len(), "{what}: grid size");
    for (i, (run, hand)) in campaign.runs.iter().zip(replica).enumerate() {
        assert_eq!(
            run.fingerprint(None),
            fp(hand),
            "{what}: run {i} ({:?}) diverged from the hand-built grid",
            run.labels
        );
    }
}

#[test]
fn fig1_script_matches_hand_built_grid() {
    let mut replica = Vec::new();
    for (_, env) in fig1::environments() {
        for &(ranks, threads) in &fig1::CONFIGS {
            replica.push(
                Scenario::new(presets::lenox(), workloads::artery_cfd_lenox())
                    .execution(env)
                    .nodes(4)
                    .ranks_per_node(ranks / 4)
                    .threads_per_rank(threads),
            );
        }
    }
    assert_grid(&fig1::campaign(), replica, "fig1");
}

#[test]
fn fig2_script_matches_hand_built_grid() {
    let mut replica = Vec::new();
    for (_, env) in fig2::environments() {
        for nodes in 2..=16 {
            replica.push(
                Scenario::new(presets::cte_power(), workloads::artery_cfd_cte())
                    .execution(env)
                    .nodes(nodes)
                    .ranks_per_node(40),
            );
        }
    }
    assert_grid(&fig2::campaign(), replica, "fig2");
}

#[test]
fn fig3_script_matches_hand_built_grid() {
    let mut replica = Vec::new();
    for (_, env) in fig3::environments() {
        for &nodes in &fig3::NODES {
            replica.push(
                Scenario::new(presets::marenostrum4(), workloads::artery_fsi_mn4())
                    .execution(env)
                    .nodes(nodes)
                    .ranks_per_node(48),
            );
        }
    }
    assert_grid(&fig3::campaign(), replica, "fig3");
}

#[test]
fn ext_locality_script_matches_hand_built_grid() {
    let mut replica = Vec::new();
    for placement in [Placement::Block, Placement::RoundRobin] {
        for &nodes in &ext_locality::NODES {
            replica.push(
                Scenario::new(presets::marenostrum4(), ext_locality::ChainHaloCase)
                    .execution(Execution::bare_metal())
                    .nodes(nodes)
                    .ranks_per_node(48)
                    .placement(placement),
            );
        }
    }
    assert_grid(&ext_locality::campaign(), replica, "ext_locality");
}

#[test]
fn ext_degraded_script_matches_hand_built_grid() {
    let mut replica = Vec::new();
    for &factor in &ext_degraded::FACTORS {
        let base = Scenario::new(presets::cte_power(), workloads::artery_cfd_cte())
            .execution(Execution::singularity_system_specific())
            .nodes(16)
            .ranks_per_node(40);
        replica.push(if factor < 1.0 {
            base.degrade_node_uplink(ext_degraded::VICTIM, factor)
        } else {
            base
        });
    }
    assert_grid(&ext_degraded::campaign(), replica, "ext_degraded");
}

/// Every flag combination CI drives through `reproduce_all` has a
/// committed script that compiles to the same seeds, taper, and
/// experiment selection as the flag front end — and the shared fallback
/// taper yields identical fingerprints on every experiment grid.
#[test]
fn repro_scripts_match_the_flag_front_end() {
    let combos = [
        ("scripts/repro_full.hsim", false, None),
        ("scripts/repro_quick.hsim", true, None),
        ("scripts/repro_quick_ablate_taper.hsim", true, Some(1.0)),
        ("scripts/repro_oversub_2to1.hsim", false, Some(0.5)),
    ];
    for (path, quick, taper) in combos {
        let file = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join(path);
        let src = std::fs::read_to_string(&file).unwrap_or_else(|e| panic!("{path}: {e}"));
        let scripted = compile_str(&src).unwrap_or_else(|e| panic!("{path}: {e}"));
        let flagged = compile_str(&flags_script(quick, taper, 1)).unwrap();
        assert_eq!(scripted.seeds, flagged.seeds, "{path}: seeds");
        assert_eq!(scripted.taper, flagged.taper, "{path}: taper");
        assert_eq!(scripted.shards, flagged.shards, "{path}: shards");
        assert_eq!(scripted.taper, taper, "{path}: taper vs flags");
        assert!(
            matches!(scripted.experiments, Some(ExperimentsSpec::All)),
            "{path}: must select every experiment"
        );
        assert!(matches!(flagged.experiments, Some(ExperimentsSpec::All)));
        assert!(scripted.campaigns.is_empty(), "{path}: no extra campaigns");
        for campaign in [
            fig1::campaign(),
            fig2::campaign(),
            fig3::campaign(),
            ext_locality::campaign(),
            ext_degraded::campaign(),
        ] {
            for run in &campaign.runs {
                assert_eq!(
                    run.fingerprint(scripted.taper),
                    run.fingerprint(flagged.taper),
                    "{path}: {} fingerprints diverge under the shared taper",
                    campaign.name
                );
            }
        }
    }
}

/// The ablated and oversubscribed tapers genuinely re-key the plans —
/// the flag combos are distinct campaigns, not aliases of each other.
#[test]
fn distinct_tapers_rekey_the_experiment_grids() {
    let campaign = fig2::campaign();
    let base: Vec<u64> = campaign.runs.iter().map(|r| r.fingerprint(None)).collect();
    for taper in [Some(1.0), Some(0.5)] {
        let keyed: Vec<u64> = campaign.runs.iter().map(|r| r.fingerprint(taper)).collect();
        assert_ne!(base, keyed, "taper {taper:?} must change fabric plan keys");
    }
}
