//! A compiled scenario builds its route table exactly once, whichever
//! engine it selects, and executing any number of seeds builds no more:
//! routing is plan state, not per-run state.
//!
//! This lives in its own test binary so the process-wide construction
//! counter ([`harborsim::net::route_tables_built`]) sees no unrelated
//! tables.

use harborsim::des::trace::Recorder;
use harborsim::hw::presets;
use harborsim::net::route_tables_built;
use harborsim::study::runner::{default_seeds, sweep};
use harborsim::study::scenario::{EngineKind, Execution, Scenario};
use harborsim::study::workloads;

#[test]
fn one_route_table_per_plan_zero_per_execute() {
    let mk = |engine| {
        Scenario::new(presets::lenox(), workloads::artery_cfd_small())
            .execution(Execution::singularity_self_contained())
            .nodes(4)
            .ranks_per_node(14)
            .engine(engine)
    };

    for engine in [
        EngineKind::Analytic,
        EngineKind::Des {
            max_steps_per_kind: 3,
        },
    ] {
        let before = route_tables_built();
        let plan = mk(engine).compile().expect("compiles");
        assert_eq!(
            route_tables_built() - before,
            1,
            "{engine:?}: compile builds the table exactly once"
        );
        for seed in default_seeds() {
            assert!(
                plan.execute(*seed, &mut Recorder::off())
                    .elapsed
                    .as_secs_f64()
                    > 0.0
            );
        }
        assert_eq!(
            route_tables_built() - before,
            1,
            "{engine:?}: executing seeds must not rebuild routes"
        );
    }

    // and a multi-point multi-seed sweep builds one table per point
    let before = route_tables_built();
    let times = sweep(
        [2u32, 3, 4].map(|n| {
            move || {
                Scenario::new(presets::lenox(), workloads::artery_cfd_small())
                    .execution(Execution::singularity_self_contained())
                    .nodes(n)
                    .ranks_per_node(14)
            }
        }),
        default_seeds(),
    );
    assert_eq!(times.len(), 3);
    assert_eq!(
        route_tables_built() - before,
        3,
        "3 sweep points x 5 seeds must build exactly 3 route tables"
    );
}
