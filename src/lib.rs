//! # HarborSim
//!
//! A deterministic simulation laboratory for studying container technologies
//! (Docker, Singularity, Shifter) on High-Performance Computing systems.
//!
//! HarborSim is a from-scratch Rust reproduction of the study *"Containers in
//! HPC: A Scalability and Portability Study in Production Biological
//! Simulations"* (Rudyy et al., 2019). It models four real HPC clusters, their
//! interconnect fabrics, an MPI library with pluggable transports, and the
//! deployment and runtime behaviour of three container technologies; it drives
//! them with a miniature-but-numerically-honest version of the Alya artery
//! CFD and FSI use cases, and regenerates every figure and evaluation table of
//! the paper.
//!
//! This umbrella crate re-exports the individual subsystem crates:
//!
//! - [`des`] — discrete-event simulation kernel
//! - [`hw`] — hardware models and cluster presets
//! - [`net`] — interconnect fabrics, transports, topology
//! - [`mpi`] — simulated MPI engines and a functional thread-backed MPI
//! - [`container`] — images, registry, build engine, container runtimes
//! - [`alya`] — the mini-Alya CFD and FSI solvers and their workload models
//! - [`batch`] — batch-system substrate: FIFO + EASY-backfill scheduling and job campaigns
//! - [`study`] — the experiment harness regenerating the paper's results
//!
//! ## Quickstart
//!
//! ```
//! use harborsim::study::lab::{LabRequest, QueryEngine};
//! use harborsim::study::scenario::{Scenario, Execution};
//! use harborsim::study::workloads;
//! use harborsim::hw::presets;
//!
//! // Run the artery CFD case inside a Singularity container on a model of
//! // the MareNostrum4 supercomputer, using 2 nodes x 48 ranks. The lab
//! // compiles the scenario into a plan once (cached by fingerprint) and
//! // executes every seed across the work-stealing pool.
//! let lab = QueryEngine::new();
//! let scenario = Scenario::new(presets::marenostrum4(), workloads::artery_cfd_small())
//!     .execution(Execution::singularity_system_specific())
//!     .nodes(2)
//!     .ranks_per_node(48);
//! let mean_s = lab.handle(LabRequest::batch([scenario], &[42, 43])).means()[0];
//! assert!(mean_s > 0.0);
//! assert_eq!(lab.stats().misses, 1);
//! ```

pub use harborsim_alya as alya;
pub use harborsim_batch as batch;
pub use harborsim_container as container;
pub use harborsim_core as study;
pub use harborsim_des as des;
pub use harborsim_hw as hw;
pub use harborsim_mpi as mpi;
pub use harborsim_net as net;
