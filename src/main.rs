//! The `harborsim` command-line interface.
//!
//! ```text
//! harborsim list                          # clusters, workloads, runtimes
//! harborsim run --cluster cte-power --workload cfd-cte \
//!               --runtime singularity --containment self-contained \
//!               --nodes 8 --rpn 40 [--threads 1] [--seed 42] [--deploy] [--des]
//! harborsim reproduce [fig1|fig2|fig3|tables|ext-io|all]
//! ```
//!
//! Argument parsing is deliberately hand-rolled (no CLI dependency): the
//! interface is small and stable.

use harborsim::container::Containment;
use harborsim::container::RuntimeKind;
use harborsim::hw::presets;
use harborsim::hw::ClusterSpec;
use harborsim::study::experiments::{ext_io, fig1, fig2, fig3, tables};
use harborsim::study::report::fmt_seconds;
use harborsim::study::scenario::{EngineKind, Execution, Scenario};
use harborsim::study::workloads;
use std::collections::HashMap;
use std::process::exit;

fn usage() -> ! {
    eprintln!(
        "usage:\n  harborsim list\n  harborsim run --cluster <name> --workload <name> \
         [--runtime <bare|docker|singularity|shifter>] [--containment <self-contained|system-specific>] \
         [--nodes N] [--rpn N] [--threads N] [--seed N] [--deploy] [--des]\n  \
         harborsim reproduce [fig1|fig2|fig3|tables|ext-io|all]"
    );
    exit(2);
}

fn cluster_by_name(name: &str) -> Option<ClusterSpec> {
    match name {
        "lenox" => Some(presets::lenox()),
        "marenostrum4" | "mn4" => Some(presets::marenostrum4()),
        "cte-power" | "cte" => Some(presets::cte_power()),
        "thunderx" => Some(presets::thunderx()),
        _ => None,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => list(),
        Some("run") => run(&args[1..]),
        Some("reproduce") => reproduce(args.get(1).map(String::as_str).unwrap_or("all")),
        _ => usage(),
    }
}

fn list() {
    println!("clusters:");
    for c in presets::all() {
        println!(
            "  {:<14} {:>4} nodes x {:>2} cores  {:<16} [{}{}{}]",
            c.name.to_lowercase(),
            c.node_count,
            c.node.cores(),
            c.interconnect.to_string(),
            if c.software.docker.is_some() {
                "docker "
            } else {
                ""
            },
            if c.software.singularity.is_some() {
                "singularity "
            } else {
                ""
            },
            if c.software.shifter.is_some() {
                "shifter"
            } else {
                ""
            },
        );
    }
    println!("\nworkloads:");
    println!("  cfd-small   tiny artery CFD case (tests/demos)");
    println!("  cfd-lenox   the Fig. 1 CFD case");
    println!("  cfd-cte     the Fig. 2 CFD case");
    println!("  fsi-small   tiny coupled FSI case");
    println!("  fsi-mn4     the Fig. 3 FSI case (12,288 cores at full scale)");
    println!("\nruntimes: bare, docker, singularity, shifter");
    println!("containment: self-contained, system-specific");
}

fn parse_flags(args: &[String]) -> HashMap<String, String> {
    let mut out = HashMap::new();
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        let Some(key) = a.strip_prefix("--") else {
            eprintln!("unexpected argument {a:?}");
            usage();
        };
        let value = match it.peek() {
            Some(v) if !v.starts_with("--") => it.next().unwrap().clone(),
            _ => "true".to_string(), // boolean flag
        };
        out.insert(key.to_string(), value);
    }
    out
}

fn run(args: &[String]) {
    let flags = parse_flags(args);
    let get = |k: &str, default: &str| flags.get(k).cloned().unwrap_or_else(|| default.to_string());

    let cluster_name = get("cluster", "marenostrum4");
    let Some(cluster) = cluster_by_name(&cluster_name) else {
        eprintln!("unknown cluster {cluster_name:?} (try `harborsim list`)");
        exit(2);
    };
    let runtime = match get("runtime", "singularity").as_str() {
        "bare" | "bare-metal" => RuntimeKind::BareMetal,
        "docker" => RuntimeKind::Docker,
        "singularity" => RuntimeKind::Singularity,
        "shifter" => RuntimeKind::Shifter,
        other => {
            eprintln!("unknown runtime {other:?}");
            exit(2);
        }
    };
    let containment = match get("containment", "system-specific").as_str() {
        "self-contained" | "self" => Containment::SelfContained,
        "system-specific" | "system" => Containment::SystemSpecific,
        other => {
            eprintln!("unknown containment {other:?}");
            exit(2);
        }
    };
    let nodes: u32 = get("nodes", "2").parse().unwrap_or_else(|_| usage());
    let rpn: u32 = get("rpn", &cluster.node.cores().to_string())
        .parse()
        .unwrap_or_else(|_| usage());
    let threads: u32 = get("threads", "1").parse().unwrap_or_else(|_| usage());
    let seed: u64 = get("seed", "42").parse().unwrap_or_else(|_| usage());

    let mut scenario = match get("workload", "cfd-small").as_str() {
        "cfd-small" => Scenario::new(cluster, workloads::artery_cfd_small()),
        "cfd-lenox" => Scenario::new(cluster, workloads::artery_cfd_lenox()),
        "cfd-cte" => Scenario::new(cluster, workloads::artery_cfd_cte()),
        "fsi-small" => Scenario::new(cluster, workloads::artery_fsi_small()),
        "fsi-mn4" => Scenario::new(cluster, workloads::artery_fsi_mn4()),
        other => {
            eprintln!("unknown workload {other:?} (try `harborsim list`)");
            exit(2);
        }
    };
    scenario = scenario
        .execution(Execution {
            runtime,
            containment,
        })
        .nodes(nodes)
        .ranks_per_node(rpn)
        .threads_per_rank(threads);
    if flags.contains_key("des") {
        scenario = scenario.engine(EngineKind::Des {
            max_steps_per_kind: 5,
        });
    }
    if flags.contains_key("deploy") {
        scenario = scenario.with_deployment();
    }

    match scenario.try_run(seed) {
        Err(e) => {
            eprintln!("scenario rejected: {e}");
            exit(1);
        }
        Ok(outcome) => {
            println!(
                "{} | {} nodes x {} ranks x {} threads | engine={}",
                scenario.env.label(),
                nodes,
                rpn,
                threads,
                outcome.result.engine
            );
            if let Some(dep) = &outcome.deployment {
                println!(
                    "deployment: {} (gateway {}, {} pulled)",
                    fmt_seconds(dep.makespan.as_secs_f64()),
                    fmt_seconds(dep.gateway_seconds),
                    harborsim::study::report::fmt_bytes(dep.bytes_pulled)
                );
            }
            println!(
                "elapsed: {}  (compute {}, halo {}, allreduce {}, coupling {}, other {})",
                outcome.elapsed,
                outcome.result.compute,
                outcome.result.comm.halo,
                outcome.result.comm.allreduce,
                outcome.result.comm.pairs,
                outcome.result.comm.other,
            );
            println!(
                "traffic: {} inter-node msgs, {} intra-node msgs, {} over the fabric",
                outcome.result.inter_node_msgs,
                outcome.result.intra_node_msgs,
                harborsim::study::report::fmt_bytes(outcome.result.inter_node_bytes)
            );
        }
    }
}

fn reproduce(which: &str) {
    let seeds = harborsim::study::runner::default_seeds();
    // one lab for the whole subcommand: figures and tables that revisit a
    // configuration (e.g. the 2-node portability points) share its plans
    let lab = harborsim::study::lab::QueryEngine::new();
    let mut failures = Vec::new();
    let want = |name: &str| which == name || which == "all";
    let check = |name: &str, violations: Vec<String>, failures: &mut Vec<String>| {
        if violations.is_empty() {
            println!("[ok] {name}");
        } else {
            for v in &violations {
                println!("[!!] {name}: {v}");
            }
            failures.push(name.to_string());
        }
    };
    if want("fig1") {
        let f = fig1::run(&lab, seeds);
        println!("{}", f.to_ascii(72, 18));
        check("fig1", fig1::check_shape(&f), &mut failures);
    }
    if want("fig2") {
        let f = fig2::run(&lab, seeds);
        println!("{}", f.to_ascii(72, 18));
        check("fig2", fig2::check_shape(&f), &mut failures);
    }
    if want("fig3") {
        let f = fig3::run(&lab, seeds);
        println!("{}", f.to_ascii(72, 18));
        check("fig3", fig3::check_shape(&f), &mut failures);
    }
    if want("tables") {
        let d = tables::deployment(&lab, seeds);
        println!("{}", d.to_ascii());
        check(
            "table-deployment",
            tables::check_deployment_shape(&d),
            &mut failures,
        );
        let p = tables::portability(&lab, seeds);
        println!("{}", p.to_ascii());
        check(
            "table-portability",
            tables::check_portability_shape(&p),
            &mut failures,
        );
    }
    if want("ext-io") {
        let f = ext_io::run();
        println!("{}", f.to_ascii(72, 18));
        check("ext-io", ext_io::check_shape(&f), &mut failures);
    }
    if !failures.is_empty() {
        eprintln!("shape checks failed: {failures:?}");
        exit(1);
    }
}
