//! The study-level error type.
//!
//! [`HarborError`] is what [`Scenario::compile`](crate::scenario::Scenario::compile)
//! and everything above it returns: a closed set of the ways a scenario can
//! be unrunnable, wrapping the substrate errors ([`PlacementError`] from
//! `harborsim-hw`, [`BuildError`] from `harborsim-container`) without
//! flattening them to strings, so callers can match on the cause while
//! `Display` still renders the familiar one-line diagnostics.

use crate::script::ScriptError;
use harborsim_container::BuildError;
use harborsim_hw::PlacementError;
use std::error::Error;
use std::fmt;

/// Why a scenario cannot be compiled into a runnable plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HarborError {
    /// The placement does not fit the cluster.
    Placement(PlacementError),
    /// The requested container runtime is not installed on the cluster.
    RuntimeUnavailable {
        /// Runtime label ("Docker", "Singularity", ...).
        runtime: String,
        /// Cluster name.
        cluster: String,
    },
    /// Deployment was requested and the image build failed.
    Build(BuildError),
    /// A campaign script was rejected (lex, parse, or compile stage);
    /// the inner error carries the offending line and column.
    Script(ScriptError),
    /// An error reported by a remote lab daemon whose typed cause does
    /// not round-trip the wire structurally (placement and build errors
    /// travel as `kind` + rendered message; script and
    /// runtime-unavailable errors travel fully typed and never use
    /// this).
    Remote {
        /// The remote error's wire kind (`"placement"`, `"build"`, ...).
        kind: String,
        /// The remote error's rendered one-line diagnostic.
        msg: String,
    },
}

impl fmt::Display for HarborError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HarborError::Placement(e) => e.fmt(f),
            HarborError::RuntimeUnavailable { runtime, cluster } => {
                write!(f, "{runtime} is not installed on {cluster}")
            }
            HarborError::Build(e) => e.fmt(f),
            HarborError::Script(e) => e.fmt(f),
            HarborError::Remote { msg, .. } => f.write_str(msg),
        }
    }
}

impl Error for HarborError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            HarborError::Placement(e) => Some(e),
            HarborError::Build(e) => Some(e),
            HarborError::Script(e) => Some(e),
            HarborError::RuntimeUnavailable { .. } | HarborError::Remote { .. } => None,
        }
    }
}

impl From<PlacementError> for HarborError {
    fn from(e: PlacementError) -> HarborError {
        HarborError::Placement(e)
    }
}

impl From<BuildError> for HarborError {
    fn from(e: BuildError) -> HarborError {
        HarborError::Build(e)
    }
}

impl From<ScriptError> for HarborError {
    fn from(e: ScriptError) -> HarborError {
        HarborError::Script(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_match_the_legacy_strings() {
        let e = HarborError::RuntimeUnavailable {
            runtime: "Docker".into(),
            cluster: "MareNostrum4".into(),
        };
        assert_eq!(e.to_string(), "Docker is not installed on MareNostrum4");
        let e: HarborError = PlacementError::ZeroDimension.into();
        assert_eq!(e.to_string(), "placement dimensions must be positive");
        let e: HarborError = BuildError::UnknownBaseImage("a:1".into()).into();
        assert_eq!(e.to_string(), "unknown base image \"a:1\"");
    }

    #[test]
    fn sources_expose_the_cause() {
        let e: HarborError = PlacementError::ZeroDimension.into();
        assert!(e.source().unwrap().is::<PlacementError>());
        let e: HarborError = BuildError::UnknownBaseImage("a:1".into()).into();
        assert!(e.source().unwrap().is::<BuildError>());
        let e = HarborError::RuntimeUnavailable {
            runtime: "Docker".into(),
            cluster: "x".into(),
        };
        assert!(e.source().is_none());
    }
}
