//! Repetition, averaging, and parallel sweeps.
//!
//! The paper reports *average* elapsed times over repeated runs; the
//! runner reproduces that protocol: a scenario is executed once per seed
//! and summarized. Independent sweep points run in parallel with Rayon.

use crate::scenario::Scenario;
use harborsim_des::stats::Summary;
use rayon::prelude::*;

/// Default seeds — "five repetitions", as typical for the cluster runs.
pub fn default_seeds() -> Vec<u64> {
    vec![11, 22, 33, 44, 55]
}

/// Average elapsed seconds of a scenario over the given seeds.
pub fn mean_elapsed_s(scenario: &Scenario, seeds: &[u64]) -> f64 {
    summarize_elapsed(scenario, seeds).mean()
}

/// Full summary (mean/min/max/σ) of elapsed seconds over seeds.
pub fn summarize_elapsed(scenario: &Scenario, seeds: &[u64]) -> Summary {
    let mut s = Summary::new();
    for &seed in seeds {
        s.record(scenario.run(seed).elapsed.as_secs_f64());
    }
    s
}

/// Run a set of independent scenario constructors in parallel and collect
/// their mean elapsed times, preserving order.
pub fn sweep<F>(points: Vec<F>, seeds: &[u64]) -> Vec<f64>
where
    F: Fn() -> Scenario + Send + Sync,
{
    points
        .par_iter()
        .map(|mk| mean_elapsed_s(&mk(), seeds))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Execution;
    use crate::workloads;
    use harborsim_hw::presets;

    fn scenario() -> Scenario {
        Scenario::new(presets::lenox(), workloads::artery_cfd_small())
            .execution(Execution::singularity_self_contained())
            .nodes(2)
            .ranks_per_node(14)
    }

    #[test]
    fn averaging_is_tight() {
        let s = summarize_elapsed(&scenario(), &default_seeds());
        assert_eq!(s.count(), 5);
        assert!(s.mean() > 0.0);
        // run-to-run jitter is small by design
        assert!(s.relative_spread() < 0.1, "spread {}", s.relative_spread());
    }

    #[test]
    fn sweep_preserves_order_and_parallelizes() {
        // a compute-heavy case so strong scaling is unambiguous on 1GbE
        let heavy = || {
            harborsim_alya::workload::ArteryCfd {
                label: "sweep-probe".into(),
                active_cells: 5.0e6,
                timesteps: 3,
                cg_iters: 10,
            }
        };
        // InfiniBand machine: communication cannot mask the scaling
        let mk = move |nodes: u32| {
            Scenario::new(harborsim_hw::presets::cte_power(), heavy())
                .execution(Execution::singularity_self_contained())
                .nodes(nodes)
                .ranks_per_node(14)
        };
        let mks: Vec<Box<dyn Fn() -> Scenario + Send + Sync>> = vec![
            Box::new(move || mk(1)),
            Box::new(move || mk(2)),
            Box::new(move || mk(4)),
        ];
        let times = sweep(mks, &[1, 2]);
        assert_eq!(times.len(), 3);
        // strong scaling: more nodes, less time (compute dominates here)
        assert!(times[0] > times[1] && times[1] > times[2], "{times:?}");
    }

    #[test]
    fn same_seeds_same_mean() {
        let a = mean_elapsed_s(&scenario(), &[9, 8, 7]);
        let b = mean_elapsed_s(&scenario(), &[9, 8, 7]);
        assert_eq!(a, b);
    }
}
