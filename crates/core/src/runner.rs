//! Repetition, averaging, and parallel sweeps.
//!
//! The paper reports *average* elapsed times over repeated runs; the
//! runner reproduces that protocol on top of the compile-once API: each
//! scenario is compiled into a [`ScenarioPlan`] exactly once, then the
//! plan executes every seed — validation, job-profile construction and
//! (for deployment scenarios) the image build are never repeated per
//! seed. Sweeps route through the [`QueryEngine`],
//! so identical points dedup to one compile and the (plan, seed) grid
//! shards across the work-stealing pool.

use crate::lab::{LabRequest, QueryEngine};
use crate::scenario::{Scenario, ScenarioPlan};
use harborsim_des::stats::Summary;
use harborsim_des::trace::Recorder;

/// Default seeds — "five repetitions", as typical for the cluster runs.
pub fn default_seeds() -> &'static [u64] {
    &[11, 22, 33, 44, 55]
}

/// Average elapsed seconds of a scenario over the given seeds.
pub fn mean_elapsed_s(scenario: &Scenario, seeds: &[u64]) -> f64 {
    summarize_elapsed(scenario, seeds).mean()
}

/// Full summary (mean/min/max/σ) of elapsed seconds over seeds. The
/// scenario is compiled once; each seed only executes the plan.
pub fn summarize_elapsed(scenario: &Scenario, seeds: &[u64]) -> Summary {
    let plan = match scenario.compile() {
        Ok(plan) => plan,
        Err(e) => panic!("scenario configuration: {e}"),
    };
    summarize_plan(&plan, seeds)
}

/// Summary of elapsed seconds of an already-compiled plan over seeds.
pub fn summarize_plan(plan: &ScenarioPlan, seeds: &[u64]) -> Summary {
    let mut s = Summary::new();
    for &seed in seeds {
        s.record(
            plan.execute(seed, &mut Recorder::off())
                .elapsed
                .as_secs_f64(),
        );
    }
    s
}

/// Run a set of independent scenario constructors through a fresh
/// [`QueryEngine`] and collect their mean elapsed times, preserving
/// order. Accepts any iterable of closures — a `Vec`, an array,
/// `iter::map` output — without boxing. Identical points share one
/// compiled plan; use [`sweep_with`] to also share the cache with other
/// sweeps.
pub fn sweep<C, F>(points: C, seeds: &[u64]) -> Vec<f64>
where
    C: IntoIterator<Item = F>,
    F: Fn() -> Scenario + Send + Sync,
{
    sweep_with(&QueryEngine::new(), points, seeds)
}

/// [`sweep`] against a caller-owned engine, so consecutive sweeps hit
/// each other's cached plans.
pub fn sweep_with<C, F>(lab: &QueryEngine, points: C, seeds: &[u64]) -> Vec<f64>
where
    C: IntoIterator<Item = F>,
    F: Fn() -> Scenario + Send + Sync,
{
    lab.handle(LabRequest::batch(points.into_iter().map(|mk| mk()), seeds))
        .means()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Execution;
    use crate::workloads;
    use harborsim_hw::presets;

    fn scenario() -> Scenario {
        Scenario::new(presets::lenox(), workloads::artery_cfd_small())
            .execution(Execution::singularity_self_contained())
            .nodes(2)
            .ranks_per_node(14)
    }

    #[test]
    fn averaging_is_tight() {
        let s = summarize_elapsed(&scenario(), default_seeds());
        assert_eq!(s.count(), 5);
        assert!(s.mean() > 0.0);
        // run-to-run jitter is small by design
        assert!(s.relative_spread() < 0.1, "spread {}", s.relative_spread());
    }

    #[test]
    fn sweep_preserves_order_and_parallelizes() {
        // a compute-heavy case so strong scaling is unambiguous on 1GbE
        let heavy = || harborsim_alya::workload::ArteryCfd {
            label: "sweep-probe".into(),
            active_cells: 5.0e6,
            timesteps: 3,
            cg_iters: 10,
        };
        // InfiniBand machine: communication cannot mask the scaling
        let mk = move |nodes: u32| {
            Scenario::new(harborsim_hw::presets::cte_power(), heavy())
                .execution(Execution::singularity_self_contained())
                .nodes(nodes)
                .ranks_per_node(14)
        };
        // an unboxed array of distinct-but-unifiable closures via map
        let times = sweep([1u32, 2, 4].map(|n| move || mk(n)), &[1, 2]);
        assert_eq!(times.len(), 3);
        // strong scaling: more nodes, less time (compute dominates here)
        assert!(times[0] > times[1] && times[1] > times[2], "{times:?}");
    }

    #[test]
    fn sweep_accepts_boxed_closures_too() {
        let mks: Vec<Box<dyn Fn() -> Scenario + Send + Sync>> =
            vec![Box::new(scenario), Box::new(|| scenario().nodes(4))];
        let times = sweep(mks, &[3]);
        assert_eq!(times.len(), 2);
        assert!(times.iter().all(|t| *t > 0.0));
    }

    #[test]
    fn same_seeds_same_mean() {
        let a = mean_elapsed_s(&scenario(), &[9, 8, 7]);
        let b = mean_elapsed_s(&scenario(), &[9, 8, 7]);
        assert_eq!(a, b);
    }

    #[test]
    fn sweep_matches_one_off_runs() {
        let direct = mean_elapsed_s(&scenario(), &[5, 6]);
        let swept = sweep([scenario], &[5, 6]);
        assert_eq!(swept, vec![direct]);
    }

    #[test]
    fn sweep_with_shares_the_cache_across_sweeps() {
        let lab = QueryEngine::new();
        let a = sweep_with(&lab, [scenario], &[1]);
        let b = sweep_with(&lab, [scenario], &[1]);
        assert_eq!(a, b);
        let stats = lab.stats();
        assert!(stats.hits >= 1, "second sweep should hit: {stats:?}");
    }

    #[test]
    fn plan_reuse_matches_per_seed_compiles() {
        let sc = scenario();
        let plan = sc.compile().unwrap();
        let via_plan = summarize_plan(&plan, default_seeds());
        let via_scenario = summarize_elapsed(&sc, default_seeds());
        assert_eq!(via_plan.mean(), via_scenario.mean());
        assert_eq!(via_plan.min(), via_scenario.min());
        assert_eq!(via_plan.max(), via_scenario.max());
    }
}
