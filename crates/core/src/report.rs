//! Report generation: figure/table data structures, aligned ASCII tables,
//! ASCII line charts, CSV and SVG writers.
//!
//! Everything is dependency-free and deterministic: the same data renders
//! to byte-identical artifacts, which lets EXPERIMENTS.md pin outputs.

use std::fmt::Write as _;

/// One plotted series.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// `(x, y)` points in x order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Build from an iterator of points.
    pub fn new(label: &str, points: Vec<(f64, f64)>) -> Series {
        Series {
            label: label.to_string(),
            points,
        }
    }

    /// y value at the given x, if sampled.
    pub fn y_at(&self, x: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|(px, _)| (px - x).abs() < 1e-9)
            .map(|(_, y)| *y)
    }
}

/// A figure: several series over a shared axis.
#[derive(Debug, Clone, PartialEq)]
pub struct FigureData {
    /// Identifier ("fig1").
    pub id: String,
    /// Title as in the paper.
    pub title: String,
    /// x-axis label.
    pub x_label: String,
    /// y-axis label.
    pub y_label: String,
    /// The series.
    pub series: Vec<Series>,
}

impl FigureData {
    /// The series with the given label.
    pub fn series_named(&self, label: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.label == label)
    }

    /// CSV rendering: `x,label1,label2,...` header then one row per x.
    pub fn to_csv(&self) -> String {
        let mut xs: Vec<f64> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|(x, _)| *x))
            .collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        xs.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
        let mut out = String::new();
        out.push_str(&self.x_label.replace(',', ";"));
        for s in &self.series {
            out.push(',');
            out.push_str(&s.label.replace(',', ";"));
        }
        out.push('\n');
        for x in xs {
            let _ = write!(out, "{x}");
            for s in &self.series {
                match s.y_at(x) {
                    Some(y) => {
                        let _ = write!(out, ",{y:.6}");
                    }
                    None => out.push(','),
                }
            }
            out.push('\n');
        }
        out
    }

    /// An ASCII chart (width×height characters), one glyph per series.
    pub fn to_ascii(&self, width: usize, height: usize) -> String {
        let glyphs = ['*', 'o', '+', 'x', '#', '@'];
        let all: Vec<(f64, f64)> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().copied())
            .collect();
        if all.is_empty() {
            return format!("{} (no data)\n", self.title);
        }
        let (mut x0, mut x1, mut y0, mut y1) =
            (f64::INFINITY, f64::NEG_INFINITY, 0.0_f64, f64::NEG_INFINITY);
        for &(x, y) in &all {
            x0 = x0.min(x);
            x1 = x1.max(x);
            y0 = y0.min(y);
            y1 = y1.max(y);
        }
        if (x1 - x0).abs() < 1e-12 {
            x1 = x0 + 1.0;
        }
        if (y1 - y0).abs() < 1e-12 {
            y1 = y0 + 1.0;
        }
        let mut grid = vec![vec![' '; width]; height];
        for (si, s) in self.series.iter().enumerate() {
            let g = glyphs[si % glyphs.len()];
            for &(x, y) in &s.points {
                let cx = ((x - x0) / (x1 - x0) * (width - 1) as f64).round() as usize;
                let cy = ((y - y0) / (y1 - y0) * (height - 1) as f64).round() as usize;
                let row = height - 1 - cy.min(height - 1);
                grid[row][cx.min(width - 1)] = g;
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "{} — {}", self.id, self.title);
        let _ = writeln!(out, "{} [{:.3} .. {:.3}]", self.y_label, y0, y1);
        for row in grid {
            out.push('|');
            out.extend(row);
            out.push('\n');
        }
        out.push('+');
        out.extend(std::iter::repeat_n('-', width));
        out.push('\n');
        let _ = writeln!(out, " {} [{:.3} .. {:.3}]", self.x_label, x0, x1);
        for (si, s) in self.series.iter().enumerate() {
            let _ = writeln!(out, "  {} {}", glyphs[si % glyphs.len()], s.label);
        }
        out
    }

    /// A minimal standalone SVG line chart.
    pub fn to_svg(&self, width: u32, height: u32) -> String {
        let colors = ["#0a6", "#d33", "#36c", "#e90", "#936", "#333"];
        let (w, h) = (width as f64, height as f64);
        let (ml, mr, mt, mb) = (60.0, 20.0, 40.0, 50.0);
        let all: Vec<(f64, f64)> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().copied())
            .collect();
        let (mut x0, mut x1, mut y0, mut y1) =
            (f64::INFINITY, f64::NEG_INFINITY, 0.0_f64, f64::NEG_INFINITY);
        for &(x, y) in &all {
            x0 = x0.min(x);
            x1 = x1.max(x);
            y0 = y0.min(y);
            y1 = y1.max(y);
        }
        if all.is_empty() {
            x0 = 0.0;
            x1 = 1.0;
            y1 = 1.0;
        }
        if (x1 - x0).abs() < 1e-12 {
            x1 = x0 + 1.0;
        }
        if (y1 - y0).abs() < 1e-12 {
            y1 = y0 + 1.0;
        }
        let px = |x: f64| ml + (x - x0) / (x1 - x0) * (w - ml - mr);
        let py = |y: f64| h - mb - (y - y0) / (y1 - y0) * (h - mt - mb);
        let mut svg = String::new();
        let _ = write!(
            svg,
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{width}" height="{height}" viewBox="0 0 {width} {height}">"#
        );
        let _ = write!(
            svg,
            r#"<rect width="{width}" height="{height}" fill="white"/>"#
        );
        let _ = write!(
            svg,
            r#"<text x="{}" y="24" font-family="sans-serif" font-size="16" text-anchor="middle">{}</text>"#,
            w / 2.0,
            xml_escape(&self.title)
        );
        // axes
        let _ = write!(
            svg,
            r#"<line x1="{ml}" y1="{}" x2="{}" y2="{}" stroke="black"/>"#,
            h - mb,
            w - mr,
            h - mb
        );
        let _ = write!(
            svg,
            r#"<line x1="{ml}" y1="{mt}" x2="{ml}" y2="{}" stroke="black"/>"#,
            h - mb
        );
        let _ = write!(
            svg,
            r#"<text x="{}" y="{}" font-family="sans-serif" font-size="12" text-anchor="middle">{}</text>"#,
            w / 2.0,
            h - 12.0,
            xml_escape(&self.x_label)
        );
        let _ = write!(
            svg,
            r#"<text x="16" y="{}" font-family="sans-serif" font-size="12" text-anchor="middle" transform="rotate(-90 16 {})">{}</text>"#,
            h / 2.0,
            h / 2.0,
            xml_escape(&self.y_label)
        );
        // axis extreme ticks
        for (x, anchor) in [(x0, "start"), (x1, "end")] {
            let _ = write!(
                svg,
                r#"<text x="{}" y="{}" font-family="sans-serif" font-size="10" text-anchor="{anchor}">{x:.0}</text>"#,
                px(x),
                h - mb + 16.0
            );
        }
        for y in [y0, y1] {
            let _ = write!(
                svg,
                r#"<text x="{}" y="{}" font-family="sans-serif" font-size="10" text-anchor="end">{y:.1}</text>"#,
                ml - 6.0,
                py(y) + 4.0
            );
        }
        for (si, s) in self.series.iter().enumerate() {
            let color = colors[si % colors.len()];
            let path: Vec<String> = s
                .points
                .iter()
                .map(|&(x, y)| format!("{:.1},{:.1}", px(x), py(y)))
                .collect();
            if path.len() > 1 {
                let _ = write!(
                    svg,
                    r#"<polyline points="{}" fill="none" stroke="{color}" stroke-width="2"/>"#,
                    path.join(" ")
                );
            }
            for &(x, y) in &s.points {
                let _ = write!(
                    svg,
                    r#"<circle cx="{:.1}" cy="{:.1}" r="3" fill="{color}"/>"#,
                    px(x),
                    py(y)
                );
            }
            // legend
            let ly = mt + 16.0 * si as f64;
            let _ = write!(
                svg,
                r#"<rect x="{}" y="{}" width="10" height="10" fill="{color}"/>"#,
                ml + 10.0,
                ly
            );
            let _ = write!(
                svg,
                r#"<text x="{}" y="{}" font-family="sans-serif" font-size="11">{}</text>"#,
                ml + 25.0,
                ly + 9.0,
                xml_escape(&s.label)
            );
        }
        svg.push_str("</svg>");
        svg
    }
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

/// Escape a string for embedding in a JSON document.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Render a float as a JSON number (`null` for non-finite values).
pub(crate) fn json_num(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

impl FigureData {
    /// Machine-readable JSON rendering (used by `summary.json`).
    pub fn to_json(&self) -> String {
        let series: Vec<String> = self
            .series
            .iter()
            .map(|s| {
                let pts: Vec<String> = s
                    .points
                    .iter()
                    .map(|&(x, y)| format!("[{},{}]", json_num(x), json_num(y)))
                    .collect();
                format!(
                    r#"{{"label":"{}","points":[{}]}}"#,
                    json_escape(&s.label),
                    pts.join(",")
                )
            })
            .collect();
        format!(
            r#"{{"id":"{}","title":"{}","x_label":"{}","y_label":"{}","series":[{}]}}"#,
            json_escape(&self.id),
            json_escape(&self.title),
            json_escape(&self.x_label),
            json_escape(&self.y_label),
            series.join(",")
        )
    }
}

/// A table: headers plus string rows.
#[derive(Debug, Clone, PartialEq)]
pub struct TableData {
    /// Identifier ("table-deployment").
    pub id: String,
    /// Title.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows.
    pub rows: Vec<Vec<String>>,
}

impl TableData {
    /// Aligned ASCII rendering.
    pub fn to_ascii(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(ncols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let sep = |out: &mut String| {
            for w in &widths {
                out.push('+');
                out.extend(std::iter::repeat_n('-', w + 2));
            }
            out.push_str("+\n");
        };
        let mut out = format!("{} — {}\n", self.id, self.title);
        sep(&mut out);
        for (i, hdr) in self.headers.iter().enumerate() {
            let _ = write!(out, "| {hdr:w$} ", w = widths[i]);
        }
        out.push_str("|\n");
        sep(&mut out);
        for row in &self.rows {
            for (i, w) in widths.iter().enumerate().take(ncols) {
                let cell = row.get(i).map(String::as_str).unwrap_or("");
                let _ = write!(out, "| {cell:w$} ", w = w);
            }
            out.push_str("|\n");
        }
        sep(&mut out);
        out
    }

    /// CSV rendering.
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| s.replace(',', ";");
        let mut out = self
            .headers
            .iter()
            .map(|h| esc(h))
            .collect::<Vec<_>>()
            .join(",");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Machine-readable JSON rendering (used by `summary.json`).
    pub fn to_json(&self) -> String {
        let strings = |items: &[String]| {
            items
                .iter()
                .map(|s| format!("\"{}\"", json_escape(s)))
                .collect::<Vec<_>>()
                .join(",")
        };
        let rows: Vec<String> = self
            .rows
            .iter()
            .map(|r| format!("[{}]", strings(r)))
            .collect();
        format!(
            r#"{{"id":"{}","title":"{}","headers":[{}],"rows":[{}]}}"#,
            json_escape(&self.id),
            json_escape(&self.title),
            strings(&self.headers),
            rows.join(",")
        )
    }
}

/// Format seconds compactly for tables.
pub fn fmt_seconds(s: f64) -> String {
    if s < 1.0 {
        format!("{:.0} ms", s * 1e3)
    } else if s < 120.0 {
        format!("{s:.1} s")
    } else {
        format!("{:.1} min", s / 60.0)
    }
}

/// Format bytes compactly for tables.
pub fn fmt_bytes(b: u64) -> String {
    let bf = b as f64;
    if bf >= 1e9 {
        format!("{:.2} GB", bf / 1e9)
    } else if bf >= 1e6 {
        format!("{:.0} MB", bf / 1e6)
    } else if bf >= 1e3 {
        format!("{:.0} KB", bf / 1e3)
    } else {
        format!("{b} B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig() -> FigureData {
        FigureData {
            id: "figT".into(),
            title: "test".into(),
            x_label: "Nodes".into(),
            y_label: "Time [s]".into(),
            series: vec![
                Series::new("a", vec![(1.0, 10.0), (2.0, 5.0), (4.0, 2.5)]),
                Series::new("b", vec![(1.0, 12.0), (2.0, 8.0)]),
            ],
        }
    }

    #[test]
    fn csv_has_header_and_gaps() {
        let csv = fig().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "Nodes,a,b");
        assert_eq!(lines.len(), 4);
        assert!(
            lines[3].ends_with(','),
            "series b missing at x=4: {}",
            lines[3]
        );
    }

    #[test]
    fn ascii_chart_contains_series_glyphs_and_legend() {
        let s = fig().to_ascii(40, 10);
        assert!(s.contains('*'));
        assert!(s.contains('o'));
        assert!(s.contains("a\n") || s.contains("* a"));
        assert!(s.contains("Nodes"));
    }

    #[test]
    fn svg_well_formed() {
        let svg = fig().to_svg(640, 400);
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert_eq!(svg.matches("<polyline").count(), 2);
        assert_eq!(svg.matches("<circle").count(), 5);
    }

    #[test]
    fn table_alignment() {
        let t = TableData {
            id: "t".into(),
            title: "x".into(),
            headers: vec!["Runtime".into(), "Size".into()],
            rows: vec![
                vec!["Docker".into(), "412 MB".into()],
                vec!["Singularity".into(), "451 MB".into()],
            ],
        };
        let a = t.to_ascii();
        // every rendered line between separators has equal width
        let widths: Vec<usize> = a.lines().skip(1).map(str::len).collect();
        assert!(widths.windows(2).all(|w| w[0] == w[1]), "{a}");
        let csv = t.to_csv();
        assert!(csv.starts_with("Runtime,Size\n"));
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_seconds(0.5), "500 ms");
        assert_eq!(fmt_seconds(12.34), "12.3 s");
        assert_eq!(fmt_seconds(300.0), "5.0 min");
        assert_eq!(fmt_bytes(999), "999 B");
        assert_eq!(fmt_bytes(450_000_000), "450 MB");
        assert_eq!(fmt_bytes(2_300_000_000), "2.30 GB");
    }

    #[test]
    fn json_renderings_are_well_formed() {
        let j = fig().to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains(r#""id":"figT""#));
        assert!(j.contains("[1,10]"));
        let t = TableData {
            id: "t".into(),
            title: "quo\"ted".into(),
            headers: vec!["a".into()],
            rows: vec![vec!["b,c".into()]],
        };
        let j = t.to_json();
        assert!(j.contains(r#""title":"quo\"ted""#));
        assert!(j.contains(r#"[["b,c"]]"#));
    }

    #[test]
    fn series_lookup() {
        let f = fig();
        assert_eq!(f.series_named("a").unwrap().y_at(2.0), Some(5.0));
        assert_eq!(f.series_named("a").unwrap().y_at(3.0), None);
        assert!(f.series_named("zzz").is_none());
    }
}
