//! Open-system campaigns: Poisson arrivals, a Zipf-weighted job mix, and
//! deployment storms, on top of the compiled-plan lab.
//!
//! A closed scenario answers "how long does this job take"; an open
//! campaign answers what a *user* experiences on a shared machine: N
//! tenants submit a heavy-tailed mix of Alya jobs (size, case, and
//! container runtime each Zipf-weighted over a small menu) for a fixed
//! simulated horizon, and every job queues, stages its image against
//! co-arriving jobs, then solves. The pieces:
//!
//! - [`OpenSpec`] / [`MixSpec`] — the sampled-campaign description a
//!   [`Scenario`] carries (see [`Scenario::open_campaign`] and the
//!   `.hsim` directives `arrivals`, `mix`, `tenants`, `horizon`);
//! - [`class_table`] — the cross product of the mixes, each class a
//!   plain closed scenario resolved through the lab (so N seeds × M
//!   classes share compiled plans, and solver times inherit the sharded
//!   DES's bit-identical guarantee);
//! - [`run_open_campaign`] — sample the arrival stream, price each job's
//!   staging demand ([`StagePlan`]), drive `harborsim_batch::open`, and
//!   fold per-job samples into per-runtime [`QuantileSketch`]es.
//!
//! Determinism: the sampler is a splitmix-derived [`RngStream`], the
//! open engine is a serial DES, and each class's solver time is a lab
//! outcome — so the whole report is bit-identical for a given (scenario,
//! seed) at *any* DES shard count, which the differential tests pin.

use crate::dist::{Poisson, Zipf};
use crate::error::HarborError;
use crate::lab::{Query, QueryEngine};
use crate::scenario::{shared_alya_image, Execution, Scenario};
use crate::sketch::QuantileSketch;
use crate::workloads;
use harborsim_batch::open::{run_open, OpenCluster, OpenJob};
use harborsim_container::runtime::RuntimeKind;
use harborsim_container::StagePlan;
use harborsim_des::trace::Recorder;
use harborsim_des::RngStream;
use std::collections::HashSet;

/// Registry uplink capacity every open campaign assumes, bytes/s — the
/// same 117 MB/s convention the deployment pipeline uses.
pub const REGISTRY_UPLINK_BPS: f64 = 117e6;

/// A run's solver time is "short" below this many seconds for
/// bounded-slowdown purposes (the standard BSLD threshold keeps tiny
/// jobs from dominating the tail).
pub const SLOWDOWN_FLOOR_S: f64 = 10.0;

/// One Zipf-weighted menu: rank k (0-based) gets weight `1/(k+1)^s`.
#[derive(Debug, Clone, PartialEq)]
pub struct MixSpec<T> {
    /// Zipf exponent (1.0 = classic, larger = more head-heavy).
    pub s: f64,
    /// The menu, most-popular first.
    pub values: Vec<T>,
}

impl<T> MixSpec<T> {
    /// A degenerate mix: every job draws `value`.
    pub fn single(value: T) -> MixSpec<T> {
        MixSpec {
            s: 1.0,
            values: vec![value],
        }
    }
}

/// The sampled-campaign description a [`Scenario`] may carry.
#[derive(Debug, Clone, PartialEq)]
pub struct OpenSpec {
    /// Poisson arrival rate, jobs per simulated second (all tenants
    /// combined).
    pub rate_per_s: f64,
    /// Submission horizon in seconds (jobs arriving later are not
    /// sampled; the simulation runs past the horizon until they drain).
    pub horizon_s: f64,
    /// Number of submitting tenants; each job picks one uniformly, and
    /// image warmth (layer caches, converted UDIs) is per tenant ×
    /// runtime.
    pub tenants: u32,
    /// Job size menu (node counts).
    pub node_mix: MixSpec<u32>,
    /// Workload menu (registry names: `cfd-small`, `fsi-mn4`, ...).
    pub workload_mix: MixSpec<String>,
    /// Runtime menu.
    pub env_mix: MixSpec<Execution>,
}

/// One job class of an open campaign: a point of the size × case ×
/// runtime cross product, as a plain closed scenario.
pub struct OpenClass {
    /// Human label ("cfd-small ×2 Docker").
    pub label: String,
    /// Node count of this class.
    pub nodes: u32,
    /// Runtime + containment of this class.
    pub env: Execution,
    /// The closed scenario whose elapsed time is this class's solver
    /// time.
    pub scenario: Scenario,
}

/// Per-runtime tail statistics of one (or several merged) open runs.
#[derive(Debug, Clone, PartialEq)]
pub struct RuntimeOpenStats {
    /// The runtime.
    pub runtime: RuntimeKind,
    /// Jobs completed under it.
    pub jobs: u64,
    /// Cold image stages (first submission per tenant × runtime).
    pub cold_pulls: u64,
    /// Queue-wait seconds per job.
    pub wait: QuantileSketch,
    /// Bounded slowdown per job: `max(1, turnaround / max(run, 10 s))`.
    pub slowdown: QuantileSketch,
    /// Staging seconds per job (contended pulls + fixed latency).
    pub stage: QuantileSketch,
}

impl RuntimeOpenStats {
    fn empty(runtime: RuntimeKind) -> RuntimeOpenStats {
        RuntimeOpenStats {
            runtime,
            jobs: 0,
            cold_pulls: 0,
            wait: QuantileSketch::new(),
            slowdown: QuantileSketch::new(),
            stage: QuantileSketch::new(),
        }
    }

    /// Fold another run's stats for the same runtime in (sketches merge
    /// losslessly).
    ///
    /// # Panics
    /// Panics when the runtimes differ.
    pub fn merge(&mut self, other: &RuntimeOpenStats) {
        assert_eq!(self.runtime, other.runtime, "merging different runtimes");
        self.jobs += other.jobs;
        self.cold_pulls += other.cold_pulls;
        self.wait.merge(&other.wait);
        self.slowdown.merge(&other.slowdown);
        self.stage.merge(&other.stage);
    }
}

/// What one open-campaign run reports.
#[derive(Debug, Clone, PartialEq)]
pub struct OpenReport {
    /// Jobs sampled (and completed — the machine always drains).
    pub jobs: u64,
    /// Last completion, seconds.
    pub makespan_s: f64,
    /// Mean node utilization over the makespan.
    pub utilization: f64,
    /// Share of delivered node-seconds that went to backfilled jobs —
    /// the EASY-backfill efficiency under this mix.
    pub backfill_node_share: f64,
    /// Discrete events processed.
    pub events: u64,
    /// Deepest simultaneous registry-pull storm.
    pub peak_registry_flows: usize,
    /// Deepest simultaneous parallel-filesystem storm.
    pub peak_pfs_flows: usize,
    /// Per-runtime tails, in env-mix menu order.
    pub per_runtime: Vec<RuntimeOpenStats>,
}

/// Expand a scenario's [`OpenSpec`] into its class cross product (node
/// menu outermost, then workload, then runtime — a job's `class` index
/// is `(ni * W + wi) * E + ei`).
///
/// The cluster is taken as-is except that every runtime on the menu is
/// *pretended installed* (version "modelled") — the study's what-if
/// framing, same as the campaign experiments. Class scenarios inherit
/// the base scenario's engine, shards, placement, taper, and rank shape;
/// deployment is always off (staging is the open engine's job), and
/// degraded uplinks outside a class's node count are dropped.
///
/// # Panics
/// Panics if the scenario has no open spec or a workload name is not in
/// the registry (script compilation validates both).
pub fn class_table(base: &Scenario) -> Vec<OpenClass> {
    let spec = base
        .open
        .as_ref()
        .expect("class_table needs a scenario with an open-campaign spec");
    let mut cluster = base.cluster.clone();
    for env in &spec.env_mix.values {
        let slot = match env.runtime {
            RuntimeKind::BareMetal => None,
            RuntimeKind::Docker => Some(&mut cluster.software.docker),
            RuntimeKind::Singularity => Some(&mut cluster.software.singularity),
            RuntimeKind::Shifter => Some(&mut cluster.software.shifter),
        };
        if let Some(slot) = slot {
            if slot.is_none() {
                *slot = Some("modelled".into());
            }
        }
    }
    let mut classes = Vec::new();
    for &nodes in &spec.node_mix.values {
        for workload in &spec.workload_mix.values {
            for &env in &spec.env_mix.values {
                let case = workloads::by_name(workload)
                    .unwrap_or_else(|| panic!("unknown workload `{workload}` in an open mix"));
                classes.push(OpenClass {
                    label: format!("{workload} \u{d7}{nodes} {}", env.label()),
                    nodes,
                    env,
                    scenario: Scenario {
                        cluster: cluster.clone(),
                        case,
                        env,
                        nodes,
                        ranks_per_node: base.ranks_per_node,
                        threads_per_rank: base.threads_per_rank,
                        engine: base.engine,
                        deploy: false,
                        placement: base.placement,
                        spine_taper: base.spine_taper,
                        degraded_uplinks: base
                            .degraded_uplinks
                            .iter()
                            .copied()
                            .filter(|&(node, _)| node < nodes)
                            .collect(),
                        shards: base.shards,
                        open: None,
                    },
                });
            }
        }
    }
    classes
}

/// Run one open campaign: resolve every class's solver time through the
/// lab (shared plans, bit-identical under sharded DES), sample the
/// arrival stream from `seed`, and drive the open scheduler. Spans flow
/// through `rec` on per-job tracks.
///
/// # Errors
/// Any class scenario that fails to compile (placement, runtime
/// availability, image build) surfaces here.
///
/// # Panics
/// Panics if the scenario has no open spec.
pub fn run_open_campaign(
    lab: &QueryEngine,
    scenario: &Scenario,
    seed: u64,
    rec: &mut Recorder,
) -> Result<OpenReport, HarborError> {
    let spec = scenario
        .open
        .clone()
        .expect("run_open_campaign needs a scenario with an open-campaign spec");
    let classes = class_table(scenario);
    let n_env = spec.env_mix.values.len();
    // one lab batch resolves every class's solver time for this seed
    let queries: Vec<Query> = classes
        .into_iter()
        .map(|c| Query::new(c.scenario, &[seed]))
        .collect();
    let mut solver_s = Vec::with_capacity(queries.len());
    for result in lab.run_batch(queries, &mut Recorder::off()) {
        solver_s.push(result?[0].elapsed.as_secs_f64());
    }
    let image = shared_alya_image(&scenario.cluster.node.cpu)?;
    let registry_bps = REGISTRY_UPLINK_BPS;
    let pfs_bps = scenario
        .cluster
        .shared_storage
        .shared_bandwidth_bps(scenario.cluster.node_count);

    // sample the arrival stream
    let mut rng = RngStream::new(seed).derive("open-campaign");
    let poisson = Poisson::new(spec.rate_per_s);
    let z_nodes = Zipf::new(spec.node_mix.s, spec.node_mix.values.len());
    let z_work = Zipf::new(spec.workload_mix.s, spec.workload_mix.values.len());
    let z_env = Zipf::new(spec.env_mix.s, spec.env_mix.values.len());
    let mut warm: HashSet<(u32, RuntimeKind)> = HashSet::new();
    let mut runtimes: Vec<RuntimeOpenStats> = Vec::new();
    for env in &spec.env_mix.values {
        if !runtimes.iter().any(|s| s.runtime == env.runtime) {
            runtimes.push(RuntimeOpenStats::empty(env.runtime));
        }
    }
    let mut jobs = Vec::new();
    let mut t = 0.0;
    while {
        t += poisson.next_gap_s(&mut rng);
        t <= spec.horizon_s
    } {
        let tenant = rng.below(u64::from(spec.tenants.max(1))) as u32;
        let ni = z_nodes.sample(&mut rng);
        let wi = z_work.sample(&mut rng);
        let ei = z_env.sample(&mut rng);
        let class = (ni * spec.workload_mix.values.len() + wi) * n_env + ei;
        let env = spec.env_mix.values[ei];
        let nodes = spec.node_mix.values[ni];
        let cold = warm.insert((tenant, env.runtime));
        if cold {
            let s = runtimes
                .iter_mut()
                .find(|s| s.runtime == env.runtime)
                .expect("menu runtime");
            s.cold_pulls += 1;
        }
        let stage = StagePlan::for_job(env, &image, nodes, scenario.ranks_per_node, !cold);
        // the walltime request a user would file: generous padding over
        // the uncontended estimate, so reservations stay conservative
        let walltime_s =
            1.3 * solver_s[class] + 3.0 * stage.solo_seconds(registry_bps, pfs_bps) + 600.0;
        jobs.push(OpenJob {
            id: jobs.len() as u32,
            tenant,
            class,
            nodes,
            submit_s: t,
            solver_s: solver_s[class],
            walltime_s,
            stage,
        });
    }

    let outcome = run_open(
        &OpenCluster {
            total_nodes: scenario.cluster.node_count,
            registry_bps,
            pfs_bps,
        },
        jobs,
        rec,
    );
    for r in &outcome.records {
        let runtime = spec.env_mix.values[r.class % n_env].runtime;
        let s = runtimes
            .iter_mut()
            .find(|s| s.runtime == runtime)
            .expect("record runtime comes from the menu");
        s.jobs += 1;
        s.wait.observe(r.wait_s);
        s.stage.observe(r.stage_s);
        let slowdown = (r.turnaround_s() / r.run_s.max(SLOWDOWN_FLOOR_S)).max(1.0);
        s.slowdown.observe(slowdown);
    }
    Ok(OpenReport {
        jobs: outcome.records.len() as u64,
        makespan_s: outcome.makespan_s,
        utilization: outcome.utilization,
        backfill_node_share: outcome.backfill_node_share,
        events: outcome.events,
        peak_registry_flows: outcome.peak_registry_flows,
        peak_pfs_flows: outcome.peak_pfs_flows,
        per_runtime: runtimes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::EngineKind;
    use harborsim_container::Containment;
    use harborsim_hw::presets;

    fn base(cluster: harborsim_hw::ClusterSpec, spec: OpenSpec) -> Scenario {
        Scenario::new(cluster, workloads::artery_cfd_small())
            .ranks_per_node(8)
            .open_campaign(spec)
    }

    fn small_spec() -> OpenSpec {
        OpenSpec {
            rate_per_s: 0.02,
            horizon_s: 600.0,
            tenants: 3,
            node_mix: MixSpec {
                s: 1.3,
                values: vec![1, 2],
            },
            workload_mix: MixSpec::single("cfd-small".into()),
            env_mix: MixSpec {
                s: 1.1,
                values: vec![Execution::docker(), Execution::shifter()],
            },
        }
    }

    #[test]
    fn class_table_covers_the_cross_product_and_pretends_installed() {
        // marenostrum4 ships Singularity only; the menu wants Docker and
        // Shifter, so the table must install them as "modelled"
        let scenario = base(presets::marenostrum4(), small_spec());
        let classes = class_table(&scenario);
        // 2 node values x 1 workload x 2 envs
        assert_eq!(classes.len(), 4);
        let lab = QueryEngine::new();
        for c in &classes {
            assert!(!c.scenario.deploy);
            assert!(c.scenario.open.is_none());
            lab.plan(&c.scenario)
                .unwrap_or_else(|e| panic!("{}: {e}", c.label));
        }
        assert_eq!(
            classes[0].scenario.cluster.software.docker.as_deref(),
            Some("modelled")
        );
        // index convention: runtime innermost
        assert_eq!(classes[0].env.runtime, RuntimeKind::Docker);
        assert_eq!(classes[1].env.runtime, RuntimeKind::Shifter);
        assert_eq!(classes[0].nodes, 1);
        assert_eq!(classes[2].nodes, 2);
    }

    #[test]
    fn campaigns_are_bit_identical_per_seed() {
        let lab = QueryEngine::new();
        let run = |seed| {
            let scenario = base(presets::lenox(), small_spec());
            run_open_campaign(&lab, &scenario, seed, &mut Recorder::off()).expect("runs")
        };
        let a = run(42);
        let b = run(42);
        assert_eq!(format!("{a:?}"), format!("{b:?}"), "same seed, same bits");
        assert!(a.jobs > 0, "600 s at 0.02/s should sample some jobs");
        assert!(a.utilization > 0.0 && a.utilization <= 1.0);
        let c = run(43);
        assert_ne!(
            format!("{a:?}"),
            format!("{c:?}"),
            "different seed, different stream"
        );
    }

    #[test]
    fn cold_pulls_are_once_per_tenant_and_runtime() {
        let lab = QueryEngine::new();
        let spec = OpenSpec {
            rate_per_s: 0.05,
            horizon_s: 600.0,
            tenants: 2,
            node_mix: MixSpec::single(1),
            workload_mix: MixSpec::single("cfd-small".into()),
            env_mix: MixSpec::single(Execution {
                runtime: RuntimeKind::Docker,
                containment: Containment::SelfContained,
            }),
        };
        let scenario = base(presets::lenox(), spec);
        let report = run_open_campaign(&lab, &scenario, 7, &mut Recorder::off()).expect("runs");
        let docker = &report.per_runtime[0];
        assert_eq!(docker.runtime, RuntimeKind::Docker);
        assert!(docker.jobs >= docker.cold_pulls);
        assert!(docker.cold_pulls <= 2, "at most one cold pull per tenant");
        assert!(docker.cold_pulls >= 1);
        assert_eq!(docker.jobs, report.jobs);
        assert_eq!(docker.wait.count(), report.jobs);
    }

    #[test]
    fn quantiles_order_and_slowdown_floor_hold() {
        let lab = QueryEngine::new();
        let scenario = base(presets::lenox(), small_spec()).engine(EngineKind::Des {
            max_steps_per_kind: 2,
        });
        let report = run_open_campaign(&lab, &scenario, 11, &mut Recorder::off()).expect("runs");
        for s in &report.per_runtime {
            if s.jobs == 0 {
                continue;
            }
            assert!(s.wait.p999() >= s.wait.p99());
            assert!(s.wait.p99() >= s.wait.p50());
            assert!(
                s.slowdown.p50() >= 1.0 - QuantileSketch::relative_error() - 1e-9,
                "bounded slowdown floor (within sketch error)"
            );
            assert!(s.stage.p50() > 0.0, "every job stages something");
        }
    }
}
