//! The lab: a concurrent query engine over scenario plans.
//!
//! Every consumer of many scenario executions — the experiments, the
//! `reproduce_all` binary, [`crate::runner::sweep`] — routes through one
//! [`QueryEngine`]. A batch of [`Query`]s (scenario × seeds) is resolved
//! in two concurrent phases:
//!
//! 1. **Plan resolution.** Each query's scenario is fingerprinted into a
//!    canonical [`PlanKey`] and looked up in a [`PlanCache`]: an LRU of
//!    `Arc<ScenarioPlan>` with *single-flight* deduplication, so N
//!    concurrent identical queries trigger exactly one compile (and, for
//!    deployment scenarios, one image build) while the other N−1 block on
//!    the in-flight slot. Cache activity is exported through the trace
//!    layer as [`SpanCategory::Cache`] spans plus `plan_cache_*` counters.
//! 2. **Execution.** The resolved `(plan, seed)` work items are sharded
//!    across the `harborsim-par` work-stealing pool and results return in
//!    submission order; per-query trace attribution flows through the
//!    caller's [`Recorder`].
//!
//! Fingerprinting is sound because plans are a pure function of the
//! scenario builder plus the engine-level taper fallback (see
//! [`Scenario::compile_with`]): there is no process-global state left to
//! leak into a compiled plan. Workloads opt into fingerprinting via
//! [`AlyaCase::memo_key`](harborsim_alya::workload::AlyaCase::memo_key);
//! a case without one makes its queries *uncacheable* — compiled fresh
//! every time, never a wrong-plan hit.

use crate::error::HarborError;
use crate::scenario::{EngineKind, Outcome, Scenario, ScenarioPlan};
use harborsim_container::runtime::ExecutionEnvironment;
use harborsim_des::trace::{Recorder, SpanCategory};
use harborsim_des::{SimDuration, SimTime};
use harborsim_mpi::Placement;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// One unit of lab work: a scenario and the seeds to execute it under.
pub struct Query {
    /// The scenario (consumed: plans are cached by fingerprint, not by
    /// scenario identity).
    pub scenario: Scenario,
    /// Seeds to execute, in order.
    pub seeds: Vec<u64>,
}

impl Query {
    /// A query over `scenario` for every seed in `seeds`.
    pub fn new(scenario: Scenario, seeds: &[u64]) -> Query {
        Query {
            scenario,
            seeds: seeds.to_vec(),
        }
    }
}

/// Canonical fingerprint of everything that can change a compiled plan.
///
/// Two scenarios with the same key compile to observably identical plans;
/// two scenarios that differ in any behaviour-affecting knob — cluster,
/// case, execution environment, shape, engine, deployment, placement,
/// resolved taper, every degraded-link entry, DES shard count — differ
/// in at least one
/// field. Floats are fingerprinted as bit patterns; the degraded-link
/// multiset is sorted (degradation is multiplicative, so order does not
/// matter to the compiled route table).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PlanKey {
    cluster: String,
    case: String,
    env: ExecutionEnvironment,
    nodes: u32,
    ranks_per_node: u32,
    threads_per_rank: u32,
    engine: (u8, u32),
    deploy: bool,
    placement: u8,
    taper_bits: Option<u64>,
    degraded: Vec<(u32, u64)>,
    shards: u32,
    open: Option<OpenKey>,
}

/// The open-campaign component of a [`PlanKey`]: every sampled-workload
/// knob, floats as bit patterns, menus in declaration order (order is
/// behaviour — Zipf weight follows rank).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct OpenKey {
    rate: u64,
    horizon: u64,
    tenants: u32,
    node_mix: (u64, Vec<u32>),
    workload_mix: (u64, Vec<String>),
    env_mix: (u64, Vec<ExecutionEnvironment>),
}

impl OpenKey {
    fn of(spec: &crate::open::OpenSpec) -> OpenKey {
        OpenKey {
            rate: spec.rate_per_s.to_bits(),
            horizon: spec.horizon_s.to_bits(),
            tenants: spec.tenants,
            node_mix: (spec.node_mix.s.to_bits(), spec.node_mix.values.clone()),
            workload_mix: (
                spec.workload_mix.s.to_bits(),
                spec.workload_mix.values.clone(),
            ),
            env_mix: (spec.env_mix.s.to_bits(), spec.env_mix.values.clone()),
        }
    }
}

impl PlanKey {
    /// Fingerprint `scenario` under an engine-level taper fallback.
    /// `None` when the workload opted out of memoization (no
    /// [`memo_key`](harborsim_alya::workload::AlyaCase::memo_key)).
    pub fn of(scenario: &Scenario, fallback_taper: Option<f64>) -> Option<PlanKey> {
        let case = scenario.case.memo_key()?;
        let mut degraded: Vec<(u32, u64)> = scenario
            .degraded_uplinks
            .iter()
            .map(|&(node, factor)| (node, factor.to_bits()))
            .collect();
        degraded.sort_unstable();
        Some(PlanKey {
            // ClusterSpec is plain data with a total Debug view and no
            // Hash impl; its debug string covers every field (node model,
            // interconnect, fabric layout, software, storage).
            cluster: format!("{:?}", scenario.cluster),
            case,
            env: scenario.env,
            nodes: scenario.nodes,
            ranks_per_node: scenario.ranks_per_node,
            threads_per_rank: scenario.threads_per_rank,
            engine: match scenario.engine {
                EngineKind::Analytic => (0, 0),
                EngineKind::Des { max_steps_per_kind } => (1, max_steps_per_kind),
            },
            deploy: scenario.deploy,
            placement: match scenario.placement {
                Placement::Block => 0,
                Placement::RoundRobin => 1,
            },
            taper_bits: scenario.spine_taper.or(fallback_taper).map(f64::to_bits),
            degraded,
            shards: scenario.shards,
            open: scenario.open.as_ref().map(OpenKey::of),
        })
    }

    /// A stable 64-bit digest of this key: FNV-1a over the canonical
    /// `Debug` rendering, which covers every field. This is what the
    /// script layer's golden tests compare — two scenarios fingerprint
    /// identically exactly when they compile to observably identical
    /// plans.
    pub fn fingerprint(&self) -> u64 {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in format!("{self:?}").bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash
    }
}

/// Point-in-time cache statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Queries served an already-compiled plan.
    pub hits: u64,
    /// Queries that compiled (and inserted) a plan.
    pub misses: u64,
    /// Queries that blocked on another query's in-flight compile.
    pub waits: u64,
    /// Queries whose workload opted out of fingerprinting (compiled
    /// fresh, never cached).
    pub uncached: u64,
    /// Plans currently resident.
    pub entries: usize,
}

impl CacheStats {
    /// The one-line form `reproduce_all` prints and CI asserts on.
    pub fn summary_line(&self) -> String {
        format!(
            "plan cache: {} hits, {} misses, {} in-flight waits, {} uncacheable ({} plans cached)",
            self.hits, self.misses, self.waits, self.uncached, self.entries
        )
    }
}

/// How a query's plan was obtained, with the wall-clock cost.
enum Resolution {
    Hit,
    Miss(std::time::Duration),
    Wait(std::time::Duration),
    Uncached(std::time::Duration),
}

enum Slot {
    Ready(Arc<ScenarioPlan>),
    InFlight(Arc<Flight>),
}

/// The rendezvous N−1 duplicate queries block on while the first compiles.
struct Flight {
    done: Mutex<Option<Result<Arc<ScenarioPlan>, HarborError>>>,
    cv: Condvar,
}

struct CacheInner {
    map: HashMap<PlanKey, (Slot, u64)>,
    clock: u64,
}

/// LRU plan cache with single-flight deduplication. Usually used through
/// [`QueryEngine`]; standalone only in tests and benches.
pub struct PlanCache {
    capacity: usize,
    inner: Mutex<CacheInner>,
    hits: AtomicU64,
    misses: AtomicU64,
    waits: AtomicU64,
    uncached: AtomicU64,
}

impl PlanCache {
    /// An empty cache holding at most `capacity` compiled plans.
    pub fn new(capacity: usize) -> PlanCache {
        assert!(capacity > 0, "a zero-capacity cache cannot single-flight");
        PlanCache {
            capacity,
            inner: Mutex::new(CacheInner {
                map: HashMap::new(),
                clock: 0,
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            waits: AtomicU64::new(0),
            uncached: AtomicU64::new(0),
        }
    }

    /// Resolve `key` to a plan, compiling via `compile` on a miss. At most
    /// one thread compiles any given key at a time; concurrent duplicates
    /// block until the compile lands and then share its result (compile
    /// errors included — [`HarborError`] is `Clone` for exactly this).
    fn resolve(
        &self,
        key: PlanKey,
        compile: impl FnOnce() -> Result<ScenarioPlan, HarborError>,
    ) -> (Result<Arc<ScenarioPlan>, HarborError>, Resolution) {
        let flight: Arc<Flight>;
        {
            let mut inner = self.inner.lock().unwrap();
            inner.clock += 1;
            let stamp = inner.clock;
            match inner.map.get_mut(&key) {
                Some((Slot::Ready(plan), last_use)) => {
                    *last_use = stamp;
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return (Ok(Arc::clone(plan)), Resolution::Hit);
                }
                Some((Slot::InFlight(f), _)) => {
                    flight = Arc::clone(f);
                    // fall through to wait, outside the cache lock
                }
                None => {
                    let f = Arc::new(Flight {
                        done: Mutex::new(None),
                        cv: Condvar::new(),
                    });
                    inner
                        .map
                        .insert(key.clone(), (Slot::InFlight(Arc::clone(&f)), stamp));
                    drop(inner);
                    // compile outside the cache lock: other keys keep
                    // resolving while this one builds
                    let t0 = Instant::now();
                    let compiled = compile().map(Arc::new);
                    let took = t0.elapsed();
                    let mut inner = self.inner.lock().unwrap();
                    match &compiled {
                        Ok(plan) => {
                            let stamp = inner.clock;
                            inner
                                .map
                                .insert(key, (Slot::Ready(Arc::clone(plan)), stamp));
                            Self::evict_lru(&mut inner, self.capacity);
                        }
                        Err(_) => {
                            inner.map.remove(&key);
                        }
                    }
                    drop(inner);
                    *f.done.lock().unwrap() = Some(compiled.clone());
                    f.cv.notify_all();
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    return (compiled, Resolution::Miss(took));
                }
            }
        }
        let t0 = Instant::now();
        let mut done = flight.done.lock().unwrap();
        while done.is_none() {
            done = flight.cv.wait(done).unwrap();
        }
        self.waits.fetch_add(1, Ordering::Relaxed);
        (done.clone().unwrap(), Resolution::Wait(t0.elapsed()))
    }

    /// Drop least-recently-used *ready* plans until the cache fits;
    /// in-flight slots are never evicted (waiters hold their rendezvous).
    fn evict_lru(inner: &mut CacheInner, capacity: usize) {
        while inner.map.len() > capacity {
            let victim = inner
                .map
                .iter()
                .filter(|(_, (slot, _))| matches!(slot, Slot::Ready(_)))
                .min_by_key(|(_, (_, last_use))| *last_use)
                .map(|(k, _)| k.clone());
            match victim {
                Some(k) => {
                    inner.map.remove(&k);
                }
                None => break,
            }
        }
    }

    /// Current counters and residency.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            waits: self.waits.load(Ordering::Relaxed),
            uncached: self.uncached.load(Ordering::Relaxed),
            entries: self.inner.lock().unwrap().map.len(),
        }
    }
}

/// The concurrent query engine every sweep routes through.
///
/// Holds the [`PlanCache`] and the engine-level spine-taper fallback (the
/// explicit replacement for the old process-global override knob): the
/// fallback applies to every query compiled here whose scenario did not
/// pin its own taper, and is part of each [`PlanKey`], so engines with
/// different fallbacks never share plans through a common cache.
pub struct QueryEngine {
    cache: PlanCache,
    fallback_taper: Option<f64>,
}

impl Default for QueryEngine {
    fn default() -> QueryEngine {
        QueryEngine::new()
    }
}

impl QueryEngine {
    /// An engine with the default plan capacity (256) and no taper
    /// fallback.
    pub fn new() -> QueryEngine {
        QueryEngine::with_capacity(256)
    }

    /// An engine whose cache holds at most `capacity` plans.
    pub fn with_capacity(capacity: usize) -> QueryEngine {
        QueryEngine {
            cache: PlanCache::new(capacity),
            fallback_taper: None,
        }
    }

    /// Set the engine-level spine-taper fallback (`reproduce_all
    /// --ablate-taper` / `--oversub`). Scenario-pinned tapers still win;
    /// see [`Scenario::compile_with`].
    pub fn spine_taper_fallback(mut self, taper: Option<f64>) -> QueryEngine {
        if let Some(t) = taper {
            assert!(
                t > 0.0 && t <= 1.0,
                "taper is a fraction of injection bandwidth"
            );
        }
        self.fallback_taper = taper;
        self
    }

    /// The configured taper fallback.
    pub fn taper(&self) -> Option<f64> {
        self.fallback_taper
    }

    /// Resolve one scenario to its (possibly shared) compiled plan.
    ///
    /// # Errors
    /// See [`Scenario::compile`].
    pub fn plan(&self, scenario: &Scenario) -> Result<Arc<ScenarioPlan>, HarborError> {
        self.resolve(scenario).0
    }

    fn resolve(&self, scenario: &Scenario) -> (Result<Arc<ScenarioPlan>, HarborError>, Resolution) {
        match PlanKey::of(scenario, self.fallback_taper) {
            Some(key) => self
                .cache
                .resolve(key, || scenario.compile_with(self.fallback_taper)),
            None => {
                self.cache.uncached.fetch_add(1, Ordering::Relaxed);
                let t0 = Instant::now();
                let plan = scenario.compile_with(self.fallback_taper).map(Arc::new);
                (plan, Resolution::Uncached(t0.elapsed()))
            }
        }
    }

    /// Run a batch of queries: plans resolve concurrently through the
    /// cache, then every `(plan, seed)` item is sharded across the
    /// work-stealing pool. Results come back in submission order, one
    /// `Vec<Outcome>` (seed order) per query; a query whose scenario
    /// fails to compile yields its error without sinking the batch.
    ///
    /// All trace attribution flows through `rec`: cache activity as
    /// [`SpanCategory::Cache`] spans and `plan_cache_*` counters, then
    /// each execution recorded into a [`Recorder::like`] sibling and
    /// merged back in submission order — so an aggregating `rec` sees
    /// every run and an off `rec` costs nothing.
    pub fn run_batch(
        &self,
        queries: Vec<Query>,
        rec: &mut Recorder,
    ) -> Vec<Result<Vec<Outcome>, HarborError>> {
        // Phase 1 — resolve every query's plan concurrently. Duplicate
        // fingerprints collapse onto one compile via the single-flight
        // cache; distinct ones compile in parallel.
        let resolved = harborsim_par::run(queries, |q| {
            let (plan, how) = self.resolve(&q.scenario);
            (plan, how, q.seeds)
        });
        for (_, how, _) in &resolved {
            let (name, dur) = match how {
                Resolution::Hit => ("plan-cache-hit", std::time::Duration::ZERO),
                Resolution::Miss(d) => ("plan-compile", *d),
                Resolution::Wait(d) => ("plan-cache-wait", *d),
                Resolution::Uncached(d) => ("plan-compile-uncached", *d),
            };
            let counter = match how {
                Resolution::Hit => "plan_cache_hits",
                Resolution::Miss(_) => "plan_cache_misses",
                Resolution::Wait(_) => "plan_cache_waits",
                Resolution::Uncached(_) => "plan_uncached",
            };
            rec.span(
                SpanCategory::Cache,
                name,
                0,
                SimTime::ZERO,
                SimTime::ZERO + SimDuration::from_secs_f64(dur.as_secs_f64()),
            );
            rec.counter(counter, 1.0);
        }
        // Phase 2 — flatten to (query, seed) items and shard. Each item
        // records into its own sibling recorder; merging back in item
        // order keeps the roll-up deterministic regardless of stealing.
        let mut failures: Vec<Option<HarborError>> = Vec::with_capacity(resolved.len());
        let mut items: Vec<(usize, Arc<ScenarioPlan>, u64)> = Vec::new();
        for (qi, (plan, _, seeds)) in resolved.into_iter().enumerate() {
            match plan {
                Ok(plan) => {
                    failures.push(None);
                    items.extend(seeds.iter().map(|&s| (qi, Arc::clone(&plan), s)));
                }
                Err(e) => failures.push(Some(e)),
            }
        }
        let template = Recorder::like(rec);
        let executed = harborsim_par::run(items, |(qi, plan, seed)| {
            let mut local = template.clone();
            let outcome = plan.execute(seed, &mut local);
            (qi, outcome, local)
        });
        let mut results: Vec<Result<Vec<Outcome>, HarborError>> = failures
            .into_iter()
            .map(|f| match f {
                Some(e) => Err(e),
                None => Ok(Vec::new()),
            })
            .collect();
        for (qi, outcome, local) in executed {
            rec.merge(local);
            if let Ok(outcomes) = &mut results[qi] {
                outcomes.push(outcome);
            }
        }
        results
    }

    /// Mean elapsed seconds of one scenario over `seeds` (untraced).
    ///
    /// # Panics
    /// Panics on configuration errors, like [`Scenario::run`].
    pub fn mean_elapsed_s(&self, scenario: Scenario, seeds: &[u64]) -> f64 {
        self.means([scenario], seeds)[0]
    }

    /// Mean elapsed seconds of many scenarios over the same seeds, in
    /// input order, executed as one sharded batch (untraced).
    ///
    /// # Panics
    /// Panics on configuration errors, like [`Scenario::run`].
    pub fn means(&self, scenarios: impl IntoIterator<Item = Scenario>, seeds: &[u64]) -> Vec<f64> {
        let queries = scenarios
            .into_iter()
            .map(|s| Query::new(s, seeds))
            .collect();
        self.run_batch(queries, &mut Recorder::off())
            .into_iter()
            .map(|r| match r {
                Ok(outcomes) => {
                    let n = outcomes.len().max(1) as f64;
                    outcomes
                        .iter()
                        .map(|o| o.elapsed.as_secs_f64())
                        .sum::<f64>()
                        / n
                }
                Err(e) => panic!("scenario configuration: {e}"),
            })
            .collect()
    }

    /// One cached execution with full attribution (aggregating recorder)
    /// — the lab-routed equivalent of [`Scenario::run`].
    ///
    /// # Panics
    /// Panics on configuration errors, like [`Scenario::run`].
    pub fn outcome(&self, scenario: Scenario, seed: u64) -> Outcome {
        let mut rec = Recorder::aggregating();
        let mut batch = self.run_batch(vec![Query::new(scenario, &[seed])], &mut rec);
        match batch.remove(0) {
            Ok(mut outcomes) => outcomes.remove(0),
            Err(e) => panic!("scenario configuration: {e}"),
        }
    }

    /// Current cache statistics.
    pub fn stats(&self) -> CacheStats {
        self.cache.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Execution;
    use crate::workloads;
    use harborsim_hw::presets;

    fn scenario(nodes: u32) -> Scenario {
        Scenario::new(presets::lenox(), workloads::artery_cfd_small())
            .execution(Execution::singularity_self_contained())
            .nodes(nodes)
            .ranks_per_node(14)
    }

    #[test]
    fn batch_matches_direct_execution_in_order() {
        let lab = QueryEngine::new();
        let seeds = [3u64, 5];
        let batch = lab.run_batch(
            vec![
                Query::new(scenario(1), &seeds),
                Query::new(scenario(2), &seeds),
            ],
            &mut Recorder::off(),
        );
        assert_eq!(batch.len(), 2);
        for (qi, nodes) in [1u32, 2].iter().enumerate() {
            let outcomes = batch[qi].as_ref().expect("compiles");
            assert_eq!(outcomes.len(), seeds.len());
            for (si, &seed) in seeds.iter().enumerate() {
                let direct = scenario(*nodes).run(seed);
                assert_eq!(
                    outcomes[si].elapsed, direct.elapsed,
                    "query {qi} seed {seed}"
                );
            }
        }
    }

    #[test]
    fn identical_queries_share_one_plan() {
        let lab = QueryEngine::new();
        let before = crate::scenario::plans_compiled();
        let queries = (0..8).map(|_| Query::new(scenario(2), &[1, 2])).collect();
        let results = lab.run_batch(queries, &mut Recorder::off());
        assert!(results.iter().all(|r| r.is_ok()));
        assert_eq!(
            crate::scenario::plans_compiled() - before,
            1,
            "8 identical queries must share one compile"
        );
        let stats = lab.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits + stats.waits, 7);
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn compile_errors_are_shared_not_cached() {
        let lab = QueryEngine::new();
        let bad = || scenario(9); // lenox has 8 nodes
        let results = lab.run_batch(
            vec![Query::new(bad(), &[1]), Query::new(bad(), &[1])],
            &mut Recorder::off(),
        );
        for r in &results {
            assert!(matches!(r, Err(HarborError::Placement(_))), "{r:?}");
        }
        // the failed key is not resident: a later resolve retries
        assert_eq!(lab.stats().entries, 0);
        assert!(lab.plan(&bad()).is_err());
    }

    #[test]
    fn cache_counters_flow_into_the_trace_rollup() {
        let lab = QueryEngine::new();
        let mut rec = Recorder::aggregating();
        let queries = (0..3).map(|_| Query::new(scenario(1), &[7])).collect();
        lab.run_batch(queries, &mut rec);
        let ru = rec.rollup();
        assert_eq!(ru.counter("plan_cache_misses"), 1.0);
        assert_eq!(
            ru.counter("plan_cache_hits") + ru.counter("plan_cache_waits"),
            2.0
        );
        assert_eq!(ru.count(SpanCategory::Cache), 3);
        // the run itself was attributed through the same recorder
        assert!(ru.count(SpanCategory::Run) == 3);
    }

    #[test]
    fn uncacheable_cases_compile_fresh_every_time() {
        struct Anon;
        impl harborsim_alya::workload::AlyaCase for Anon {
            fn name(&self) -> &str {
                "anonymous"
            }
            fn job_profile(&self, _ranks: u32) -> harborsim_mpi::JobProfile {
                use harborsim_mpi::{JobProfile, StepProfile};
                JobProfile::uniform(
                    StepProfile {
                        flops_per_rank: 1e7,
                        imbalance: 1.0,
                        regions: 1.0,
                        comm: vec![],
                    },
                    3,
                )
            }
        }
        let lab = QueryEngine::new();
        let mk = || {
            Scenario::new(presets::lenox(), Anon)
                .nodes(1)
                .ranks_per_node(4)
        };
        let before = crate::scenario::plans_compiled();
        lab.run_batch(
            vec![Query::new(mk(), &[1]), Query::new(mk(), &[1])],
            &mut Recorder::off(),
        );
        assert_eq!(crate::scenario::plans_compiled() - before, 2);
        let stats = lab.stats();
        assert_eq!(stats.uncached, 2);
        assert_eq!(stats.entries, 0);
    }

    #[test]
    fn lru_evicts_the_coldest_plan() {
        let lab = QueryEngine::with_capacity(2);
        for nodes in [1u32, 2, 4] {
            lab.plan(&scenario(nodes)).unwrap();
        }
        assert_eq!(lab.stats().entries, 2);
        // node-1 was coldest; re-resolving it is a miss, node-4 a hit
        let before = lab.stats();
        lab.plan(&scenario(4)).unwrap();
        assert_eq!(lab.stats().hits, before.hits + 1);
        lab.plan(&scenario(1)).unwrap();
        assert_eq!(lab.stats().misses, before.misses + 1);
    }

    #[test]
    fn taper_fallback_is_part_of_the_key() {
        let mk = || {
            Scenario::new(presets::marenostrum4(), workloads::artery_cfd_small())
                .nodes(2)
                .ranks_per_node(48)
        };
        let plain = PlanKey::of(&mk(), None).unwrap();
        let ablated = PlanKey::of(&mk(), Some(1.0)).unwrap();
        assert_ne!(plain, ablated, "fallback must split the key");
        // a builder-pinned taper absorbs the fallback
        let pinned_a = PlanKey::of(&mk().spine_taper(0.5), None).unwrap();
        let pinned_b = PlanKey::of(&mk().spine_taper(0.5), Some(1.0)).unwrap();
        assert_eq!(pinned_a, pinned_b, "builder taper wins over fallback");
    }
}
