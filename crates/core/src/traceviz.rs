//! Trace exporters: chrome://tracing JSON and a summary table.
//!
//! The simulation layers emit spans through the shared
//! [`Recorder`](harborsim_des::trace::Recorder); this module turns captured
//! [`TraceBuffer`]s into artifacts. [`chrome_trace_json`] renders the
//! "Trace Event Format" consumed by `chrome://tracing` and Perfetto: one
//! *process* per named buffer, one *thread* per track (MPI rank, node, or
//! job id depending on the emitting layer), and complete (`"ph":"X"`)
//! events with microsecond timestamps. [`summary`] rolls the same buffers
//! up into an ASCII-renderable table.

use crate::report::{fmt_seconds, json_escape, json_num, TableData};
use harborsim_des::trace::{AttrValue, SpanCategory, TraceBuffer};
use harborsim_mpi::SimResult;

fn json_attr(v: &AttrValue) -> String {
    match v {
        AttrValue::Text(s) => format!("\"{}\"", json_escape(s)),
        AttrValue::Int(i) => format!("{i}"),
        AttrValue::Num(x) => json_num(*x),
    }
}

/// Render named trace buffers as one chrome://tracing JSON document.
///
/// Each `(label, buffer)` pair becomes its own process id with a
/// `process_name` metadata record, so several experiments (or several
/// technologies of one experiment) can live side by side in one file. Span
/// categories become the event `cat` field — the tracing UI can filter on
/// `compute`, `halo`, `bridge`, ….
pub fn chrome_trace_json(parts: &[(String, TraceBuffer)]) -> String {
    let mut events: Vec<String> = Vec::new();
    for (pid, (label, buf)) in parts.iter().enumerate() {
        events.push(format!(
            r#"{{"name":"process_name","ph":"M","pid":{pid},"tid":0,"args":{{"name":"{}"}}}}"#,
            json_escape(label)
        ));
        for s in buf.sorted_spans() {
            let args = s
                .attrs
                .iter()
                .map(|(k, v)| format!("\"{}\":{}", json_escape(k), json_attr(v)))
                .collect::<Vec<_>>()
                .join(",");
            events.push(format!(
                r#"{{"name":"{}","cat":"{}","ph":"X","ts":{},"dur":{},"pid":{pid},"tid":{},"args":{{{}}}}}"#,
                json_escape(s.name),
                s.category.label(),
                json_num(s.start.as_nanos() as f64 / 1e3),
                json_num(s.duration().as_nanos() as f64 / 1e3),
                s.track,
                args
            ));
        }
    }
    format!(r#"{{"traceEvents":[{}]}}"#, events.join(","))
}

/// Roll named buffers up into a per-category summary table: span count and
/// total recorded seconds for every category that appears.
pub fn summary(parts: &[(String, TraceBuffer)]) -> TableData {
    let mut rows = Vec::new();
    for (label, buf) in parts {
        for cat in SpanCategory::ALL {
            let n = buf.count(cat);
            if n == 0 {
                continue;
            }
            rows.push(vec![
                label.clone(),
                cat.label().to_string(),
                n.to_string(),
                fmt_seconds(buf.total(cat).as_secs_f64()),
            ]);
        }
    }
    TableData {
        id: "trace-summary".into(),
        title: "Recorded span time by category".into(),
        headers: vec![
            "Trace".into(),
            "Category".into(),
            "Spans".into(),
            "Total".into(),
        ],
        rows,
    }
}

/// Per-link utilization table for one run, busiest link first.
///
/// Utilization is the fluid busy time — payload bytes over link capacity —
/// divided by the run's elapsed time, so it is comparable between the
/// analytic engine (which never queues) and the DES engine (whose queueing
/// shows up as elapsed, not busy). `elapsed_s` should be the same run's
/// [`SimResult::elapsed`].
pub fn link_utilization(result: &SimResult) -> TableData {
    let elapsed_s = result.elapsed.as_secs_f64();
    let mut rows: Vec<&harborsim_mpi::LinkUsage> = result.links.iter().collect();
    rows.sort_by(|a, b| b.busy_s.total_cmp(&a.busy_s).then(a.label.cmp(&b.label)));
    TableData {
        id: "link-utilization".into(),
        title: format!("Per-link utilization ({} engine)", result.engine),
        headers: vec![
            "Link".into(),
            "Busy".into(),
            "Bytes".into(),
            "Utilization".into(),
        ],
        rows: rows
            .iter()
            .map(|l| {
                let util = if elapsed_s > 0.0 {
                    l.busy_s / elapsed_s
                } else {
                    0.0
                };
                vec![
                    l.label.clone(),
                    fmt_seconds(l.busy_s),
                    l.bytes.to_string(),
                    format!("{:.1}%", util * 100.0),
                ]
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harborsim_des::trace::Recorder;
    use harborsim_des::{SimDuration, SimTime};

    fn sample() -> TraceBuffer {
        let mut rec = Recorder::capturing();
        let t0 = SimTime::ZERO;
        let t1 = t0 + SimDuration::from_secs_f64(1.5);
        rec.span(SpanCategory::Compute, "solver-compute", 0, t0, t1);
        rec.span_with(
            SpanCategory::Halo,
            "halo3d",
            1,
            t1,
            t1 + SimDuration::from_secs_f64(0.25),
            vec![
                ("ranks", AttrValue::Int(4)),
                ("label", AttrValue::Text("a \"b\"".into())),
            ],
        );
        rec.take_buffer()
    }

    #[test]
    fn chrome_json_has_expected_events() {
        let json = chrome_trace_json(&[("demo".to_string(), sample())]);
        assert!(json.starts_with(r#"{"traceEvents":["#));
        assert!(json.contains(r#""name":"process_name""#));
        assert!(json.contains(r#""cat":"compute""#));
        assert!(json.contains(r#""cat":"halo""#));
        // 1.5 s compute span = 1.5e6 µs
        assert!(json.contains(r#""dur":1500000"#), "{json}");
        // attributes survive, escaped
        assert!(json.contains(r#""ranks":4"#));
        assert!(json.contains(r#"a \"b\""#));
        // crude balance check: a well-formed document closes every brace
        let open = json.matches('{').count();
        let close = json.matches('}').count();
        assert_eq!(open, close);
    }

    #[test]
    fn summary_counts_non_empty_categories_only() {
        let t = summary(&[("demo".to_string(), sample())]);
        assert_eq!(t.headers.len(), 4);
        assert_eq!(t.rows.len(), 2, "{t:?}");
        assert!(t.to_ascii().contains("compute"));
        assert!(!t.to_ascii().contains("backfill"));
    }

    #[test]
    fn empty_parts_render_empty_but_valid() {
        let json = chrome_trace_json(&[]);
        assert_eq!(json, r#"{"traceEvents":[]}"#);
        assert!(summary(&[]).rows.is_empty());
    }

    #[test]
    fn link_table_sorts_busiest_first() {
        use crate::scenario::{Execution, Scenario};
        use crate::workloads;
        let outcome = Scenario::new(
            harborsim_hw::presets::lenox(),
            workloads::artery_cfd_small(),
        )
        .execution(Execution::singularity_self_contained())
        .nodes(4)
        .ranks_per_node(8)
        .run(3);
        let t = link_utilization(&outcome.result);
        assert!(!t.rows.is_empty());
        assert!(t.rows[0][0].contains("node") || t.rows[0][0].contains("leaf"));
        let busy: Vec<f64> = outcome.result.links.iter().map(|l| l.busy_s).collect();
        let max = busy.iter().cloned().fold(0.0f64, f64::max);
        // first row is the busiest link
        assert_eq!(t.rows[0][1], fmt_seconds(max));
        assert!(t.to_ascii().contains('%'));
    }
}
