//! Calibration: where every model constant comes from, and invariants that
//! keep the constants honest.
//!
//! A simulator's credibility is its parameter provenance. This module
//! gathers the derived quantities HarborSim's models imply (machine peak
//! throughputs, byte/flop ratios, latency ladders) and exposes them for
//! reports and for tests that pin them to public reference points:
//!
//! - MareNostrum4's general-purpose block is rated ~11.1 PF peak; our
//!   *sustained CG-class* rate must sit at a few percent of that (HPCG
//!   reality check).
//! - The four fabrics' 8-byte latency ladder must reproduce the published
//!   OSU-benchmark ordering: IB ≈ OPA ≪ 40GbE < 1GbE.
//! - The CFD workload's arithmetic intensity must stay in the sparse-solver
//!   band (well under 1 flop/byte against halo traffic at scale).

use harborsim_alya::workload::{AlyaCase, ArteryFsi};
use harborsim_hw::{presets, ClusterSpec};
use harborsim_net::fabric::fabric_transports;

/// Derived machine-level quantities.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineCalibration {
    /// Cluster name.
    pub name: String,
    /// Sustained CG-class GFLOP/s of one node.
    pub node_sustained_gflops: f64,
    /// Sustained CG-class TFLOP/s of the whole machine.
    pub machine_sustained_tflops: f64,
    /// 8-byte native-transport one-way cost, microseconds.
    pub small_message_us: f64,
    /// Native streaming bandwidth, GB/s.
    pub fabric_gbs: f64,
}

/// Compute the calibration row of a cluster.
pub fn machine(cluster: &ClusterSpec) -> MachineCalibration {
    let node_sustained = cluster.node.cores() as f64 * cluster.node.cpu.cg_gflops_per_core;
    let native = fabric_transports(cluster.interconnect).native;
    MachineCalibration {
        name: cluster.name.clone(),
        node_sustained_gflops: node_sustained,
        machine_sustained_tflops: node_sustained * cluster.node_count as f64 / 1e3,
        small_message_us: native.ptp_seconds(8) * 1e6,
        fabric_gbs: native.bandwidth_bps / 1e9,
    }
}

/// All four machines.
pub fn all_machines() -> Vec<MachineCalibration> {
    presets::all().iter().map(machine).collect()
}

/// Arithmetic intensity of the FSI case at a given scale: flops per
/// inter-node byte. High = compute-bound (scales), low = wire-bound.
pub fn fsi_flops_per_wire_byte(ranks: u32) -> f64 {
    let case = ArteryFsi::mn4_case();
    let job = case.job_profile(ranks);
    let flops = job.total_flops(ranks);
    // structural byte count from the profile (engine-independent)
    let bytes: u64 = job
        .steps
        .iter()
        .map(|(s, n)| s.bytes_per_rank(ranks) * ranks as u64 * *n as u64)
        .sum();
    flops / bytes.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mn4_sustained_rate_is_hpcg_plausible() {
        let m = machine(&presets::marenostrum4());
        // peak of the GP block ~ 11.1 PF; HPCG-class sustained is 1-5%
        let peak_tflops = 11_100.0;
        let fraction = m.machine_sustained_tflops / peak_tflops;
        assert!(
            (0.01..0.06).contains(&fraction),
            "sustained/peak = {fraction:.3} — outside the sparse-solver band"
        );
    }

    #[test]
    fn latency_ladder_matches_osu_ordering() {
        let by_name = |n: &str| all_machines().into_iter().find(|m| m.name == n).unwrap();
        let mn4 = by_name("MareNostrum4");
        let cte = by_name("CTE-POWER");
        let tx = by_name("ThunderX");
        let lenox = by_name("Lenox");
        assert!(mn4.small_message_us < 3.0);
        assert!(cte.small_message_us < 3.0);
        assert!(tx.small_message_us > 10.0 * cte.small_message_us);
        assert!(lenox.small_message_us > tx.small_message_us);
    }

    #[test]
    fn node_rates_ordered_by_generation() {
        let rate = |c: &ClusterSpec| machine(c).node_sustained_gflops;
        // Skylake node > POWER9 node > Haswell node > ThunderX node
        assert!(rate(&presets::marenostrum4()) > rate(&presets::cte_power()));
        assert!(rate(&presets::cte_power()) > rate(&presets::lenox()));
        assert!(rate(&presets::lenox()) > rate(&presets::thunderx()));
    }

    #[test]
    fn fsi_intensity_falls_with_scale() {
        // strong scaling: same flops, more wire bytes
        let coarse = fsi_flops_per_wire_byte(192);
        let fine = fsi_flops_per_wire_byte(12_288);
        assert!(coarse > fine, "intensity must fall: {coarse} -> {fine}");
        // and both stay in the sparse-solver band (10..100k flops/byte of
        // halo traffic at these granularities)
        assert!(
            fine > 10.0 && coarse < 200_000.0,
            "fine={fine} coarse={coarse}"
        );
    }
}
