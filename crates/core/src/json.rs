//! A vendored JSON value type: recursive-descent parser plus a
//! deterministic compact writer.
//!
//! The repo already *writes* JSON in several places (figure exports,
//! `BENCH_baseline.json`, chrome://tracing dumps) but never had to read
//! it back. The lab daemon's wire protocol ([`crate::lab::wire`]) needs
//! both directions, so this module provides the one in-tree value type
//! both sides share. Like the rest of the vendored stack it is
//! deliberately small: strings, finite numbers, booleans, null, arrays,
//! and objects with **insertion-ordered** fields — order preservation is
//! what makes the writer deterministic and the protocol golden tests
//! byte-stable.
//!
//! Numbers are `f64`. Integers up to 2^53 round-trip exactly, which
//! covers every counter the protocol carries; full-width `u64`
//! fingerprints travel as fixed-width hex *strings* (see
//! [`Json::fingerprint`]) so no bits are ever squeezed through a float.

use std::fmt::Write as _;

/// A parsed or under-construction JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (non-finite floats serialize as `null`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; fields keep insertion order (duplicates keep the last
    /// value on parse).
    Obj(Vec<(String, Json)>),
}

/// Where and why a parse failed. `line`/`col` are 1-based, in the same
/// convention as [`crate::script::Span`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// 1-based line of the offending byte.
    pub line: u32,
    /// 1-based column of the offending byte.
    pub col: u32,
    /// What was expected or found.
    pub msg: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error at {}:{}: {}", self.line, self.col, self.msg)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parse `src` as one JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    ///
    /// # Errors
    /// [`JsonError`] with the 1-based position of the first offending
    /// byte.
    pub fn parse(src: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: src.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.error("trailing characters after document"));
        }
        Ok(v)
    }

    /// Compact deterministic rendering: no whitespace, object fields in
    /// insertion order, floats via the same `{x}` formatting the report
    /// writers use.
    pub fn write(&self) -> String {
        let mut out = String::new();
        self.write_into(&mut out);
        out
    }

    fn write_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => {
                if x.is_finite() {
                    let _ = write!(out, "{x}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Json::Str(k.clone()).write_into(out);
                    out.push(':');
                    v.write_into(out);
                }
                out.push('}');
            }
        }
    }

    /// An empty object to build with [`Json::set`].
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Append (or replace) field `key`, preserving insertion order.
    /// Builder-style so wire encoders read as a field list.
    #[must_use]
    pub fn set(mut self, key: &str, value: impl Into<Json>) -> Json {
        let Json::Obj(fields) = &mut self else {
            panic!("Json::set on a non-object");
        };
        let value = value.into();
        match fields.iter_mut().find(|(k, _)| k == key) {
            Some((_, v)) => *v = value,
            None => fields.push((key.to_string(), value)),
        }
        self
    }

    /// A full-width `u64` rendered as a fixed 16-digit hex string —
    /// the wire form of [`crate::lab::PlanKey::fingerprint`] digests.
    pub fn fingerprint(fp: u64) -> Json {
        Json::Str(format!("{fp:016x}"))
    }

    /// Field `key` of an object, if present.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The numeric payload as an exact unsigned integer (rejects
    /// fractions, negatives, and anything above 2^53).
    pub fn as_u64(&self) -> Option<u64> {
        let x = self.as_f64()?;
        if (0.0..=9_007_199_254_740_992.0).contains(&x) && x.fract() == 0.0 {
            Some(x as u64)
        } else {
            None
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Num(x)
    }
}

impl From<u32> for Json {
    fn from(x: u32) -> Json {
        Json::Num(f64::from(x))
    }
}

impl From<u64> for Json {
    fn from(x: u64) -> Json {
        debug_assert!(
            x <= 9_007_199_254_740_992,
            "u64 above 2^53 must travel as Json::fingerprint"
        );
        Json::Num(x as f64)
    }
}

impl From<usize> for Json {
    fn from(x: usize) -> Json {
        Json::from(x as u64)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<Vec<Json>> for Json {
    fn from(items: Vec<Json>) -> Json {
        Json::Arr(items)
    }
}

/// Nesting depth cap: protects the daemon from stack exhaustion on
/// adversarially deep documents (the protocol never nests past ~6).
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, msg: impl Into<String>) -> JsonError {
        let mut line = 1u32;
        let mut col = 1u32;
        for &b in &self.bytes[..self.pos.min(self.bytes.len())] {
            if b == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        JsonError {
            line,
            col,
            msg: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.error("document nests too deeply"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.error(format!("unexpected character '{}'", c as char))),
            None => Err(self.error("unexpected end of document")),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(format!("expected '{word}'")))
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        match text.parse::<f64>() {
            Ok(x) if x.is_finite() => Ok(Json::Num(x)),
            _ => Err(self.error(format!("malformed number '{text}'"))),
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.error("malformed \\u escape"))?;
                            // Surrogate pairs are out of protocol scope;
                            // lone surrogates decode to the replacement
                            // character rather than failing the document.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.error("malformed escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy one UTF-8 scalar (input is a &str, so byte
                    // boundaries are trustworthy).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..]).unwrap();
                    let c = rest.chars().next().unwrap();
                    if (c as u32) < 0x20 {
                        return Err(self.error("unescaped control character in string"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields: Vec<(String, Json)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            match fields.iter_mut().find(|(k, _)| *k == key) {
                Some((_, v)) => *v = value,
                None => fields.push((key, value)),
            }
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_value_kind() {
        let src = r#"{"a":null,"b":true,"c":-1.5,"d":"x\ny","e":[1,2,[3]],"f":{"g":0}}"#;
        let v = Json::parse(src).unwrap();
        assert_eq!(v.write(), src, "compact writer is the parser's inverse");
        assert_eq!(v.get("b").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("c").and_then(Json::as_f64), Some(-1.5));
        assert_eq!(v.get("d").and_then(Json::as_str), Some("x\ny"));
        assert_eq!(
            v.get("e").and_then(Json::as_arr).map(<[Json]>::len),
            Some(3)
        );
    }

    #[test]
    fn field_order_is_insertion_order() {
        let v = Json::obj().set("z", 1.0).set("a", 2.0).set("z", 3.0);
        assert_eq!(v.write(), r#"{"z":3,"a":2}"#);
    }

    #[test]
    fn whitespace_is_tolerated_everywhere() {
        let v = Json::parse(" {\n\t\"k\" :\r [ 1 , 2 ] , \"m\" : { } }\n").unwrap();
        assert_eq!(v.write(), r#"{"k":[1,2],"m":{}}"#);
    }

    #[test]
    fn errors_carry_line_and_column() {
        let e = Json::parse("{\"a\": 1,\n  oops}").unwrap_err();
        assert_eq!((e.line, e.col), (2, 3), "{e}");
        assert!(Json::parse("").is_err());
        assert!(Json::parse("[1,2] extra").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\" 1}").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("1e999").is_err(), "non-finite numbers rejected");
    }

    #[test]
    fn deep_nesting_is_bounded_not_fatal() {
        let deep = "[".repeat(500) + &"]".repeat(500);
        let e = Json::parse(&deep).unwrap_err();
        assert!(e.msg.contains("deep"), "{e}");
    }

    #[test]
    fn u64_integers_round_trip_exactly() {
        let v = Json::parse("9007199254740992").unwrap();
        assert_eq!(v.as_u64(), Some(9_007_199_254_740_992));
        assert_eq!(Json::parse("1.5").unwrap().as_u64(), None);
        assert_eq!(Json::parse("-1").unwrap().as_u64(), None);
    }

    #[test]
    fn fingerprints_travel_as_fixed_width_hex() {
        let j = Json::fingerprint(0x00ab_cdef_0123_4567);
        assert_eq!(j.write(), r#""00abcdef01234567""#);
        let back = u64::from_str_radix(j.as_str().unwrap(), 16).unwrap();
        assert_eq!(back, 0x00ab_cdef_0123_4567);
    }

    #[test]
    fn escapes_cover_control_characters() {
        let v = Json::Str("a\"b\\c\u{1}\t".into());
        let s = v.write();
        assert_eq!(s, "\"a\\\"b\\\\c\\u0001\\t\"");
        assert_eq!(Json::parse(&s).unwrap(), v);
    }
}
