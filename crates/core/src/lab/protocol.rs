//! The lab's one typed query protocol.
//!
//! [`LabRequest`] and [`LabResponse`] are the *entire* public query
//! surface of [`QueryEngine`](super::QueryEngine): the old ad-hoc entry
//! points (`mean_elapsed_s`, `means`, `outcome`, public `run_batch`)
//! collapsed into one request enum handled by one method,
//! [`QueryEngine::handle`](super::QueryEngine::handle). The
//! [`wire`](super::wire) module serializes exactly these types, so an
//! in-process caller and a socket client of the
//! [`daemon`](super::daemon) execute the same code path.
//!
//! The response helpers ([`LabResponse::means`],
//! [`LabResponse::into_outcome`], ...) keep call sites as terse as the
//! old methods were, with the old panic semantics on configuration
//! errors.

use super::Query;
use crate::error::HarborError;
use crate::scenario::{Outcome, Scenario};
use crate::CacheStats;

/// One lab query: everything the engine can be asked, in-process or over
/// the wire.
pub enum LabRequest {
    /// Resolve (compile or fetch) a scenario's plan and describe it —
    /// no execution.
    Plan {
        /// The scenario to resolve (boxed: `Scenario` is large and the
        /// variants should stay size-balanced).
        scenario: Box<Scenario>,
    },
    /// Execute one scenario under one seed with full trace attribution —
    /// the lab-routed equivalent of [`Scenario::run`].
    Execute {
        /// The scenario to run (boxed: `Scenario` is large and the other
        /// variants are small).
        scenario: Box<Scenario>,
        /// The seed to run it under.
        seed: u64,
    },
    /// Execute many scenario × seed grids as one sharded batch.
    Batch {
        /// The queries, answered in submission order.
        queries: Vec<Query>,
    },
    /// Compile and run a `.hsim` campaign script server-side.
    Campaign {
        /// The script text (what `reproduce_all --script` reads from a
        /// file).
        script: String,
    },
    /// Report engine statistics (cache counters, per-shard skew,
    /// admission batching).
    Stats,
}

impl LabRequest {
    /// A [`LabRequest::Plan`] for `scenario`.
    pub fn plan(scenario: Scenario) -> LabRequest {
        LabRequest::Plan {
            scenario: Box::new(scenario),
        }
    }

    /// An [`LabRequest::Execute`] for `scenario` under `seed`.
    pub fn execute(scenario: Scenario, seed: u64) -> LabRequest {
        LabRequest::Execute {
            scenario: Box::new(scenario),
            seed,
        }
    }

    /// A [`LabRequest::Batch`] running every scenario over the same
    /// seeds.
    pub fn batch(scenarios: impl IntoIterator<Item = Scenario>, seeds: &[u64]) -> LabRequest {
        LabRequest::Batch {
            queries: scenarios
                .into_iter()
                .map(|s| Query::new(s, seeds))
                .collect(),
        }
    }
}

/// What the engine answers; variants mirror [`LabRequest`] kinds, plus
/// [`LabResponse::Error`] for requests that failed as a whole (batch
/// requests carry per-query errors inside [`LabResponse::Batch`]
/// instead).
#[derive(Debug)]
pub enum LabResponse {
    /// Answer to [`LabRequest::Plan`].
    Plan(PlanInfo),
    /// Answer to [`LabRequest::Execute`].
    Execute(Box<Outcome>),
    /// Answer to [`LabRequest::Batch`]: one result per query in
    /// submission order, outcomes in seed order.
    Batch(Vec<Result<Vec<Outcome>, HarborError>>),
    /// Answer to [`LabRequest::Campaign`].
    Campaign(CampaignReport),
    /// Answer to [`LabRequest::Stats`].
    Stats(EngineStats),
    /// The request failed as a whole (configuration, script, placement,
    /// build errors — every [`HarborError`] round-trips the wire).
    Error(HarborError),
}

impl LabResponse {
    /// The batch results, by value.
    ///
    /// # Panics
    /// Panics if this is not a [`LabResponse::Batch`].
    pub fn into_batch(self) -> Vec<Result<Vec<Outcome>, HarborError>> {
        match self {
            LabResponse::Batch(results) => results,
            LabResponse::Error(e) => panic!("scenario configuration: {e}"),
            other => panic!("expected a batch response, got {other:?}"),
        }
    }

    /// Mean elapsed seconds per batch query, in submission order — the
    /// reduction the paper's figures plot.
    ///
    /// # Panics
    /// Panics on configuration errors, like [`Scenario::run`], and if
    /// this is not a [`LabResponse::Batch`].
    pub fn means(self) -> Vec<f64> {
        self.into_batch()
            .into_iter()
            .map(|r| match r {
                Ok(outcomes) => {
                    let n = outcomes.len().max(1) as f64;
                    outcomes
                        .iter()
                        .map(|o| o.elapsed.as_secs_f64())
                        .sum::<f64>()
                        / n
                }
                Err(e) => panic!("scenario configuration: {e}"),
            })
            .collect()
    }

    /// The single outcome, by value.
    ///
    /// # Panics
    /// Panics on configuration errors, like [`Scenario::run`], and if
    /// this is not a [`LabResponse::Execute`].
    pub fn into_outcome(self) -> Outcome {
        match self {
            LabResponse::Execute(outcome) => *outcome,
            LabResponse::Error(e) => panic!("scenario configuration: {e}"),
            other => panic!("expected an execute response, got {other:?}"),
        }
    }

    /// The campaign report, by value.
    ///
    /// # Panics
    /// Panics on script errors and if this is not a
    /// [`LabResponse::Campaign`].
    pub fn into_campaign(self) -> CampaignReport {
        match self {
            LabResponse::Campaign(report) => report,
            LabResponse::Error(e) => panic!("campaign script: {e}"),
            other => panic!("expected a campaign response, got {other:?}"),
        }
    }

    /// The engine statistics, by value.
    ///
    /// # Panics
    /// Panics if this is not a [`LabResponse::Stats`].
    pub fn into_stats(self) -> EngineStats {
        match self {
            LabResponse::Stats(stats) => stats,
            other => panic!("expected a stats response, got {other:?}"),
        }
    }
}

/// What [`LabRequest::Plan`] answers: the resolved plan's identity and
/// shape, without executing anything.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanInfo {
    /// Canonical [`PlanKey`](super::PlanKey) fingerprint under the
    /// engine's taper fallback; `None` when the workload opted out of
    /// memoization.
    pub fingerprint: Option<u64>,
    /// The engine that will execute it (`"analytic"` / `"message-des"`).
    pub engine: String,
    /// Total MPI ranks the rank map places.
    pub ranks: u32,
    /// Whether the plan carries a deployment (image staging) phase.
    pub deployment: bool,
}

/// What [`LabRequest::Stats`] answers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineStats {
    /// Aggregate cache counters (what
    /// [`summary_line`](CacheStats::summary_line) prints).
    pub cache: CacheStats,
    /// Per-shard counters, in shard order — the Zipf hot-head skew.
    pub per_shard: Vec<CacheStats>,
    /// Executions served by admission batching.
    pub batched_executes: u64,
    /// Daemon front-end counters — `Some` only when the stats were
    /// served over the wire by a daemon (the in-process engine has no
    /// front end, and leaves this `None`).
    pub daemon: Option<DaemonStats>,
}

/// Front-end counters a serving daemon stamps onto wire-served
/// [`EngineStats`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DaemonStats {
    /// Serving model: `"reactor"` or `"threaded"`.
    pub mode: String,
    /// Accept-loop errors survived (EMFILE and friends).
    pub accept_errors: u64,
    /// Requests answered `503` because they arrived after shutdown
    /// began.
    pub late_503s: u64,
    /// Connections open when the stats were taken.
    pub open_conns: u64,
}

/// What [`LabRequest::Campaign`] answers: one result per `campaign`
/// block, in script order.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignReport {
    /// Per-campaign results.
    pub campaigns: Vec<CampaignResult>,
}

/// One campaign block's grid, fully executed.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignResult {
    /// The campaign's script name.
    pub name: String,
    /// One row per grid point, in sweep order.
    pub rows: Vec<CampaignRow>,
}

/// One executed grid point.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignRow {
    /// Sweep labels joined with `" / "` (or `"(base)"` for a sweepless
    /// campaign) — matches the `reproduce_all` table rows.
    pub label: String,
    /// Canonical plan-key fingerprint (0 if the workload opted out of
    /// memoization).
    pub fingerprint: u64,
    /// The measured result.
    pub kind: CampaignRowKind,
}

/// The measurement a campaign row carries: closed grids report the
/// paper's mean-elapsed reduction, open (arrival-process) campaigns
/// report throughput and queue-wait tails.
#[derive(Debug, Clone, PartialEq)]
pub enum CampaignRowKind {
    /// A closed run: mean solver elapsed over the campaign seeds.
    Closed {
        /// Mean elapsed seconds.
        mean_elapsed_s: f64,
    },
    /// An open run: the arrival process summed over the campaign seeds.
    Open {
        /// Jobs completed (all seeds).
        jobs: u64,
        /// Mean node utilization (averaged over seeds).
        utilization: f64,
        /// Queue-wait median, seconds (sketches merged across seeds).
        wait_p50_s: f64,
        /// Queue-wait p99, seconds.
        wait_p99_s: f64,
    },
}
