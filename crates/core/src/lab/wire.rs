//! Versioned JSON wire format for the lab protocol.
//!
//! Serializes exactly the [`protocol`](super::protocol) types — there is
//! no separate wire schema to drift from the in-process API. Every
//! message is one JSON object with a version field (`"v": 1`) and a
//! `"kind"` discriminant matching the [`LabRequest`]/[`LabResponse`]
//! variant; the [`daemon`](super::daemon) speaks nothing else.
//!
//! Encoding conventions, chosen for determinism and exact round-trips:
//!
//! - **Field order is fixed** (the hand-rolled [`Json`] writer preserves
//!   insertion order), so equal values encode to byte-identical strings
//!   — what the golden tests pin.
//! - **Durations travel as integer nanoseconds** (`*_ns`), the same
//!   `u64` the simulator counts in — no float rounding on the wire.
//! - **64-bit fingerprints travel as 16-digit hex strings** (JSON
//!   numbers are only exact to 2^53).
//! - **Clusters and workloads travel by registry name** (the same names
//!   the `.hsim` DSL resolves: `lenox`, `mn4`, `cfd-small`, ...); a
//!   scenario built on a hand-rolled cluster is not wire-encodable.
//! - **Errors round-trip typed**: script errors keep their stage,
//!   `line:col` span, and message exactly; runtime-unavailable keeps its
//!   runtime and cluster; placement/build errors travel as kind +
//!   rendered message and decode to [`HarborError::Remote`].

use super::protocol::{
    CampaignReport, CampaignResult, CampaignRow, CampaignRowKind, DaemonStats, EngineStats,
    LabRequest, LabResponse, PlanInfo,
};
use super::{CacheStats, Query};
use crate::error::HarborError;
use crate::json::Json;
use crate::open::{MixSpec, OpenSpec};
use crate::scenario::{EngineKind, Execution, Outcome, Scenario};
use crate::script::{ScriptError, ScriptStage, Span};
use harborsim_container::containment::Containment;
use harborsim_container::runtime::RuntimeKind;
use harborsim_des::SimDuration;
use harborsim_mpi::result::{CommBreakdown, LinkUsage, SimResult};
use harborsim_mpi::Placement;
use std::fmt;

/// The one protocol version this build speaks.
pub const WIRE_VERSION: u64 = 1;

/// Why a message cannot be encoded or decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// One-line diagnostic.
    pub msg: String,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "wire error: {}", self.msg)
    }
}

impl std::error::Error for WireError {}

impl From<crate::json::JsonError> for WireError {
    fn from(e: crate::json::JsonError) -> WireError {
        WireError { msg: e.to_string() }
    }
}

fn err<T>(msg: impl Into<String>) -> Result<T, WireError> {
    Err(WireError { msg: msg.into() })
}

/// Encode a request to its canonical wire string.
///
/// # Errors
/// Only scenarios built from the cluster/workload registries are
/// encodable (the wire names them by registry name).
pub fn encode_request(req: &LabRequest) -> Result<String, WireError> {
    let envelope = Json::obj().set("v", WIRE_VERSION);
    let json = match req {
        LabRequest::Plan { scenario } => envelope
            .set("kind", "plan")
            .set("scenario", encode_scenario(scenario)?),
        LabRequest::Execute { scenario, seed } => envelope
            .set("kind", "execute")
            .set("scenario", encode_scenario(scenario)?)
            .set("seed", *seed),
        LabRequest::Batch { queries } => {
            let mut arr = Vec::with_capacity(queries.len());
            for q in queries {
                arr.push(
                    Json::obj()
                        .set("scenario", encode_scenario(&q.scenario)?)
                        .set(
                            "seeds",
                            Json::Arr(q.seeds.iter().map(|&s| s.into()).collect()),
                        ),
                );
            }
            envelope.set("kind", "batch").set("queries", Json::Arr(arr))
        }
        LabRequest::Campaign { script } => envelope
            .set("kind", "campaign")
            .set("script", script.as_str()),
        LabRequest::Stats => envelope.set("kind", "stats"),
    };
    Ok(json.write())
}

/// Decode a request from its wire string.
///
/// # Errors
/// Malformed JSON, an unsupported version, an unknown kind, or any
/// out-of-registry name.
pub fn decode_request(src: &str) -> Result<LabRequest, WireError> {
    let json = Json::parse(src)?;
    check_version(&json)?;
    match get_str(&json, "kind")? {
        "plan" => Ok(LabRequest::plan(decode_scenario(get(&json, "scenario")?)?)),
        "execute" => Ok(LabRequest::Execute {
            scenario: Box::new(decode_scenario(get(&json, "scenario")?)?),
            seed: get_u64(&json, "seed")?,
        }),
        "batch" => {
            let mut queries = Vec::new();
            for q in get_arr(&json, "queries")? {
                let scenario = decode_scenario(get(q, "scenario")?)?;
                let mut seeds = Vec::new();
                for s in get_arr(q, "seeds")? {
                    seeds.push(s.as_u64().ok_or_else(|| WireError {
                        msg: "seeds must be unsigned integers".into(),
                    })?);
                }
                queries.push(Query { scenario, seeds });
            }
            Ok(LabRequest::Batch { queries })
        }
        "campaign" => Ok(LabRequest::Campaign {
            script: get_str(&json, "script")?.to_string(),
        }),
        "stats" => Ok(LabRequest::Stats),
        other => err(format!("unknown request kind `{other}`")),
    }
}

/// Encode a response to its canonical wire string. Responses are always
/// encodable (they carry no open-world types).
pub fn encode_response(resp: &LabResponse) -> String {
    let envelope = Json::obj().set("v", WIRE_VERSION);
    let json = match resp {
        LabResponse::Plan(info) => envelope.set("kind", "plan").set(
            "plan",
            Json::obj()
                .set(
                    "fingerprint",
                    match info.fingerprint {
                        Some(fp) => Json::fingerprint(fp),
                        None => Json::Null,
                    },
                )
                .set("engine", info.engine.as_str())
                .set("ranks", info.ranks)
                .set("deployment", info.deployment),
        ),
        LabResponse::Execute(outcome) => envelope
            .set("kind", "execute")
            .set("outcome", encode_outcome(outcome)),
        LabResponse::Batch(results) => envelope.set("kind", "batch").set(
            "results",
            Json::Arr(
                results
                    .iter()
                    .map(|r| match r {
                        Ok(outcomes) => Json::obj().set(
                            "ok",
                            Json::Arr(outcomes.iter().map(encode_outcome).collect()),
                        ),
                        Err(e) => Json::obj().set("err", encode_error(e)),
                    })
                    .collect(),
            ),
        ),
        LabResponse::Campaign(report) => envelope.set("kind", "campaign").set(
            "campaigns",
            Json::Arr(report.campaigns.iter().map(encode_campaign).collect()),
        ),
        LabResponse::Stats(stats) => {
            let json = envelope
                .set("kind", "stats")
                .set("cache", encode_cache_stats(&stats.cache))
                .set(
                    "per_shard",
                    Json::Arr(stats.per_shard.iter().map(encode_cache_stats).collect()),
                )
                .set("batched_executes", stats.batched_executes);
            // The daemon field is optional on the wire: in-process
            // stats omit it entirely, keeping their bytes pinned.
            match &stats.daemon {
                Some(d) => json.set("daemon", encode_daemon_stats(d)),
                None => json,
            }
        }
        LabResponse::Error(e) => envelope.set("kind", "error").set("error", encode_error(e)),
    };
    json.write()
}

/// Decode a response from its wire string.
///
/// # Errors
/// Malformed JSON, an unsupported version, or an unknown kind.
pub fn decode_response(src: &str) -> Result<LabResponse, WireError> {
    let json = Json::parse(src)?;
    check_version(&json)?;
    match get_str(&json, "kind")? {
        "plan" => {
            let p = get(&json, "plan")?;
            Ok(LabResponse::Plan(PlanInfo {
                fingerprint: match get(p, "fingerprint")? {
                    Json::Null => None,
                    j => Some(decode_fingerprint(j)?),
                },
                engine: get_str(p, "engine")?.to_string(),
                ranks: get_u64(p, "ranks")? as u32,
                deployment: get_bool(p, "deployment")?,
            }))
        }
        "execute" => Ok(LabResponse::Execute(Box::new(decode_outcome(get(
            &json, "outcome",
        )?)?))),
        "batch" => {
            let mut results = Vec::new();
            for r in get_arr(&json, "results")? {
                if let Some(ok) = r.get("ok") {
                    let mut outcomes = Vec::new();
                    for o in ok.as_arr().ok_or_else(|| WireError {
                        msg: "`ok` must be an array".into(),
                    })? {
                        outcomes.push(decode_outcome(o)?);
                    }
                    results.push(Ok(outcomes));
                } else {
                    results.push(Err(decode_error(get(r, "err")?)?));
                }
            }
            Ok(LabResponse::Batch(results))
        }
        "campaign" => {
            let mut campaigns = Vec::new();
            for c in get_arr(&json, "campaigns")? {
                campaigns.push(decode_campaign(c)?);
            }
            Ok(LabResponse::Campaign(CampaignReport { campaigns }))
        }
        "stats" => {
            let mut per_shard = Vec::new();
            for s in get_arr(&json, "per_shard")? {
                per_shard.push(decode_cache_stats(s)?);
            }
            let daemon = match json.get("daemon") {
                Some(d) => Some(decode_daemon_stats(d)?),
                None => None,
            };
            Ok(LabResponse::Stats(EngineStats {
                cache: decode_cache_stats(get(&json, "cache")?)?,
                per_shard,
                batched_executes: get_u64(&json, "batched_executes")?,
                daemon,
            }))
        }
        "error" => Ok(LabResponse::Error(decode_error(get(&json, "error")?)?)),
        other => err(format!("unknown response kind `{other}`")),
    }
}

// ---------------------------------------------------------------- helpers

fn check_version(json: &Json) -> Result<(), WireError> {
    match get_u64(json, "v")? {
        WIRE_VERSION => Ok(()),
        v => err(format!(
            "unsupported wire version {v} (this build speaks {WIRE_VERSION})"
        )),
    }
}

fn get<'a>(json: &'a Json, key: &str) -> Result<&'a Json, WireError> {
    json.get(key).ok_or_else(|| WireError {
        msg: format!("missing field `{key}`"),
    })
}

fn get_str<'a>(json: &'a Json, key: &str) -> Result<&'a str, WireError> {
    get(json, key)?.as_str().ok_or_else(|| WireError {
        msg: format!("field `{key}` must be a string"),
    })
}

fn get_u64(json: &Json, key: &str) -> Result<u64, WireError> {
    get(json, key)?.as_u64().ok_or_else(|| WireError {
        msg: format!("field `{key}` must be an unsigned integer"),
    })
}

fn get_f64(json: &Json, key: &str) -> Result<f64, WireError> {
    get(json, key)?.as_f64().ok_or_else(|| WireError {
        msg: format!("field `{key}` must be a number"),
    })
}

fn get_bool(json: &Json, key: &str) -> Result<bool, WireError> {
    get(json, key)?.as_bool().ok_or_else(|| WireError {
        msg: format!("field `{key}` must be a boolean"),
    })
}

fn get_arr<'a>(json: &'a Json, key: &str) -> Result<&'a [Json], WireError> {
    get(json, key)?.as_arr().ok_or_else(|| WireError {
        msg: format!("field `{key}` must be an array"),
    })
}

fn decode_fingerprint(json: &Json) -> Result<u64, WireError> {
    let s = json.as_str().ok_or_else(|| WireError {
        msg: "a fingerprint must be a hex string".into(),
    })?;
    if s.len() != 16 {
        return err("a fingerprint must be 16 hex digits");
    }
    u64::from_str_radix(s, 16).map_err(|_| WireError {
        msg: "a fingerprint must be 16 hex digits".into(),
    })
}

fn duration_ns(json: &Json, key: &str) -> Result<SimDuration, WireError> {
    Ok(SimDuration::from_nanos(get_u64(json, key)?))
}

// ------------------------------------------------------------- scenarios

/// The cluster registry the wire names clusters by — same canonical
/// names and aliases as the `.hsim` DSL.
fn cluster_name(cluster: &harborsim_hw::ClusterSpec) -> Option<&'static str> {
    let debug = format!("{cluster:?}");
    [
        ("lenox", harborsim_hw::presets::lenox()),
        ("marenostrum4", harborsim_hw::presets::marenostrum4()),
        ("cte-power", harborsim_hw::presets::cte_power()),
        ("thunderx", harborsim_hw::presets::thunderx()),
    ]
    .into_iter()
    .find(|(_, preset)| format!("{preset:?}") == debug)
    .map(|(name, _)| name)
}

fn cluster_by_name(name: &str) -> Result<harborsim_hw::ClusterSpec, WireError> {
    match name {
        "lenox" => Ok(harborsim_hw::presets::lenox()),
        "marenostrum4" | "mn4" => Ok(harborsim_hw::presets::marenostrum4()),
        "cte-power" | "cte" => Ok(harborsim_hw::presets::cte_power()),
        "thunderx" => Ok(harborsim_hw::presets::thunderx()),
        other => err(format!("unknown cluster `{other}`")),
    }
}

/// The workload registry names, resolved by comparing memo keys (a
/// workload's identity on the wire is its registry name).
const WORKLOAD_NAMES: [&str; 6] = [
    "cfd-small",
    "cfd-lenox",
    "cfd-cte",
    "fsi-small",
    "fsi-mn4",
    "chain-halo",
];

fn workload_name(case: &dyn harborsim_alya::workload::AlyaCase) -> Option<&'static str> {
    let key = case.memo_key()?;
    WORKLOAD_NAMES.into_iter().find(|name| {
        crate::workloads::by_name(name)
            .is_some_and(|w| w.memo_key().as_deref() == Some(key.as_str()))
    })
}

fn env_name(env: Execution) -> Result<&'static str, WireError> {
    match (env.runtime, env.containment) {
        (RuntimeKind::BareMetal, Containment::SystemSpecific) => Ok("bare-metal"),
        (RuntimeKind::Docker, Containment::SelfContained) => Ok("docker"),
        (RuntimeKind::Shifter, Containment::SelfContained) => Ok("shifter"),
        (RuntimeKind::Singularity, Containment::SelfContained) => Ok("singularity self-contained"),
        (RuntimeKind::Singularity, Containment::SystemSpecific) => {
            Ok("singularity system-specific")
        }
        (runtime, containment) => err(format!(
            "execution environment {runtime:?}/{containment:?} has no wire name"
        )),
    }
}

fn env_by_name(name: &str) -> Result<Execution, WireError> {
    match name {
        "bare-metal" => Ok(Execution::bare_metal()),
        "docker" => Ok(Execution::docker()),
        "shifter" => Ok(Execution::shifter()),
        "singularity self-contained" => Ok(Execution::singularity_self_contained()),
        "singularity system-specific" => Ok(Execution::singularity_system_specific()),
        other => err(format!("unknown execution environment `{other}`")),
    }
}

fn encode_scenario(s: &Scenario) -> Result<Json, WireError> {
    let cluster = cluster_name(&s.cluster).ok_or_else(|| WireError {
        msg: "only the four paper-cluster presets are wire-encodable".into(),
    })?;
    let workload = workload_name(s.case.as_ref()).ok_or_else(|| WireError {
        msg: "only registry workloads are wire-encodable".into(),
    })?;
    let mut json = Json::obj()
        .set("cluster", cluster)
        .set("workload", workload)
        .set("env", env_name(s.env)?)
        .set("nodes", s.nodes)
        .set("rpn", s.ranks_per_node)
        .set("tpr", s.threads_per_rank)
        .set(
            "engine",
            match s.engine {
                EngineKind::Analytic => Json::obj().set("kind", "analytic"),
                EngineKind::Des { max_steps_per_kind } => Json::obj()
                    .set("kind", "des")
                    .set("max_steps_per_kind", max_steps_per_kind),
            },
        )
        .set("deploy", s.deploy)
        .set(
            "placement",
            match s.placement {
                Placement::Block => "block",
                Placement::RoundRobin => "round-robin",
            },
        )
        .set(
            "taper",
            match s.spine_taper {
                Some(t) => Json::from(t),
                None => Json::Null,
            },
        )
        .set(
            "degraded",
            Json::Arr(
                s.degraded_uplinks
                    .iter()
                    .map(|&(node, factor)| Json::Arr(vec![Json::from(node), Json::from(factor)]))
                    .collect(),
            ),
        )
        .set("shards", s.shards);
    json = json.set(
        "open",
        match &s.open {
            Some(spec) => encode_open(spec)?,
            None => Json::Null,
        },
    );
    Ok(json)
}

fn decode_scenario(json: &Json) -> Result<Scenario, WireError> {
    let cluster = cluster_by_name(get_str(json, "cluster")?)?;
    let workload_name = get_str(json, "workload")?;
    let case = crate::workloads::by_name(workload_name).ok_or_else(|| WireError {
        msg: format!("unknown workload `{workload_name}`"),
    })?;
    let mut scenario = Scenario {
        cluster,
        case,
        env: env_by_name(get_str(json, "env")?)?,
        nodes: get_u64(json, "nodes")? as u32,
        ranks_per_node: get_u64(json, "rpn")? as u32,
        threads_per_rank: get_u64(json, "tpr")? as u32,
        engine: {
            let e = get(json, "engine")?;
            match get_str(e, "kind")? {
                "analytic" => EngineKind::Analytic,
                "des" => EngineKind::Des {
                    max_steps_per_kind: get_u64(e, "max_steps_per_kind")? as u32,
                },
                other => return err(format!("unknown engine kind `{other}`")),
            }
        },
        deploy: get_bool(json, "deploy")?,
        placement: match get_str(json, "placement")? {
            "block" => Placement::Block,
            "round-robin" => Placement::RoundRobin,
            other => return err(format!("unknown placement `{other}`")),
        },
        spine_taper: match get(json, "taper")? {
            Json::Null => None,
            t => Some(t.as_f64().ok_or_else(|| WireError {
                msg: "`taper` must be a number".into(),
            })?),
        },
        degraded_uplinks: Vec::new(),
        shards: get_u64(json, "shards")? as u32,
        open: match get(json, "open")? {
            Json::Null => None,
            spec => Some(decode_open(spec)?),
        },
    };
    for pair in get_arr(json, "degraded")? {
        let pair = pair
            .as_arr()
            .filter(|p| p.len() == 2)
            .ok_or_else(|| WireError {
                msg: "`degraded` entries must be [node, factor] pairs".into(),
            })?;
        let node = pair[0].as_u64().ok_or_else(|| WireError {
            msg: "degraded node must be an unsigned integer".into(),
        })?;
        let factor = pair[1].as_f64().ok_or_else(|| WireError {
            msg: "degraded factor must be a number".into(),
        })?;
        scenario.degraded_uplinks.push((node as u32, factor));
    }
    Ok(scenario)
}

fn encode_open(spec: &OpenSpec) -> Result<Json, WireError> {
    let mut envs = Vec::with_capacity(spec.env_mix.values.len());
    for &env in &spec.env_mix.values {
        envs.push(Json::from(env_name(env)?));
    }
    Ok(Json::obj()
        .set("rate_per_s", spec.rate_per_s)
        .set("horizon_s", spec.horizon_s)
        .set("tenants", spec.tenants)
        .set(
            "node_mix",
            Json::obj().set("s", spec.node_mix.s).set(
                "values",
                Json::Arr(spec.node_mix.values.iter().map(|&v| v.into()).collect()),
            ),
        )
        .set(
            "workload_mix",
            Json::obj().set("s", spec.workload_mix.s).set(
                "values",
                Json::Arr(
                    spec.workload_mix
                        .values
                        .iter()
                        .map(|v| v.as_str().into())
                        .collect(),
                ),
            ),
        )
        .set(
            "env_mix",
            Json::obj()
                .set("s", spec.env_mix.s)
                .set("values", Json::Arr(envs)),
        ))
}

fn decode_open(json: &Json) -> Result<OpenSpec, WireError> {
    let node_mix = get(json, "node_mix")?;
    let workload_mix = get(json, "workload_mix")?;
    let env_mix = get(json, "env_mix")?;
    let mut nodes = Vec::new();
    for v in get_arr(node_mix, "values")? {
        nodes.push(v.as_u64().ok_or_else(|| WireError {
            msg: "node mix values must be unsigned integers".into(),
        })? as u32);
    }
    let mut workloads = Vec::new();
    for v in get_arr(workload_mix, "values")? {
        workloads.push(
            v.as_str()
                .ok_or_else(|| WireError {
                    msg: "workload mix values must be strings".into(),
                })?
                .to_string(),
        );
    }
    let mut envs = Vec::new();
    for v in get_arr(env_mix, "values")? {
        envs.push(env_by_name(v.as_str().ok_or_else(|| WireError {
            msg: "env mix values must be strings".into(),
        })?)?);
    }
    Ok(OpenSpec {
        rate_per_s: get_f64(json, "rate_per_s")?,
        horizon_s: get_f64(json, "horizon_s")?,
        tenants: get_u64(json, "tenants")? as u32,
        node_mix: MixSpec {
            s: get_f64(node_mix, "s")?,
            values: nodes,
        },
        workload_mix: MixSpec {
            s: get_f64(workload_mix, "s")?,
            values: workloads,
        },
        env_mix: MixSpec {
            s: get_f64(env_mix, "s")?,
            values: envs,
        },
    })
}

// -------------------------------------------------------------- outcomes

fn encode_outcome(outcome: &Outcome) -> Json {
    let r = &outcome.result;
    let mut json = Json::obj()
        .set("elapsed_ns", outcome.elapsed.as_nanos())
        .set(
            "result",
            Json::obj()
                .set("elapsed_ns", r.elapsed.as_nanos())
                .set("compute_ns", r.compute.as_nanos())
                .set(
                    "comm",
                    Json::obj()
                        .set("halo_ns", r.comm.halo.as_nanos())
                        .set("allreduce_ns", r.comm.allreduce.as_nanos())
                        .set("pairs_ns", r.comm.pairs.as_nanos())
                        .set("other_ns", r.comm.other.as_nanos()),
                )
                .set("inter_node_msgs", r.inter_node_msgs)
                .set("intra_node_msgs", r.intra_node_msgs)
                .set("inter_node_bytes", r.inter_node_bytes)
                .set(
                    "links",
                    Json::Arr(
                        r.links
                            .iter()
                            .map(|l| {
                                Json::obj()
                                    .set("label", l.label.as_str())
                                    .set("busy_s", l.busy_s)
                                    .set("bytes", l.bytes)
                            })
                            .collect(),
                    ),
                )
                .set("engine", r.engine),
        );
    json = json.set(
        "deployment",
        match &outcome.deployment {
            Some(d) => Json::obj()
                .set("makespan_ns", d.makespan.as_nanos())
                .set("first_ready_ns", d.first_ready.as_nanos())
                .set("mean_ready_s", d.mean_ready_s)
                .set("gateway_seconds", d.gateway_seconds)
                .set("bytes_pulled", d.bytes_pulled)
                .set("bytes_from_pfs", d.bytes_from_pfs)
                .set("image_bytes", d.image_bytes),
            None => Json::Null,
        },
    );
    json
}

fn decode_outcome(json: &Json) -> Result<Outcome, WireError> {
    let r = get(json, "result")?;
    let comm = get(r, "comm")?;
    let mut links = Vec::new();
    for l in get_arr(r, "links")? {
        links.push(LinkUsage {
            label: get_str(l, "label")?.to_string(),
            busy_s: get_f64(l, "busy_s")?,
            bytes: get_u64(l, "bytes")?,
        });
    }
    let engine = match get_str(r, "engine")? {
        "analytic" => "analytic",
        "des" => "des",
        other => return err(format!("unknown result engine `{other}`")),
    };
    Ok(Outcome {
        elapsed: duration_ns(json, "elapsed_ns")?,
        result: SimResult {
            elapsed: duration_ns(r, "elapsed_ns")?,
            compute: duration_ns(r, "compute_ns")?,
            comm: CommBreakdown {
                halo: duration_ns(comm, "halo_ns")?,
                allreduce: duration_ns(comm, "allreduce_ns")?,
                pairs: duration_ns(comm, "pairs_ns")?,
                other: duration_ns(comm, "other_ns")?,
            },
            inter_node_msgs: get_u64(r, "inter_node_msgs")?,
            intra_node_msgs: get_u64(r, "intra_node_msgs")?,
            inter_node_bytes: get_u64(r, "inter_node_bytes")?,
            links,
            engine,
        },
        deployment: match get(json, "deployment")? {
            Json::Null => None,
            d => Some(harborsim_container::deploy::DeploymentReport {
                makespan: duration_ns(d, "makespan_ns")?,
                first_ready: duration_ns(d, "first_ready_ns")?,
                mean_ready_s: get_f64(d, "mean_ready_s")?,
                gateway_seconds: get_f64(d, "gateway_seconds")?,
                bytes_pulled: get_u64(d, "bytes_pulled")?,
                bytes_from_pfs: get_u64(d, "bytes_from_pfs")?,
                image_bytes: get_u64(d, "image_bytes")?,
            }),
        },
    })
}

// ------------------------------------------------------------- campaigns

fn encode_campaign(c: &CampaignResult) -> Json {
    Json::obj().set("name", c.name.as_str()).set(
        "rows",
        Json::Arr(
            c.rows
                .iter()
                .map(|row| {
                    let json = Json::obj()
                        .set("label", row.label.as_str())
                        .set("fingerprint", Json::fingerprint(row.fingerprint));
                    match &row.kind {
                        CampaignRowKind::Closed { mean_elapsed_s } => {
                            json.set("closed", Json::obj().set("mean_elapsed_s", *mean_elapsed_s))
                        }
                        CampaignRowKind::Open {
                            jobs,
                            utilization,
                            wait_p50_s,
                            wait_p99_s,
                        } => json.set(
                            "open",
                            Json::obj()
                                .set("jobs", *jobs)
                                .set("utilization", *utilization)
                                .set("wait_p50_s", *wait_p50_s)
                                .set("wait_p99_s", *wait_p99_s),
                        ),
                    }
                })
                .collect(),
        ),
    )
}

fn decode_campaign(json: &Json) -> Result<CampaignResult, WireError> {
    let mut rows = Vec::new();
    for row in get_arr(json, "rows")? {
        let kind = if let Some(closed) = row.get("closed") {
            CampaignRowKind::Closed {
                mean_elapsed_s: get_f64(closed, "mean_elapsed_s")?,
            }
        } else {
            let open = get(row, "open")?;
            CampaignRowKind::Open {
                jobs: get_u64(open, "jobs")?,
                utilization: get_f64(open, "utilization")?,
                wait_p50_s: get_f64(open, "wait_p50_s")?,
                wait_p99_s: get_f64(open, "wait_p99_s")?,
            }
        };
        rows.push(CampaignRow {
            label: get_str(row, "label")?.to_string(),
            fingerprint: decode_fingerprint(get(row, "fingerprint")?)?,
            kind,
        });
    }
    Ok(CampaignResult {
        name: get_str(json, "name")?.to_string(),
        rows,
    })
}

// ----------------------------------------------------------------- stats

fn encode_cache_stats(s: &CacheStats) -> Json {
    Json::obj()
        .set("hits", s.hits)
        .set("misses", s.misses)
        .set("waits", s.waits)
        .set("uncached", s.uncached)
        .set("contended", s.contended)
        .set("entries", s.entries)
}

fn decode_cache_stats(json: &Json) -> Result<CacheStats, WireError> {
    Ok(CacheStats {
        hits: get_u64(json, "hits")?,
        misses: get_u64(json, "misses")?,
        waits: get_u64(json, "waits")?,
        uncached: get_u64(json, "uncached")?,
        contended: get_u64(json, "contended")?,
        entries: get_u64(json, "entries")? as usize,
    })
}

fn encode_daemon_stats(d: &DaemonStats) -> Json {
    Json::obj()
        .set("mode", d.mode.as_str())
        .set("accept_errors", d.accept_errors)
        .set("late_503s", d.late_503s)
        .set("open_conns", d.open_conns)
}

fn decode_daemon_stats(json: &Json) -> Result<DaemonStats, WireError> {
    Ok(DaemonStats {
        mode: get_str(json, "mode")?.to_string(),
        accept_errors: get_u64(json, "accept_errors")?,
        late_503s: get_u64(json, "late_503s")?,
        open_conns: get_u64(json, "open_conns")?,
    })
}

// ---------------------------------------------------------------- errors

fn encode_error(e: &HarborError) -> Json {
    match e {
        HarborError::Script(se) => Json::obj()
            .set("type", "script")
            .set("stage", se.stage.to_string())
            .set("line", se.span.line)
            .set("col", se.span.col)
            .set("msg", se.msg.as_str()),
        HarborError::RuntimeUnavailable { runtime, cluster } => Json::obj()
            .set("type", "runtime-unavailable")
            .set("runtime", runtime.as_str())
            .set("cluster", cluster.as_str()),
        HarborError::Placement(p) => Json::obj()
            .set("type", "placement")
            .set("msg", p.to_string()),
        HarborError::Build(b) => Json::obj().set("type", "build").set("msg", b.to_string()),
        HarborError::Remote { kind, msg } => Json::obj()
            .set("type", kind.as_str())
            .set("msg", msg.as_str()),
    }
}

fn decode_error(json: &Json) -> Result<HarborError, WireError> {
    match get_str(json, "type")? {
        "script" => Ok(HarborError::Script(ScriptError {
            stage: match get_str(json, "stage")? {
                "lex" => ScriptStage::Lex,
                "parse" => ScriptStage::Parse,
                "compile" => ScriptStage::Compile,
                other => return err(format!("unknown script stage `{other}`")),
            },
            span: Span {
                line: get_u64(json, "line")? as u32,
                col: get_u64(json, "col")? as u32,
            },
            msg: get_str(json, "msg")?.to_string(),
        })),
        "runtime-unavailable" => Ok(HarborError::RuntimeUnavailable {
            runtime: get_str(json, "runtime")?.to_string(),
            cluster: get_str(json, "cluster")?.to_string(),
        }),
        kind => Ok(HarborError::Remote {
            kind: kind.to_string(),
            msg: get_str(json, "msg")?.to_string(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads;
    use harborsim_hw::presets;

    fn scenario() -> Scenario {
        Scenario::new(presets::lenox(), workloads::artery_cfd_small())
            .execution(Execution::singularity_self_contained())
            .nodes(4)
            .ranks_per_node(14)
    }

    #[test]
    fn scenarios_round_trip_every_knob() {
        let s = scenario()
            .threads_per_rank(2)
            .engine(EngineKind::Des {
                max_steps_per_kind: 50,
            })
            .with_deployment()
            .placement(Placement::RoundRobin)
            .spine_taper(0.66)
            .degrade_node_uplink(3, 0.1)
            .shards(4);
        let key = super::super::PlanKey::of(&s, None).unwrap();
        let json = encode_scenario(&s).unwrap();
        let back = decode_scenario(&json).unwrap();
        let back_key = super::super::PlanKey::of(&back, None).unwrap();
        assert_eq!(key, back_key, "wire round-trip must preserve the plan key");
        // and the encoding itself is deterministic
        assert_eq!(json.write(), encode_scenario(&back).unwrap().write());
    }

    #[test]
    fn open_specs_round_trip() {
        let s = scenario().open_campaign(OpenSpec {
            rate_per_s: 0.04,
            horizon_s: 900.0,
            tenants: 4,
            node_mix: MixSpec {
                s: 1.2,
                values: vec![1, 2],
            },
            workload_mix: MixSpec::single("cfd-small".to_string()),
            env_mix: MixSpec {
                s: 1.1,
                values: vec![Execution::docker(), Execution::shifter()],
            },
        });
        let key = super::super::PlanKey::of(&s, None).unwrap();
        let back = decode_scenario(&encode_scenario(&s).unwrap()).unwrap();
        assert_eq!(key, super::super::PlanKey::of(&back, None).unwrap());
    }

    #[test]
    fn custom_clusters_are_rejected_not_garbled() {
        let mut custom = presets::lenox();
        custom.node_count += 1;
        let s = Scenario::new(custom, workloads::artery_cfd_small());
        assert!(encode_scenario(&s).is_err());
    }

    #[test]
    fn errors_round_trip_typed() {
        let script = HarborError::Script(ScriptError {
            stage: ScriptStage::Compile,
            span: Span { line: 3, col: 11 },
            msg: "unknown cluster `atlantis`".into(),
        });
        let rt = HarborError::RuntimeUnavailable {
            runtime: "Docker".into(),
            cluster: "MareNostrum4".into(),
        };
        for e in [&script, &rt] {
            let back = decode_error(&encode_error(e)).unwrap();
            assert_eq!(&back, e, "typed errors must round-trip exactly");
        }
        // placement errors degrade to Remote but keep the rendered text
        let placement = HarborError::Placement(harborsim_hw::PlacementError::ZeroDimension);
        let back = decode_error(&encode_error(&placement)).unwrap();
        match &back {
            HarborError::Remote { kind, msg } => {
                assert_eq!(kind, "placement");
                assert_eq!(msg, &placement.to_string());
            }
            other => panic!("expected a remote error, got {other:?}"),
        }
        assert_eq!(back.to_string(), placement.to_string());
    }

    #[test]
    fn requests_survive_encode_decode() {
        let req = LabRequest::batch([scenario(), scenario().nodes(2)], &[1, 2, 3]);
        let wire = encode_request(&req).unwrap();
        let back = decode_request(&wire).unwrap();
        // re-encoding the decoded request is byte-identical
        assert_eq!(encode_request(&back).unwrap(), wire);
        let LabRequest::Batch { queries } = back else {
            panic!("kind must survive");
        };
        assert_eq!(queries.len(), 2);
        assert_eq!(queries[0].seeds, vec![1, 2, 3]);
    }

    #[test]
    fn version_mismatches_are_rejected() {
        let msg = encode_request(&LabRequest::Stats).unwrap();
        let bumped = msg.replace("\"v\":1", "\"v\":2");
        // `Scenario` carries boxed workloads and has no `Debug`, so
        // requests don't either: match instead of `unwrap_err`
        let e = match decode_request(&bumped) {
            Err(e) => e,
            Ok(_) => panic!("a future wire version must be rejected"),
        };
        assert!(e.msg.contains("version"), "{e}");
    }
}
