//! The resident lab daemon: a hand-rolled HTTP/1.1 front end over the
//! [`wire`] protocol.
//!
//! Fully in-tree like the rest of the vendored stack — a
//! [`std::net::TcpListener`], a resident
//! [`WorkerPool`] of connection handlers,
//! and a minimal HTTP/1.1 server loop (keep-alive, `Content-Length`
//! framing, bounded header/body sizes, per-connection read timeouts).
//! Three routes:
//!
//! | route | body | answer |
//! |---|---|---|
//! | `POST /v1/lab` | a wire-encoded [`LabRequest`] | the wire-encoded [`LabResponse`] |
//! | `GET /v1/stats` | — | the wire-encoded stats response |
//! | `POST /v1/shutdown` | — | final stats; then the daemon drains and exits |
//!
//! Binding [`warm_starts`](super::QueryEngine::warm_start) the engine —
//! route tables and job profiles for the four paper clusters are
//! compiled before the first request arrives — and shutdown is
//! cooperative: the handler sets a flag and self-connects to unblock
//! the accept loop, so no thread is ever killed mid-request.
//!
//! [`LabClient`] is the matching blocking client (one keep-alive
//! connection); the load generator and the integration tests drive the
//! daemon through it, exercising the same code path as any external
//! HTTP client.

use super::protocol::{LabRequest, LabResponse};
use super::{wire, QueryEngine};
use harborsim_par::WorkerPool;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Most bytes a request head (request line + headers) may occupy.
const MAX_HEAD_BYTES: usize = 8 * 1024;
/// Most bytes a request or response body may occupy (a big batch of
/// outcomes fits comfortably; a runaway client does not).
const MAX_BODY_BYTES: usize = 8 * 1024 * 1024;
/// Per-connection socket read timeout.
const READ_TIMEOUT: Duration = Duration::from_secs(10);

struct Shared {
    engine: Arc<QueryEngine>,
    stop: AtomicBool,
    addr: SocketAddr,
}

impl Shared {
    /// Flag the accept loop down and self-connect to unblock it.
    fn request_stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
    }
}

/// A bound-but-not-yet-serving lab daemon.
pub struct LabDaemon {
    listener: TcpListener,
    shared: Arc<Shared>,
    workers: usize,
}

/// A handle to a daemon serving on a background thread.
pub struct DaemonHandle {
    shared: Arc<Shared>,
    thread: std::thread::JoinHandle<()>,
}

impl LabDaemon {
    /// Bind to `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// warm-start `engine`'s plan cache for the four paper clusters.
    /// `workers` is the resident connection-handler pool size.
    ///
    /// # Errors
    /// Socket errors from bind.
    pub fn bind(addr: &str, engine: Arc<QueryEngine>, workers: usize) -> io::Result<LabDaemon> {
        engine.warm_start();
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        Ok(LabDaemon {
            listener,
            shared: Arc::new(Shared {
                engine,
                stop: AtomicBool::new(false),
                addr,
            }),
            workers,
        })
    }

    /// The bound address (resolves the ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Serve until a `POST /v1/shutdown` arrives (or
    /// [`DaemonHandle::shutdown`] is called on a spawned daemon).
    /// Consumes the daemon; queued requests drain before return.
    pub fn serve(self) {
        let pool = WorkerPool::new(self.workers);
        loop {
            let stream = match self.listener.accept() {
                Ok((stream, _)) => stream,
                Err(_) => continue,
            };
            if self.shared.stop.load(Ordering::SeqCst) {
                break;
            }
            let shared = Arc::clone(&self.shared);
            pool.submit(move || handle_connection(stream, &shared));
        }
        drop(pool); // joins: every accepted connection finishes
    }

    /// Serve on a background thread; the handle shuts it down.
    pub fn spawn(self) -> DaemonHandle {
        let shared = Arc::clone(&self.shared);
        let thread = std::thread::spawn(move || self.serve());
        DaemonHandle { shared, thread }
    }
}

impl DaemonHandle {
    /// The serving address.
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The engine behind the daemon (for in-process counter assertions).
    pub fn engine(&self) -> &QueryEngine {
        &self.shared.engine
    }

    /// Stop accepting, drain in-flight connections, and join.
    pub fn shutdown(self) {
        self.shared.request_stop();
        let _ = self.thread.join();
    }
}

/// Serve one connection: HTTP/1.1 requests until the peer closes, asks
/// to close, errors, or times out.
fn handle_connection(stream: TcpStream, shared: &Shared) {
    let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
    let _ = stream.set_nodelay(true);
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut writer = stream;
    loop {
        let (request_line, headers, body) = match read_request(&mut reader) {
            Ok(Some(msg)) => msg,
            Ok(None) => return, // clean close between requests
            Err(_) => return,
        };
        let keep_alive =
            !header(&headers, "connection").is_some_and(|v| v.eq_ignore_ascii_case("close"));
        let mut parts = request_line.split_whitespace();
        let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
        let (status, response_body) = route(method, path, &body, shared);
        if write_response(&mut writer, status, &response_body).is_err() {
            return;
        }
        if !keep_alive || shared.stop.load(Ordering::SeqCst) {
            return;
        }
    }
}

/// Dispatch one request to the engine; the response body is always a
/// wire-encoded [`LabResponse`].
fn route(method: &str, path: &str, body: &[u8], shared: &Shared) -> (u16, String) {
    match (method, path) {
        ("POST", "/v1/lab") => {
            let text = match std::str::from_utf8(body) {
                Ok(text) => text,
                Err(_) => return (400, wire_error("request body is not UTF-8")),
            };
            match wire::decode_request(text) {
                Ok(req) => (200, wire::encode_response(&shared.engine.handle(req))),
                Err(e) => (400, wire_error(&e.msg)),
            }
        }
        ("GET", "/v1/stats") => (
            200,
            wire::encode_response(&shared.engine.handle(LabRequest::Stats)),
        ),
        ("POST", "/v1/shutdown") => {
            let stats = wire::encode_response(&shared.engine.handle(LabRequest::Stats));
            shared.request_stop();
            (200, stats)
        }
        _ => (404, wire_error(&format!("no route {method} {path}"))),
    }
}

/// A wire-encoded error response (decodes to
/// [`HarborError::Remote`](crate::error::HarborError::Remote) with kind
/// `"wire"`).
fn wire_error(msg: &str) -> String {
    wire::encode_response(&LabResponse::Error(crate::error::HarborError::Remote {
        kind: "wire".to_string(),
        msg: msg.to_string(),
    }))
}

/// Read one HTTP message head + body. `Ok(None)` on clean EOF before
/// the first byte (keep-alive peer went away).
#[allow(clippy::type_complexity)]
fn read_request(
    reader: &mut BufReader<TcpStream>,
) -> io::Result<Option<(String, Vec<(String, String)>, Vec<u8>)>> {
    let mut head_bytes = 0usize;
    let mut request_line = String::new();
    if reader.read_line(&mut request_line)? == 0 {
        return Ok(None);
    }
    head_bytes += request_line.len();
    let request_line = request_line.trim_end().to_string();
    let mut headers = Vec::new();
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "eof in headers",
            ));
        }
        head_bytes += line.len();
        if head_bytes > MAX_HEAD_BYTES {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "header too large",
            ));
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        }
    }
    let length: usize = header(&headers, "content-length")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    if length > MAX_BODY_BYTES {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "body too large"));
    }
    let mut body = vec![0u8; length];
    reader.read_exact(&mut body)?;
    Ok(Some((request_line, headers, body)))
}

fn header<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    headers
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| v.as_str())
}

fn write_response(writer: &mut TcpStream, status: u16, body: &str) -> io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        _ => "Error",
    };
    write!(
        writer,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )?;
    writer.flush()
}

/// A blocking lab client over one keep-alive connection — what the load
/// generator, the CI smoke probe, and the integration tests speak.
pub struct LabClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    addr: SocketAddr,
}

impl LabClient {
    /// Connect to a serving daemon.
    ///
    /// # Errors
    /// Socket errors from connect.
    pub fn connect(addr: SocketAddr) -> io::Result<LabClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(60)))?;
        stream.set_nodelay(true)?;
        Ok(LabClient {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
            addr,
        })
    }

    /// Send one typed request and wait for the typed response.
    ///
    /// # Errors
    /// Socket errors, non-encodable requests, and undecodable responses
    /// (all as [`io::Error`] — a wire daemon is an I/O device).
    pub fn query(&mut self, req: &LabRequest) -> io::Result<LabResponse> {
        let body = wire::encode_request(req).map_err(io::Error::other)?;
        self.post("/v1/lab", &body)
    }

    /// Fetch engine statistics.
    ///
    /// # Errors
    /// As [`LabClient::query`].
    pub fn stats(&mut self) -> io::Result<LabResponse> {
        write!(
            self.writer,
            "GET /v1/stats HTTP/1.1\r\nHost: {}\r\n\r\n",
            self.addr
        )?;
        self.writer.flush()?;
        self.read_body()
    }

    /// Ask the daemon to shut down; returns its final stats response.
    ///
    /// # Errors
    /// As [`LabClient::query`].
    pub fn shutdown(mut self) -> io::Result<LabResponse> {
        self.post("/v1/shutdown", "")
    }

    fn post(&mut self, path: &str, body: &str) -> io::Result<LabResponse> {
        write!(
            self.writer,
            "POST {path} HTTP/1.1\r\nHost: {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n{body}",
            self.addr,
            body.len()
        )?;
        self.writer.flush()?;
        self.read_body()
    }

    fn read_body(&mut self) -> io::Result<LabResponse> {
        let mut status_line = String::new();
        if self.reader.read_line(&mut status_line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "daemon closed",
            ));
        }
        let mut length = 0usize;
        loop {
            let mut line = String::new();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "eof in headers",
                ));
            }
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                if name.trim().eq_ignore_ascii_case("content-length") {
                    length = value.trim().parse().map_err(io::Error::other)?;
                }
            }
        }
        if length > MAX_BODY_BYTES {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "body too large"));
        }
        let mut body = vec![0u8; length];
        self.reader.read_exact(&mut body)?;
        let text = String::from_utf8(body).map_err(io::Error::other)?;
        wire::decode_response(&text).map_err(io::Error::other)
    }
}
