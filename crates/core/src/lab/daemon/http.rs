//! HTTP/1.1 request framing shared by both daemon front ends.
//!
//! The [`reactor`](super::reactor) parses heads incrementally out of a
//! per-connection byte buffer (partial reads are the normal case on a
//! nonblocking socket); the threaded fallback reads line-by-line off a
//! blocking `BufReader`. Both classify hostile framing through one
//! [`FrameError`], so a client sees the same clean status code — `431`
//! for an oversized head, `413` for an oversized body, `400` for a
//! garbled `Content-Length`, `408` for a head that never finishes
//! arriving — no matter which server answered.

use std::fmt;

/// Most bytes a request head (request line + headers) may occupy.
pub const MAX_HEAD_BYTES: usize = 8 * 1024;
/// Most bytes a request or response body may occupy (a big batch of
/// outcomes fits comfortably; a runaway client does not).
pub const MAX_BODY_BYTES: usize = 8 * 1024 * 1024;

/// Why a request could not be framed, each mapping to one clean HTTP
/// status (except I/O, where the connection is simply gone).
#[derive(Debug)]
pub enum FrameError {
    /// Head exceeded [`MAX_HEAD_BYTES`] → `431`.
    HeadTooLarge,
    /// Declared body exceeds [`MAX_BODY_BYTES`] → `413`.
    BodyTooLarge,
    /// `Content-Length` present but not an unsigned integer → `400`.
    BadContentLength,
    /// The head did not complete within the read deadline → `408`
    /// (the slow-loris case).
    Timeout,
    /// The peer vanished mid-message; nothing to answer.
    Io(std::io::Error),
}

impl FrameError {
    /// The HTTP status this framing failure answers with (`None` for
    /// I/O errors — there is no one left to answer).
    pub fn status(&self) -> Option<(u16, &'static str)> {
        match self {
            FrameError::HeadTooLarge => Some((431, "request head exceeds 8KB")),
            FrameError::BodyTooLarge => Some((413, "request body exceeds 8MB")),
            FrameError::BadContentLength => {
                Some((400, "Content-Length is not an unsigned integer"))
            }
            FrameError::Timeout => Some((408, "request head timed out")),
            FrameError::Io(_) => None,
        }
    }
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// One parsed request head.
#[derive(Debug)]
pub struct Head {
    /// Request method (`GET`, `POST`, ...).
    pub method: String,
    /// Request path (`/v1/lab`, ...).
    pub path: String,
    /// Declared body length (0 when the header is absent).
    pub content_length: usize,
    /// False iff the client sent `Connection: close`.
    pub keep_alive: bool,
}

/// Try to parse one complete head from the front of `buf`.
///
/// Returns `Ok(Some((head, consumed)))` when a full head (terminated by
/// a blank line) is present, `Ok(None)` when more bytes are needed, and
/// a [`FrameError`] when the bytes can never become a valid head.
pub fn parse_head(buf: &[u8]) -> Result<Option<(Head, usize)>, FrameError> {
    let Some(end) = head_end(buf) else {
        if buf.len() > MAX_HEAD_BYTES {
            return Err(FrameError::HeadTooLarge);
        }
        return Ok(None);
    };
    if end > MAX_HEAD_BYTES {
        return Err(FrameError::HeadTooLarge);
    }
    // Heads are ASCII in practice; lossy decoding keeps a garbled one
    // parseable enough to answer 400 instead of hanging up.
    let text = String::from_utf8_lossy(&buf[..end]);
    let mut lines = text.split('\n').map(|l| l.trim_end_matches('\r'));
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("").to_string();
    let path = parts.next().unwrap_or("").to_string();
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        }
    }
    let content_length = content_length(&headers)?;
    let keep_alive =
        !header(&headers, "connection").is_some_and(|v| v.eq_ignore_ascii_case("close"));
    Ok(Some((
        Head {
            method,
            path,
            content_length,
            keep_alive,
        },
        end,
    )))
}

/// Byte offset one past the head terminator (`\r\n\r\n`, or the bare
/// `\n\n` a sloppy client sends), if present.
fn head_end(buf: &[u8]) -> Option<usize> {
    let mut i = 0;
    while i < buf.len() {
        if buf[i] == b'\n' {
            if buf[i + 1..].starts_with(b"\r\n") {
                return Some(i + 3);
            }
            if buf[i + 1..].starts_with(b"\n") {
                return Some(i + 2);
            }
        }
        i += 1;
    }
    None
}

/// The declared body length: absent = 0 (a GET), garbled = `400`,
/// oversized = `413`.
pub fn content_length(headers: &[(String, String)]) -> Result<usize, FrameError> {
    let Some(raw) = header(headers, "content-length") else {
        return Ok(0);
    };
    let length: usize = raw.parse().map_err(|_| FrameError::BadContentLength)?;
    if length > MAX_BODY_BYTES {
        return Err(FrameError::BodyTooLarge);
    }
    Ok(length)
}

/// First header with `name` (names are stored lowercased).
pub fn header<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    headers
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| v.as_str())
}

/// Render a full response (status line + headers + body) into `out`.
/// Both front ends emit exactly these bytes.
pub fn render_response(out: &mut Vec<u8>, status: u16, body: &str) {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        503 => "Service Unavailable",
        _ => "Error",
    };
    out.extend_from_slice(
        format!(
            "HTTP/1.1 {status} {reason}\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n",
            body.len()
        )
        .as_bytes(),
    );
    out.extend_from_slice(body.as_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heads_parse_incrementally() {
        let msg = b"POST /v1/lab HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhello";
        // every proper prefix of the head is "need more bytes"
        let head_len = msg.len() - 5;
        for cut in 0..head_len {
            assert!(
                parse_head(&msg[..cut]).expect("prefix parses").is_none(),
                "cut at {cut}"
            );
        }
        let (head, consumed) = parse_head(msg).expect("parses").expect("complete");
        assert_eq!(consumed, head_len);
        assert_eq!(head.method, "POST");
        assert_eq!(head.path, "/v1/lab");
        assert_eq!(head.content_length, 5);
        assert!(head.keep_alive);
    }

    #[test]
    fn bare_lf_terminators_and_close_are_recognized() {
        let msg = b"GET /v1/stats HTTP/1.1\nConnection: close\n\n";
        let (head, consumed) = parse_head(msg).expect("parses").expect("complete");
        assert_eq!(consumed, msg.len());
        assert_eq!(head.method, "GET");
        assert_eq!(head.content_length, 0);
        assert!(!head.keep_alive);
    }

    #[test]
    fn hostile_framing_classifies_to_clean_statuses() {
        // oversized head: no terminator within the cap
        let big = vec![b'a'; MAX_HEAD_BYTES + 2];
        assert!(matches!(parse_head(&big), Err(FrameError::HeadTooLarge)));
        // oversized declared body
        let huge = format!(
            "POST /v1/lab HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert!(matches!(
            parse_head(huge.as_bytes()),
            Err(FrameError::BodyTooLarge)
        ));
        // garbled Content-Length
        let garbled = b"POST /v1/lab HTTP/1.1\r\nContent-Length: banana\r\n\r\n";
        assert!(matches!(
            parse_head(garbled),
            Err(FrameError::BadContentLength)
        ));
        assert_eq!(FrameError::HeadTooLarge.status().unwrap().0, 431);
        assert_eq!(FrameError::BodyTooLarge.status().unwrap().0, 413);
        assert_eq!(FrameError::BadContentLength.status().unwrap().0, 400);
        assert_eq!(FrameError::Timeout.status().unwrap().0, 408);
    }

    #[test]
    fn responses_render_with_exact_framing() {
        let mut out = Vec::new();
        render_response(&mut out, 200, "{\"v\":1}");
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 7\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"v\":1}"));
        for (status, reason) in [
            (400, "Bad Request"),
            (408, "Request Timeout"),
            (413, "Payload Too Large"),
            (431, "Request Header Fields Too Large"),
            (503, "Service Unavailable"),
        ] {
            let mut out = Vec::new();
            render_response(&mut out, status, "");
            assert!(String::from_utf8(out)
                .unwrap()
                .starts_with(&format!("HTTP/1.1 {status} {reason}\r\n")));
        }
    }
}
