//! The epoll reactor front end: one thread multiplexing every
//! connection.
//!
//! ```text
//!                    epoll_wait
//!   listener ──────┐     │
//!   wake pipe ─────┤     ▼                     ┌────────────────┐
//!   conn 0..N ─────┴─► reactor ── LabRequest ─►│  WorkerPool    │
//!                        ▲  │ parse/flush      │  (engine runs  │
//!                        │  ▼                  │   off-thread)  │
//!                   completions ◄── response ──┘────────────────┘
//!                   (queue + 1 byte on the wake pipe)
//! ```
//!
//! Per connection, a small state machine over two reused buffers:
//! `rbuf` accumulates reads until [`http::parse_head`] yields a full
//! head and the `Content-Length` body is present; each decoded request
//! is stamped with a sequence number and dispatched to the pool; the
//! worker routes it, renders the full HTTP response bytes, pushes them
//! on the completion queue, and rings the wake pipe. The reactor
//! reorders completions by sequence number so pipelined requests are
//! answered strictly in request order, and `wbuf` drains to the socket
//! under `EPOLLOUT` when a write would block (partial writes keep their
//! position; interest is re-armed until the buffer empties).
//!
//! Backpressure is per connection: past `MAX_PIPELINE` outstanding
//! requests or `MAX_WRITE_BACKLOG` unflushed response bytes the
//! reactor drops `EPOLLIN` interest, letting TCP push back on the
//! client; parsing resumes from the already-buffered bytes as
//! completions drain. A head (or body) that stays incomplete past the
//! daemon's read deadline is answered `408` and the connection closed —
//! the slow-loris budget — while *idle* keep-alive connections with an
//! empty `rbuf` are left open indefinitely, which is what lets one
//! reactor hold hundreds of parked connections over a 4-worker pool.
//!
//! Shutdown is cooperative and level-triggered: once the stop flag is
//! up, buffered requests are answered `503`, every connection is marked
//! close-after-drain, accepts are answered `503` and closed, and the
//! loop exits when no work is in flight and every write buffer has
//! drained (with a bounded grace period for stuck peers). The pool is
//! joined before the wake pipe is torn down, so a worker can never ring
//! a closed fd.
//!
//! Everything is raw `epoll`/`pipe2` FFI — no new crates — and the
//! module only exists on Linux; [`ServeMode`](super::ServeMode) falls
//! back to the threaded server elsewhere.

use super::http;
use super::{route, wire_error, Shared};
use harborsim_par::WorkerPool;
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Most outstanding (dispatched or reordering) responses per
/// connection before the reactor stops reading from it.
const MAX_PIPELINE: usize = 256;
/// Most unflushed response bytes per connection before the reactor
/// stops reading from it.
const MAX_WRITE_BACKLOG: usize = 256 * 1024;
/// epoll_wait tick: bounds deadline-sweep and backoff granularity.
const TICK_MS: i32 = 50;
/// How long a stopping reactor waits for write buffers to drain.
const STOP_GRACE: Duration = Duration::from_secs(5);
/// Accept-error backoff bounds (EMFILE must not spin the loop hot).
const BACKOFF_MIN: Duration = Duration::from_millis(1);
const BACKOFF_MAX: Duration = Duration::from_millis(100);

/// Raw epoll/pipe FFI — the only syscall surface this module adds.
mod sys {
    pub const EPOLL_CTL_ADD: i32 = 1;
    pub const EPOLL_CTL_DEL: i32 = 2;
    pub const EPOLL_CTL_MOD: i32 = 3;
    pub const EPOLLIN: u32 = 0x1;
    pub const EPOLLOUT: u32 = 0x4;
    pub const EPOLLERR: u32 = 0x8;
    pub const EPOLLHUP: u32 = 0x10;
    pub const EPOLLRDHUP: u32 = 0x2000;
    pub const EPOLL_CLOEXEC: i32 = 0o2_000_000;
    pub const O_NONBLOCK: i32 = 0o4_000;
    pub const O_CLOEXEC: i32 = 0o2_000_000;

    /// `struct epoll_event`; packed on x86-64, where the kernel ABI has
    /// no padding between the 32-bit mask and the 64-bit payload.
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    extern "C" {
        pub fn epoll_create1(flags: i32) -> i32;
        pub fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        pub fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        pub fn pipe2(fds: *mut i32, flags: i32) -> i32;
        pub fn close(fd: i32) -> i32;
        pub fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        pub fn write(fd: i32, buf: *const u8, count: usize) -> isize;
    }
}

/// Token for the listener in epoll event payloads.
const TOKEN_LISTENER: u64 = u64::MAX;
/// Token for the wake pipe's read end.
const TOKEN_WAKE: u64 = u64::MAX - 1;

/// The wakeup pipe: workers ring the write end after queueing a
/// completion; the reactor drains the read end. Both ends nonblocking
/// (a full pipe is still a wake-up; a spurious byte is harmless).
struct WakePipe {
    r: i32,
    w: i32,
}

impl WakePipe {
    fn new() -> Option<WakePipe> {
        let mut fds = [0i32; 2];
        let rc = unsafe { sys::pipe2(fds.as_mut_ptr(), sys::O_NONBLOCK | sys::O_CLOEXEC) };
        if rc != 0 {
            return None;
        }
        Some(WakePipe {
            r: fds[0],
            w: fds[1],
        })
    }

    /// One byte down the pipe; EAGAIN (pipe already full) is a wake-up
    /// too, so the result is ignored.
    fn ring(&self) {
        let byte = 1u8;
        unsafe {
            let _ = sys::write(self.w, &byte, 1);
        }
    }

    /// Swallow every pending wake byte.
    fn drain(&self) {
        let mut buf = [0u8; 64];
        while unsafe { sys::read(self.r, buf.as_mut_ptr(), buf.len()) } > 0 {}
    }
}

impl Drop for WakePipe {
    fn drop(&mut self) {
        unsafe {
            sys::close(self.r);
            sys::close(self.w);
        }
    }
}

/// A finished request on its way back from a worker.
struct Completion {
    slot: usize,
    gen: u64,
    seq: u64,
    bytes: Vec<u8>,
}

/// Per-connection state. `rbuf`/`wbuf` persist across requests on the
/// connection, so steady-state parsing reuses their capacity.
struct Conn {
    stream: TcpStream,
    gen: u64,
    /// Unparsed inbound bytes (partial head/body, pipelined successors).
    rbuf: Vec<u8>,
    /// Sequence number the next parsed request will get.
    next_seq: u64,
    /// Sequence number the next emitted response must have.
    next_write_seq: u64,
    /// Completed responses that arrived ahead of `next_write_seq`.
    reorder: Vec<(u64, Vec<u8>)>,
    /// In-order response bytes awaiting the socket.
    wbuf: Vec<u8>,
    wpos: usize,
    /// Requests dispatched to the pool, completion not yet seen.
    in_flight: usize,
    /// No further requests will be parsed; close once `wbuf` drains.
    close_after_drain: bool,
    /// Peer sent FIN; reads are done, writes may continue.
    eof: bool,
    /// When a partially received request must be complete (slow-loris
    /// budget). `None` while the connection is idle between requests.
    head_deadline: Option<Instant>,
    /// Event mask currently registered with epoll.
    armed: u32,
}

impl Conn {
    fn outstanding(&self) -> usize {
        self.in_flight + self.reorder.len()
    }

    fn write_backlog(&self) -> usize {
        self.wbuf.len() - self.wpos
    }

    /// Reading is paused while the connection is over its pipeline or
    /// write-backlog budget.
    fn over_budget(&self) -> bool {
        self.outstanding() >= MAX_PIPELINE || self.write_backlog() >= MAX_WRITE_BACKLOG
    }

    fn drained(&self) -> bool {
        self.outstanding() == 0 && self.write_backlog() == 0
    }

    /// File a completed response; contiguous sequence numbers flow into
    /// `wbuf` immediately, gaps wait in the reorder buffer.
    fn file_response(&mut self, seq: u64, bytes: Vec<u8>) {
        if seq == self.next_write_seq {
            self.wbuf.extend_from_slice(&bytes);
            self.next_write_seq += 1;
            while let Some(i) = self
                .reorder
                .iter()
                .position(|&(s, _)| s == self.next_write_seq)
            {
                let (_, ready) = self.reorder.swap_remove(i);
                self.wbuf.extend_from_slice(&ready);
                self.next_write_seq += 1;
            }
        } else {
            self.reorder.push((seq, bytes));
        }
    }
}

/// Serve the daemon through the reactor. Called from
/// [`serve_inner`](super::serve_inner); falls back to the threaded
/// server if epoll or the wake pipe cannot be created.
pub(crate) fn serve(listener: TcpListener, shared: Arc<Shared>, workers: usize) {
    match Reactor::new(listener, shared, workers) {
        Ok(mut reactor) => reactor.run(),
        Err((listener, shared, workers)) => super::serve_threaded(listener, shared, workers),
    }
}

struct Reactor {
    // Field order is drop order: the pool joins (workers may still
    // ring the wake pipe) before the pipe's fds close.
    pool: WorkerPool,
    wake: Arc<WakePipe>,
    completions: Arc<Mutex<Vec<Completion>>>,
    listener: TcpListener,
    shared: Arc<Shared>,
    epfd: i32,
    conns: Vec<Option<Conn>>,
    /// Last generation seen per slot; bumped on close so stale
    /// completions for a recycled slot are dropped.
    gens: Vec<u64>,
    free: VecDeque<usize>,
    /// Dispatched-but-not-completed requests across all connections.
    total_in_flight: usize,
    listener_armed: bool,
    accept_backoff: Duration,
    /// When a paused (accept-error backoff) listener re-arms.
    accept_resume: Option<Instant>,
    /// Grace deadline once the stop flag is observed.
    stop_deadline: Option<Instant>,
}

impl Drop for Reactor {
    fn drop(&mut self) {
        unsafe {
            sys::close(self.epfd);
        }
    }
}

impl Reactor {
    /// Build the reactor; hand everything back on failure so the caller
    /// can fall back to the threaded server.
    #[allow(clippy::type_complexity)]
    fn new(
        listener: TcpListener,
        shared: Arc<Shared>,
        workers: usize,
    ) -> Result<Reactor, (TcpListener, Arc<Shared>, usize)> {
        if listener.set_nonblocking(true).is_err() {
            return Err((listener, shared, workers));
        }
        let epfd = unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) };
        if epfd < 0 {
            let _ = listener.set_nonblocking(false);
            return Err((listener, shared, workers));
        }
        let Some(wake) = WakePipe::new() else {
            unsafe { sys::close(epfd) };
            let _ = listener.set_nonblocking(false);
            return Err((listener, shared, workers));
        };
        let reactor = Reactor {
            pool: WorkerPool::new(workers),
            wake: Arc::new(wake),
            completions: Arc::new(Mutex::new(Vec::new())),
            listener,
            shared,
            epfd,
            conns: Vec::new(),
            gens: Vec::new(),
            free: VecDeque::new(),
            total_in_flight: 0,
            listener_armed: false,
            accept_backoff: BACKOFF_MIN,
            accept_resume: None,
            stop_deadline: None,
        };
        reactor.ctl(sys::EPOLL_CTL_ADD, reactor.wake.r, sys::EPOLLIN, TOKEN_WAKE);
        Ok(reactor)
    }

    fn ctl(&self, op: i32, fd: i32, events: u32, token: u64) {
        let mut ev = sys::EpollEvent {
            events,
            data: token,
        };
        unsafe {
            let _ = sys::epoll_ctl(self.epfd, op, fd, &mut ev);
        }
    }

    fn arm_listener(&mut self) {
        if !self.listener_armed {
            self.ctl(
                sys::EPOLL_CTL_ADD,
                self.listener.as_raw_fd(),
                sys::EPOLLIN,
                TOKEN_LISTENER,
            );
            self.listener_armed = true;
        }
    }

    fn disarm_listener(&mut self) {
        if self.listener_armed {
            self.ctl(
                sys::EPOLL_CTL_DEL,
                self.listener.as_raw_fd(),
                0,
                TOKEN_LISTENER,
            );
            self.listener_armed = false;
        }
    }

    fn run(&mut self) {
        self.arm_listener();
        let mut events = [sys::EpollEvent { events: 0, data: 0 }; 64];
        loop {
            let n = unsafe {
                sys::epoll_wait(self.epfd, events.as_mut_ptr(), events.len() as i32, TICK_MS)
            };
            if n < 0 {
                // EINTR or worse; either way a short sleep beats a
                // hot spin, and the tick keeps deadlines honest.
                std::thread::sleep(Duration::from_millis(1));
                continue;
            }
            for ev in &events[..n.max(0) as usize] {
                let copied = *ev;
                let (mask, token) = (copied.events, copied.data);
                match token {
                    TOKEN_LISTENER => self.accept_ready(),
                    TOKEN_WAKE => self.wake.drain(),
                    slot => self.conn_event(slot as usize, mask),
                }
            }
            self.drain_completions();
            self.sweep(Instant::now());
            if self.stopping_and_drained() {
                break;
            }
        }
        // Close every socket, then (via drop order) join the pool and
        // tear down the wake pipe.
        self.conns.clear();
    }

    /// True once the stop flag is up and there is nothing left to
    /// drain — or the grace period for stuck peers has expired.
    fn stopping_and_drained(&mut self) -> bool {
        if !self.shared.stop.load(Ordering::SeqCst) {
            return false;
        }
        let now = Instant::now();
        let deadline = *self.stop_deadline.get_or_insert(now + STOP_GRACE);
        let idle = self.total_in_flight == 0 && self.conns.iter().flatten().count() == 0;
        idle || now >= deadline
    }

    // ------------------------------------------------------------ accept

    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    self.accept_backoff = BACKOFF_MIN;
                    self.admit(stream);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(_) => {
                    // EMFILE and friends: count it and take the
                    // listener out of the set for a bounded backoff
                    // instead of spinning on a level-triggered event.
                    self.shared.accept_errors.fetch_add(1, Ordering::Relaxed);
                    self.disarm_listener();
                    self.accept_resume = Some(Instant::now() + self.accept_backoff);
                    self.accept_backoff = (self.accept_backoff * 2).min(BACKOFF_MAX);
                    break;
                }
            }
        }
    }

    fn admit(&mut self, stream: TcpStream) {
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        let _ = stream.set_nodelay(true);
        let slot = match self.free.pop_front() {
            Some(slot) => slot,
            None => {
                self.conns.push(None);
                self.gens.push(0);
                self.conns.len() - 1
            }
        };
        let gen = self.gens[slot];
        let mut conn = Conn {
            stream,
            gen,
            rbuf: Vec::new(),
            next_seq: 0,
            next_write_seq: 0,
            reorder: Vec::new(),
            wbuf: Vec::new(),
            wpos: 0,
            in_flight: 0,
            close_after_drain: false,
            eof: false,
            head_deadline: None,
            armed: 0,
        };
        if self.shared.stop.load(Ordering::SeqCst) {
            // Accepted concurrently with shutdown (satellite: the wake
            // self-connect lands here too): answer 503 and drain out.
            self.shared.late_503s.fetch_add(1, Ordering::Relaxed);
            http::render_response(&mut conn.wbuf, 503, &wire_error("daemon is shutting down"));
            conn.next_seq = 1;
            conn.next_write_seq = 1;
            conn.close_after_drain = true;
        }
        let fd = conn.stream.as_raw_fd();
        self.ctl(sys::EPOLL_CTL_ADD, fd, sys::EPOLLRDHUP, slot as u64);
        self.conns[slot] = Some(conn);
        self.shared.open_conns.fetch_add(1, Ordering::Relaxed);
        self.try_flush(slot);
        self.update_interest(slot);
    }

    fn close_conn(&mut self, slot: usize) {
        if let Some(conn) = self.conns[slot].take() {
            self.ctl(sys::EPOLL_CTL_DEL, conn.stream.as_raw_fd(), 0, slot as u64);
            self.gens[slot] += 1;
            self.free.push_back(slot);
            self.shared.open_conns.fetch_sub(1, Ordering::Relaxed);
        }
    }

    // ------------------------------------------------------------ conn IO

    fn conn_event(&mut self, slot: usize, mask: u32) {
        if slot >= self.conns.len() || self.conns[slot].is_none() {
            return;
        }
        if mask & (sys::EPOLLERR | sys::EPOLLHUP) != 0 {
            self.close_conn(slot);
            return;
        }
        if mask & (sys::EPOLLIN | sys::EPOLLRDHUP) != 0 {
            self.read_ready(slot);
            if self.conns[slot].is_none() {
                return;
            }
        }
        if mask & sys::EPOLLOUT != 0 {
            self.try_flush(slot);
        }
        self.update_interest(slot);
    }

    fn read_ready(&mut self, slot: usize) {
        let mut chunk = [0u8; 16 * 1024];
        loop {
            let conn = self.conns[slot].as_mut().expect("live conn");
            if conn.eof || conn.close_after_drain || conn.over_budget() {
                break;
            }
            match (&conn.stream).read(&mut chunk) {
                Ok(0) => {
                    conn.eof = true;
                    break;
                }
                Ok(n) => {
                    conn.rbuf.extend_from_slice(&chunk[..n]);
                    self.pump_parse(slot);
                    if self.conns[slot].is_none() {
                        return; // close-after-drain already flushed out
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close_conn(slot);
                    return;
                }
            }
        }
        let Some(conn) = self.conns[slot].as_mut() else {
            return;
        };
        if conn.eof {
            if conn.drained() {
                self.close_conn(slot);
            } else {
                // Peer half-closed; finish writing what it asked for.
                conn.rbuf.clear();
                conn.head_deadline = None;
                conn.close_after_drain = true;
            }
        }
    }

    /// Parse every complete request out of `rbuf`, dispatching each to
    /// the pool (or answering 503 inline once stopping). Leaves partial
    /// bytes for the next read and manages the slow-loris deadline.
    fn pump_parse(&mut self, slot: usize) {
        loop {
            let conn = self.conns[slot].as_mut().expect("live conn");
            if conn.close_after_drain {
                conn.rbuf.clear();
                conn.head_deadline = None;
                return;
            }
            if conn.over_budget() {
                // Paused on purpose: the buffered partial is not the
                // peer's fault, so no slow-loris deadline.
                conn.head_deadline = None;
                return;
            }
            match http::parse_head(&conn.rbuf) {
                Ok(Some((head, consumed))) => {
                    let total = consumed + head.content_length;
                    if conn.rbuf.len() < total {
                        // Head complete, body still arriving.
                        let deadline = Instant::now() + self.shared.read_timeout;
                        conn.head_deadline.get_or_insert(deadline);
                        return;
                    }
                    let body = conn.rbuf[consumed..total].to_vec();
                    conn.rbuf.drain(..total);
                    conn.head_deadline = None;
                    let seq = conn.next_seq;
                    conn.next_seq += 1;
                    if !head.keep_alive {
                        conn.close_after_drain = true;
                    }
                    if self.shared.stop.load(Ordering::SeqCst) {
                        // Late arrival after the stop flag: 503, never
                        // the engine. (The shutdown request itself was
                        // dispatched before the flag went up.)
                        self.shared.late_503s.fetch_add(1, Ordering::Relaxed);
                        let mut bytes = Vec::new();
                        http::render_response(
                            &mut bytes,
                            503,
                            &wire_error("daemon is shutting down"),
                        );
                        let conn = self.conns[slot].as_mut().expect("live conn");
                        conn.file_response(seq, bytes);
                        conn.close_after_drain = true;
                    } else {
                        self.dispatch(slot, seq, &head, body);
                    }
                    self.try_flush(slot);
                    if self.conns[slot].is_none() {
                        return;
                    }
                }
                Ok(None) => {
                    let conn = self.conns[slot].as_mut().expect("live conn");
                    if conn.rbuf.is_empty() {
                        conn.head_deadline = None;
                    } else {
                        let deadline = Instant::now() + self.shared.read_timeout;
                        conn.head_deadline.get_or_insert(deadline);
                    }
                    return;
                }
                Err(e) => {
                    // Hostile framing: answer the mapped status (431/
                    // 413/400) in sequence, then drain and close.
                    let (status, msg) = e.status().unwrap_or((400, "malformed request"));
                    let mut bytes = Vec::new();
                    http::render_response(&mut bytes, status, &wire_error(msg));
                    let conn = self.conns[slot].as_mut().expect("live conn");
                    let seq = conn.next_seq;
                    conn.next_seq += 1;
                    conn.file_response(seq, bytes);
                    conn.close_after_drain = true;
                    conn.rbuf.clear();
                    conn.head_deadline = None;
                    self.try_flush(slot);
                    return;
                }
            }
        }
    }

    /// Hand one decoded request to the pool; the worker routes it and
    /// rings the wake pipe with the rendered response.
    fn dispatch(&mut self, slot: usize, seq: u64, head: &http::Head, body: Vec<u8>) {
        let conn = self.conns[slot].as_mut().expect("live conn");
        conn.in_flight += 1;
        self.total_in_flight += 1;
        let gen = conn.gen;
        let method = head.method.clone();
        let path = head.path.clone();
        let shared = Arc::clone(&self.shared);
        let completions = Arc::clone(&self.completions);
        let wake = Arc::clone(&self.wake);
        self.pool.submit(move || {
            let (status, response) = route(&method, &path, &body, &shared);
            let mut bytes = Vec::with_capacity(response.len() + 128);
            http::render_response(&mut bytes, status, &response);
            completions
                .lock()
                .expect("completion queue")
                .push(Completion {
                    slot,
                    gen,
                    seq,
                    bytes,
                });
            wake.ring();
        });
    }

    fn drain_completions(&mut self) {
        let batch = std::mem::take(&mut *self.completions.lock().expect("completion queue"));
        for c in batch {
            self.total_in_flight -= 1;
            let Some(conn) = self.conns.get_mut(c.slot).and_then(Option::as_mut) else {
                continue;
            };
            if conn.gen != c.gen {
                continue; // recycled slot; the response's conn is gone
            }
            conn.in_flight -= 1;
            conn.file_response(c.seq, c.bytes);
            self.try_flush(c.slot);
            if self.conns[c.slot].is_some() {
                // Capacity freed: resume parsing buffered pipeline.
                self.pump_parse(c.slot);
            }
            self.update_interest(c.slot);
        }
    }

    /// Write as much of `wbuf` as the socket takes; closes the
    /// connection on write error or once drained with
    /// `close_after_drain` set.
    fn try_flush(&mut self, slot: usize) {
        let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
            return;
        };
        while conn.wpos < conn.wbuf.len() {
            match (&conn.stream).write(&conn.wbuf[conn.wpos..]) {
                Ok(0) => break,
                Ok(n) => conn.wpos += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close_conn(slot);
                    return;
                }
            }
        }
        if conn.wpos == conn.wbuf.len() {
            conn.wbuf.clear();
            conn.wpos = 0;
            if conn.close_after_drain && conn.outstanding() == 0 {
                self.close_conn(slot);
            }
        }
    }

    /// Re-arm epoll interest to match the connection's state.
    fn update_interest(&mut self, slot: usize) {
        let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
            return;
        };
        let mut want = sys::EPOLLRDHUP;
        if !conn.eof && !conn.close_after_drain && !conn.over_budget() {
            want |= sys::EPOLLIN;
        }
        if conn.write_backlog() > 0 {
            want |= sys::EPOLLOUT;
        }
        if want != conn.armed {
            conn.armed = want;
            let fd = conn.stream.as_raw_fd();
            self.ctl(sys::EPOLL_CTL_MOD, fd, want, slot as u64);
        }
    }

    // ------------------------------------------------------------ sweeps

    /// Periodic housekeeping: listener re-arm after backoff, slow-loris
    /// deadlines, and shutdown drain.
    fn sweep(&mut self, now: Instant) {
        if let Some(resume) = self.accept_resume {
            if now >= resume && !self.shared.stop.load(Ordering::SeqCst) {
                self.accept_resume = None;
                self.arm_listener();
                self.accept_ready();
            }
        }
        for slot in 0..self.conns.len() {
            let Some(conn) = self.conns[slot].as_mut() else {
                continue;
            };
            if conn.head_deadline.is_some_and(|d| now >= d) {
                // Slow loris: a request has been partial for the whole
                // read budget. 408 in sequence, then drain and close.
                let mut bytes = Vec::new();
                http::render_response(&mut bytes, 408, &wire_error("request head timed out"));
                let seq = conn.next_seq;
                conn.next_seq += 1;
                conn.file_response(seq, bytes);
                conn.close_after_drain = true;
                conn.rbuf.clear();
                conn.head_deadline = None;
                self.try_flush(slot);
                self.update_interest(slot);
            }
        }
        if self.shared.stop.load(Ordering::SeqCst) {
            self.disarm_listener();
            for slot in 0..self.conns.len() {
                if self.conns[slot].is_none() {
                    continue;
                }
                // Buffered requests get their 503s...
                self.pump_parse(slot);
                if let Some(conn) = self.conns[slot].as_mut() {
                    // ...then everything drains out and closes.
                    conn.close_after_drain = true;
                    self.try_flush(slot);
                    self.update_interest(slot);
                }
            }
        }
    }
}
