//! The resident lab daemon: a hand-rolled HTTP/1.1 front end over the
//! [`wire`] protocol, with two interchangeable serving models.
//!
//! Fully in-tree like the rest of the vendored stack. Three routes:
//!
//! | route | body | answer |
//! |---|---|---|
//! | `POST /v1/lab` | a wire-encoded [`LabRequest`] | the wire-encoded [`LabResponse`] |
//! | `GET /v1/stats` | — | the wire-encoded stats response |
//! | `POST /v1/shutdown` | — | final stats; then the daemon drains and exits |
//!
//! Two front ends share the framing layer in [`http`] and answer
//! byte-identically:
//!
//! * [`ServeMode::Reactor`] (default on Linux) — one epoll reactor
//!   thread multiplexes every connection over nonblocking sockets and
//!   hands decoded requests to a [`WorkerPool`] of engine workers; see
//!   [`reactor`]. Hundreds of idle keep-alive connections cost nothing.
//! * [`ServeMode::Threaded`] (the portable fallback) — the pre-reactor
//!   model: the accept loop parks each connection on a pool worker, so
//!   open connections are bounded by pool size.
//!
//! Binding [`warm_starts`](super::QueryEngine::warm_start) the engine —
//! route tables and job profiles for the four paper clusters are
//! compiled before the first request arrives — and shutdown is
//! cooperative: the handler sets a flag and self-connects to unblock
//! the accept loop, in-flight work drains, and late arrivals are
//! answered `503` rather than silently served or dropped.
//!
//! [`LabClient`] is the matching blocking client (one keep-alive
//! connection, with an explicit [pipelined](LabClient::query_pipelined)
//! mode); the load generator and the integration tests drive the
//! daemon through it, exercising the same code path as any external
//! HTTP client.

pub mod http;
#[cfg(target_os = "linux")]
pub mod reactor;

use super::protocol::{DaemonStats, LabRequest, LabResponse};
use super::{wire, QueryEngine};
use harborsim_par::WorkerPool;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use http::FrameError;

/// Default per-request read deadline (covers the whole head+body, so a
/// slow-loris dribbling one byte per read still hits it).
const READ_TIMEOUT: Duration = Duration::from_secs(10);

/// How a bound daemon serves its connections.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeMode {
    /// One epoll reactor thread multiplexing every connection
    /// (Linux-only; silently falls back to [`ServeMode::Threaded`]
    /// elsewhere).
    Reactor,
    /// Thread-per-connection on the worker pool — the portable
    /// fallback, and the pre-reactor behaviour.
    Threaded,
}

impl ServeMode {
    /// The platform default: the reactor where epoll exists.
    pub fn auto() -> ServeMode {
        if cfg!(target_os = "linux") {
            ServeMode::Reactor
        } else {
            ServeMode::Threaded
        }
    }

    /// Stable lowercase name, as reported in `GET /v1/stats`.
    pub fn name(self) -> &'static str {
        match self {
            ServeMode::Reactor => "reactor",
            ServeMode::Threaded => "threaded",
        }
    }
}

pub(crate) struct Shared {
    pub(crate) engine: Arc<QueryEngine>,
    pub(crate) stop: AtomicBool,
    pub(crate) addr: SocketAddr,
    pub(crate) mode: ServeMode,
    pub(crate) read_timeout: Duration,
    /// Accept-loop errors survived (EMFILE and friends).
    pub(crate) accept_errors: AtomicU64,
    /// Requests answered `503` because they arrived after the stop flag.
    pub(crate) late_503s: AtomicU64,
    /// Connections currently open (reactor: registered with epoll;
    /// threaded: running on a pool worker).
    pub(crate) open_conns: AtomicU64,
}

impl Shared {
    /// Flag the accept loop down and self-connect to unblock it.
    fn request_stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
    }

    /// Snapshot of the daemon-side counters for `GET /v1/stats`.
    fn daemon_stats(&self) -> DaemonStats {
        DaemonStats {
            mode: self.mode.name().to_string(),
            accept_errors: self.accept_errors.load(Ordering::Relaxed),
            late_503s: self.late_503s.load(Ordering::Relaxed),
            open_conns: self.open_conns.load(Ordering::Relaxed),
        }
    }
}

/// A bound-but-not-yet-serving lab daemon.
pub struct LabDaemon {
    listener: TcpListener,
    engine: Arc<QueryEngine>,
    workers: usize,
    mode: ServeMode,
    read_timeout: Duration,
    addr: SocketAddr,
}

/// A handle to a daemon serving on a background thread.
pub struct DaemonHandle {
    shared: Arc<Shared>,
    thread: std::thread::JoinHandle<()>,
}

impl LabDaemon {
    /// Bind to `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// warm-start `engine`'s plan cache for the four paper clusters.
    /// `workers` is the resident engine-worker pool size. The serve
    /// mode defaults to [`ServeMode::auto`].
    ///
    /// # Errors
    /// Socket errors from bind.
    pub fn bind(addr: &str, engine: Arc<QueryEngine>, workers: usize) -> io::Result<LabDaemon> {
        engine.warm_start();
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        Ok(LabDaemon {
            listener,
            engine,
            workers,
            mode: ServeMode::auto(),
            read_timeout: READ_TIMEOUT,
            addr,
        })
    }

    /// Select the serving model (builder-style, before `serve`/`spawn`).
    #[must_use]
    pub fn mode(mut self, mode: ServeMode) -> LabDaemon {
        self.mode = mode;
        self
    }

    /// Override the per-request read deadline (builder-style). The
    /// deadline covers the whole request, not each read, so it also
    /// bounds slow-loris clients.
    #[must_use]
    pub fn read_timeout(mut self, timeout: Duration) -> LabDaemon {
        self.read_timeout = timeout;
        self
    }

    /// The bound address (resolves the ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    fn into_parts(self) -> (TcpListener, Arc<Shared>, usize) {
        let shared = Arc::new(Shared {
            engine: self.engine,
            stop: AtomicBool::new(false),
            addr: self.addr,
            mode: self.mode,
            read_timeout: self.read_timeout,
            accept_errors: AtomicU64::new(0),
            late_503s: AtomicU64::new(0),
            open_conns: AtomicU64::new(0),
        });
        (self.listener, shared, self.workers)
    }

    /// Serve until a `POST /v1/shutdown` arrives (or
    /// [`DaemonHandle::shutdown`] is called on a spawned daemon).
    /// Consumes the daemon; queued requests drain before return.
    pub fn serve(self) {
        let (listener, shared, workers) = self.into_parts();
        serve_inner(listener, shared, workers);
    }

    /// Serve on a background thread; the handle shuts it down.
    pub fn spawn(self) -> DaemonHandle {
        let (listener, shared, workers) = self.into_parts();
        let serving = Arc::clone(&shared);
        let thread = std::thread::spawn(move || serve_inner(listener, serving, workers));
        DaemonHandle { shared, thread }
    }
}

fn serve_inner(listener: TcpListener, shared: Arc<Shared>, workers: usize) {
    match shared.mode {
        ServeMode::Threaded => serve_threaded(listener, shared, workers),
        ServeMode::Reactor => {
            #[cfg(target_os = "linux")]
            reactor::serve(listener, shared, workers);
            #[cfg(not(target_os = "linux"))]
            serve_threaded(listener, shared, workers);
        }
    }
}

impl DaemonHandle {
    /// The serving address.
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The engine behind the daemon (for in-process counter assertions).
    pub fn engine(&self) -> &QueryEngine {
        &self.shared.engine
    }

    /// Stop accepting, drain in-flight connections, and join.
    pub fn shutdown(self) {
        self.shared.request_stop();
        let _ = self.thread.join();
    }
}

/// The portable thread-per-connection front end.
fn serve_threaded(listener: TcpListener, shared: Arc<Shared>, workers: usize) {
    let pool = WorkerPool::new(workers);
    let mut backoff = Duration::from_millis(1);
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => {
                backoff = Duration::from_millis(1);
                stream
            }
            Err(_) => {
                // A persistent accept error (EMFILE under connection
                // pressure is the classic) must not spin the loop hot:
                // count it and back off, bounded so recovery is quick.
                shared.accept_errors.fetch_add(1, Ordering::Relaxed);
                if shared.stop.load(Ordering::SeqCst) {
                    break;
                }
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(Duration::from_millis(100));
                continue;
            }
        };
        if shared.stop.load(Ordering::SeqCst) {
            // Accepted concurrently with request_stop(): answer 503
            // instead of silently serving (or silently dropping) it.
            answer_late_503(stream, &shared);
            break;
        }
        let shared = Arc::clone(&shared);
        pool.submit(move || {
            shared.open_conns.fetch_add(1, Ordering::Relaxed);
            handle_connection(stream, &shared);
            shared.open_conns.fetch_sub(1, Ordering::Relaxed);
        });
    }
    drop(pool); // joins: every accepted connection finishes
}

/// Best-effort `503` to a connection that arrived after the stop flag.
/// (The wake-up self-connect from `request_stop` lands here too; it
/// never reads the answer, which is fine.)
fn answer_late_503(mut stream: TcpStream, shared: &Shared) {
    shared.late_503s.fetch_add(1, Ordering::Relaxed);
    let _ = write_response(&mut stream, 503, &wire_error("daemon is shutting down"));
}

/// Serve one connection: HTTP/1.1 requests until the peer closes, asks
/// to close, errors, or times out. Leftover bytes after each request
/// are kept, so pipelined requests are answered in order here too.
fn handle_connection(stream: TcpStream, shared: &Shared) {
    let _ = stream.set_nodelay(true);
    let mut reader = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut writer = stream;
    let mut buf: Vec<u8> = Vec::new();
    loop {
        let (head, body) = match read_request_framed(&mut reader, &mut buf, shared.read_timeout) {
            Ok(Some(msg)) => msg,
            Ok(None) => return, // clean close (or idle past the deadline)
            Err(e) => {
                if let Some((status, msg)) = e.status() {
                    let _ = write_response(&mut writer, status, &wire_error(msg));
                }
                return;
            }
        };
        if shared.stop.load(Ordering::SeqCst) {
            // The stop flag was set while this request was in flight
            // (the shutdown request itself was already routed when it
            // set the flag, so it cannot land here).
            shared.late_503s.fetch_add(1, Ordering::Relaxed);
            let _ = write_response(&mut writer, 503, &wire_error("daemon is shutting down"));
            return;
        }
        let (status, response_body) = route(&head.method, &head.path, &body, shared);
        if write_response(&mut writer, status, &response_body).is_err() {
            return;
        }
        if !head.keep_alive || shared.stop.load(Ordering::SeqCst) {
            return;
        }
    }
}

/// Read one framed request off a blocking socket, carrying leftover
/// bytes (pipelined successors) in `buf` across calls. The deadline
/// covers the whole message. `Ok(None)` = the peer closed (or went
/// idle past the deadline) *between* requests — a quiet close.
fn read_request_framed(
    stream: &mut TcpStream,
    buf: &mut Vec<u8>,
    timeout: Duration,
) -> Result<Option<(http::Head, Vec<u8>)>, FrameError> {
    let deadline = Instant::now() + timeout;
    loop {
        if let Some((head, consumed)) = http::parse_head(buf)? {
            let total = consumed + head.content_length;
            while buf.len() < total {
                match fill(stream, buf, deadline)? {
                    0 => {
                        return Err(FrameError::Io(io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            "eof in body",
                        )))
                    }
                    _ => continue,
                }
            }
            let body = buf[consumed..total].to_vec();
            buf.drain(..total);
            return Ok(Some((head, body)));
        }
        let mid_message = !buf.is_empty();
        match fill(stream, buf, deadline) {
            Ok(0) if mid_message => {
                return Err(FrameError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "eof in head",
                )))
            }
            Ok(0) => return Ok(None),
            Ok(_) => {}
            // Idle keep-alive peers just get closed; a half-sent head
            // is the slow-loris case and earns a 408.
            Err(FrameError::Timeout) if !mid_message => return Ok(None),
            Err(e) => return Err(e),
        }
    }
}

/// One bounded read with the remaining deadline as the socket timeout.
fn fill(stream: &mut TcpStream, buf: &mut Vec<u8>, deadline: Instant) -> Result<usize, FrameError> {
    let remaining = deadline.saturating_duration_since(Instant::now());
    if remaining.is_zero() {
        return Err(FrameError::Timeout);
    }
    stream
        .set_read_timeout(Some(remaining))
        .map_err(FrameError::Io)?;
    let mut chunk = [0u8; 4096];
    match stream.read(&mut chunk) {
        Ok(0) => Ok(0),
        Ok(n) => {
            buf.extend_from_slice(&chunk[..n]);
            Ok(n)
        }
        Err(e)
            if matches!(
                e.kind(),
                io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
            ) =>
        {
            Err(FrameError::Timeout)
        }
        Err(e) => Err(FrameError::Io(e)),
    }
}

/// Dispatch one request to the engine; the response body is always a
/// wire-encoded [`LabResponse`]. Stats responses are stamped with the
/// daemon-side counters on the way out (the in-process engine path
/// leaves them `None`).
pub(crate) fn route(method: &str, path: &str, body: &[u8], shared: &Shared) -> (u16, String) {
    match (method, path) {
        ("POST", "/v1/lab") => {
            let text = match std::str::from_utf8(body) {
                Ok(text) => text,
                Err(_) => return (400, wire_error("request body is not UTF-8")),
            };
            match wire::decode_request(text) {
                Ok(req) => (
                    200,
                    wire::encode_response(&with_daemon_stats(shared.engine.handle(req), shared)),
                ),
                Err(e) => (400, wire_error(&e.msg)),
            }
        }
        ("GET", "/v1/stats") => (
            200,
            wire::encode_response(&with_daemon_stats(
                shared.engine.handle(LabRequest::Stats),
                shared,
            )),
        ),
        ("POST", "/v1/shutdown") => {
            let stats = wire::encode_response(&with_daemon_stats(
                shared.engine.handle(LabRequest::Stats),
                shared,
            ));
            shared.request_stop();
            (200, stats)
        }
        _ => (404, wire_error(&format!("no route {method} {path}"))),
    }
}

fn with_daemon_stats(mut resp: LabResponse, shared: &Shared) -> LabResponse {
    if let LabResponse::Stats(ref mut stats) = resp {
        stats.daemon = Some(shared.daemon_stats());
    }
    resp
}

/// A wire-encoded error response (decodes to
/// [`HarborError::Remote`](crate::error::HarborError::Remote) with kind
/// `"wire"`).
pub(crate) fn wire_error(msg: &str) -> String {
    wire::encode_response(&LabResponse::Error(crate::error::HarborError::Remote {
        kind: "wire".to_string(),
        msg: msg.to_string(),
    }))
}

fn write_response(writer: &mut TcpStream, status: u16, body: &str) -> io::Result<()> {
    let mut out = Vec::with_capacity(body.len() + 128);
    http::render_response(&mut out, status, body);
    writer.write_all(&out)?;
    writer.flush()
}

/// A blocking lab client over one keep-alive connection — what the load
/// generator, the CI smoke probe, and the integration tests speak.
///
/// Besides the one-at-a-time [`query`](LabClient::query), the client
/// can pipeline: [`send`](LabClient::send) any number of requests
/// without waiting, then [`recv`](LabClient::recv) the responses, which
/// the daemon guarantees arrive in request order.
pub struct LabClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    addr: SocketAddr,
}

impl LabClient {
    /// Connect to a serving daemon.
    ///
    /// # Errors
    /// Socket errors from connect.
    pub fn connect(addr: SocketAddr) -> io::Result<LabClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(60)))?;
        stream.set_nodelay(true)?;
        Ok(LabClient {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
            addr,
        })
    }

    /// Send one typed request and wait for the typed response.
    ///
    /// # Errors
    /// Socket errors, non-encodable requests, and undecodable responses
    /// (all as [`io::Error`] — a wire daemon is an I/O device).
    pub fn query(&mut self, req: &LabRequest) -> io::Result<LabResponse> {
        self.send(req)?;
        self.recv()
    }

    /// Write one request without waiting for its response (pipelining).
    ///
    /// # Errors
    /// Socket errors and non-encodable requests.
    pub fn send(&mut self, req: &LabRequest) -> io::Result<()> {
        let body = wire::encode_request(req).map_err(io::Error::other)?;
        write!(
            self.writer,
            "POST /v1/lab HTTP/1.1\r\nHost: {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n{body}",
            self.addr,
            body.len()
        )?;
        self.writer.flush()
    }

    /// Read the next pipelined response (in request order).
    ///
    /// # Errors
    /// As [`LabClient::query`].
    pub fn recv(&mut self) -> io::Result<LabResponse> {
        self.read_body()
    }

    /// Pipeline a batch: send every request back-to-back, then collect
    /// the responses, which arrive in request order.
    ///
    /// # Errors
    /// As [`LabClient::query`].
    pub fn query_pipelined(&mut self, reqs: &[LabRequest]) -> io::Result<Vec<LabResponse>> {
        for req in reqs {
            self.send(req)?;
        }
        reqs.iter().map(|_| self.recv()).collect()
    }

    /// Fetch engine statistics.
    ///
    /// # Errors
    /// As [`LabClient::query`].
    pub fn stats(&mut self) -> io::Result<LabResponse> {
        write!(
            self.writer,
            "GET /v1/stats HTTP/1.1\r\nHost: {}\r\n\r\n",
            self.addr
        )?;
        self.writer.flush()?;
        self.read_body()
    }

    /// Ask the daemon to shut down; returns its final stats response.
    ///
    /// # Errors
    /// As [`LabClient::query`].
    pub fn shutdown(mut self) -> io::Result<LabResponse> {
        self.post("/v1/shutdown", "")
    }

    fn post(&mut self, path: &str, body: &str) -> io::Result<LabResponse> {
        write!(
            self.writer,
            "POST {path} HTTP/1.1\r\nHost: {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n{body}",
            self.addr,
            body.len()
        )?;
        self.writer.flush()?;
        self.read_body()
    }

    fn read_body(&mut self) -> io::Result<LabResponse> {
        let mut status_line = String::new();
        if self.reader.read_line(&mut status_line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "daemon closed",
            ));
        }
        let mut length = 0usize;
        loop {
            let mut line = String::new();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "eof in headers",
                ));
            }
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                if name.trim().eq_ignore_ascii_case("content-length") {
                    length = value.trim().parse().map_err(io::Error::other)?;
                }
            }
        }
        if length > http::MAX_BODY_BYTES {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "body too large"));
        }
        let mut body = vec![0u8; length];
        self.reader.read_exact(&mut body)?;
        let text = String::from_utf8(body).map_err(io::Error::other)?;
        wire::decode_response(&text).map_err(io::Error::other)
    }
}
