//! The lab: a concurrent query engine over scenario plans.
//!
//! Every consumer of many scenario executions — the experiments, the
//! `reproduce_all` binary, [`crate::runner::sweep`], a remote client of
//! the [`daemon`] — routes through one [`QueryEngine`] and its single
//! typed entry point, [`QueryEngine::handle`]: a [`LabRequest`] goes in
//! (plan / execute / batch / campaign / stats), a [`LabResponse`] comes
//! out. The [`wire`] module serializes exactly these types, so the
//! in-process call and the socket query are one code path.
//!
//! A batch request is resolved in two concurrent phases:
//!
//! 1. **Plan resolution.** Each query's scenario is fingerprinted into a
//!    canonical [`PlanKey`] and looked up in a [`PlanCache`]: an LRU of
//!    `Arc<ScenarioPlan>` *sharded N ways by key fingerprint* (so
//!    concurrent resolves of different keys rarely share a mutex), with
//!    *single-flight* deduplication per key — N concurrent identical
//!    queries trigger exactly one compile (and, for deployment
//!    scenarios, one image build) while the other N−1 block on the
//!    in-flight slot. Cache activity is exported through the trace layer
//!    as [`SpanCategory::Cache`] spans plus `plan_cache_*` counters.
//! 2. **Execution.** The resolved `(plan, seed)` work items are sharded
//!    across the `harborsim-par` work-stealing pool, with *admission
//!    batching* on top: identical `(plan, seed)` items in flight at the
//!    same moment share one execute — the winner runs the simulation,
//!    the rest clone its outcome and trace (sound because execution is
//!    deterministic). Results return in submission order; per-query
//!    trace attribution flows through the caller's [`Recorder`].
//!
//! Fingerprinting is sound because plans are a pure function of the
//! scenario builder plus the engine-level taper fallback (see
//! [`Scenario::compile_with`]): there is no process-global state left to
//! leak into a compiled plan. Workloads opt into fingerprinting via
//! [`AlyaCase::memo_key`](harborsim_alya::workload::AlyaCase::memo_key);
//! a case without one makes its queries *uncacheable* — compiled fresh
//! every time, never a wrong-plan hit.

pub mod daemon;
pub mod protocol;
pub mod wire;

pub use protocol::{
    CampaignReport, CampaignResult, CampaignRow, CampaignRowKind, DaemonStats, EngineStats,
    LabRequest, LabResponse, PlanInfo,
};

use crate::error::HarborError;
use crate::scenario::{EngineKind, Outcome, Scenario, ScenarioPlan};
use harborsim_container::runtime::ExecutionEnvironment;
use harborsim_des::trace::{Recorder, SpanCategory};
use harborsim_des::{SimDuration, SimTime};
use harborsim_mpi::Placement;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// One unit of lab work: a scenario and the seeds to execute it under.
pub struct Query {
    /// The scenario (consumed: plans are cached by fingerprint, not by
    /// scenario identity).
    pub scenario: Scenario,
    /// Seeds to execute, in order.
    pub seeds: Vec<u64>,
}

impl Query {
    /// A query over `scenario` for every seed in `seeds`.
    pub fn new(scenario: Scenario, seeds: &[u64]) -> Query {
        Query {
            scenario,
            seeds: seeds.to_vec(),
        }
    }
}

/// Canonical fingerprint of everything that can change a compiled plan.
///
/// Two scenarios with the same key compile to observably identical plans;
/// two scenarios that differ in any behaviour-affecting knob — cluster,
/// case, execution environment, shape, engine, deployment, placement,
/// resolved taper, every degraded-link entry, DES shard count — differ
/// in at least one
/// field. Floats are fingerprinted as bit patterns; the degraded-link
/// multiset is sorted (degradation is multiplicative, so order does not
/// matter to the compiled route table).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PlanKey {
    cluster: String,
    case: String,
    env: ExecutionEnvironment,
    nodes: u32,
    ranks_per_node: u32,
    threads_per_rank: u32,
    engine: (u8, u32),
    deploy: bool,
    placement: u8,
    taper_bits: Option<u64>,
    degraded: Vec<(u32, u64)>,
    shards: u32,
    open: Option<OpenKey>,
}

/// The open-campaign component of a [`PlanKey`]: every sampled-workload
/// knob, floats as bit patterns, menus in declaration order (order is
/// behaviour — Zipf weight follows rank).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct OpenKey {
    rate: u64,
    horizon: u64,
    tenants: u32,
    node_mix: (u64, Vec<u32>),
    workload_mix: (u64, Vec<String>),
    env_mix: (u64, Vec<ExecutionEnvironment>),
}

impl OpenKey {
    fn of(spec: &crate::open::OpenSpec) -> OpenKey {
        OpenKey {
            rate: spec.rate_per_s.to_bits(),
            horizon: spec.horizon_s.to_bits(),
            tenants: spec.tenants,
            node_mix: (spec.node_mix.s.to_bits(), spec.node_mix.values.clone()),
            workload_mix: (
                spec.workload_mix.s.to_bits(),
                spec.workload_mix.values.clone(),
            ),
            env_mix: (spec.env_mix.s.to_bits(), spec.env_mix.values.clone()),
        }
    }
}

impl PlanKey {
    /// Fingerprint `scenario` under an engine-level taper fallback.
    /// `None` when the workload opted out of memoization (no
    /// [`memo_key`](harborsim_alya::workload::AlyaCase::memo_key)).
    pub fn of(scenario: &Scenario, fallback_taper: Option<f64>) -> Option<PlanKey> {
        let case = scenario.case.memo_key()?;
        let mut degraded: Vec<(u32, u64)> = scenario
            .degraded_uplinks
            .iter()
            .map(|&(node, factor)| (node, factor.to_bits()))
            .collect();
        degraded.sort_unstable();
        Some(PlanKey {
            // ClusterSpec is plain data with a total Debug view and no
            // Hash impl; its debug string covers every field (node model,
            // interconnect, fabric layout, software, storage).
            cluster: format!("{:?}", scenario.cluster),
            case,
            env: scenario.env,
            nodes: scenario.nodes,
            ranks_per_node: scenario.ranks_per_node,
            threads_per_rank: scenario.threads_per_rank,
            engine: match scenario.engine {
                EngineKind::Analytic => (0, 0),
                EngineKind::Des { max_steps_per_kind } => (1, max_steps_per_kind),
            },
            deploy: scenario.deploy,
            placement: match scenario.placement {
                Placement::Block => 0,
                Placement::RoundRobin => 1,
            },
            taper_bits: scenario.spine_taper.or(fallback_taper).map(f64::to_bits),
            degraded,
            shards: scenario.shards,
            open: scenario.open.as_ref().map(OpenKey::of),
        })
    }

    /// A stable 64-bit digest of this key: FNV-1a over the canonical
    /// `Debug` rendering, which covers every field. This is what the
    /// script layer's golden tests compare — two scenarios fingerprint
    /// identically exactly when they compile to observably identical
    /// plans. It is also the cache's shard selector, so one hot key only
    /// ever contends on its own shard.
    pub fn fingerprint(&self) -> u64 {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in format!("{self:?}").bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash
    }
}

/// Point-in-time cache statistics — one shard's (via
/// [`PlanCache::shard_stats`]) or the aggregate over all shards (via
/// [`PlanCache::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Queries served an already-compiled plan.
    pub hits: u64,
    /// Queries that compiled (and inserted) a plan.
    pub misses: u64,
    /// Queries that blocked on another query's in-flight compile.
    pub waits: u64,
    /// Queries whose workload opted out of fingerprinting (compiled
    /// fresh, never cached). Always attributed to the aggregate — a
    /// keyless query touches no shard.
    pub uncached: u64,
    /// Lock acquisitions that found the shard mutex already held (a
    /// `try_lock` failed and the caller had to block). The sharding
    /// exists to drive this toward zero.
    pub contended: u64,
    /// Plans currently resident.
    pub entries: usize,
}

impl CacheStats {
    /// The one-line form `reproduce_all` prints and CI asserts on,
    /// aggregated across every shard.
    pub fn summary_line(&self) -> String {
        format!(
            "plan cache: {} hits, {} misses, {} in-flight waits, {} uncacheable ({} plans cached)",
            self.hits, self.misses, self.waits, self.uncached, self.entries
        )
    }

    fn absorb(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.waits += other.waits;
        self.uncached += other.uncached;
        self.contended += other.contended;
        self.entries += other.entries;
    }
}

/// How a query's plan was obtained, with the wall-clock cost.
enum Resolution {
    Hit,
    Miss(std::time::Duration),
    Wait(std::time::Duration),
    Uncached(std::time::Duration),
}

enum Slot {
    Ready(Arc<ScenarioPlan>),
    InFlight(Arc<Flight>),
}

/// The rendezvous N−1 duplicate queries block on while the first compiles.
struct Flight {
    done: Mutex<Option<Result<Arc<ScenarioPlan>, HarborError>>>,
    cv: Condvar,
}

/// One cache shard: its own mutex, map, and traffic counters. A key
/// belongs to shard `fingerprint % n_shards`, so the per-shard counters
/// double as a map of where the Zipf-hot keys land.
struct CacheShard {
    map: Mutex<HashMap<PlanKey, (Slot, u64)>>,
    hits: AtomicU64,
    misses: AtomicU64,
    waits: AtomicU64,
    contended: AtomicU64,
}

impl CacheShard {
    fn new() -> CacheShard {
        CacheShard {
            map: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            waits: AtomicU64::new(0),
            contended: AtomicU64::new(0),
        }
    }

    /// Lock this shard's map, counting acquisitions that had to block
    /// behind another holder.
    fn lock(&self) -> std::sync::MutexGuard<'_, HashMap<PlanKey, (Slot, u64)>> {
        match self.map.try_lock() {
            Ok(guard) => guard,
            Err(std::sync::TryLockError::WouldBlock) => {
                self.contended.fetch_add(1, Ordering::Relaxed);
                self.map.lock().unwrap()
            }
            Err(std::sync::TryLockError::Poisoned(e)) => panic!("poisoned cache shard: {e}"),
        }
    }

    fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            waits: self.waits.load(Ordering::Relaxed),
            uncached: 0,
            contended: self.contended.load(Ordering::Relaxed),
            entries: self.map.lock().unwrap().len(),
        }
    }
}

/// Default shard count: enough that the four paper clusters' hot keys
/// spread out, small enough that an eviction sweep stays cheap.
const DEFAULT_SHARDS: usize = 8;

/// Sharded LRU plan cache with single-flight deduplication. Usually used
/// through [`QueryEngine`]; standalone only in tests and benches.
///
/// Keys are distributed over shards by [`PlanKey::fingerprint`]; each
/// shard has its own mutex, so resolves of different keys contend only
/// when their fingerprints collide modulo the shard count. The LRU
/// *budget* stays global: one capacity, one logical clock, and eviction
/// scans every shard for the globally coldest ready plan — so capacity
/// semantics are identical to the old single-mutex cache.
pub struct PlanCache {
    capacity: usize,
    shards: Vec<CacheShard>,
    /// Global LRU clock: stamps are comparable across shards.
    clock: AtomicU64,
    uncached: AtomicU64,
}

impl PlanCache {
    /// An empty cache holding at most `capacity` compiled plans, over
    /// the default shard count.
    pub fn new(capacity: usize) -> PlanCache {
        PlanCache::with_shards(capacity, DEFAULT_SHARDS)
    }

    /// An empty cache with an explicit shard count (1 = the old
    /// single-mutex layout; tests compare against it).
    pub fn with_shards(capacity: usize, n_shards: usize) -> PlanCache {
        assert!(capacity > 0, "a zero-capacity cache cannot single-flight");
        assert!(n_shards > 0, "a cache needs at least one shard");
        PlanCache {
            capacity,
            shards: (0..n_shards).map(|_| CacheShard::new()).collect(),
            clock: AtomicU64::new(0),
            uncached: AtomicU64::new(0),
        }
    }

    /// Number of shards (fixed at construction).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard_of(&self, fingerprint: u64) -> &CacheShard {
        &self.shards[(fingerprint % self.shards.len() as u64) as usize]
    }

    /// Resolve `key` to a plan, compiling via `compile` on a miss. At most
    /// one thread compiles any given key at a time; concurrent duplicates
    /// block until the compile lands and then share its result (compile
    /// errors included — [`HarborError`] is `Clone` for exactly this).
    fn resolve(
        &self,
        key: PlanKey,
        compile: impl FnOnce() -> Result<ScenarioPlan, HarborError>,
    ) -> (Result<Arc<ScenarioPlan>, HarborError>, Resolution) {
        let shard = self.shard_of(key.fingerprint());
        let flight: Arc<Flight>;
        {
            let mut map = shard.lock();
            let stamp = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
            match map.get_mut(&key) {
                Some((Slot::Ready(plan), last_use)) => {
                    *last_use = stamp;
                    shard.hits.fetch_add(1, Ordering::Relaxed);
                    return (Ok(Arc::clone(plan)), Resolution::Hit);
                }
                Some((Slot::InFlight(f), _)) => {
                    flight = Arc::clone(f);
                    // fall through to wait, outside the shard lock
                }
                None => {
                    let f = Arc::new(Flight {
                        done: Mutex::new(None),
                        cv: Condvar::new(),
                    });
                    map.insert(key.clone(), (Slot::InFlight(Arc::clone(&f)), stamp));
                    drop(map);
                    // compile outside any lock: every shard keeps
                    // resolving other keys while this one builds
                    let t0 = Instant::now();
                    let compiled = compile().map(Arc::new);
                    let took = t0.elapsed();
                    let mut map = shard.lock();
                    match &compiled {
                        Ok(plan) => {
                            let stamp = self.clock.load(Ordering::Relaxed);
                            map.insert(key, (Slot::Ready(Arc::clone(plan)), stamp));
                        }
                        Err(_) => {
                            map.remove(&key);
                        }
                    }
                    drop(map);
                    if compiled.is_ok() {
                        self.enforce_capacity();
                    }
                    *f.done.lock().unwrap() = Some(compiled.clone());
                    f.cv.notify_all();
                    shard.misses.fetch_add(1, Ordering::Relaxed);
                    return (compiled, Resolution::Miss(took));
                }
            }
        }
        let t0 = Instant::now();
        let mut done = flight.done.lock().unwrap();
        while done.is_none() {
            done = flight.cv.wait(done).unwrap();
        }
        shard.waits.fetch_add(1, Ordering::Relaxed);
        (done.clone().unwrap(), Resolution::Wait(t0.elapsed()))
    }

    /// Evict least-recently-used *ready* plans until the global residency
    /// fits the capacity; in-flight slots are never evicted (waiters hold
    /// their rendezvous). Takes the shard locks in index order — this is
    /// the only multi-shard lock path, so the fixed order is a total
    /// deadlock-freedom argument.
    fn enforce_capacity(&self) {
        let mut maps: Vec<_> = self.shards.iter().map(|s| s.map.lock().unwrap()).collect();
        loop {
            let total: usize = maps.iter().map(|m| m.len()).sum();
            if total <= self.capacity {
                return;
            }
            let victim = maps
                .iter()
                .enumerate()
                .flat_map(|(si, m)| m.iter().map(move |(k, (slot, stamp))| (si, k, slot, stamp)))
                .filter(|(_, _, slot, _)| matches!(slot, Slot::Ready(_)))
                .min_by_key(|(_, _, _, stamp)| **stamp)
                .map(|(si, k, _, _)| (si, k.clone()));
            match victim {
                Some((si, k)) => {
                    maps[si].remove(&k);
                }
                None => return,
            }
        }
    }

    /// Aggregated counters and residency over every shard.
    pub fn stats(&self) -> CacheStats {
        let mut total = CacheStats {
            uncached: self.uncached.load(Ordering::Relaxed),
            ..CacheStats::default()
        };
        for shard in &self.shards {
            total.absorb(&shard.stats());
        }
        total
    }

    /// Per-shard counters and residency, in shard order. The spread of
    /// `hits` across entries is the Zipf hot-head skew that
    /// `reproduce_all --trace` prints.
    pub fn shard_stats(&self) -> Vec<CacheStats> {
        self.shards.iter().map(CacheShard::stats).collect()
    }
}

/// The key identical in-flight executions rendezvous on: the plan's
/// allocation address (identical queries share one `Arc` through the
/// cache, so pointer identity *is* plan identity — and the winner holds
/// the `Arc` alive for as long as the key is registered, so the address
/// cannot be recycled underneath a waiter), the seed, and the recorder
/// mode (an off-mode waiter must not inherit a capture-mode trace).
type ExecKey = (usize, u64, u8);

/// The rendezvous duplicate `(plan, seed)` executions block on while the
/// first runs the simulation. Deterministic execution makes the clone
/// indistinguishable from a replay — outcome *and* trace.
struct ExecFlight {
    done: Mutex<Option<(Outcome, Recorder)>>,
    cv: Condvar,
    /// Duplicates currently blocked on this flight (tests rendezvous on
    /// it to make the sharing deterministic rather than timing-lucky).
    waiters: AtomicU64,
}

/// The concurrent query engine every sweep routes through.
///
/// The one entry point is [`QueryEngine::handle`] (or
/// [`QueryEngine::handle_traced`] to attribute trace spans): a typed
/// [`LabRequest`] in, a typed [`LabResponse`] out, identically callable
/// in-process or over the [`daemon`]'s wire protocol.
///
/// Holds the sharded [`PlanCache`] and the engine-level spine-taper
/// fallback (the explicit replacement for the old process-global
/// override knob): the fallback applies to every query compiled here
/// whose scenario did not pin its own taper, and is part of each
/// [`PlanKey`], so engines with different fallbacks never share plans
/// through a common cache.
pub struct QueryEngine {
    cache: PlanCache,
    fallback_taper: Option<f64>,
    /// Admission batching: in-flight `(plan, seed, mode)` executions.
    exec_flights: Mutex<HashMap<ExecKey, Arc<ExecFlight>>>,
    /// Executions served by cloning another execution's result.
    batched: AtomicU64,
}

impl Default for QueryEngine {
    fn default() -> QueryEngine {
        QueryEngine::new()
    }
}

impl QueryEngine {
    /// An engine with the default plan capacity (256), the default shard
    /// count, and no taper fallback.
    pub fn new() -> QueryEngine {
        QueryEngine::with_capacity(256)
    }

    /// An engine whose cache holds at most `capacity` plans.
    pub fn with_capacity(capacity: usize) -> QueryEngine {
        QueryEngine::with_cache(PlanCache::new(capacity))
    }

    /// An engine over an explicitly configured cache (shard count,
    /// capacity) — the constructor the sharding tests drive.
    pub fn with_cache(cache: PlanCache) -> QueryEngine {
        QueryEngine {
            cache,
            fallback_taper: None,
            exec_flights: Mutex::new(HashMap::new()),
            batched: AtomicU64::new(0),
        }
    }

    /// Set the engine-level spine-taper fallback (`reproduce_all
    /// --ablate-taper` / `--oversub`). Scenario-pinned tapers still win;
    /// see [`Scenario::compile_with`].
    pub fn spine_taper_fallback(mut self, taper: Option<f64>) -> QueryEngine {
        if let Some(t) = taper {
            assert!(
                t > 0.0 && t <= 1.0,
                "taper is a fraction of injection bandwidth"
            );
        }
        self.fallback_taper = taper;
        self
    }

    /// The configured taper fallback.
    pub fn taper(&self) -> Option<f64> {
        self.fallback_taper
    }

    /// Compile one canonical scenario per paper cluster so a resident
    /// engine answers its first interactive queries from a warm cache —
    /// route tables, job profiles, and calibration for all four machines
    /// are resolved before the first request arrives. Returns how many
    /// clusters were primed. Idempotent (re-priming is all cache hits).
    pub fn warm_start(&self) -> usize {
        let mut primed = 0;
        for cluster in harborsim_hw::presets::all() {
            let scenario = Scenario::new(cluster, crate::workloads::artery_cfd_small());
            if self.plan(&scenario).is_ok() {
                primed += 1;
            }
        }
        primed
    }

    /// Handle one typed request. `Execute` runs with a private
    /// aggregating recorder so its outcome carries full attribution (the
    /// lab-routed equivalent of [`Scenario::run`]); every other kind runs
    /// untraced. Use [`QueryEngine::handle_traced`] to attribute spans
    /// to a caller-owned recorder instead.
    pub fn handle(&self, req: LabRequest) -> LabResponse {
        match req {
            LabRequest::Execute { .. } => self.handle_traced(req, &mut Recorder::aggregating()),
            req => self.handle_traced(req, &mut Recorder::off()),
        }
    }

    /// [`QueryEngine::handle`] with explicit trace attribution: cache
    /// activity lands in `rec` as [`SpanCategory::Cache`] spans and
    /// `plan_cache_*` counters, and each execution records into a
    /// [`Recorder::like`] sibling merged back in submission order — so
    /// an aggregating `rec` sees every run and an off `rec` costs
    /// nothing.
    pub fn handle_traced(&self, req: LabRequest, rec: &mut Recorder) -> LabResponse {
        match req {
            LabRequest::Plan { scenario } => match self.plan(&scenario) {
                Ok(plan) => LabResponse::Plan(PlanInfo {
                    fingerprint: PlanKey::of(&scenario, self.fallback_taper)
                        .map(|k| k.fingerprint()),
                    engine: plan.engine_name().to_string(),
                    ranks: plan.rank_map().ranks(),
                    deployment: plan.deployment().is_some(),
                }),
                Err(e) => LabResponse::Error(e),
            },
            LabRequest::Execute { scenario, seed } => {
                let mut batch = self.run_batch(vec![Query::new(*scenario, &[seed])], rec);
                match batch.remove(0) {
                    Ok(mut outcomes) => LabResponse::Execute(Box::new(outcomes.remove(0))),
                    Err(e) => LabResponse::Error(e),
                }
            }
            LabRequest::Batch { queries } => LabResponse::Batch(self.run_batch(queries, rec)),
            LabRequest::Campaign { script } => match self.run_campaign(&script, rec) {
                Ok(report) => LabResponse::Campaign(report),
                Err(e) => LabResponse::Error(e),
            },
            LabRequest::Stats => LabResponse::Stats(EngineStats {
                cache: self.stats(),
                per_shard: self.shard_stats(),
                batched_executes: self.batched_executes(),
                daemon: None,
            }),
        }
    }

    /// Resolve one scenario to its (possibly shared) compiled plan — the
    /// in-process primitive under [`LabRequest::Plan`], kept public for
    /// benches and trace capture.
    ///
    /// # Errors
    /// See [`Scenario::compile`].
    pub fn plan(&self, scenario: &Scenario) -> Result<Arc<ScenarioPlan>, HarborError> {
        self.resolve(scenario).0
    }

    fn resolve(&self, scenario: &Scenario) -> (Result<Arc<ScenarioPlan>, HarborError>, Resolution) {
        match PlanKey::of(scenario, self.fallback_taper) {
            Some(key) => self
                .cache
                .resolve(key, || scenario.compile_with(self.fallback_taper)),
            None => {
                self.cache.uncached.fetch_add(1, Ordering::Relaxed);
                let t0 = Instant::now();
                let plan = scenario.compile_with(self.fallback_taper).map(Arc::new);
                (plan, Resolution::Uncached(t0.elapsed()))
            }
        }
    }

    /// Run a batch of queries: plans resolve concurrently through the
    /// sharded cache, then every `(plan, seed)` item runs on the
    /// work-stealing pool with admission batching. Results come back in
    /// submission order, one `Vec<Outcome>` (seed order) per query; a
    /// query whose scenario fails to compile yields its error without
    /// sinking the batch. The engine behind [`LabRequest::Batch`].
    pub(crate) fn run_batch(
        &self,
        queries: Vec<Query>,
        rec: &mut Recorder,
    ) -> Vec<Result<Vec<Outcome>, HarborError>> {
        // Phase 1 — resolve every query's plan concurrently. Duplicate
        // fingerprints collapse onto one compile via the single-flight
        // cache; distinct ones compile in parallel.
        let resolved = harborsim_par::run(queries, |q| {
            let (plan, how) = self.resolve(&q.scenario);
            (plan, how, q.seeds)
        });
        for (_, how, _) in &resolved {
            let (name, dur) = match how {
                Resolution::Hit => ("plan-cache-hit", std::time::Duration::ZERO),
                Resolution::Miss(d) => ("plan-compile", *d),
                Resolution::Wait(d) => ("plan-cache-wait", *d),
                Resolution::Uncached(d) => ("plan-compile-uncached", *d),
            };
            let counter = match how {
                Resolution::Hit => "plan_cache_hits",
                Resolution::Miss(_) => "plan_cache_misses",
                Resolution::Wait(_) => "plan_cache_waits",
                Resolution::Uncached(_) => "plan_uncached",
            };
            rec.span(
                SpanCategory::Cache,
                name,
                0,
                SimTime::ZERO,
                SimTime::ZERO + SimDuration::from_secs_f64(dur.as_secs_f64()),
            );
            rec.counter(counter, 1.0);
        }
        // Phase 2 — flatten to (query, seed) items and shard. Each item
        // records into its own sibling recorder; merging back in item
        // order keeps the roll-up deterministic regardless of stealing.
        // Identical (plan, seed) items in flight at the same moment
        // share one execute via the admission-batching rendezvous.
        let mut failures: Vec<Option<HarborError>> = Vec::with_capacity(resolved.len());
        let mut items: Vec<(usize, Arc<ScenarioPlan>, u64)> = Vec::new();
        for (qi, (plan, _, seeds)) in resolved.into_iter().enumerate() {
            match plan {
                Ok(plan) => {
                    failures.push(None);
                    items.extend(seeds.iter().map(|&s| (qi, Arc::clone(&plan), s)));
                }
                Err(e) => failures.push(Some(e)),
            }
        }
        let template = Recorder::like(rec);
        let mode = recorder_mode_tag(&template);
        let executed = harborsim_par::run(items, |(qi, plan, seed)| {
            let (outcome, local) = self.execute_shared(&plan, seed, mode, || {
                let mut local = template.clone();
                let outcome = plan.execute(seed, &mut local);
                (outcome, local)
            });
            (qi, outcome, local)
        });
        let mut results: Vec<Result<Vec<Outcome>, HarborError>> = failures
            .into_iter()
            .map(|f| match f {
                Some(e) => Err(e),
                None => Ok(Vec::new()),
            })
            .collect();
        for (qi, outcome, local) in executed {
            rec.merge(local);
            if let Ok(outcomes) = &mut results[qi] {
                outcomes.push(outcome);
            }
        }
        results
    }

    /// Admission batching: if an identical `(plan, seed, mode)` execution
    /// is already in flight, wait for it and clone its outcome and trace
    /// instead of executing again; otherwise run `execute` and publish
    /// the result to any duplicates that arrive before it finishes. The
    /// batching window is exactly the in-flight duration — nothing is
    /// retained once the winner finishes, so this is a rendezvous, not a
    /// result cache (the plan cache already de-duplicates compiles;
    /// executions stay seed-exact).
    fn execute_shared(
        &self,
        plan: &Arc<ScenarioPlan>,
        seed: u64,
        mode: u8,
        execute: impl FnOnce() -> (Outcome, Recorder),
    ) -> (Outcome, Recorder) {
        let key: ExecKey = (Arc::as_ptr(plan) as usize, seed, mode);
        let flight = {
            let mut flights = self.exec_flights.lock().unwrap();
            match flights.get(&key) {
                Some(f) => {
                    let f = Arc::clone(f);
                    drop(flights);
                    f.waiters.fetch_add(1, Ordering::Relaxed);
                    let mut done = f.done.lock().unwrap();
                    while done.is_none() {
                        done = f.cv.wait(done).unwrap();
                    }
                    self.batched.fetch_add(1, Ordering::Relaxed);
                    let (outcome, local) = done.clone().unwrap();
                    return (outcome, local);
                }
                None => {
                    let f = Arc::new(ExecFlight {
                        done: Mutex::new(None),
                        cv: Condvar::new(),
                        waiters: AtomicU64::new(0),
                    });
                    flights.insert(key, Arc::clone(&f));
                    f
                }
            }
        };
        let (outcome, local) = execute();
        *flight.done.lock().unwrap() = Some((outcome.clone(), local.clone()));
        flight.cv.notify_all();
        self.exec_flights.lock().unwrap().remove(&key);
        (outcome, local)
    }

    /// Run a `.hsim` campaign script as a query: compile it server-side,
    /// then run every campaign's grid through the same cache and pool as
    /// a flag-driven run — closed grids as one batch per campaign, open
    /// campaigns through the open-system engine. The script's own
    /// `taper` directive is honoured by pinning it onto runs that did
    /// not pin their own (sound because the *resolved* taper is what a
    /// [`PlanKey`] fingerprints, not its provenance), so the reported
    /// fingerprints match `reproduce_all --script` exactly.
    fn run_campaign(
        &self,
        script: &str,
        rec: &mut Recorder,
    ) -> Result<CampaignReport, HarborError> {
        let compiled = crate::script::compile_str(script)?;
        let script_taper = compiled.taper;
        let fallback_seeds = compiled.seeds.clone();
        let mut campaigns = Vec::with_capacity(compiled.campaigns.len());
        for campaign in compiled.campaigns {
            let seeds: Vec<u64> = campaign.seeds_or(&fallback_seeds).to_vec();
            let mut labels = Vec::with_capacity(campaign.runs.len());
            let mut prints = Vec::with_capacity(campaign.runs.len());
            let mut scenarios = Vec::with_capacity(campaign.runs.len());
            for run in campaign.runs {
                labels.push(if run.labels.is_empty() {
                    "(base)".to_string()
                } else {
                    run.labels.join(" / ")
                });
                let mut scenario = run.scenario;
                if scenario.spine_taper.is_none() {
                    scenario.spine_taper = script_taper;
                }
                // the fingerprint of the key actually resolved below
                prints.push(
                    PlanKey::of(&scenario, self.fallback_taper)
                        .map(|k| k.fingerprint())
                        .unwrap_or(0),
                );
                scenarios.push(scenario);
            }
            let mut rows = Vec::with_capacity(scenarios.len());
            if scenarios.iter().any(|s| s.open.is_some()) {
                for ((label, scenario), print) in labels.into_iter().zip(scenarios).zip(prints) {
                    let mut wait = crate::sketch::QuantileSketch::new();
                    let mut jobs = 0u64;
                    let mut utilization = 0.0;
                    for &seed in &seeds {
                        let report = crate::open::run_open_campaign(self, &scenario, seed, rec)?;
                        jobs += report.jobs;
                        utilization += report.utilization;
                        for s in &report.per_runtime {
                            wait.merge(&s.wait);
                        }
                    }
                    utilization /= seeds.len().max(1) as f64;
                    rows.push(CampaignRow {
                        label,
                        fingerprint: print,
                        kind: CampaignRowKind::Open {
                            jobs,
                            utilization,
                            wait_p50_s: wait.p50(),
                            wait_p99_s: wait.p99(),
                        },
                    });
                }
            } else {
                let queries = scenarios
                    .into_iter()
                    .map(|s| Query::new(s, &seeds))
                    .collect();
                for ((label, result), print) in labels
                    .into_iter()
                    .zip(self.run_batch(queries, rec))
                    .zip(prints)
                {
                    let outcomes = result?;
                    let n = outcomes.len().max(1) as f64;
                    let mean = outcomes
                        .iter()
                        .map(|o| o.elapsed.as_secs_f64())
                        .sum::<f64>()
                        / n;
                    rows.push(CampaignRow {
                        label,
                        fingerprint: print,
                        kind: CampaignRowKind::Closed {
                            mean_elapsed_s: mean,
                        },
                    });
                }
            }
            campaigns.push(CampaignResult {
                name: campaign.name,
                rows,
            });
        }
        Ok(CampaignReport { campaigns })
    }

    /// Current cache statistics, aggregated over every shard.
    pub fn stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Per-shard cache statistics (see [`PlanCache::shard_stats`]).
    pub fn shard_stats(&self) -> Vec<CacheStats> {
        self.cache.shard_stats()
    }

    /// Executions served by admission batching (cloned from a concurrent
    /// identical execution instead of running the simulation again).
    pub fn batched_executes(&self) -> u64 {
        self.batched.load(Ordering::Relaxed)
    }
}

/// Collapse a recorder's mode into the admission-batching key tag: off,
/// aggregating, and capturing executions record different trace
/// payloads, so only like-moded duplicates may share one.
fn recorder_mode_tag(rec: &Recorder) -> u8 {
    match (rec.is_enabled(), rec.is_capturing()) {
        (false, _) => 0,
        (true, false) => 1,
        (true, true) => 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Execution;
    use crate::workloads;
    use harborsim_hw::presets;

    fn scenario(nodes: u32) -> Scenario {
        Scenario::new(presets::lenox(), workloads::artery_cfd_small())
            .execution(Execution::singularity_self_contained())
            .nodes(nodes)
            .ranks_per_node(14)
    }

    #[test]
    fn batch_matches_direct_execution_in_order() {
        let lab = QueryEngine::new();
        let seeds = [3u64, 5];
        let batch = lab
            .handle(LabRequest::Batch {
                queries: vec![
                    Query::new(scenario(1), &seeds),
                    Query::new(scenario(2), &seeds),
                ],
            })
            .into_batch();
        assert_eq!(batch.len(), 2);
        for (qi, nodes) in [1u32, 2].iter().enumerate() {
            let outcomes = batch[qi].as_ref().expect("compiles");
            assert_eq!(outcomes.len(), seeds.len());
            for (si, &seed) in seeds.iter().enumerate() {
                let direct = scenario(*nodes).run(seed);
                assert_eq!(
                    outcomes[si].elapsed, direct.elapsed,
                    "query {qi} seed {seed}"
                );
            }
        }
    }

    #[test]
    fn identical_queries_share_one_plan() {
        let lab = QueryEngine::new();
        let before = crate::scenario::plans_compiled();
        let queries = (0..8).map(|_| Query::new(scenario(2), &[1, 2])).collect();
        let results = lab.handle(LabRequest::Batch { queries }).into_batch();
        assert!(results.iter().all(|r| r.is_ok()));
        assert_eq!(
            crate::scenario::plans_compiled() - before,
            1,
            "8 identical queries must share one compile"
        );
        let stats = lab.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits + stats.waits, 7);
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn compile_errors_are_shared_not_cached() {
        let lab = QueryEngine::new();
        let bad = || scenario(9); // lenox has 8 nodes
        let results = lab
            .handle(LabRequest::Batch {
                queries: vec![Query::new(bad(), &[1]), Query::new(bad(), &[1])],
            })
            .into_batch();
        for r in &results {
            assert!(matches!(r, Err(HarborError::Placement(_))), "{r:?}");
        }
        // the failed key is not resident: a later resolve retries
        assert_eq!(lab.stats().entries, 0);
        assert!(lab.plan(&bad()).is_err());
    }

    #[test]
    fn cache_counters_flow_into_the_trace_rollup() {
        let lab = QueryEngine::new();
        let mut rec = Recorder::aggregating();
        let queries = (0..3).map(|_| Query::new(scenario(1), &[7])).collect();
        lab.handle_traced(LabRequest::Batch { queries }, &mut rec);
        let ru = rec.rollup();
        assert_eq!(ru.counter("plan_cache_misses"), 1.0);
        assert_eq!(
            ru.counter("plan_cache_hits") + ru.counter("plan_cache_waits"),
            2.0
        );
        assert_eq!(ru.count(SpanCategory::Cache), 3);
        // every query run is attributed through the same recorder, even
        // when admission batching collapsed the executions to one
        assert!(ru.count(SpanCategory::Run) == 3);
    }

    #[test]
    fn uncacheable_cases_compile_fresh_every_time() {
        struct Anon;
        impl harborsim_alya::workload::AlyaCase for Anon {
            fn name(&self) -> &str {
                "anonymous"
            }
            fn job_profile(&self, _ranks: u32) -> harborsim_mpi::JobProfile {
                use harborsim_mpi::{JobProfile, StepProfile};
                JobProfile::uniform(
                    StepProfile {
                        flops_per_rank: 1e7,
                        imbalance: 1.0,
                        regions: 1.0,
                        comm: vec![],
                    },
                    3,
                )
            }
        }
        let lab = QueryEngine::new();
        let mk = || {
            Scenario::new(presets::lenox(), Anon)
                .nodes(1)
                .ranks_per_node(4)
        };
        let before = crate::scenario::plans_compiled();
        lab.handle(LabRequest::Batch {
            queries: vec![Query::new(mk(), &[1]), Query::new(mk(), &[1])],
        });
        assert_eq!(crate::scenario::plans_compiled() - before, 2);
        let stats = lab.stats();
        assert_eq!(stats.uncached, 2);
        assert_eq!(stats.entries, 0);
    }

    #[test]
    fn lru_evicts_the_coldest_plan() {
        // capacity is a *global* budget: sharding must not change what
        // gets evicted, so this runs on the default multi-shard layout
        let lab = QueryEngine::with_capacity(2);
        for nodes in [1u32, 2, 4] {
            lab.plan(&scenario(nodes)).unwrap();
        }
        assert_eq!(lab.stats().entries, 2);
        // node-1 was coldest; re-resolving it is a miss, node-4 a hit
        let before = lab.stats();
        lab.plan(&scenario(4)).unwrap();
        assert_eq!(lab.stats().hits, before.hits + 1);
        lab.plan(&scenario(1)).unwrap();
        assert_eq!(lab.stats().misses, before.misses + 1);
    }

    #[test]
    fn taper_fallback_is_part_of_the_key() {
        let mk = || {
            Scenario::new(presets::marenostrum4(), workloads::artery_cfd_small())
                .nodes(2)
                .ranks_per_node(48)
        };
        let plain = PlanKey::of(&mk(), None).unwrap();
        let ablated = PlanKey::of(&mk(), Some(1.0)).unwrap();
        assert_ne!(plain, ablated, "fallback must split the key");
        // a builder-pinned taper absorbs the fallback
        let pinned_a = PlanKey::of(&mk().spine_taper(0.5), None).unwrap();
        let pinned_b = PlanKey::of(&mk().spine_taper(0.5), Some(1.0)).unwrap();
        assert_eq!(pinned_a, pinned_b, "builder taper wins over fallback");
    }

    /// The `i`-th of 8 distinct plan keys on Lenox (only 4 nodes, so
    /// distinctness past 4 comes from the ranks-per-node axis).
    fn keyed(i: usize) -> Scenario {
        Scenario::new(presets::lenox(), workloads::artery_cfd_small())
            .execution(Execution::singularity_self_contained())
            .nodes([1u32, 2, 3, 4][i % 4])
            .ranks_per_node(if i < 4 { 14 } else { 7 })
    }

    #[test]
    fn shard_counters_conserve_the_aggregate() {
        let lab = QueryEngine::with_cache(PlanCache::with_shards(64, 4));
        let queries = (0..6)
            .flat_map(|i| (0..3).map(move |_| Query::new(keyed(i), &[1])))
            .collect();
        lab.handle(LabRequest::Batch { queries });
        let total = lab.stats();
        let per_shard = lab.shard_stats();
        assert_eq!(per_shard.len(), 4);
        let sum = |f: fn(&CacheStats) -> u64| per_shard.iter().map(f).sum::<u64>();
        assert_eq!(sum(|s| s.hits), total.hits);
        assert_eq!(sum(|s| s.misses), total.misses);
        assert_eq!(sum(|s| s.waits), total.waits);
        assert_eq!(
            per_shard.iter().map(|s| s.entries).sum::<usize>(),
            total.entries
        );
        assert_eq!(total.hits + total.waits + total.misses, 18);
        assert_eq!(total.misses, 6, "six distinct keys, one compile each");
    }

    #[test]
    fn eviction_is_globally_coldest_across_shards() {
        // 5 distinct keys into a 4-shard, capacity-3 cache: whichever
        // shards they land on, residency must settle at 3 and the
        // evicted plans must be exactly the least-recently-used ones.
        let lab = QueryEngine::with_cache(PlanCache::with_shards(3, 4));
        for i in 0..5 {
            lab.plan(&keyed(i)).unwrap();
        }
        assert_eq!(lab.stats().entries, 3);
        let before = lab.stats();
        // the three hottest (most recent) keys are 2, 3, 4: all hits
        for i in 2..5 {
            lab.plan(&keyed(i)).unwrap();
        }
        assert_eq!(lab.stats().hits, before.hits + 3);
        // the two coldest were evicted: both recompile
        for i in 0..2 {
            lab.plan(&keyed(i)).unwrap();
        }
        assert_eq!(lab.stats().misses, before.misses + 2);
    }

    #[test]
    fn admission_batching_shares_an_in_flight_execute() {
        use std::sync::mpsc;
        let lab = Arc::new(QueryEngine::new());
        let plan = lab.plan(&scenario(1)).unwrap();
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let (started_tx, started_rx) = mpsc::channel::<()>();
        let winner = {
            let lab = Arc::clone(&lab);
            let plan = Arc::clone(&plan);
            std::thread::spawn(move || {
                lab.execute_shared(&plan, 7, 0, || {
                    started_tx.send(()).unwrap();
                    release_rx.recv().unwrap(); // hold the flight open
                    let mut rec = Recorder::off();
                    (plan.execute(7, &mut rec), rec)
                })
            })
        };
        // wait until the winner is inside its execute (flight registered)
        started_rx.recv().unwrap();
        let follower = {
            let lab = Arc::clone(&lab);
            let plan = Arc::clone(&plan);
            std::thread::spawn(move || {
                lab.execute_shared(&plan, 7, 0, || {
                    panic!("the follower must share the in-flight execute, not run its own")
                })
            })
        };
        // wait until the follower is provably blocked on the rendezvous,
        // then release the winner
        loop {
            let flights = lab.exec_flights.lock().unwrap();
            let arrived = flights
                .values()
                .next()
                .is_some_and(|f| f.waiters.load(Ordering::Relaxed) > 0);
            drop(flights);
            if arrived {
                break;
            }
            std::thread::yield_now();
        }
        release_tx.send(()).unwrap();
        let (a, _) = winner.join().unwrap();
        let (b, _) = follower.join().unwrap();
        assert_eq!(a.elapsed, b.elapsed, "follower clones the winner's outcome");
        assert_eq!(lab.batched_executes(), 1);
        assert!(
            lab.exec_flights.lock().unwrap().is_empty(),
            "flights are a rendezvous, not a cache"
        );
    }

    #[test]
    fn admission_batching_is_invisible_in_results_and_traces() {
        // same scenario, same seed, many times in one batch: outcomes
        // and the merged trace must be identical whether or not
        // executions were shared, and run-span counts stay per-query
        let lab = QueryEngine::new();
        let mut rec = Recorder::aggregating();
        let queries = (0..4).map(|_| Query::new(scenario(2), &[9])).collect();
        let batch = lab
            .handle_traced(LabRequest::Batch { queries }, &mut rec)
            .into_batch();
        let direct = scenario(2).run(9);
        for r in &batch {
            let outcomes = r.as_ref().expect("compiles");
            assert_eq!(outcomes[0].elapsed, direct.elapsed);
            assert_eq!(outcomes[0].result.compute, direct.result.compute);
        }
        assert_eq!(rec.rollup().count(SpanCategory::Run), 4);
    }

    #[test]
    fn warm_start_primes_every_paper_cluster() {
        let lab = QueryEngine::new();
        assert_eq!(lab.warm_start(), 4);
        let stats = lab.stats();
        assert_eq!(stats.entries, 4);
        assert_eq!(stats.misses, 4);
        // idempotent: re-priming is pure hits
        assert_eq!(lab.warm_start(), 4);
        assert_eq!(lab.stats().hits, 4);
        assert_eq!(lab.stats().entries, 4);
    }

    #[test]
    fn campaign_requests_compile_and_run_scripts() {
        let lab = QueryEngine::new();
        let script = "\
seeds quick
campaign \"probe\" {
  cluster lenox
  workload cfd-small
  env singularity self-contained
  rpn 14
  sweep nodes [1, 2]
}
";
        let report = match lab.handle(LabRequest::Campaign {
            script: script.into(),
        }) {
            LabResponse::Campaign(r) => r,
            other => panic!("expected a campaign response, got {other:?}"),
        };
        assert_eq!(report.campaigns.len(), 1);
        assert_eq!(report.campaigns[0].name, "probe");
        let rows = &report.campaigns[0].rows;
        assert_eq!(rows.len(), 2);
        for (row, nodes) in rows.iter().zip([1u32, 2]) {
            let expected = PlanKey::of(&scenario(nodes), None).unwrap().fingerprint();
            assert_eq!(row.fingerprint, expected, "row {}", row.label);
            match row.kind {
                CampaignRowKind::Closed { mean_elapsed_s } => assert!(mean_elapsed_s > 0.0),
                ref k => panic!("closed campaign produced {k:?}"),
            }
        }
    }

    #[test]
    fn campaign_script_errors_are_typed_responses() {
        let lab = QueryEngine::new();
        let resp = lab.handle(LabRequest::Campaign {
            script: "campaign \"x\" {\n  cluster atlantis\n}\n".into(),
        });
        match resp {
            LabResponse::Error(HarborError::Script(e)) => {
                assert!(e.span.line >= 2, "{e}");
                assert!(e.to_string().contains("atlantis"), "{e}");
            }
            other => panic!("expected a script error, got {other:?}"),
        }
    }
}
