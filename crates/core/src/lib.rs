//! # harborsim-core
//!
//! The study harness: everything that turns the HarborSim substrates into
//! the paper's evaluation.
//!
//! - [`scenario`] — a runnable scenario: cluster × execution environment ×
//!   workload × placement, with engine selection and deployment modelling.
//!   Scenarios *compile* into a [`scenario::ScenarioPlan`] (validate once,
//!   execute many seeds).
//! - [`error`] — [`HarborError`], the typed study-level error wrapping the
//!   substrate errors.
//! - [`lab`] — the concurrent query engine: batched queries fingerprinted
//!   into a single-flight LRU plan cache and sharded across the
//!   work-stealing pool. Every sweep routes through it.
//! - [`runner`] — repetition, averaging, and parallel parameter sweeps,
//!   built on compile-once plans and routed through the lab.
//! - [`workloads`] — the Alya case presets re-exported for convenience.
//! - [`experiments`] — one function per figure/table of the paper
//!   (Fig. 1 containerization, Fig. 2 portability, Fig. 3 scalability,
//!   the deployment-overhead and cross-architecture tables, and the
//!   future-work I/O storm study), each returning structured data plus
//!   shape checks that encode the paper's qualitative claims.
//! - [`dist`] — seed-deterministic sampling distributions (Poisson
//!   interarrivals, Zipf-over-ranks) for open workloads.
//! - [`open`] — open-system campaigns: Poisson arrivals, a Zipf job mix,
//!   tenant-warm image staging, and per-runtime tail-latency sketches.
//! - [`sketch`] — a mergeable streaming quantile sketch (DDSketch-style
//!   relative-error buckets) for p50/p99/p999 tails.
//! - [`report`] — aligned ASCII tables, ASCII charts, CSV and SVG writers.
//! - [`traceviz`] — exporters for captured simulation traces:
//!   chrome://tracing JSON and a per-category summary table.

pub mod calibration;
pub mod dist;
pub mod error;
pub mod experiments;
pub mod json;
pub mod lab;
pub mod open;
pub mod report;
pub mod runner;
pub mod scenario;
pub mod script;
pub mod sketch;
pub mod traceviz;

/// The Alya case presets, re-exported for harness users.
pub mod workloads {
    pub use harborsim_alya::workload::{AlyaCase, ArteryCfd, ArteryFsi};
    use harborsim_mpi::workload::{CommPhase, JobProfile, StepProfile};

    /// A 1D chain-halo case with enough bytes per edge that placement
    /// decides how much traffic hits the wire (the 3D CFD partitions can
    /// tie under stride aliasing; see the `ablate_mapping` bench). Used
    /// by the `ext-locality` experiment and addressable from scripts as
    /// `workload chain-halo`.
    pub struct ChainHaloCase;

    impl AlyaCase for ChainHaloCase {
        fn name(&self) -> &str {
            "chain-halo-locality"
        }

        fn memo_key(&self) -> Option<String> {
            // the profile is rank-independent, so a constant key is exact
            Some("chain-halo-locality".into())
        }

        fn job_profile(&self, _ranks: u32) -> JobProfile {
            JobProfile::uniform(
                StepProfile {
                    flops_per_rank: 2e8,
                    imbalance: 1.0,
                    regions: 1.0,
                    comm: vec![CommPhase::Halo1D {
                        bytes: 200_000,
                        repeats: 20,
                    }],
                },
                50,
            )
        }
    }

    /// The small CFD case used by the quickstart example and tests.
    pub fn artery_cfd_small() -> ArteryCfd {
        ArteryCfd::small()
    }

    /// The Fig. 1 CFD case.
    pub fn artery_cfd_lenox() -> ArteryCfd {
        ArteryCfd::lenox_case()
    }

    /// The Fig. 2 CFD case.
    pub fn artery_cfd_cte() -> ArteryCfd {
        ArteryCfd::cte_power_case()
    }

    /// The Fig. 3 FSI case.
    pub fn artery_fsi_mn4() -> ArteryFsi {
        ArteryFsi::mn4_case()
    }

    /// The small FSI case.
    pub fn artery_fsi_small() -> ArteryFsi {
        ArteryFsi::small()
    }

    /// Look a preset up by its script-facing registry name (the same
    /// names the `.hsim` `workload` directive accepts). `None` for
    /// unknown names.
    pub fn by_name(name: &str) -> Option<Box<dyn AlyaCase + Send + Sync>> {
        match name {
            "cfd-small" => Some(Box::new(artery_cfd_small())),
            "cfd-lenox" => Some(Box::new(artery_cfd_lenox())),
            "cfd-cte" => Some(Box::new(artery_cfd_cte())),
            "fsi-small" => Some(Box::new(artery_fsi_small())),
            "fsi-mn4" => Some(Box::new(artery_fsi_mn4())),
            "chain-halo" => Some(Box::new(ChainHaloCase)),
            _ => None,
        }
    }
}

pub use dist::{Poisson, Zipf};
pub use error::HarborError;
pub use lab::daemon::{DaemonHandle, LabClient, LabDaemon};
pub use lab::{
    CacheStats, CampaignReport, CampaignResult, CampaignRow, CampaignRowKind, EngineStats,
    LabRequest, LabResponse, PlanCache, PlanInfo, PlanKey, Query, QueryEngine,
};
pub use open::{
    class_table, run_open_campaign, MixSpec, OpenClass, OpenReport, OpenSpec, RuntimeOpenStats,
};
pub use report::{FigureData, Series, TableData};
pub use scenario::{EngineKind, Execution, Outcome, Scenario, ScenarioPlan};
pub use script::{CompiledCampaign, CompiledRun, CompiledScript, ScriptError};
pub use sketch::QuantileSketch;
