//! Runnable scenarios: cluster × execution environment × workload ×
//! placement.
//!
//! A [`Scenario`] is the builder; [`Scenario::compile`] validates it once
//! and produces a [`ScenarioPlan`] — placement, job profile, composed
//! network, engine, and (if requested) the built image and deployment
//! model, all resolved up front. [`ScenarioPlan::execute`] then costs one
//! seed with no validation, no profile rebuild and no image rebuild, which
//! is what the repetition-and-sweep layer in [`crate::runner`] leans on.

use crate::error::HarborError;
use crate::open::OpenSpec;
use harborsim_alya::memo::job_profile_cached;
use harborsim_alya::workload::AlyaCase;
use harborsim_container::deploy::deployment_overhead;
use harborsim_container::image::ImageManifest;
use harborsim_container::{BuildEngine, BuildError, DeploymentReport};
use harborsim_des::trace::{AttrValue, Recorder, SpanCategory, TraceBuffer};
use harborsim_des::{SimDuration, SimTime};
use harborsim_hw::{ClusterSpec, CpuModel, FabricLayout};
use harborsim_mpi::analytic::EngineConfig;
use harborsim_mpi::workload::JobProfile;
use harborsim_mpi::{
    route_table, AnalyticEngine, DesEngine, PerfEngine, Placement, RankMap, SimResult,
    TruncatingDes,
};
use harborsim_net::{NetworkModel, Topology};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

pub use harborsim_container::runtime::ExecutionEnvironment as Execution;

/// Which performance engine executes the workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// Closed-form bulk-synchronous engine (default; exact enough and
    /// instant at any scale).
    Analytic,
    /// Message-level discrete-event engine; the job is truncated to at most
    /// this many steps per step-kind and the result scaled back.
    Des {
        /// Steps of each kind to actually simulate.
        max_steps_per_kind: u32,
    },
}

/// The topology a cluster's declared [`FabricLayout`] expands to, before
/// any taper override. Scenarios resolve overrides on top of this via
/// [`Scenario::network_model`].
pub fn topology_for(cluster: &ClusterSpec) -> Topology {
    Topology::from_layout(&cluster.fabric_layout)
}

/// Number of [`ScenarioPlan`]s compiled by this process so far. Plans are
/// the expensive, cacheable unit of the lab layer; tests assert around
/// this counter (in the style of `builds_executed`) that a sweep of N
/// identical queries compiles exactly one plan.
pub fn plans_compiled() -> u64 {
    PLANS_COMPILED.load(Ordering::Relaxed)
}

static PLANS_COMPILED: AtomicU64 = AtomicU64::new(0);

/// What a scenario run produces.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// Solver elapsed time (the quantity the paper's figures plot).
    pub elapsed: SimDuration,
    /// Full engine result (breakdowns, traffic counters).
    pub result: SimResult,
    /// Deployment cost, if requested via [`Scenario::with_deployment`].
    pub deployment: Option<DeploymentReport>,
}

/// A configured scenario.
pub struct Scenario {
    /// The machine.
    pub cluster: ClusterSpec,
    /// The workload.
    pub case: Box<dyn AlyaCase + Send + Sync>,
    /// Runtime + containment.
    pub env: Execution,
    /// Nodes used.
    pub nodes: u32,
    /// MPI ranks per node.
    pub ranks_per_node: u32,
    /// OpenMP threads per rank.
    pub threads_per_rank: u32,
    /// Engine choice.
    pub engine: EngineKind,
    /// Whether to also simulate image deployment.
    pub deploy: bool,
    /// Layout of ranks over nodes.
    pub placement: Placement,
    /// Per-scenario spine-taper override (beats any engine-level fallback
    /// passed to [`Scenario::compile_with`], which beats the machine's
    /// declared layout).
    pub spine_taper: Option<f64>,
    /// Node uplinks to degrade: `(node, factor)` multiplies that node's
    /// injection capacity by `factor` in the compiled route table.
    pub degraded_uplinks: Vec<(u32, f64)>,
    /// DES shard count (1 = serial event loop). Only the message-level
    /// engine reads it; the sharded run is bit-identical to serial, so
    /// this is a throughput knob, not a model knob.
    pub shards: u32,
    /// Open-system campaign spec, if this scenario describes one
    /// (arrival process, tenant count, job mix). Compiling the scenario
    /// itself ignores it — the open engine [`crate::open`] reads it to
    /// derive the per-class solver scenarios and the arrival sampler.
    pub open: Option<OpenSpec>,
}

impl Scenario {
    /// A bare-metal scenario using one full node; customize via the
    /// builder methods.
    pub fn new(cluster: ClusterSpec, case: impl AlyaCase + Send + Sync + 'static) -> Scenario {
        let rpn = cluster.node.cores();
        Scenario {
            cluster,
            case: Box::new(case),
            env: Execution::bare_metal(),
            nodes: 1,
            ranks_per_node: rpn,
            threads_per_rank: 1,
            engine: EngineKind::Analytic,
            deploy: false,
            placement: Placement::Block,
            spine_taper: None,
            degraded_uplinks: Vec::new(),
            shards: 1,
            open: None,
        }
    }

    /// Set the execution environment.
    pub fn execution(mut self, env: Execution) -> Scenario {
        self.env = env;
        self
    }

    /// Set the node count.
    pub fn nodes(mut self, nodes: u32) -> Scenario {
        self.nodes = nodes;
        self
    }

    /// Set ranks per node.
    pub fn ranks_per_node(mut self, rpn: u32) -> Scenario {
        self.ranks_per_node = rpn;
        self
    }

    /// Set threads per rank.
    pub fn threads_per_rank(mut self, t: u32) -> Scenario {
        self.threads_per_rank = t;
        self
    }

    /// Select the performance engine.
    pub fn engine(mut self, engine: EngineKind) -> Scenario {
        self.engine = engine;
        self
    }

    /// Run the DES engine over this many shards (ignored by the analytic
    /// engine; clamped to the fabric's leaf count at run time). The result
    /// is bit-identical at every shard count.
    pub fn shards(mut self, shards: u32) -> Scenario {
        assert!(shards >= 1, "shard count must be at least 1");
        self.shards = shards;
        self
    }

    /// Also simulate deploying the image before the run.
    pub fn with_deployment(mut self) -> Scenario {
        self.deploy = true;
        self
    }

    /// Attach an open-system campaign spec (arrival process, tenants,
    /// job mix). Run it through [`crate::open::run_open_campaign`].
    pub fn open_campaign(mut self, spec: OpenSpec) -> Scenario {
        self.open = Some(spec);
        self
    }

    /// Choose how ranks are laid out over nodes (default: block).
    pub fn placement(mut self, placement: Placement) -> Scenario {
        self.placement = placement;
        self
    }

    /// Override the fabric's spine taper for this scenario only (1.0 =
    /// non-blocking, 0.5 = 2:1 oversubscribed).
    pub fn spine_taper(mut self, taper: f64) -> Scenario {
        assert!(
            taper > 0.0 && taper <= 1.0,
            "taper is a fraction of injection bandwidth"
        );
        self.spine_taper = Some(taper);
        self
    }

    /// Degrade one node's uplink to `factor` of its capacity — a flapping
    /// cable or renegotiated-down port, for the robustness scenarios.
    pub fn degrade_node_uplink(mut self, node: u32, factor: f64) -> Scenario {
        assert!(
            factor > 0.0 && factor <= 1.0,
            "degradation is a fraction of link capacity"
        );
        self.degraded_uplinks.push((node, factor));
        self
    }

    /// The fabric layout with this scenario's own taper override resolved
    /// (no engine-level fallback): [`Scenario::fabric_layout_with`] with
    /// `None`.
    pub fn fabric_layout(&self) -> FabricLayout {
        self.fabric_layout_with(None)
    }

    /// The fabric layout after taper overrides are resolved: this
    /// scenario's [`Scenario::spine_taper`] beats `fallback_taper` (the
    /// engine-level knob behind `reproduce_all --ablate-taper` /
    /// `--oversub`), which beats the machine's declared layout. Flat
    /// single-switch fabrics have no spine and ignore both.
    pub fn fabric_layout_with(&self, fallback_taper: Option<f64>) -> FabricLayout {
        let mut layout = self.cluster.fabric_layout;
        if let Some(t) = self.spine_taper.or(fallback_taper) {
            assert!(
                t > 0.0 && t <= 1.0,
                "taper is a fraction of injection bandwidth"
            );
            layout.spine_taper = t;
        }
        layout
    }

    /// The composed network model this scenario observes.
    pub fn network_model(&self) -> NetworkModel {
        self.network_model_with(None)
    }

    /// The composed network model under an engine-level taper fallback.
    pub fn network_model_with(&self, fallback_taper: Option<f64>) -> NetworkModel {
        self.env.network_model(
            self.cluster.interconnect,
            Topology::from_layout(&self.fabric_layout_with(fallback_taper)),
        )
    }

    /// Validate the scenario and resolve everything seed-independent into
    /// a [`ScenarioPlan`]: placement, job profile, network, engine, and
    /// (if requested) the built image and its deployment model.
    ///
    /// # Errors
    /// [`HarborError::Placement`] if the placement doesn't fit the machine,
    /// [`HarborError::RuntimeUnavailable`] if the container runtime is not
    /// installed there, [`HarborError::Build`] if deployment was requested
    /// and the image build fails.
    pub fn compile(&self) -> Result<ScenarioPlan, HarborError> {
        self.compile_with(None)
    }

    /// [`Scenario::compile`] under an engine-level spine-taper fallback:
    /// the scenario's own [`Scenario::spine_taper`] wins, the fallback
    /// applies otherwise, the declared layout last. Plans are a pure
    /// function of the builder and this argument — there is no process
    /// state involved, which is what makes lab [`crate::lab::PlanKey`]
    /// fingerprints sound.
    ///
    /// # Errors
    /// See [`Scenario::compile`].
    pub fn compile_with(&self, fallback_taper: Option<f64>) -> Result<ScenarioPlan, HarborError> {
        self.cluster
            .validate_placement(self.nodes, self.ranks_per_node, self.threads_per_rank)?;
        if !self.env.runtime.available_on(&self.cluster.software) {
            return Err(HarborError::RuntimeUnavailable {
                runtime: self.env.runtime.label().to_string(),
                cluster: self.cluster.name.clone(),
            });
        }
        let map = RankMap {
            nodes: self.nodes,
            ranks_per_node: self.ranks_per_node,
            threads_per_rank: self.threads_per_rank,
            placement: self.placement,
        };
        let job = job_profile_cached(self.case.as_ref(), map.ranks());
        let network = self.network_model_with(fallback_taper);
        let config = EngineConfig {
            compute_tax: self.env.runtime.compute_tax(),
            ..EngineConfig::default()
        };
        // One route table per plan: built here, shared by whichever engine
        // runs (and degraded before it is frozen behind the Arc).
        let mut table = route_table(&map, &network);
        for &(node, factor) in &self.degraded_uplinks {
            assert!(
                node < self.nodes,
                "degraded uplink names node {node}, but the scenario has {} nodes",
                self.nodes
            );
            let id = table.graph().node_up(node);
            table.graph_mut().degrade(id, factor);
        }
        let routes = Arc::new(table);
        let engine: Box<dyn PerfEngine + Send + Sync> = match self.engine {
            EngineKind::Analytic => Box::new(AnalyticEngine::with_routes(
                self.cluster.node.clone(),
                network,
                map,
                config,
                routes,
            )),
            EngineKind::Des { max_steps_per_kind } => Box::new(TruncatingDes {
                inner: DesEngine::with_routes(
                    self.cluster.node.clone(),
                    network,
                    map,
                    config,
                    routes,
                )
                .with_shards(self.shards),
                max_steps_per_kind,
            }),
        };
        let (deployment, deployment_trace) = if self.deploy {
            let image = shared_alya_image(&self.cluster.node.cpu)?;
            // capture the deployment spans once at compile time; executes
            // replay them into any enabled recorder
            let mut dep_rec = Recorder::capturing();
            let report = deployment_overhead(
                self.nodes,
                self.env,
                &image,
                &self.cluster.shared_storage,
                &mut dep_rec,
            );
            (Some(report), Some(dep_rec.take_buffer()))
        } else {
            (None, None)
        };
        let attrs = vec![
            ("cluster", AttrValue::Text(self.cluster.name.clone())),
            ("env", AttrValue::Text(self.env.label())),
            ("nodes", AttrValue::Int(u64::from(self.nodes))),
            (
                "ranks_per_node",
                AttrValue::Int(u64::from(self.ranks_per_node)),
            ),
            (
                "threads_per_rank",
                AttrValue::Int(u64::from(self.threads_per_rank)),
            ),
            (
                "placement",
                AttrValue::Text(
                    match self.placement {
                        Placement::Block => "block",
                        Placement::RoundRobin => "round-robin",
                    }
                    .to_string(),
                ),
            ),
        ];
        PLANS_COMPILED.fetch_add(1, Ordering::Relaxed);
        Ok(ScenarioPlan {
            map,
            job,
            engine,
            deployment,
            deployment_trace,
            attrs,
        })
    }

    /// Validate and run; `seed` drives run-to-run jitter. One-shot
    /// convenience for [`Scenario::compile`] + [`ScenarioPlan::execute`]
    /// with an aggregating recorder (so the outcome's breakdowns are
    /// populated) — callers running many seeds should compile once and
    /// reuse the plan, or go through [`crate::lab::QueryEngine`].
    ///
    /// # Errors
    /// See [`Scenario::compile`].
    pub fn try_run(&self, seed: u64) -> Result<Outcome, HarborError> {
        Ok(self.compile()?.execute(seed, &mut Recorder::aggregating()))
    }

    /// Like [`Scenario::try_run`] but panics on configuration errors.
    ///
    /// # Panics
    /// Panics on placement violations or unavailable runtimes.
    pub fn run(&self, seed: u64) -> Outcome {
        match self.try_run(seed) {
            Ok(outcome) => outcome,
            Err(e) => panic!("scenario configuration: {e}"),
        }
    }
}

/// A compiled scenario: everything seed-independent resolved, ready to
/// execute any number of seeds.
pub struct ScenarioPlan {
    map: RankMap,
    job: JobProfile,
    engine: Box<dyn PerfEngine + Send + Sync>,
    deployment: Option<DeploymentReport>,
    /// Deployment spans captured at compile time, replayed per execute.
    deployment_trace: Option<TraceBuffer>,
    /// Scenario attributes attached to the top-level run span.
    attrs: Vec<(&'static str, AttrValue)>,
}

impl ScenarioPlan {
    /// Execute one seed, emitting the full trace through `rec`: the
    /// deployment spans captured at compile time (if any), the engine's
    /// spans, and a top-level `Run` span carrying the scenario attributes
    /// and the seed. Deterministic: the same plan and seed always produce
    /// the same [`Outcome`].
    ///
    /// The recorder *is* the attribution path: with
    /// [`Recorder::aggregating`] the outcome's breakdowns are populated,
    /// with [`Recorder::off`] elapsed time and traffic counters stay
    /// exact but compute/comm attribution comes out zero.
    pub fn execute(&self, seed: u64, rec: &mut Recorder) -> Outcome {
        if rec.is_enabled() {
            if let Some(buf) = &self.deployment_trace {
                rec.absorb(buf);
            }
        }
        let result = self.engine.run_traced(&self.job, seed, rec);
        let mut attrs = self.attrs.clone();
        attrs.push(("engine", AttrValue::Text(result.engine.to_string())));
        attrs.push(("seed", AttrValue::Int(seed)));
        rec.span_with(
            SpanCategory::Run,
            "scenario-run",
            0,
            SimTime::ZERO,
            SimTime::ZERO + result.elapsed,
            attrs,
        );
        Outcome {
            elapsed: result.elapsed,
            result,
            deployment: self.deployment.clone(),
        }
    }

    /// Capture one seed's full trace: compile-time deployment spans plus
    /// the engine's spans plus the top-level run span.
    pub fn capture_trace(&self, seed: u64) -> TraceBuffer {
        let mut rec = Recorder::capturing();
        self.execute(seed, &mut rec);
        rec.take_buffer()
    }

    /// The validated rank placement.
    pub fn rank_map(&self) -> RankMap {
        self.map
    }

    /// The compiled workload IR.
    pub fn job(&self) -> &JobProfile {
        &self.job
    }

    /// Short name of the selected engine ("analytic", "des").
    pub fn engine_name(&self) -> &'static str {
        self.engine.name()
    }

    /// The deployment model, if the scenario requested one.
    pub fn deployment(&self) -> Option<&DeploymentReport> {
        self.deployment.as_ref()
    }
}

/// The study's Alya image, built at most once per build-host CPU for the
/// whole process. Every scenario on the same cluster deploys the identical
/// image, so sweeps (any number of points × seeds) share a single
/// [`BuildEngine`] run. Also the image every open-campaign job stages
/// (see [`crate::open`]).
pub(crate) fn shared_alya_image(cpu: &CpuModel) -> Result<ImageManifest, BuildError> {
    static IMAGES: OnceLock<Mutex<HashMap<String, ImageManifest>>> = OnceLock::new();
    let images = IMAGES.get_or_init(|| Mutex::new(HashMap::new()));
    let key = format!("{cpu:?}");
    if let Some(hit) = images.lock().unwrap().get(&key).cloned() {
        return Ok(hit);
    }
    let manifest = BuildEngine::self_contained(cpu.clone())
        .build(&harborsim_container::build::alya_recipe())?
        .manifest;
    images
        .lock()
        .unwrap()
        .entry(key)
        .or_insert_with(|| manifest.clone());
    Ok(manifest)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads;
    use harborsim_hw::presets;

    #[test]
    fn quickstart_scenario_runs() {
        let outcome = Scenario::new(presets::marenostrum4(), workloads::artery_cfd_small())
            .execution(Execution::singularity_system_specific())
            .nodes(2)
            .ranks_per_node(48)
            .run(42);
        assert!(outcome.elapsed.as_secs_f64() > 0.0);
        assert!(outcome.deployment.is_none());
    }

    #[test]
    fn docker_rejected_on_production_machines() {
        let err = Scenario::new(presets::marenostrum4(), workloads::artery_cfd_small())
            .execution(Execution::docker())
            .try_run(1)
            .unwrap_err();
        assert!(
            matches!(err, HarborError::RuntimeUnavailable { .. }),
            "{err:?}"
        );
        assert!(err.to_string().contains("Docker"), "{err}");
    }

    #[test]
    fn placement_violations_rejected() {
        let err = Scenario::new(presets::lenox(), workloads::artery_cfd_small())
            .nodes(9)
            .try_run(1)
            .unwrap_err();
        assert!(matches!(err, HarborError::Placement(_)), "{err:?}");
        assert!(err.to_string().contains("nodes"), "{err}");
        let err = Scenario::new(presets::lenox(), workloads::artery_cfd_small())
            .ranks_per_node(28)
            .threads_per_rank(2)
            .try_run(1)
            .unwrap_err();
        assert!(err.to_string().contains("cores"), "{err}");
    }

    #[test]
    fn plan_execute_matches_try_run() {
        let scenario = Scenario::new(presets::lenox(), workloads::artery_cfd_small())
            .execution(Execution::singularity_self_contained())
            .nodes(2)
            .ranks_per_node(8);
        let plan = scenario.compile().expect("compiles");
        for seed in [1u64, 7, 42] {
            let a = plan.execute(seed, &mut Recorder::aggregating());
            let b = scenario.try_run(seed).unwrap();
            assert_eq!(a.elapsed, b.elapsed, "seed {seed}");
            assert_eq!(a.result.compute, b.result.compute);
        }
    }

    #[test]
    fn plan_exposes_compiled_state() {
        let plan = Scenario::new(presets::lenox(), workloads::artery_cfd_small())
            .nodes(2)
            .ranks_per_node(14)
            .compile()
            .unwrap();
        assert_eq!(plan.rank_map().ranks(), 28);
        assert_eq!(plan.engine_name(), "analytic");
        assert!(plan.job().total_steps() > 0);
        assert!(plan.deployment().is_none());
    }

    #[test]
    fn engines_give_comparable_elapsed() {
        let mk = |engine| {
            Scenario::new(presets::lenox(), workloads::artery_cfd_small())
                .execution(Execution::singularity_self_contained())
                .nodes(2)
                .ranks_per_node(8)
                .engine(engine)
                .run(7)
                .elapsed
                .as_secs_f64()
        };
        let analytic = mk(EngineKind::Analytic);
        let des = mk(EngineKind::Des {
            max_steps_per_kind: 5,
        });
        let ratio = des / analytic;
        assert!(
            (0.4..2.5).contains(&ratio),
            "engines disagree: analytic={analytic} des={des} ratio={ratio}"
        );
    }

    /// A chain-halo case heavy enough that placement decides how many
    /// bytes hit the wire (the 3D CFD cases can tie under stride aliasing;
    /// see `ablate_mapping`).
    struct ChainHalo;

    impl workloads::AlyaCase for ChainHalo {
        fn name(&self) -> &str {
            "chain-halo"
        }
        fn job_profile(&self, _ranks: u32) -> harborsim_mpi::JobProfile {
            use harborsim_mpi::{CommPhase, JobProfile, StepProfile};
            JobProfile::uniform(
                StepProfile {
                    flops_per_rank: 1e8,
                    imbalance: 1.0,
                    regions: 1.0,
                    comm: vec![CommPhase::Halo1D {
                        bytes: 200_000,
                        repeats: 20,
                    }],
                },
                10,
            )
        }
    }

    #[test]
    fn round_robin_placement_costs_more_on_halo_workloads() {
        // 1GbE so halo bandwidth (what scattering multiplies) dominates
        let t = |placement| {
            Scenario::new(presets::lenox(), ChainHalo)
                .execution(Execution::singularity_system_specific())
                .nodes(4)
                .ranks_per_node(28)
                .placement(placement)
                .run(11)
                .elapsed
                .as_secs_f64()
        };
        let block = t(Placement::Block);
        let rr = t(Placement::RoundRobin);
        assert!(
            rr > block,
            "scattering chain neighbours over nodes must cost: block={block} rr={rr}"
        );
    }

    #[test]
    fn scenario_taper_beats_fallback_beats_layout() {
        let base = Scenario::new(presets::marenostrum4(), workloads::artery_cfd_small());
        let declared = base.fabric_layout().spine_taper;
        assert!((declared - 0.8).abs() < 1e-12, "mn4 declares 0.8");
        let pinned = base.spine_taper(0.25);
        assert!((pinned.fabric_layout().spine_taper - 0.25).abs() < 1e-12);
        // a builder-pinned value survives an engine-level fallback
        // underneath it, while a scenario without one picks the fallback up
        assert!(
            (pinned.fabric_layout_with(Some(0.5)).spine_taper - 0.25).abs() < 1e-12,
            "builder beats fallback"
        );
        let plain = Scenario::new(presets::marenostrum4(), workloads::artery_cfd_small());
        assert!(
            (plain.fabric_layout_with(Some(0.5)).spine_taper - 0.5).abs() < 1e-12,
            "fallback beats layout"
        );
        assert!(
            (plain.fabric_layout_with(None).spine_taper - declared).abs() < 1e-12,
            "no fallback restores the declared layout"
        );
    }

    #[test]
    fn degraded_uplink_slows_the_run() {
        let t = |scenario: Scenario| scenario.run(9).elapsed.as_secs_f64();
        let mk = || {
            Scenario::new(presets::cte_power(), workloads::artery_cfd_small())
                .execution(Execution::singularity_system_specific())
                .nodes(4)
                .ranks_per_node(40)
        };
        let healthy = t(mk());
        let degraded = t(mk().degrade_node_uplink(1, 0.1));
        assert!(
            degraded > healthy,
            "a 10x slower uplink must show: healthy={healthy} degraded={degraded}"
        );
    }

    #[test]
    fn deployment_attaches_when_requested() {
        let outcome = Scenario::new(presets::lenox(), workloads::artery_cfd_small())
            .execution(Execution::docker())
            .nodes(4)
            .ranks_per_node(28)
            .with_deployment()
            .run(3);
        let dep = outcome.deployment.expect("deployment report");
        assert!(dep.makespan.as_secs_f64() > 1.0);
    }

    #[test]
    fn containment_changes_nothing_on_ethernet() {
        let t = |env| {
            Scenario::new(presets::lenox(), workloads::artery_cfd_small())
                .execution(env)
                .nodes(4)
                .ranks_per_node(28)
                .run(5)
                .elapsed
        };
        let ss = t(Execution::singularity_system_specific());
        let sc = t(Execution::singularity_self_contained());
        assert_eq!(ss, sc, "TCP fabric: containment is irrelevant");
    }

    #[test]
    fn containment_matters_on_infiniband() {
        let t = |env| {
            Scenario::new(presets::cte_power(), workloads::artery_cfd_small())
                .execution(env)
                .nodes(4)
                .ranks_per_node(40)
                .run(5)
                .elapsed
                .as_secs_f64()
        };
        let ss = t(Execution::singularity_system_specific());
        let sc = t(Execution::singularity_self_contained());
        assert!(sc > 1.2 * ss, "self-contained {sc} vs system-specific {ss}");
    }
}
