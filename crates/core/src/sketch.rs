//! Streaming quantile sketch for open-campaign latency distributions.
//!
//! Log-binned in the DDSketch style: positive values land in bucket
//! `ceil(ln(x) / ln γ)` with γ = [`GAMMA`], and a quantile query returns
//! the bucket midpoint `2γ^i / (γ + 1)` — guaranteed within
//! [`QuantileSketch::relative_error`] (≈1%) of the exact order
//! statistic, at any stream length, in O(log range) memory. Open
//! campaigns push one queue-wait, one staging time, and one bounded
//! slowdown per job; per-runtime sketches merge losslessly across seeds
//! because binning is deterministic.

use std::collections::BTreeMap;

/// Bucket growth factor. γ = 1.02 bounds the relative quantile error
/// at (γ − 1)/(γ + 1) ≈ 0.99%, with ~1,160 buckets per 10 decades.
pub const GAMMA: f64 = 1.02;

/// Values at or below this are counted in the zero bucket: queue waits
/// of exactly zero are common and must not produce `-inf` bucket keys.
const MIN_VALUE: f64 = 1e-9;

/// A mergeable streaming quantile sketch over non-negative samples.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QuantileSketch {
    /// Log-bucket index → sample count.
    bins: BTreeMap<i32, u64>,
    /// Samples at or below [`MIN_VALUE`] (exact zeros, mostly).
    zero: u64,
    count: u64,
    sum: f64,
    max: f64,
}

impl QuantileSketch {
    /// An empty sketch.
    pub fn new() -> QuantileSketch {
        QuantileSketch::default()
    }

    /// The worst-case relative error of any quantile answer:
    /// (γ − 1)/(γ + 1).
    pub fn relative_error() -> f64 {
        (GAMMA - 1.0) / (GAMMA + 1.0)
    }

    /// Record one sample. Negative and non-finite samples are clamped
    /// into the zero bucket — the open campaign never produces them,
    /// but a sketch must not panic mid-simulation.
    pub fn observe(&mut self, x: f64) {
        self.count += 1;
        if x.is_finite() && x > MIN_VALUE {
            let key = (x.ln() / GAMMA.ln()).ceil() as i32;
            *self.bins.entry(key).or_insert(0) += 1;
            self.sum += x;
            self.max = self.max.max(x);
        } else {
            self.zero += 1;
        }
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean of the recorded samples (exact, not binned); 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Largest recorded sample (exact); 0 when empty.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// The `q`-quantile (`0 < q <= 1`) of the recorded stream, within
    /// [`QuantileSketch::relative_error`] of the exact order statistic
    /// at rank `ceil(q·count)`. Returns 0 for an empty sketch.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        if target <= self.zero {
            return 0.0;
        }
        let mut seen = self.zero;
        for (&key, &n) in &self.bins {
            seen += n;
            if seen >= target {
                // bucket (γ^(i-1), γ^i]: the midpoint is within
                // (γ-1)/(γ+1) of every value in the bucket
                return 2.0 * GAMMA.powi(key) / (GAMMA + 1.0);
            }
        }
        self.max
    }

    /// Median.
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// 99th percentile.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// 99.9th percentile.
    pub fn p999(&self) -> f64 {
        self.quantile(0.999)
    }

    /// Fold another sketch in. Binning is deterministic, so merging
    /// per-seed sketches equals sketching the concatenated stream.
    pub fn merge(&mut self, other: &QuantileSketch) {
        for (&key, &n) in &other.bins {
            *self.bins.entry(key).or_insert(0) += n;
        }
        self.zero += other.zero;
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harborsim_des::RngStream;

    /// Exact order statistic at rank ceil(q·n) on a sorted slice.
    fn exact_quantile(sorted: &[f64], q: f64) -> f64 {
        let target = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[target - 1]
    }

    fn heavy_tailed_samples(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = RngStream::new(seed).derive("sketch");
        (0..n)
            .map(|_| rng.exponential(40.0) * rng.lognormal_factor(0.8))
            .collect()
    }

    #[test]
    fn quantiles_stay_inside_the_relative_error_bound() {
        let samples = heavy_tailed_samples(20_000, 0x5E7C);
        let mut sketch = QuantileSketch::new();
        for &x in &samples {
            sketch.observe(x);
        }
        let mut sorted = samples;
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let tol = QuantileSketch::relative_error() * 1.001;
        for q in [0.5, 0.9, 0.99, 0.999] {
            let exact = exact_quantile(&sorted, q);
            let est = sketch.quantile(q);
            assert!(
                (est - exact).abs() / exact <= tol,
                "q={q}: estimate {est} vs exact {exact} (tol {tol})"
            );
        }
        assert_eq!(sketch.count(), 20_000);
        assert!(sketch.p999() >= sketch.p99() && sketch.p99() >= sketch.p50());
    }

    #[test]
    fn merging_equals_sketching_the_concatenation() {
        let a = heavy_tailed_samples(5_000, 1);
        let b = heavy_tailed_samples(7_000, 2);
        let mut whole = QuantileSketch::new();
        for &x in a.iter().chain(&b) {
            whole.observe(x);
        }
        let mut left = QuantileSketch::new();
        let mut right = QuantileSketch::new();
        for &x in &a {
            left.observe(x);
        }
        for &x in &b {
            right.observe(x);
        }
        left.merge(&right);
        // bins are integer counts, so every quantile answer matches
        // exactly; only the running sum depends on accumulation order
        for q in [0.25, 0.5, 0.9, 0.99, 0.999, 1.0] {
            assert_eq!(left.quantile(q), whole.quantile(q), "q={q}");
        }
        assert_eq!(left.count(), whole.count());
        assert_eq!(left.max(), whole.max());
        assert!((left.mean() - whole.mean()).abs() / whole.mean() < 1e-12);
    }

    #[test]
    fn zeros_and_empties_are_well_behaved() {
        let empty = QuantileSketch::new();
        assert!(empty.is_empty());
        assert_eq!(empty.quantile(0.99), 0.0);
        assert_eq!(empty.mean(), 0.0);

        let mut s = QuantileSketch::new();
        for _ in 0..99 {
            s.observe(0.0);
        }
        s.observe(1000.0);
        assert_eq!(s.p50(), 0.0);
        assert!(s.quantile(1.0) > 900.0);
        assert!((s.mean() - 10.0).abs() < 1e-9);
    }
}
