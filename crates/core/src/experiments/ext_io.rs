//! Extension — the paper's future-work item.
//!
//! *"Our study lacks a deeper evaluation of I/O and distributed storage
//! performance using containers"*. HarborSim implements the first slice of
//! that study: the **image-startup storm**. When a job starts on N nodes,
//! every node must fault in the container image's working set; where the
//! image lives (parallel filesystem vs node-local disk vs per-node registry
//! pulls) decides whether startup time is flat or linear in N.

use crate::experiments::{expect, ShapeReport};
use crate::report::{FigureData, Series};
use crate::scenario::Execution;
use harborsim_container::build::{alya_recipe, BuildEngine};
use harborsim_container::deploy::DeployPlan;
use harborsim_des::trace::Recorder;
use harborsim_hw::{presets, StorageSpec};
use harborsim_par::prelude::*;

/// Node counts of the storm sweep.
pub const NODES: [u32; 5] = [4, 16, 64, 128, 256];

/// Regenerate the startup-storm figure: x = nodes, y = seconds until every
/// node's container is running.
pub fn run() -> FigureData {
    let cluster = presets::marenostrum4();
    let image = BuildEngine::self_contained(cluster.node.cpu.clone())
        .build(&alya_recipe())
        .expect("builds")
        .manifest;
    let storm = |env: Execution, storage: StorageSpec, cached: bool| -> Vec<(f64, f64)> {
        NODES
            .par_iter()
            .map(|&n| {
                let rep = DeployPlan {
                    nodes: n,
                    env,
                    image: image.clone(),
                    shared_storage: storage.clone(),
                    registry_uplink_bps: 1.2e9,
                    shifter_udi_cached: cached,
                    docker_layers_cached: cached,
                }
                .run(&mut Recorder::off());
                (n as f64, rep.makespan.as_secs_f64())
            })
            .collect()
    };
    let series = vec![
        Series::new(
            "Singularity SIF on GPFS",
            storm(
                Execution::singularity_self_contained(),
                StorageSpec::gpfs(),
                false,
            ),
        ),
        Series::new(
            "Singularity SIF staged node-local",
            storm(
                Execution::singularity_self_contained(),
                StorageSpec::local_scratch(),
                false,
            ),
        ),
        Series::new(
            "Docker per-node registry pull",
            storm(Execution::docker(), StorageSpec::gpfs(), false),
        ),
        Series::new(
            "Docker warm layer caches",
            storm(Execution::docker(), StorageSpec::gpfs(), true),
        ),
        Series::new(
            "Shifter (UDI cached on GPFS)",
            storm(Execution::shifter(), StorageSpec::gpfs(), true),
        ),
    ];
    FigureData {
        id: "ext-io".into(),
        title: "Image-startup storm: time until all containers run".into(),
        x_label: "Nodes".into(),
        y_label: "Startup makespan [s]".into(),
        series,
    }
}

/// Capture one 16-node deployment trace per storm series (pull / unpack /
/// start spans, one track per node).
pub fn traces() -> Vec<(String, harborsim_des::trace::TraceBuffer)> {
    let cluster = presets::marenostrum4();
    let image = BuildEngine::self_contained(cluster.node.cpu.clone())
        .build(&alya_recipe())
        .expect("builds")
        .manifest;
    let cases: [(&str, Execution, StorageSpec, bool); 5] = [
        (
            "Singularity SIF on GPFS",
            Execution::singularity_self_contained(),
            StorageSpec::gpfs(),
            false,
        ),
        (
            "Singularity SIF staged node-local",
            Execution::singularity_self_contained(),
            StorageSpec::local_scratch(),
            false,
        ),
        (
            "Docker per-node registry pull",
            Execution::docker(),
            StorageSpec::gpfs(),
            false,
        ),
        (
            "Docker warm layer caches",
            Execution::docker(),
            StorageSpec::gpfs(),
            true,
        ),
        (
            "Shifter (UDI cached on GPFS)",
            Execution::shifter(),
            StorageSpec::gpfs(),
            true,
        ),
    ];
    cases
        .into_iter()
        .map(|(label, env, storage, cached)| {
            let mut rec = Recorder::capturing();
            DeployPlan {
                nodes: 16,
                env,
                image: image.clone(),
                shared_storage: storage,
                registry_uplink_bps: 1.2e9,
                shifter_udi_cached: cached,
                docker_layers_cached: cached,
            }
            .run(&mut rec);
            (label.to_string(), rec.take_buffer())
        })
        .collect()
}

/// Claims the extension is expected to demonstrate.
pub fn check_shape(fig: &FigureData) -> ShapeReport {
    let mut report = ShapeReport::new();
    let get = |label: &str, n: u32| {
        fig.series_named(label)
            .and_then(|s| s.y_at(n as f64))
            .unwrap_or(f64::NAN)
    };
    // node-local staging is flat in N
    let local4 = get("Singularity SIF staged node-local", 4);
    let local256 = get("Singularity SIF staged node-local", 256);
    expect(
        &mut report,
        local256 / local4 < 1.5,
        format!("node-local staging should be ~flat: {local4:.1}s -> {local256:.1}s"),
    );
    // per-node Docker pulls scale linearly and are worst at 256 nodes
    let docker256 = get("Docker per-node registry pull", 256);
    let docker4 = get("Docker per-node registry pull", 4);
    expect(
        &mut report,
        docker256 > 10.0 * docker4,
        format!("Docker pulls should scale ~linearly: {docker4:.1}s -> {docker256:.1}s"),
    );
    for label in [
        "Singularity SIF on GPFS",
        "Singularity SIF staged node-local",
        "Shifter (UDI cached on GPFS)",
    ] {
        expect(
            &mut report,
            get(label, 256) < docker256,
            format!("{label} should beat per-node Docker pulls at 256 nodes"),
        );
    }
    // GPFS absorbs the storm far better than per-node pulls but is not flat
    let gpfs256 = get("Singularity SIF on GPFS", 256);
    expect(
        &mut report,
        gpfs256 < 120.0,
        format!("GPFS storm at 256 nodes should stay under 2 minutes: {gpfs256:.1}s"),
    );
    // warm Docker caches make re-deployment flat and fast (second job of a
    // campaign) — but the first job still pays the full pull
    let warm256 = get("Docker warm layer caches", 256);
    expect(
        &mut report,
        warm256 < 3.0 && warm256 < docker256 / 20.0,
        format!(
            "warm Docker caches should deploy in seconds: {warm256:.1}s vs cold {docker256:.1}s"
        ),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ext_io_storm_shape() {
        let fig = run();
        assert_eq!(fig.series.len(), 5);
        let report = check_shape(&fig);
        assert!(report.is_empty(), "{report:#?}");
    }
}
