//! Engine cross-validation — the simulator checking itself.
//!
//! HarborSim's figures come from the closed-form analytic engine; its
//! credibility comes from the message-level DES engine agreeing with it on
//! the same workloads at scales where every message can be simulated. This
//! experiment runs a matrix of configurations through both engines and
//! reports the deviation — an artifact a reviewer can read instead of
//! taking "cross-validated" on faith.

use crate::experiments::{expect, ShapeReport};
use crate::lab::QueryEngine;
use crate::report::TableData;
use crate::scenario::{EngineKind, Execution, Scenario};
use crate::workloads;
use harborsim_hw::presets;

/// One cross-validation point.
#[derive(Debug, Clone)]
pub struct ValidationRow {
    /// Configuration label.
    pub label: String,
    /// Analytic prediction, seconds.
    pub analytic_s: f64,
    /// DES measurement, seconds.
    pub des_s: f64,
    /// `des / analytic`.
    pub ratio: f64,
}

fn point_scenario(
    cluster: &harborsim_hw::ClusterSpec,
    env: Execution,
    nodes: u32,
    rpn: u32,
    engine: EngineKind,
    shards: u32,
) -> Scenario {
    Scenario::new(cluster.clone(), workloads::artery_cfd_small())
        .execution(env)
        .nodes(nodes)
        .ranks_per_node(rpn)
        .engine(engine)
        .shards(shards)
}

/// Capture the same configuration through both engines: the per-rank DES
/// trace (compute / protocol / recv-wait spans on `p` tracks) next to the
/// analytic engine's closed-form phase spans on one track.
pub fn traces(lab: &QueryEngine, seed: u64) -> Vec<(String, harborsim_des::trace::TraceBuffer)> {
    let mk = |label: &str, engine| {
        let scenario = Scenario::new(presets::lenox(), workloads::artery_cfd_small())
            .execution(Execution::bare_metal())
            .nodes(2)
            .ranks_per_node(14)
            .engine(engine);
        crate::experiments::capture(lab, label, &scenario, seed)
    };
    vec![
        mk("analytic (Lenox bare 2x14)", EngineKind::Analytic),
        mk(
            "des (Lenox bare 2x14, 5 steps/kind)",
            EngineKind::Des {
                max_steps_per_kind: 5,
            },
        ),
    ]
}

/// Run the validation matrix with the serial DES engine.
pub fn run(lab: &QueryEngine) -> Vec<ValidationRow> {
    run_with_shards(lab, 1)
}

/// Run the validation matrix. Each configuration contributes two lab
/// queries (one per engine — the engine kind is part of the plan key, so
/// they never collide in the cache) and the whole matrix shards across
/// the pool as one batch. `shards` selects the DES engine's shard count
/// (the analytic engine has no event loop to shard, so it keeps the
/// serial default); the sharded engine is bit-identical to serial, so
/// the table is the same either way — only the wall clock moves.
pub fn run_with_shards(lab: &QueryEngine, shards: u32) -> Vec<ValidationRow> {
    let points: Vec<(&str, harborsim_hw::ClusterSpec, Execution, u32, u32)> = vec![
        (
            "Lenox bare 2x14",
            presets::lenox(),
            Execution::bare_metal(),
            2,
            14,
        ),
        (
            "Lenox bare 4x28",
            presets::lenox(),
            Execution::bare_metal(),
            4,
            28,
        ),
        (
            "Lenox docker 4x14",
            presets::lenox(),
            Execution::docker(),
            4,
            14,
        ),
        (
            "Lenox shifter 4x28",
            presets::lenox(),
            Execution::shifter(),
            4,
            28,
        ),
        (
            "CTE native 4x40",
            presets::cte_power(),
            Execution::singularity_system_specific(),
            4,
            40,
        ),
        (
            "CTE fallback 4x40",
            presets::cte_power(),
            Execution::singularity_self_contained(),
            4,
            40,
        ),
        (
            "MN4 native 2x48",
            presets::marenostrum4(),
            Execution::singularity_system_specific(),
            2,
            48,
        ),
        (
            "ThunderX 2x96",
            presets::thunderx(),
            Execution::singularity_self_contained(),
            2,
            96,
        ),
    ];
    let scenarios: Vec<Scenario> = points
        .iter()
        .flat_map(|(_, cluster, env, nodes, rpn)| {
            [
                (EngineKind::Analytic, 1),
                (
                    EngineKind::Des {
                        max_steps_per_kind: 5,
                    },
                    shards,
                ),
            ]
            .map(|(engine, s)| point_scenario(cluster, *env, *nodes, *rpn, engine, s))
        })
        .collect();
    let times = lab
        .handle(crate::lab::LabRequest::batch(scenarios, &[7]))
        .means();
    points
        .iter()
        .zip(times.chunks(2))
        .map(|((label, ..), pair)| {
            let (analytic, des) = (pair[0], pair[1]);
            ValidationRow {
                label: label.to_string(),
                analytic_s: analytic,
                des_s: des,
                ratio: des / analytic,
            }
        })
        .collect()
}

/// Render as a table.
pub fn table(rows: &[ValidationRow]) -> TableData {
    TableData {
        id: "ext-validation".into(),
        title: "Engine cross-validation: message-level DES vs closed-form analytic".into(),
        headers: vec![
            "Configuration".into(),
            "Analytic [s]".into(),
            "DES [s]".into(),
            "DES/analytic".into(),
        ],
        rows: rows
            .iter()
            .map(|r| {
                vec![
                    r.label.clone(),
                    format!("{:.4}", r.analytic_s),
                    format!("{:.4}", r.des_s),
                    format!("{:.2}x", r.ratio),
                ]
            })
            .collect(),
    }
}

/// Agreement bands the engines must satisfy.
pub fn check_shape(rows: &[ValidationRow]) -> ShapeReport {
    let mut report = ShapeReport::new();
    expect(&mut report, rows.len() >= 8, "matrix too small".into());
    for r in rows {
        expect(
            &mut report,
            (0.4..2.5).contains(&r.ratio),
            format!("{}: engines diverge {:.2}x", r.label, r.ratio),
        );
    }
    let mean_ratio: f64 = rows.iter().map(|r| r.ratio).sum::<f64>() / rows.len() as f64;
    expect(
        &mut report,
        (0.6..1.7).contains(&mean_ratio),
        format!("mean deviation {mean_ratio:.2}x — systematic bias"),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engines_agree_across_the_matrix() {
        let rows = run(&QueryEngine::new());
        let report = check_shape(&rows);
        assert!(report.is_empty(), "{report:#?}");
    }

    #[test]
    fn sharded_matrix_is_bit_identical_to_serial() {
        let lab = QueryEngine::new();
        let serial = run(&lab);
        let sharded = run_with_shards(&lab, 4);
        for (a, b) in serial.iter().zip(&sharded) {
            assert_eq!(a.label, b.label);
            assert_eq!(
                a.des_s.to_bits(),
                b.des_s.to_bits(),
                "{}: sharded DES drifted from serial",
                a.label
            );
        }
    }
}
