//! The evaluation tables.
//!
//! The extended abstract describes (§B.1) a comparison of "deployment
//! overhead, image size and execution time" across Docker, Singularity and
//! Shifter, and (§B.2) running the same containerized application on three
//! architectures with two image-building techniques. These functions emit
//! exactly those tables.

use crate::experiments::{expect, ShapeReport};
use crate::lab::QueryEngine;
use crate::report::{fmt_bytes, fmt_seconds, TableData};
use crate::scenario::{Execution, Scenario};
use crate::workloads;
use harborsim_container::build::{alya_recipe, BuildEngine};
use harborsim_container::containment::check_compat;
use harborsim_container::deploy::deployment_overhead;
use harborsim_container::{Containment, ImageFormat, LaunchModel, RuntimeKind};
use harborsim_des::trace::Recorder;
use harborsim_hw::presets;
use harborsim_net::TransportSelection;

/// §B.1 — deployment overhead, image size and execution time on Lenox.
pub fn deployment(lab: &QueryEngine, seeds: &[u64]) -> TableData {
    let cluster = presets::lenox();
    let mut rows = Vec::new();
    // all four technologies deploy the same self-contained image: build it
    // once and only re-*package* it per runtime format
    let builder = BuildEngine::self_contained(cluster.node.cpu.clone());
    let build = builder
        .build(&alya_recipe())
        .expect("builtin recipe builds");
    for env in [
        Execution::bare_metal(),
        Execution::docker(),
        Execution::singularity_self_contained(),
        Execution::shifter(),
    ] {
        let (fmt_name, size, pack_s) = match env.runtime.image_format() {
            None => ("-".to_string(), 0u64, 0.0),
            Some(f) => {
                let name = match f {
                    ImageFormat::DockerLayered => "layered tar.gz",
                    ImageFormat::SingularitySif => "SIF (squashfs)",
                    ImageFormat::ShifterUdi => "UDI (squashfs)",
                };
                (
                    name.to_string(),
                    build.manifest.size_bytes(f),
                    builder.package_seconds(&build.manifest, f),
                )
            }
        };
        let dep = deployment_overhead(
            4,
            env,
            &build.manifest,
            &cluster.shared_storage,
            &mut Recorder::off(),
        );
        // job launch at the pure-MPI 112x1 configuration (per-rank spawns)
        let launch = LaunchModel::default().launch_seconds(env.runtime, 4, 28);
        // execution time at the paper's 28x4 configuration
        let exec = lab
            .handle(crate::lab::LabRequest::batch(
                [
                    Scenario::new(cluster.clone(), workloads::artery_cfd_lenox())
                        .execution(env)
                        .nodes(4)
                        .ranks_per_node(7)
                        .threads_per_rank(4),
                ],
                seeds,
            ))
            .means()[0];
        rows.push(vec![
            env.runtime.label().to_string(),
            fmt_name,
            if size == 0 {
                "-".into()
            } else {
                fmt_bytes(size)
            },
            if env.runtime == RuntimeKind::BareMetal {
                "-".into()
            } else {
                fmt_seconds(build.build_seconds + pack_s)
            },
            fmt_seconds(dep.makespan.as_secs_f64()),
            fmt_seconds(launch),
            fmt_seconds(exec),
        ]);
    }
    TableData {
        id: "table-deployment".into(),
        title: "Containerization solutions on Lenox (4 nodes, artery CFD at 28x4)".into(),
        headers: vec![
            "Technology".into(),
            "Image format".into(),
            "Image size".into(),
            "Build+pack".into(),
            "Deploy (4 nodes)".into(),
            "Launch 112 ranks".into(),
            "Execution".into(),
        ],
        rows,
    }
}

/// Capture one 4-node deployment trace per technology (pull / convert /
/// unpack / start spans on one track per node).
pub fn deployment_traces() -> Vec<(String, harborsim_des::trace::TraceBuffer)> {
    let cluster = presets::lenox();
    let image = BuildEngine::self_contained(cluster.node.cpu.clone())
        .build(&alya_recipe())
        .expect("builtin recipe builds")
        .manifest;
    [
        Execution::bare_metal(),
        Execution::docker(),
        Execution::singularity_self_contained(),
        Execution::shifter(),
    ]
    .iter()
    .map(|env| {
        let mut rec = Recorder::capturing();
        deployment_overhead(4, *env, &image, &cluster.shared_storage, &mut rec);
        (env.runtime.label().to_string(), rec.take_buffer())
    })
    .collect()
}

/// Shape claims over the deployment table.
pub fn check_deployment_shape(t: &TableData) -> ShapeReport {
    let mut report = ShapeReport::new();
    let col = |row: usize, c: usize| t.rows[row][c].clone();
    expect(
        &mut report,
        t.rows.len() == 4,
        "expected four technologies".into(),
    );
    // bare metal deploys fastest; Docker stages the most bytes
    expect(
        &mut report,
        col(0, 0) == "Bare-metal" && col(1, 0) == "Docker",
        "row order".into(),
    );
    report
}

/// §B.2 — the same containerized application across three architectures.
pub fn portability(lab: &QueryEngine, seeds: &[u64]) -> TableData {
    let machines = [
        presets::marenostrum4(),
        presets::cte_power(),
        presets::thunderx(),
    ];
    let mut rows = Vec::new();
    for cluster in &machines {
        for containment in [Containment::SelfContained, Containment::SystemSpecific] {
            let engine = match containment {
                Containment::SelfContained => BuildEngine::self_contained(cluster.node.cpu.clone()),
                Containment::SystemSpecific => {
                    BuildEngine::system_specific(cluster.node.cpu.clone(), cluster.interconnect)
                }
            };
            let image = engine.build(&alya_recipe()).expect("builds").manifest;
            let compat = check_compat(
                image.arch,
                image.isa_level,
                &image.required_host_libs,
                &cluster.node.cpu,
                cluster.interconnect,
            );
            let env = Execution {
                runtime: RuntimeKind::Singularity,
                containment,
            };
            let transport = match env.transport_selection(cluster.interconnect) {
                TransportSelection::Native => "native",
                TransportSelection::TcpFallback => "TCP fallback",
            };
            let time = match &compat {
                Ok(()) => fmt_seconds(
                    lab.handle(crate::lab::LabRequest::batch(
                        [Scenario::new(cluster.clone(), workloads::artery_cfd_cte())
                            .execution(env)
                            .nodes(2)
                            .ranks_per_node(cluster.node.cores())],
                        seeds,
                    ))
                    .means()[0],
                ),
                Err(e) => format!("fails: {e}"),
            };
            rows.push(vec![
                cluster.name.clone(),
                cluster.node.cpu.arch.to_string(),
                containment.label().to_string(),
                fmt_bytes(image.uncompressed_bytes()),
                transport.to_string(),
                time,
            ]);
        }
    }
    // the cross-architecture failure the paper's portability story implies:
    // an x86 image moved to POWER9
    let x86_image = BuildEngine::self_contained(presets::marenostrum4().node.cpu.clone())
        .build(&alya_recipe())
        .expect("builds")
        .manifest;
    let power = presets::cte_power();
    let err = check_compat(
        x86_image.arch,
        x86_image.isa_level,
        &x86_image.required_host_libs,
        &power.node.cpu,
        power.interconnect,
    )
    .expect_err("x86 image cannot run on POWER9");
    rows.push(vec![
        "CTE-POWER".into(),
        "ppc64le".into(),
        "self-contained (built on MN4)".into(),
        fmt_bytes(x86_image.uncompressed_bytes()),
        "-".into(),
        format!("fails: {err}"),
    ]);
    TableData {
        id: "table-portability".into(),
        title:
            "Portability: one application, three architectures, two build techniques (2 nodes each)"
                .into(),
        headers: vec![
            "Machine".into(),
            "Arch".into(),
            "Image technique".into(),
            "Rootfs size".into(),
            "MPI transport".into(),
            "CFD time (2 nodes)".into(),
        ],
        rows,
    }
}

/// Shape claims over the portability table.
pub fn check_portability_shape(t: &TableData) -> ShapeReport {
    let mut report = ShapeReport::new();
    expect(
        &mut report,
        t.rows.len() == 7,
        format!("expected 7 rows, got {}", t.rows.len()),
    );
    // self-contained images are bigger than system-specific ones
    for pair in t.rows.chunks(2).take(3) {
        let parse = |s: &str| -> f64 {
            let mut it = s.split_whitespace();
            let value: f64 = it.next().and_then(|v| v.parse().ok()).unwrap_or(0.0);
            let unit = match it.next() {
                Some("GB") => 1e9,
                Some("MB") => 1e6,
                Some("KB") => 1e3,
                _ => 1.0,
            };
            value * unit
        };
        let (sc, ss) = (parse(&pair[0][3]), parse(&pair[1][3]));
        expect(
            &mut report,
            sc > ss,
            format!("self-contained ({sc}) should outweigh system-specific ({ss})"),
        );
    }
    // kernel-bypass machines: self-contained runs on TCP fallback
    for row in &t.rows[..4] {
        if row[2] == "self-contained" {
            expect(
                &mut report,
                row[4] == "TCP fallback",
                format!("{} self-contained should fall back, got {}", row[0], row[4]),
            );
        }
        if row[2] == "system-specific" {
            expect(
                &mut report,
                row[4] == "native",
                format!(
                    "{} system-specific should be native, got {}",
                    row[0], row[4]
                ),
            );
        }
    }
    // the cross-arch row fails
    expect(
        &mut report,
        t.rows[6][5].starts_with("fails"),
        "x86 image on POWER9 must fail".into(),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deployment_table_shape() {
        let t = deployment(&QueryEngine::new(), &[1]);
        assert_eq!(t.headers.len(), 7);
        let report = check_deployment_shape(&t);
        assert!(report.is_empty(), "{report:#?}");
        // sanity: the ASCII rendering works
        assert!(t.to_ascii().contains("Singularity"));
    }

    #[test]
    fn portability_table_shape() {
        let t = portability(&QueryEngine::new(), &[1]);
        let report = check_portability_shape(&t);
        assert!(report.is_empty(), "{report:#?}");
    }

    #[test]
    fn thunderx_is_slowest_architecture() {
        // same case, 2 nodes, system-specific on each machine: the Arm
        // mini-cluster's weak cores lose (as the Mont-Blanc papers report)
        let lab = QueryEngine::new();
        let t = |cluster: harborsim_hw::ClusterSpec| {
            lab.handle(crate::lab::LabRequest::batch(
                [Scenario::new(cluster.clone(), workloads::artery_cfd_cte())
                    .execution(Execution::singularity_system_specific())
                    .nodes(2)
                    .ranks_per_node(cluster.node.cores())],
                &[1],
            ))
            .means()[0]
        };
        let mn4 = t(presets::marenostrum4());
        let tx = t(presets::thunderx());
        assert!(tx > 2.0 * mn4, "thunderx {tx} vs mn4 {mn4}");
    }
}
