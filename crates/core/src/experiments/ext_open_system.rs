//! Extension — open-system campaign: what the *tail* looks like.
//!
//! The closed campaign experiment ([`super::ext_campaign`]) measures mean
//! turnaround of a fixed job sequence. Production machines are open
//! systems: jobs arrive at random, in a heavy-tailed mix of sizes and
//! runtimes, and co-arriving container pulls contend for the registry
//! uplink and the parallel filesystem (deployment storms). This
//! experiment runs the committed [`SCRIPT`] — Poisson arrivals, Zipf
//! mixes over node count and runtime, six tenants — and reports
//! per-runtime queue-wait and bounded-slowdown quantiles (p50/p99/p999)
//! from streaming sketches, plus the EASY-backfill node-second share.

use crate::experiments::{expect, load_campaign, ShapeReport};
use crate::lab::QueryEngine;
use crate::open::{run_open_campaign, OpenReport, RuntimeOpenStats};
use crate::report::{fmt_seconds, TableData};
use harborsim_container::runtime::RuntimeKind;
use harborsim_des::trace::Recorder;

/// The committed open-system campaign script.
pub const SCRIPT: &str = include_str!("ext_open_system.hsim");

/// The experiment's outcome: one report per seed plus the cross-seed
/// merged per-runtime sketches.
#[derive(Debug, Clone)]
pub struct OpenSystemData {
    /// One full report per seed, in seed order.
    pub runs: Vec<OpenReport>,
    /// Per-runtime stats merged across all seeds (sketches merge
    /// losslessly).
    pub per_runtime: Vec<RuntimeOpenStats>,
    /// Mean node utilization across seeds.
    pub mean_utilization: f64,
    /// Mean backfilled node-second share across seeds.
    pub mean_backfill_share: f64,
    /// Jobs completed across all seeds.
    pub total_jobs: u64,
}

/// Run the open campaign once per seed and merge the tails.
pub fn run(lab: &QueryEngine, seeds: &[u64]) -> OpenSystemData {
    let scenario = load_campaign(SCRIPT).runs.remove(0).scenario;
    let mut runs = Vec::with_capacity(seeds.len());
    let mut per_runtime: Vec<RuntimeOpenStats> = Vec::new();
    for &seed in seeds {
        let report = run_open_campaign(lab, &scenario, seed, &mut Recorder::off())
            .expect("the committed open campaign runs");
        for stats in &report.per_runtime {
            match per_runtime.iter_mut().find(|s| s.runtime == stats.runtime) {
                Some(s) => s.merge(stats),
                None => per_runtime.push(stats.clone()),
            }
        }
        runs.push(report);
    }
    let n = runs.len().max(1) as f64;
    OpenSystemData {
        mean_utilization: runs.iter().map(|r| r.utilization).sum::<f64>() / n,
        mean_backfill_share: runs.iter().map(|r| r.backfill_node_share).sum::<f64>() / n,
        total_jobs: runs.iter().map(|r| r.jobs).sum(),
        per_runtime,
        runs,
    }
}

/// Capture the full open-campaign trace (arrival, queue/backfill, staging
/// flows, solver spans on per-job tracks) for one seed.
pub fn traces(lab: &QueryEngine, seed: u64) -> Vec<(String, harborsim_des::trace::TraceBuffer)> {
    let scenario = load_campaign(SCRIPT).runs.remove(0).scenario;
    let mut rec = Recorder::capturing();
    run_open_campaign(lab, &scenario, seed, &mut rec).expect("the committed open campaign runs");
    vec![("open-system".to_string(), rec.take_buffer())]
}

/// Render the per-runtime tails as a table.
pub fn table(data: &OpenSystemData) -> TableData {
    TableData {
        id: "ext-open-system".into(),
        title: format!(
            "Open-system campaign on Lenox ({} jobs, {:.0}% utilization, {:.0}% of node-seconds backfilled)",
            data.total_jobs,
            data.mean_utilization * 100.0,
            data.mean_backfill_share * 100.0
        ),
        headers: vec![
            "Runtime".into(),
            "Jobs".into(),
            "Cold pulls".into(),
            "Wait p50".into(),
            "Wait p99".into(),
            "Wait p999".into(),
            "Stage p50".into(),
            "Stage p99".into(),
            "Slowdown p50".into(),
            "Slowdown p99".into(),
        ],
        rows: data
            .per_runtime
            .iter()
            .map(|s| {
                vec![
                    s.runtime.label().to_string(),
                    s.jobs.to_string(),
                    s.cold_pulls.to_string(),
                    fmt_seconds(s.wait.p50()),
                    fmt_seconds(s.wait.p99()),
                    fmt_seconds(s.wait.p999()),
                    fmt_seconds(s.stage.p50()),
                    fmt_seconds(s.stage.p99()),
                    format!("{:.2}x", s.slowdown.p50()),
                    format!("{:.2}x", s.slowdown.p99()),
                ]
            })
            .collect(),
    }
}

/// The open-system claims.
pub fn check_shape(data: &OpenSystemData) -> ShapeReport {
    let mut report = ShapeReport::new();
    expect(
        &mut report,
        data.total_jobs > 0,
        "the campaign must sample jobs".into(),
    );
    expect(
        &mut report,
        data.mean_utilization > 0.0 && data.mean_utilization <= 1.0,
        format!("utilization out of range: {}", data.mean_utilization),
    );
    let find = |rt: RuntimeKind| data.per_runtime.iter().find(|s| s.runtime == rt);
    let (Some(docker), Some(shifter), Some(singularity)) = (
        find(RuntimeKind::Docker),
        find(RuntimeKind::Shifter),
        find(RuntimeKind::Singularity),
    ) else {
        report.push("all three mixed runtimes must appear".into());
        return report;
    };
    for s in [docker, shifter, singularity] {
        expect(
            &mut report,
            s.wait.p999() >= s.wait.p99() && s.wait.p99() >= s.wait.p50(),
            format!("{}: wait quantiles out of order", s.runtime.label()),
        );
        expect(
            &mut report,
            s.slowdown.p50() >= 1.0 - crate::sketch::QuantileSketch::relative_error() - 1e-9,
            format!(
                "{}: bounded slowdown sits above 1 by construction",
                s.runtime.label()
            ),
        );
    }
    // the deployment-storm separation: Docker's registry pulls put more
    // weight in the staging tail than Shifter's gateway conversion
    expect(
        &mut report,
        docker.stage.p99() > shifter.stage.p99(),
        format!(
            "Docker's staging tail should exceed Shifter's: {:.1}s vs {:.1}s",
            docker.stage.p99(),
            shifter.stage.p99()
        ),
    );
    expect(
        &mut report,
        docker.cold_pulls >= 1,
        "at least one tenant cold-pulls Docker".into(),
    );
    expect(
        &mut report,
        data.runs.iter().any(|r| r.peak_pfs_flows >= 2),
        "co-arriving jobs should overlap on the parallel filesystem".into(),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_system_shape_holds() {
        let data = run(&QueryEngine::new(), &[1, 2]);
        let report = check_shape(&data);
        assert!(report.is_empty(), "{report:#?}");
        let t = table(&data);
        assert!(t.to_ascii().contains("Docker"));
        assert_eq!(data.runs.len(), 2);
    }

    #[test]
    fn traces_capture_per_job_spans() {
        let lab = QueryEngine::new();
        let traces = traces(&lab, 1);
        assert_eq!(traces.len(), 1);
        assert!(!traces[0].1.is_empty(), "spans were captured");
    }
}
