//! Extension — placement locality on the fat tree.
//!
//! The batch system's block placement keeps neighbouring subdomains on
//! the same node (and, on MareNostrum4, under the same 48-node leaf
//! switch); round-robin scatters them so every halo edge pays for the
//! wire. With the routed link graph both effects fall out of the same
//! route table — this extension quantifies them on a bandwidth-heavy
//! chain-halo job at up to 64 nodes.

use crate::experiments::{campaign_series, expect, load_campaign, ShapeReport};
use crate::lab::QueryEngine;
use crate::report::FigureData;
use crate::script::CompiledCampaign;
pub use crate::workloads::ChainHaloCase;

/// The committed campaign script this extension runs from.
pub const SCRIPT: &str = include_str!("ext_locality.hsim");

/// Node counts of the sweep.
pub const NODES: [u32; 3] = [16, 32, 64];

/// The extension's scenario grid, compiled from [`SCRIPT`]: placements
/// outermost, node counts inner.
pub fn campaign() -> CompiledCampaign {
    load_campaign(SCRIPT)
}

/// Regenerate: x = nodes, y = elapsed seconds, one series per placement.
/// Both placements' node sweeps run as one lab batch.
pub fn run(lab: &QueryEngine, seeds: &[u64]) -> FigureData {
    let series = campaign_series(lab, seeds, campaign(), |s| s.nodes as f64);
    FigureData {
        id: "ext-locality".into(),
        title: "Rank placement vs halo locality, chain halos (MareNostrum4)".into(),
        x_label: "Nodes".into(),
        y_label: "Elapsed [s]".into(),
        series,
    }
}

/// The locality claims.
pub fn check_shape(fig: &FigureData) -> ShapeReport {
    let mut report = ShapeReport::new();
    let get = |label: &str, n: u32| {
        fig.series_named(label)
            .and_then(|s| s.y_at(n as f64))
            .unwrap_or(f64::NAN)
    };
    for n in NODES {
        let (block, rr) = (get("Block", n), get("Round-robin", n));
        expect(
            &mut report,
            rr > block,
            format!("scattering every halo edge must cost at {n} nodes: block {block:.2}s vs round-robin {rr:.2}s"),
        );
    }
    let (block64, rr64) = (get("Block", 64), get("Round-robin", 64));
    expect(
        &mut report,
        rr64 > 1.15 * block64,
        format!(
            "at 64 nodes the placement gap should be pronounced: block {block64:.2}s vs round-robin {rr64:.2}s"
        ),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn locality_shape() {
        let fig = run(&QueryEngine::new(), &[1]);
        assert_eq!(fig.series.len(), 2);
        let report = check_shape(&fig);
        assert!(report.is_empty(), "{report:#?}");
    }
}
