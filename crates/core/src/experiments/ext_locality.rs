//! Extension — placement locality on the fat tree.
//!
//! The batch system's block placement keeps neighbouring subdomains on
//! the same node (and, on MareNostrum4, under the same 48-node leaf
//! switch); round-robin scatters them so every halo edge pays for the
//! wire. With the routed link graph both effects fall out of the same
//! route table — this extension quantifies them on a bandwidth-heavy
//! chain-halo job at up to 64 nodes.

use crate::experiments::{expect, ShapeReport};
use crate::lab::QueryEngine;
use crate::report::{FigureData, Series};
use crate::scenario::{Execution, Scenario};
use harborsim_alya::workload::AlyaCase;
use harborsim_mpi::workload::{CommPhase, JobProfile, StepProfile};
use harborsim_mpi::Placement;

/// Node counts of the sweep.
pub const NODES: [u32; 3] = [16, 32, 64];

/// A 1D chain-halo case with enough bytes per edge that placement decides
/// how much traffic hits the wire (the 3D CFD partitions can tie under
/// stride aliasing; see the `ablate_mapping` bench).
pub struct ChainHaloCase;

impl AlyaCase for ChainHaloCase {
    fn name(&self) -> &str {
        "chain-halo-locality"
    }

    fn memo_key(&self) -> Option<String> {
        // the profile is rank-independent, so a constant key is exact
        Some("chain-halo-locality".into())
    }

    fn job_profile(&self, _ranks: u32) -> JobProfile {
        JobProfile::uniform(
            StepProfile {
                flops_per_rank: 2e8,
                imbalance: 1.0,
                regions: 1.0,
                comm: vec![CommPhase::Halo1D {
                    bytes: 200_000,
                    repeats: 20,
                }],
            },
            50,
        )
    }
}

fn scenario(placement: Placement, nodes: u32) -> Scenario {
    Scenario::new(harborsim_hw::presets::marenostrum4(), ChainHaloCase)
        .execution(Execution::bare_metal())
        .nodes(nodes)
        .ranks_per_node(48)
        .placement(placement)
}

/// Regenerate: x = nodes, y = elapsed seconds, one series per placement.
/// Both placements' node sweeps run as one lab batch.
pub fn run(lab: &QueryEngine, seeds: &[u64]) -> FigureData {
    let placements = [
        ("Block", Placement::Block),
        ("Round-robin", Placement::RoundRobin),
    ];
    let scenarios: Vec<Scenario> = placements
        .iter()
        .flat_map(|&(_, p)| NODES.iter().map(move |&n| scenario(p, n)))
        .collect();
    let means = lab.means(scenarios, seeds);
    let series: Vec<Series> = placements
        .iter()
        .zip(means.chunks(NODES.len()))
        .map(|(&(label, _), ts)| {
            let points = NODES.iter().zip(ts).map(|(&n, &t)| (n as f64, t)).collect();
            Series::new(label, points)
        })
        .collect();
    FigureData {
        id: "ext-locality".into(),
        title: "Rank placement vs halo locality, chain halos (MareNostrum4)".into(),
        x_label: "Nodes".into(),
        y_label: "Elapsed [s]".into(),
        series,
    }
}

/// The locality claims.
pub fn check_shape(fig: &FigureData) -> ShapeReport {
    let mut report = ShapeReport::new();
    let get = |label: &str, n: u32| {
        fig.series_named(label)
            .and_then(|s| s.y_at(n as f64))
            .unwrap_or(f64::NAN)
    };
    for n in NODES {
        let (block, rr) = (get("Block", n), get("Round-robin", n));
        expect(
            &mut report,
            rr > block,
            format!("scattering every halo edge must cost at {n} nodes: block {block:.2}s vs round-robin {rr:.2}s"),
        );
    }
    let (block64, rr64) = (get("Block", 64), get("Round-robin", 64));
    expect(
        &mut report,
        rr64 > 1.15 * block64,
        format!(
            "at 64 nodes the placement gap should be pronounced: block {block64:.2}s vs round-robin {rr64:.2}s"
        ),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn locality_shape() {
        let fig = run(&QueryEngine::new(), &[1]);
        assert_eq!(fig.series.len(), 2);
        let report = check_shape(&fig);
        assert!(report.is_empty(), "{report:#?}");
    }
}
