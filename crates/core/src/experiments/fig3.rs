//! Figure 3 — scalability (MareNostrum4).
//!
//! *"Scalability plot of Alya artery FSI case in MareNostrum4"*: speedup
//! (relative to the 4-node bare-metal run) up to 256 nodes / 12,288 cores,
//! for bare metal, the system-specific container and the self-contained
//! container, against the ideal line.
//!
//! Paper claims encoded in [`check_shape`]:
//! - the integrated container leverages Omni-Path exactly like bare metal
//!   and both keep scaling to 256 nodes;
//! - the self-contained container cannot, and its curve breaks away and
//!   plateaus at a small fraction of the ideal speedup.

use crate::experiments::{campaign_series, campaign_traces, expect, load_campaign, ShapeReport};
use crate::lab::QueryEngine;
use crate::report::{FigureData, Series};
use crate::scenario::Execution;
use crate::script::CompiledCampaign;

/// The committed campaign script this figure runs from.
pub const SCRIPT: &str = include_str!("fig3.hsim");

/// Node counts of the figure.
pub const NODES: [u32; 7] = [4, 8, 16, 32, 64, 128, 256];

/// The three measured curves, in legend order.
pub fn environments() -> Vec<(&'static str, Execution)> {
    vec![
        ("Bare-metal", Execution::bare_metal()),
        (
            "Singularity system-specific",
            Execution::singularity_system_specific(),
        ),
        (
            "Singularity self-contained",
            Execution::singularity_self_contained(),
        ),
    ]
}

/// The figure's scenario grid, compiled from [`SCRIPT`]: environments
/// outermost, node counts inner.
pub fn campaign() -> CompiledCampaign {
    load_campaign(SCRIPT)
}

/// Capture one trace per curve at the 16-node point, where the
/// self-contained curve has visibly broken away.
pub fn traces(lab: &QueryEngine, seed: u64) -> Vec<(String, harborsim_des::trace::TraceBuffer)> {
    campaign_traces(lab, &campaign(), 2, seed)
}

/// Regenerate the figure: x = nodes, y = speedup vs 4-node bare metal.
/// All 21 (environment × node-count) points run as one lab batch; the
/// 4-node bare-metal baseline is the grid's first run, so dividing by it
/// is a cache hit from inside that batch.
pub fn run(lab: &QueryEngine, seeds: &[u64]) -> FigureData {
    let time_series = campaign_series(lab, seeds, campaign(), |s| s.nodes as f64);
    // the first series' first point is 4-node bare metal — the baseline
    let baseline = time_series[0].points[0].1;
    let mut series: Vec<Series> = time_series
        .into_iter()
        .map(|s| {
            let points = s.points.iter().map(|&(x, t)| (x, baseline / t)).collect();
            Series::new(&s.label, points)
        })
        .collect();
    series.push(Series::new(
        "Ideal",
        NODES.iter().map(|&n| (n as f64, n as f64 / 4.0)).collect(),
    ));
    FigureData {
        id: "fig3".into(),
        title: "Scalability of the Alya artery FSI case in MareNostrum4".into(),
        x_label: "Nodes".into(),
        y_label: "Speedup (vs 4-node bare-metal)".into(),
        series,
    }
}

/// Verify the paper's qualitative claims.
pub fn check_shape(fig: &FigureData) -> ShapeReport {
    let mut report = ShapeReport::new();
    let get = |label: &str, n: u32| {
        fig.series_named(label)
            .and_then(|s| s.y_at(n as f64))
            .unwrap_or(f64::NAN)
    };
    // bare metal and the integrated container keep scaling
    let bare256 = get("Bare-metal", 256);
    expect(
        &mut report,
        bare256 >= 38.0,
        format!("bare-metal speedup at 256 nodes is {bare256:.1} (want >= 38 of ideal 64)"),
    );
    for n in NODES {
        let bare = get("Bare-metal", n);
        let ss = get("Singularity system-specific", n);
        expect(
            &mut report,
            (ss - bare).abs() / bare < 0.08,
            format!(
                "system-specific at {n} nodes: speedup {ss:.1} vs bare {bare:.1} (want within 8%)"
            ),
        );
        let ideal = n as f64 / 4.0;
        expect(
            &mut report,
            bare <= ideal * 1.05,
            format!("no superlinear scaling: {bare:.1} > ideal {ideal:.1} at {n} nodes"),
        );
    }
    // the self-contained container stops scaling
    let sc32 = get("Singularity self-contained", 32);
    let sc256 = get("Singularity self-contained", 256);
    expect(
        &mut report,
        sc256 < 16.0,
        format!("self-contained speedup at 256 nodes is {sc256:.1} (want < 16: it must plateau)"),
    );
    expect(
        &mut report,
        sc256 / sc32 < 0.45 * 8.0,
        format!(
            "self-contained 32->256 gained {:.1}x of the ideal 8x (want < 3.6x: flattening)",
            sc256 / sc32
        ),
    );
    expect(
        &mut report,
        sc256 < 0.4 * bare256,
        format!("self-contained ({sc256:.1}) must fall far below bare-metal ({bare256:.1}) at 256 nodes"),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_reproduces_paper_shape() {
        let fig = run(&QueryEngine::new(), &[1, 2]);
        assert_eq!(fig.series.len(), 4);
        let report = check_shape(&fig);
        assert!(report.is_empty(), "shape violations: {report:#?}");
    }

    #[test]
    fn speedups_start_near_one() {
        let fig = run(&QueryEngine::new(), &[1]);
        for label in ["Bare-metal", "Singularity system-specific"] {
            let s4 = fig.series_named(label).unwrap().y_at(4.0).unwrap();
            assert!((0.9..1.1).contains(&s4), "{label} at 4 nodes: {s4}");
        }
    }

    #[test]
    fn job_uses_12288_cores_at_full_scale() {
        let c = campaign();
        assert_eq!(c.sweep_lens, vec![3, NODES.len()]);
        let sc = &c.runs[NODES.len() - 1].scenario;
        assert_eq!(sc.nodes, 256);
        assert_eq!(
            sc.nodes as u64 * sc.ranks_per_node as u64 * sc.threads_per_rank as u64,
            12_288
        );
        // series order in the script matches the legend order
        let envs = environments();
        for (i, run) in c.runs.iter().enumerate() {
            let (label, env) = &envs[i / NODES.len()];
            assert_eq!(run.labels[0], *label);
            assert_eq!(run.scenario.env, *env);
            assert_eq!(run.scenario.nodes, NODES[i % NODES.len()]);
        }
    }
}
