//! Extension — weak scaling.
//!
//! The paper's Fig. 3 is a strong-scaling study; production campaigns more
//! often grow the mesh with the machine. Weak scaling exposes the
//! transport stacks differently: per-rank halo volume is *constant*, so
//! the self-contained container's bandwidth handicap shows up immediately
//! and stays, while its latency handicap no longer grows relative to
//! compute. HarborSim sweeps the FSI case at a fixed 1.2M cells/rank.

use crate::experiments::{capture, expect, ShapeReport};
use crate::lab::QueryEngine;
use crate::report::{FigureData, Series};
use crate::scenario::{Execution, Scenario};
use harborsim_alya::workload::ArteryFsi;

/// Node counts of the sweep.
pub const NODES: [u32; 5] = [4, 16, 64, 128, 256];

/// Cells per rank, held constant.
pub const CELLS_PER_RANK: f64 = 1.2e6;

fn case_for(ranks: u32) -> ArteryFsi {
    ArteryFsi {
        label: format!("artery-fsi-weak-{ranks}"),
        active_cells: CELLS_PER_RANK * ranks as f64,
        timesteps: 40,
        cg_iters: 30,
        solid_fraction: 0.08,
        interface_bytes: 96 * 1024,
    }
}

/// Capture one trace per transport stack at the 4-node point of the weak
/// sweep.
pub fn traces(lab: &QueryEngine, seed: u64) -> Vec<(String, harborsim_des::trace::TraceBuffer)> {
    [
        ("Bare-metal", Execution::bare_metal()),
        (
            "Singularity system-specific",
            Execution::singularity_system_specific(),
        ),
        (
            "Singularity self-contained",
            Execution::singularity_self_contained(),
        ),
    ]
    .iter()
    .map(|(label, env)| {
        let scenario = Scenario::new(harborsim_hw::presets::marenostrum4(), case_for(4 * 48))
            .execution(*env)
            .nodes(4)
            .ranks_per_node(48);
        capture(lab, label, &scenario, seed)
    })
    .collect()
}

/// Regenerate: x = nodes, y = weak-scaling efficiency (T₄ / T_n). All
/// (environment × node-count) points run as one lab batch; each series'
/// 4-node baseline is its own first point.
pub fn run(lab: &QueryEngine, seeds: &[u64]) -> FigureData {
    let envs = [
        ("Bare-metal", Execution::bare_metal()),
        (
            "Singularity system-specific",
            Execution::singularity_system_specific(),
        ),
        (
            "Singularity self-contained",
            Execution::singularity_self_contained(),
        ),
    ];
    let scenarios: Vec<Scenario> = envs
        .iter()
        .flat_map(|&(_, env)| {
            NODES.iter().map(move |&n| {
                Scenario::new(harborsim_hw::presets::marenostrum4(), case_for(n * 48))
                    .execution(env)
                    .nodes(n)
                    .ranks_per_node(48)
            })
        })
        .collect();
    let means = lab
        .handle(crate::lab::LabRequest::batch(scenarios, seeds))
        .means();
    let series: Vec<Series> = envs
        .iter()
        .zip(means.chunks(NODES.len()))
        .map(|(&(label, _), ts)| {
            let t4 = ts[0];
            let points = NODES
                .iter()
                .zip(ts)
                .map(|(&n, &t)| (n as f64, t4 / t))
                .collect();
            Series::new(label, points)
        })
        .collect();
    FigureData {
        id: "ext-weak".into(),
        title: "Weak scaling of the FSI case (1.2M cells/rank, MareNostrum4)".into(),
        x_label: "Nodes".into(),
        y_label: "Weak-scaling efficiency (T4/Tn)".into(),
        series,
    }
}

/// Expected behaviour.
pub fn check_shape(fig: &FigureData) -> ShapeReport {
    let mut report = ShapeReport::new();
    let get = |label: &str, n: u32| {
        fig.series_named(label)
            .and_then(|s| s.y_at(n as f64))
            .unwrap_or(f64::NAN)
    };
    // the native stacks hold high efficiency to 256 nodes
    for label in ["Bare-metal", "Singularity system-specific"] {
        let e = get(label, 256);
        expect(
            &mut report,
            e > 0.8,
            format!("{label} weak efficiency at 256 nodes is {e:.2} (want > 0.8)"),
        );
    }
    // the fallback stack loses efficiency with scale, but gently — its
    // handicap is mostly a constant factor under weak scaling
    let sc256 = get("Singularity self-contained", 256);
    expect(
        &mut report,
        sc256 > 0.5,
        format!("self-contained weak efficiency collapsed to {sc256:.2}"),
    );
    expect(
        &mut report,
        sc256 < get("Bare-metal", 256),
        "self-contained must trail bare metal".into(),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weak_scaling_shape() {
        let fig = run(&QueryEngine::new(), &[1]);
        assert_eq!(fig.series.len(), 3);
        let report = check_shape(&fig);
        assert!(report.is_empty(), "{report:#?}");
    }

    #[test]
    fn per_rank_work_constant() {
        use harborsim_alya::workload::AlyaCase;
        let a = case_for(192);
        let b = case_for(12_288);
        let fa = a.job_profile(192).total_flops(192) / 192.0;
        let fb = b.job_profile(12_288).total_flops(12_288) / 12_288.0;
        assert!((fa - fb).abs() / fa < 1e-9);
    }
}
