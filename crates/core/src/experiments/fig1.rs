//! Figure 1 — containerization solutions.
//!
//! *"Average elapsed time of the artery CFD case in Lenox"*: four execution
//! technologies (bare metal, Singularity, Shifter, Docker) across five
//! rank×thread balances of the same 112 cores on the four Lenox nodes.
//!
//! Paper claims encoded in [`check_shape`]:
//! - HPC-designed containers (Singularity, Shifter) reach bare-metal
//!   performance at every configuration;
//! - Docker degrades as the job scales in MPI ranks.

use crate::experiments::{campaign_series, campaign_traces, expect, load_campaign, ShapeReport};
use crate::lab::QueryEngine;
use crate::report::FigureData;
use crate::scenario::Execution;
use crate::script::CompiledCampaign;

/// The committed campaign script this figure runs from.
pub const SCRIPT: &str = include_str!("fig1.hsim");

/// The paper's five `ranks × threads-per-rank` configurations.
pub const CONFIGS: [(u32, u32); 5] = [(8, 14), (16, 7), (28, 4), (56, 2), (112, 1)];

/// The four execution technologies of the figure, in legend order.
pub fn environments() -> Vec<(&'static str, Execution)> {
    vec![
        ("Bare-metal", Execution::bare_metal()),
        ("Singularity", Execution::singularity_self_contained()),
        ("Shifter", Execution::shifter()),
        ("Docker", Execution::docker()),
    ]
}

/// The figure's scenario grid, compiled from [`SCRIPT`]: environments
/// outermost, the five configurations inner.
pub fn campaign() -> CompiledCampaign {
    load_campaign(SCRIPT)
}

/// Capture one trace per technology at the pure-MPI 112x1 point — the
/// configuration where the mechanisms differ most (Docker's bridge spans
/// are emitted for every inter-node message).
pub fn traces(lab: &QueryEngine, seed: u64) -> Vec<(String, harborsim_des::trace::TraceBuffer)> {
    campaign_traces(lab, &campaign(), CONFIGS.len() - 1, seed)
}

/// Regenerate the figure: x = total MPI ranks, y = elapsed seconds. All
/// 20 (environment × configuration) points run as one lab batch.
pub fn run(lab: &QueryEngine, seeds: &[u64]) -> FigureData {
    let series = campaign_series(lab, seeds, campaign(), |s| {
        (s.ranks_per_node * s.nodes) as f64
    });
    FigureData {
        id: "fig1".into(),
        title: "Average elapsed time of the artery CFD case in Lenox".into(),
        x_label: "MPI ranks (x threads = 112 cores)".into(),
        y_label: "Time [s]".into(),
        series,
    }
}

/// Verify the paper's qualitative claims.
pub fn check_shape(fig: &FigureData) -> ShapeReport {
    let mut report = ShapeReport::new();
    let get = |label: &str, x: f64| {
        fig.series_named(label)
            .and_then(|s| s.y_at(x))
            .unwrap_or(f64::NAN)
    };
    let mut prev_rel = 0.0;
    for &(ranks, _) in &CONFIGS {
        let x = ranks as f64;
        let bare = get("Bare-metal", x);
        expect(
            &mut report,
            bare.is_finite() && bare > 0.0,
            format!("missing bare-metal point at {ranks} ranks"),
        );
        for hpc in ["Singularity", "Shifter"] {
            let t = get(hpc, x);
            expect(
                &mut report,
                t / bare < 1.08,
                format!(
                    "{hpc} at {ranks} ranks is {:.2}x bare-metal (want < 1.08x)",
                    t / bare
                ),
            );
        }
        let docker_rel = get("Docker", x) / bare;
        expect(
            &mut report,
            docker_rel + 0.02 >= prev_rel,
            format!(
                "Docker relative cost must grow with ranks: {prev_rel:.2} -> {docker_rel:.2} at {ranks}"
            ),
        );
        prev_rel = docker_rel;
    }
    let d112 = get("Docker", 112.0) / get("Bare-metal", 112.0);
    expect(
        &mut report,
        d112 >= 1.4,
        format!("Docker at 112 ranks is only {d112:.2}x bare-metal (want >= 1.4x)"),
    );
    let d8 = get("Docker", 8.0) / get("Bare-metal", 8.0);
    expect(
        &mut report,
        d8 < 1.25,
        format!("Docker at 8 ranks should still be close to bare-metal, got {d8:.2}x"),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_reproduces_paper_shape() {
        let fig = run(&QueryEngine::new(), &[1, 2]);
        assert_eq!(fig.series.len(), 4);
        for s in &fig.series {
            assert_eq!(s.points.len(), 5, "{}", s.label);
        }
        let report = check_shape(&fig);
        assert!(report.is_empty(), "shape violations: {report:#?}");
    }

    #[test]
    fn script_matches_the_paper_constants() {
        let c = campaign();
        assert_eq!(c.sweep_lens, vec![4, 5]);
        let envs = environments();
        for (i, run) in c.runs.iter().enumerate() {
            let (label, env) = &envs[i / CONFIGS.len()];
            assert_eq!(run.labels[0], *label);
            assert_eq!(run.scenario.env, *env);
            let (ranks, threads) = CONFIGS[i % CONFIGS.len()];
            assert_eq!(run.scenario.ranks_per_node * run.scenario.nodes, ranks);
            assert_eq!(run.scenario.threads_per_rank, threads);
        }
    }

    #[test]
    fn bare_metal_times_are_minutes_scale() {
        let fig = run(&QueryEngine::new(), &[1]);
        let bare = fig.series_named("Bare-metal").unwrap();
        for &(_, t) in &bare.points {
            assert!(
                (60.0..400.0).contains(&t),
                "bare-metal should take minutes like the paper's case: {t}"
            );
        }
    }
}
