//! Figure 1 — containerization solutions.
//!
//! *"Average elapsed time of the artery CFD case in Lenox"*: four execution
//! technologies (bare metal, Singularity, Shifter, Docker) across five
//! rank×thread balances of the same 112 cores on the four Lenox nodes.
//!
//! Paper claims encoded in [`check_shape`]:
//! - HPC-designed containers (Singularity, Shifter) reach bare-metal
//!   performance at every configuration;
//! - Docker degrades as the job scales in MPI ranks.

use crate::experiments::{capture, expect, ShapeReport};
use crate::lab::QueryEngine;
use crate::report::{FigureData, Series};
use crate::scenario::{Execution, Scenario};
use crate::workloads;

/// The paper's five `ranks × threads-per-rank` configurations.
pub const CONFIGS: [(u32, u32); 5] = [(8, 14), (16, 7), (28, 4), (56, 2), (112, 1)];

/// The four execution technologies of the figure, in legend order.
pub fn environments() -> Vec<(&'static str, Execution)> {
    vec![
        ("Bare-metal", Execution::bare_metal()),
        ("Singularity", Execution::singularity_self_contained()),
        ("Shifter", Execution::shifter()),
        ("Docker", Execution::docker()),
    ]
}

fn scenario(env: Execution, ranks: u32, threads: u32) -> Scenario {
    Scenario::new(
        harborsim_hw::presets::lenox(),
        workloads::artery_cfd_lenox(),
    )
    .execution(env)
    .nodes(4)
    .ranks_per_node(ranks / 4)
    .threads_per_rank(threads)
}

/// Capture one trace per technology at the pure-MPI 112x1 point — the
/// configuration where the mechanisms differ most (Docker's bridge spans
/// are emitted for every inter-node message).
pub fn traces(lab: &QueryEngine, seed: u64) -> Vec<(String, harborsim_des::trace::TraceBuffer)> {
    environments()
        .iter()
        .map(|(label, env)| capture(lab, label, &scenario(*env, 112, 1), seed))
        .collect()
}

/// Regenerate the figure: x = total MPI ranks, y = elapsed seconds. All
/// 20 (environment × configuration) points run as one lab batch.
pub fn run(lab: &QueryEngine, seeds: &[u64]) -> FigureData {
    let envs = environments();
    let scenarios: Vec<Scenario> = envs
        .iter()
        .flat_map(|(_, env)| {
            CONFIGS
                .iter()
                .map(|&(ranks, threads)| scenario(*env, ranks, threads))
        })
        .collect();
    let means = lab.means(scenarios, seeds);
    let series: Vec<Series> = envs
        .iter()
        .zip(means.chunks(CONFIGS.len()))
        .map(|((label, _), ys)| {
            let points = CONFIGS
                .iter()
                .zip(ys)
                .map(|(&(ranks, _), &y)| (ranks as f64, y))
                .collect();
            Series::new(label, points)
        })
        .collect();
    FigureData {
        id: "fig1".into(),
        title: "Average elapsed time of the artery CFD case in Lenox".into(),
        x_label: "MPI ranks (x threads = 112 cores)".into(),
        y_label: "Time [s]".into(),
        series,
    }
}

/// Verify the paper's qualitative claims.
pub fn check_shape(fig: &FigureData) -> ShapeReport {
    let mut report = ShapeReport::new();
    let get = |label: &str, x: f64| {
        fig.series_named(label)
            .and_then(|s| s.y_at(x))
            .unwrap_or(f64::NAN)
    };
    let mut prev_rel = 0.0;
    for &(ranks, _) in &CONFIGS {
        let x = ranks as f64;
        let bare = get("Bare-metal", x);
        expect(
            &mut report,
            bare.is_finite() && bare > 0.0,
            format!("missing bare-metal point at {ranks} ranks"),
        );
        for hpc in ["Singularity", "Shifter"] {
            let t = get(hpc, x);
            expect(
                &mut report,
                t / bare < 1.08,
                format!(
                    "{hpc} at {ranks} ranks is {:.2}x bare-metal (want < 1.08x)",
                    t / bare
                ),
            );
        }
        let docker_rel = get("Docker", x) / bare;
        expect(
            &mut report,
            docker_rel + 0.02 >= prev_rel,
            format!(
                "Docker relative cost must grow with ranks: {prev_rel:.2} -> {docker_rel:.2} at {ranks}"
            ),
        );
        prev_rel = docker_rel;
    }
    let d112 = get("Docker", 112.0) / get("Bare-metal", 112.0);
    expect(
        &mut report,
        d112 >= 1.4,
        format!("Docker at 112 ranks is only {d112:.2}x bare-metal (want >= 1.4x)"),
    );
    let d8 = get("Docker", 8.0) / get("Bare-metal", 8.0);
    expect(
        &mut report,
        d8 < 1.25,
        format!("Docker at 8 ranks should still be close to bare-metal, got {d8:.2}x"),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_reproduces_paper_shape() {
        let fig = run(&QueryEngine::new(), &[1, 2]);
        assert_eq!(fig.series.len(), 4);
        for s in &fig.series {
            assert_eq!(s.points.len(), 5, "{}", s.label);
        }
        let report = check_shape(&fig);
        assert!(report.is_empty(), "shape violations: {report:#?}");
    }

    #[test]
    fn bare_metal_times_are_minutes_scale() {
        let fig = run(&QueryEngine::new(), &[1]);
        let bare = fig.series_named("Bare-metal").unwrap();
        for &(_, t) in &bare.points {
            assert!(
                (60.0..400.0).contains(&t),
                "bare-metal should take minutes like the paper's case: {t}"
            );
        }
    }
}
