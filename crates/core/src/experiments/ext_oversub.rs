//! Extension — spine oversubscription.
//!
//! The paper's machines differ not just in NIC technology but in how much
//! bandwidth their fabrics offer *above* the leaf switches. With the
//! routed link graph this is one knob — the spine taper — and this
//! extension sweeps it on the full-scale MareNostrum4 FSI configuration:
//! 256 nodes, 12,288 ranks, taper from non-blocking (1.0) down to 4:1
//! oversubscribed (0.25). The per-link utilization table of the worst
//! point shows *where* the machine saturates: the spine links, not the
//! node uplinks.

use crate::experiments::{expect, ShapeReport};
use crate::lab::QueryEngine;
use crate::report::{FigureData, Series, TableData};
use crate::scenario::{Execution, Scenario};
use crate::workloads;
use harborsim_alya::workload::AlyaCase;
use harborsim_mpi::workload::{CommPhase, JobProfile, StepProfile};
use harborsim_mpi::SimResult;

/// Spine tapers of the sweep, non-blocking first.
pub const TAPERS: [f64; 4] = [1.0, 0.8, 0.5, 0.25];

fn scenario(taper: f64) -> Scenario {
    Scenario::new(
        harborsim_hw::presets::marenostrum4(),
        workloads::artery_fsi_mn4(),
    )
    .execution(Execution::bare_metal())
    .nodes(256)
    .ranks_per_node(48)
    .spine_taper(taper)
}

/// A global transpose: rank `i` exchanges with rank `i + p/2`, so every
/// message crosses the spine. This is the spine-stress probe — Alya's own
/// traffic (leaf-local halos, bandwidth-optimal allreduce) bottlenecks on
/// the NICs even 4:1 oversubscribed, which the sweep itself shows; a
/// transpose is the canonical pattern that does saturate the spine.
pub struct TransposeCase;

impl AlyaCase for TransposeCase {
    fn name(&self) -> &str {
        "global-transpose"
    }

    fn memo_key(&self) -> Option<String> {
        // the profile is a pure function of the rank count
        Some("global-transpose".into())
    }

    fn job_profile(&self, ranks: u32) -> JobProfile {
        let half = ranks / 2;
        JobProfile::uniform(
            StepProfile {
                flops_per_rank: 1e8,
                imbalance: 1.0,
                regions: 1.0,
                comm: vec![CommPhase::Pairs {
                    pairs: (0..half).map(|i| (i, i + half)).collect(),
                    bytes: 100_000,
                }],
            },
            10,
        )
    }
}

/// The sweep's outputs: the slowdown curve and the spine-stress probe's
/// full result (whose link table names the bottleneck).
pub struct OversubStudy {
    /// x = spine taper, y = slowdown vs the non-blocking fabric.
    pub fig: FigureData,
    /// The taper-0.25 transpose probe, link counters included.
    pub worst: SimResult,
}

/// Regenerate the sweep.
pub fn run(lab: &QueryEngine, seeds: &[u64]) -> OversubStudy {
    let means = lab
        .handle(crate::lab::LabRequest::batch(
            TAPERS.iter().map(|&t| scenario(t)),
            seeds,
        ))
        .means();
    let times: Vec<(f64, f64)> = TAPERS.iter().copied().zip(means).collect();
    let t_full = times[0].1;
    let fig = FigureData {
        id: "ext-oversub".into(),
        title: "Spine oversubscription, artery FSI at 256 nodes (MareNostrum4)".into(),
        x_label: "Spine taper (fraction of injection bandwidth)".into(),
        y_label: "Slowdown vs non-blocking".into(),
        series: vec![Series::new(
            "Bare-metal",
            times.iter().map(|&(t, s)| (t, s / t_full)).collect(),
        )],
    };
    let worst = lab
        .handle(crate::lab::LabRequest::execute(
            Scenario::new(harborsim_hw::presets::marenostrum4(), TransposeCase)
                .execution(Execution::bare_metal())
                .nodes(256)
                .ranks_per_node(48)
                .spine_taper(*TAPERS.last().unwrap()),
            seeds[0],
        ))
        .into_outcome()
        .result;
    OversubStudy { fig, worst }
}

/// Per-link utilization of the most oversubscribed point, busiest first.
pub fn table(study: &OversubStudy) -> TableData {
    crate::traceviz::link_utilization(&study.worst)
}

/// The label of the busiest link (by fluid busy time) in a result.
pub fn busiest_link(result: &SimResult) -> Option<&str> {
    result
        .links
        .iter()
        .max_by(|a, b| a.busy_s.total_cmp(&b.busy_s))
        .map(|l| l.label.as_str())
}

/// The mechanism claims.
pub fn check_shape(study: &OversubStudy) -> ShapeReport {
    let mut report = ShapeReport::new();
    let get = |taper: f64| {
        study
            .fig
            .series_named("Bare-metal")
            .and_then(|s| s.y_at(taper))
            .unwrap_or(f64::NAN)
    };
    // tightening the spine can only slow the job down
    for w in TAPERS.windows(2) {
        let (wide, narrow) = (get(w[0]), get(w[1]));
        expect(
            &mut report,
            narrow >= wide - 1e-9,
            format!(
                "less spine bandwidth must not speed the job up: taper {} -> {:.3}x, taper {} -> {:.3}x",
                w[0], wide, w[1], narrow
            ),
        );
    }
    expect(
        &mut report,
        (get(1.0) - 1.0).abs() < 1e-9,
        "the non-blocking point is its own baseline".into(),
    );
    let worst = get(0.25);
    expect(
        &mut report,
        worst > 1.01,
        format!("4:1 oversubscription must visibly hurt at 12,288 ranks, got {worst:.3}x"),
    );
    // under spine-crossing traffic the bottleneck is where the taper
    // bites: a spine link, not a NIC
    match busiest_link(&study.worst) {
        Some(label) => expect(
            &mut report,
            label.contains("spine"),
            format!("busiest link under 4:1 oversubscription should be a spine link, got {label}"),
        ),
        None => report.push("taper-0.25 probe recorded no link usage".into()),
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oversubscription_shape() {
        let study = run(&QueryEngine::new(), &[1]);
        let report = check_shape(&study);
        assert!(report.is_empty(), "{report:#?}");
        let t = table(&study);
        assert!(t.rows[0][0].contains("spine"), "{:?}", t.rows[0]);
    }
}
