//! Figure 2 — portability (CTE-POWER).
//!
//! *"Average elapsed time of artery CFD case in CTE-POWER"*: bare metal vs
//! Singularity with the two image-building techniques, 2–16 nodes on the
//! POWER9 + InfiniBand EDR machine.
//!
//! Paper claims encoded in [`check_shape`]:
//! - the host-integrated (*system-specific*) container equals bare-metal
//!   performance;
//! - the *self-contained* container cannot use the Mellanox EDR network
//!   (it falls back to IPoIB) and falls behind, increasingly with scale.

use crate::experiments::{campaign_series, campaign_traces, expect, load_campaign, ShapeReport};
use crate::lab::QueryEngine;
use crate::report::FigureData;
use crate::scenario::Execution;
use crate::script::CompiledCampaign;

/// The committed campaign script this figure runs from.
pub const SCRIPT: &str = include_str!("fig2.hsim");

/// Node counts of the figure (the paper samples every integer 2..16).
pub fn node_counts() -> Vec<u32> {
    (2..=16).collect()
}

/// The three curves, in legend order.
pub fn environments() -> Vec<(&'static str, Execution)> {
    vec![
        ("Bare-metal", Execution::bare_metal()),
        (
            "Singularity system-specific",
            Execution::singularity_system_specific(),
        ),
        (
            "Singularity self-contained",
            Execution::singularity_self_contained(),
        ),
    ]
}

/// The figure's scenario grid, compiled from [`SCRIPT`]: environments
/// outermost, node counts inner.
pub fn campaign() -> CompiledCampaign {
    load_campaign(SCRIPT)
}

/// Capture one trace per curve at the 4-node point (the self-contained
/// image is already on TCP fallback there).
pub fn traces(lab: &QueryEngine, seed: u64) -> Vec<(String, harborsim_des::trace::TraceBuffer)> {
    // nodes sweep is 2..16, so grid index 2 is the 4-node point
    campaign_traces(lab, &campaign(), 2, seed)
}

/// Regenerate the figure: x = nodes, y = elapsed seconds. All 45
/// (environment × node-count) points run as one lab batch.
pub fn run(lab: &QueryEngine, seeds: &[u64]) -> FigureData {
    let series = campaign_series(lab, seeds, campaign(), |s| s.nodes as f64);
    FigureData {
        id: "fig2".into(),
        title: "Average elapsed time of the artery CFD case in CTE-POWER".into(),
        x_label: "Nodes".into(),
        y_label: "Time [s]".into(),
        series,
    }
}

/// Verify the paper's qualitative claims.
pub fn check_shape(fig: &FigureData) -> ShapeReport {
    let mut report = ShapeReport::new();
    let get = |label: &str, x: u32| {
        fig.series_named(label)
            .and_then(|s| s.y_at(x as f64))
            .unwrap_or(f64::NAN)
    };
    for n in node_counts() {
        let bare = get("Bare-metal", n);
        let ss = get("Singularity system-specific", n);
        expect(
            &mut report,
            ss / bare < 1.05,
            format!(
                "system-specific at {n} nodes is {:.2}x bare-metal (want < 1.05x)",
                ss / bare
            ),
        );
    }
    // every curve strong-scales (monotone decreasing in nodes). The
    // fallback curve is granted more local slack: its halo cost tracks the
    // partition's cut quality, which jumps at awkward rank counts (e.g.
    // 13x40 ranks factor far worse than 12x40) — on the real machine the
    // same jumps hide inside run-to-run noise.
    for s in &fig.series {
        let slack = if s.label.contains("self-contained") {
            1.12
        } else {
            1.03
        };
        for w in s.points.windows(2) {
            expect(
                &mut report,
                w[1].1 < w[0].1 * slack,
                format!(
                    "{}: time rose {:.1} -> {:.1} at {} nodes",
                    s.label, w[0].1, w[1].1, w[1].0
                ),
            );
        }
    }
    // self-contained loses badly at scale and flattens
    let sc16 = get("Singularity self-contained", 16);
    let bare16 = get("Bare-metal", 16);
    expect(
        &mut report,
        sc16 / bare16 >= 2.0,
        format!(
            "self-contained at 16 nodes only {:.2}x bare-metal (want >= 2x)",
            sc16 / bare16
        ),
    );
    let sc2 = get("Singularity self-contained", 2);
    let speedup_sc = sc2 / sc16;
    expect(
        &mut report,
        speedup_sc < 0.62 * 8.0,
        format!("self-contained 2->16 node speedup {speedup_sc:.1} should flatten (< 5.0)"),
    );
    let speedup_bare = get("Bare-metal", 2) / bare16;
    expect(
        &mut report,
        speedup_bare > 5.5,
        format!("bare-metal 2->16 node speedup {speedup_bare:.1} should stay near-linear (> 5.5)"),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_reproduces_paper_shape() {
        let fig = run(&QueryEngine::new(), &[1, 2]);
        assert_eq!(fig.series.len(), 3);
        for s in &fig.series {
            assert_eq!(s.points.len(), 15, "{}", s.label);
        }
        let report = check_shape(&fig);
        assert!(report.is_empty(), "shape violations: {report:#?}");
    }

    #[test]
    fn script_matches_the_paper_grid() {
        let c = campaign();
        assert_eq!(c.sweep_lens, vec![3, 15]);
        let envs = environments();
        let nodes = node_counts();
        for (i, run) in c.runs.iter().enumerate() {
            let (label, env) = &envs[i / nodes.len()];
            assert_eq!(run.labels[0], *label);
            assert_eq!(run.scenario.env, *env);
            assert_eq!(run.scenario.nodes, nodes[i % nodes.len()]);
            assert_eq!(run.scenario.ranks_per_node, 40);
        }
    }

    #[test]
    fn two_node_time_matches_paper_scale() {
        // the paper's 2-node point sits near 90 s
        let fig = run(&QueryEngine::new(), &[1]);
        let t2 = fig.series_named("Bare-metal").unwrap().y_at(2.0).unwrap();
        assert!((40.0..150.0).contains(&t2), "t2={t2}");
    }
}
