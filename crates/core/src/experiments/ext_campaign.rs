//! Extension — campaign turnaround under a batch scheduler.
//!
//! One job is the paper's unit of measurement; a research campaign is the
//! user's. This experiment submits an 8-job CFD campaign (8 nodes each) to
//! the CTE-POWER model under FIFO + EASY backfill, once per technology, and
//! reports mean turnaround and per-job staging. Cross-job cache effects are
//! what make it interesting: Shifter's gateway conversion and Docker's
//! layer pulls are first-job costs; Docker's serialized per-rank launch is
//! an every-job cost.

use crate::experiments::{expect, ShapeReport};
use crate::lab::QueryEngine;
use crate::report::{fmt_seconds, TableData};
use crate::scenario::{Execution, Scenario};
use harborsim_batch::Campaign;
use harborsim_container::build::{alya_recipe, BuildEngine};
use harborsim_des::trace::Recorder;
use harborsim_hw::presets;

/// Jobs in the campaign.
pub const JOBS: u32 = 8;
/// Nodes per job.
pub const NODES_PER_JOB: u32 = 8;

/// The per-job case: a production-length CFD run (~4 minutes of solver
/// time on 8 CTE-POWER nodes — long enough that staging amortizes for
/// everyone except Docker's per-rank launch).
fn campaign_case() -> harborsim_alya::workload::ArteryCfd {
    harborsim_alya::workload::ArteryCfd {
        label: "artery-cfd-campaign".into(),
        active_cells: 20.0e6,
        timesteps: 5_000,
        cg_iters: 35,
    }
}

/// One technology's campaign outcome.
#[derive(Debug, Clone)]
pub struct CampaignRow {
    /// Technology label.
    pub label: String,
    /// First-job staging seconds (cold caches).
    pub first_staging_s: f64,
    /// Steady-state staging seconds (warm caches).
    pub warm_staging_s: f64,
    /// Mean turnaround seconds.
    pub mean_turnaround_s: f64,
    /// Machine utilization during the campaign.
    pub utilization: f64,
}

/// Run the campaign under each technology CTE-POWER offers (plus Docker,
/// modelled as if it were installed, for contrast).
pub fn run(lab: &QueryEngine, seeds: &[u64]) -> Vec<CampaignRow> {
    let cluster = presets::cte_power();
    let image = BuildEngine::self_contained(cluster.node.cpu.clone())
        .build(&alya_recipe())
        .expect("builds")
        .manifest;
    let mut rows = Vec::new();
    for env in [
        Execution::bare_metal(),
        Execution::singularity_system_specific(),
        Execution::singularity_self_contained(),
        Execution::shifter(),
        Execution::docker(),
    ] {
        // solver time for this technology at the job's size; Docker and
        // Shifter are not installed on CTE-POWER, so pretend they are —
        // this experiment models what would happen if they were
        let solver_s = {
            let mut c = cluster.clone();
            c.software.docker = Some("modelled".into());
            c.software.shifter = Some("modelled".into());
            lab.handle(crate::lab::LabRequest::batch(
                [Scenario::new(c, campaign_case())
                    .execution(env)
                    .nodes(NODES_PER_JOB)
                    .ranks_per_node(40)],
                seeds,
            ))
            .means()[0]
        };
        let report = Campaign {
            cluster: cluster.clone(),
            env,
            image: image.clone(),
            jobs: JOBS,
            nodes_per_job: NODES_PER_JOB,
            ranks_per_node: 40,
            solver_seconds: solver_s,
            submit_interval_s: 30.0,
            registry_uplink_bps: 117e6,
        }
        .run(&mut Recorder::off());
        rows.push(CampaignRow {
            label: env.label(),
            first_staging_s: report.staging_s[0],
            warm_staging_s: report.staging_s[JOBS as usize - 1],
            mean_turnaround_s: report.mean_turnaround_s(),
            utilization: report.utilization,
        });
    }
    rows
}

/// Capture the full campaign trace (deployments + queue/backfill/launch
/// spans) for two contrasting technologies, with a short solver time so
/// the scheduler dynamics dominate the picture.
pub fn traces() -> Vec<(String, harborsim_des::trace::TraceBuffer)> {
    let cluster = presets::cte_power();
    let image = BuildEngine::self_contained(cluster.node.cpu.clone())
        .build(&alya_recipe())
        .expect("builds")
        .manifest;
    [
        Execution::singularity_system_specific(),
        Execution::docker(),
    ]
    .iter()
    .map(|env| {
        let mut rec = Recorder::capturing();
        Campaign {
            cluster: cluster.clone(),
            env: *env,
            image: image.clone(),
            jobs: JOBS,
            nodes_per_job: NODES_PER_JOB,
            ranks_per_node: 40,
            solver_seconds: 240.0,
            submit_interval_s: 30.0,
            registry_uplink_bps: 117e6,
        }
        .run(&mut rec);
        (env.label(), rec.take_buffer())
    })
    .collect()
}

/// Render as a table.
pub fn table(rows: &[CampaignRow]) -> TableData {
    TableData {
        id: "ext-campaign".into(),
        title: format!(
            "{JOBS}-job campaign on CTE-POWER ({NODES_PER_JOB} nodes/job, FIFO + EASY backfill)"
        ),
        headers: vec![
            "Technology".into(),
            "First-job staging".into(),
            "Warm staging".into(),
            "Mean turnaround".into(),
            "Utilization".into(),
        ],
        rows: rows
            .iter()
            .map(|r| {
                vec![
                    r.label.clone(),
                    fmt_seconds(r.first_staging_s),
                    fmt_seconds(r.warm_staging_s),
                    fmt_seconds(r.mean_turnaround_s),
                    format!("{:.0}%", r.utilization * 100.0),
                ]
            })
            .collect(),
    }
}

/// The campaign-level claims.
pub fn check_shape(rows: &[CampaignRow]) -> ShapeReport {
    let mut report = ShapeReport::new();
    let find = |label: &str| rows.iter().find(|r| r.label.contains(label));
    let (Some(bare), Some(ss), Some(sc), Some(shifter), Some(docker)) = (
        find("Bare-metal"),
        find("system-specific"),
        find("Singularity self-contained"),
        find("Shifter"),
        find("Docker"),
    ) else {
        report.push("missing rows".into());
        return report;
    };
    // warm staging amortizes the one-time costs
    expect(
        &mut report,
        shifter.first_staging_s > 3.0 * shifter.warm_staging_s,
        format!(
            "Shifter's gateway should be a first-job cost: {:.1}s -> {:.1}s",
            shifter.first_staging_s, shifter.warm_staging_s
        ),
    );
    expect(
        &mut report,
        docker.first_staging_s > 1.5 * docker.warm_staging_s,
        format!(
            "Docker's layer pulls should be a first-job cost: {:.1}s -> {:.1}s",
            docker.first_staging_s, docker.warm_staging_s
        ),
    );
    // ...but Docker's per-rank launch never amortizes
    expect(
        &mut report,
        docker.warm_staging_s > 10.0 * ss.warm_staging_s,
        format!(
            "Docker's per-rank daemon launch is an every-job cost: {:.1}s vs {:.1}s",
            docker.warm_staging_s, ss.warm_staging_s
        ),
    );
    // turnaround ordering: bare ~ system-specific < self-contained < docker
    expect(
        &mut report,
        ss.mean_turnaround_s < 1.05 * bare.mean_turnaround_s,
        "system-specific campaigns must match bare metal".into(),
    );
    expect(
        &mut report,
        sc.mean_turnaround_s > 1.3 * ss.mean_turnaround_s,
        format!(
            "self-contained pays the fallback transport every job: {:.0}s vs {:.0}s",
            sc.mean_turnaround_s, ss.mean_turnaround_s
        ),
    );
    expect(
        &mut report,
        docker.mean_turnaround_s > sc.mean_turnaround_s,
        "docker should trail everything".into(),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_shape_holds() {
        let rows = run(&QueryEngine::new(), &[1]);
        assert_eq!(rows.len(), 5);
        let report = check_shape(&rows);
        assert!(report.is_empty(), "{report:#?}");
        let t = table(&rows);
        assert!(t.to_ascii().contains("campaign"));
    }
}
