//! Extension — degraded-link robustness.
//!
//! Production fabrics degrade one cable at a time: a port renegotiates
//! down, a flapping link gets rate-limited. The routed link graph makes
//! this a first-class experiment — degrade a single node's uplink and
//! watch the whole bulk-synchronous job slow down, because every
//! collective round waits for the slowest participant. The sweep runs the
//! CTE-POWER CFD case at 16 nodes with node 3's uplink at full, half,
//! quarter and tenth capacity.

use crate::experiments::{expect, load_campaign, ShapeReport};
use crate::lab::QueryEngine;
use crate::report::{FigureData, Series};
use crate::script::CompiledCampaign;

/// The committed campaign script this extension runs from.
pub const SCRIPT: &str = include_str!("ext_degraded.hsim");

/// Uplink capacity factors of the sweep, healthy first.
pub const FACTORS: [f64; 4] = [1.0, 0.5, 0.25, 0.1];

/// The node whose uplink degrades.
pub const VICTIM: u32 = 3;

/// The extension's scenario sweep, compiled from [`SCRIPT`]: one run per
/// capacity factor, healthy (no degraded entry) first.
pub fn campaign() -> CompiledCampaign {
    load_campaign(SCRIPT)
}

/// Regenerate: x = uplink capacity factor, y = slowdown vs healthy.
pub fn run(lab: &QueryEngine, seeds: &[u64]) -> FigureData {
    let campaign = campaign();
    let scenarios = campaign.runs.into_iter().map(|r| r.scenario);
    let means = lab
        .handle(crate::lab::LabRequest::batch(scenarios, seeds))
        .means();
    let times: Vec<(f64, f64)> = FACTORS.iter().copied().zip(means).collect();
    let healthy = times[0].1;
    FigureData {
        id: "ext-degraded".into(),
        title: "One degraded node uplink, artery CFD at 16 nodes (CTE-POWER)".into(),
        x_label: "Uplink capacity factor (node 3)".into(),
        y_label: "Slowdown vs healthy fabric".into(),
        series: vec![Series::new(
            "Singularity system-specific",
            times.iter().map(|&(f, s)| (f, s / healthy)).collect(),
        )],
    }
}

/// The robustness claims.
pub fn check_shape(fig: &FigureData) -> ShapeReport {
    let mut report = ShapeReport::new();
    let get = |factor: f64| {
        fig.series_named("Singularity system-specific")
            .and_then(|s| s.y_at(factor))
            .unwrap_or(f64::NAN)
    };
    expect(
        &mut report,
        (get(1.0) - 1.0).abs() < 1e-9,
        "the healthy point is its own baseline".into(),
    );
    // losing capacity on one cable can only slow the whole job down
    for w in FACTORS.windows(2) {
        let (strong, weak) = (get(w[0]), get(w[1]));
        expect(
            &mut report,
            weak >= strong - 1e-9,
            format!(
                "a weaker uplink must not speed the job up: factor {} -> {:.3}x, factor {} -> {:.3}x",
                w[0], strong, w[1], weak
            ),
        );
    }
    let worst = get(0.1);
    expect(
        &mut report,
        worst > 1.02,
        format!("a 10x slower uplink must show end-to-end, got {worst:.3}x"),
    );
    expect(
        &mut report,
        worst < 10.0,
        format!(
            "one bad cable of 16 must not slow the job 10x — only its traffic crawls, got {worst:.3}x"
        ),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn script_matches_the_sweep_constants() {
        let c = campaign();
        assert_eq!(c.sweep_lens, vec![FACTORS.len()]);
        let sc = &c.runs[0].scenario;
        assert!(
            sc.degraded_uplinks.is_empty(),
            "the healthy factor-1.0 point compiles to no degraded entry"
        );
        assert_eq!((sc.nodes, sc.ranks_per_node), (16, 40));
        for (run, &f) in c.runs.iter().zip(FACTORS.iter()).skip(1) {
            assert_eq!(run.scenario.degraded_uplinks, vec![(VICTIM, f)]);
        }
    }

    #[test]
    fn degraded_link_shape() {
        let fig = run(&QueryEngine::new(), &[1]);
        let report = check_shape(&fig);
        assert!(report.is_empty(), "{report:#?}");
    }
}
