//! Extension — where does the time go?
//!
//! The paper reports end-to-end times; this extension decomposes the
//! 112×1 Lenox configuration into compute / halo / allreduce / other for
//! each technology, and adds the *mechanism ablation* the paper couldn't
//! run: Docker with `--net=host` (host network namespace, cgroups kept).
//! If the bridge is really the culprit, host-network Docker must collapse
//! onto the bare-metal breakdown — and it does.
//!
//! Every number in the table is read off the captured trace (the shared
//! `Recorder` roll-up both engines emit through), not from engine-private
//! accounting.

use crate::experiments::{expect, ShapeReport};
use crate::lab::QueryEngine;
use crate::report::{fmt_seconds, TableData};
use crate::scenario::{Execution, Scenario};
use crate::workloads;
use harborsim_alya::workload::AlyaCase;
use harborsim_des::trace::{Recorder, SpanCategory, TraceBuffer};
use harborsim_des::SimTime;
use harborsim_mpi::analytic::{AnalyticEngine, EngineConfig};
use harborsim_mpi::{RankMap, SimResult};
use harborsim_net::{DataPath, NetworkModel, Topology, TransportSelection};

/// One decomposed run.
#[derive(Debug, Clone)]
pub struct Breakdown {
    /// Technology label.
    pub label: String,
    /// Full engine result.
    pub result: SimResult,
    /// The captured trace the decomposition is read from.
    pub trace: TraceBuffer,
}

impl Breakdown {
    /// Seconds the trace recorded under `cat` (single analytic track, so
    /// totals are exact, not averages).
    pub fn seconds(&self, cat: SpanCategory) -> f64 {
        self.trace.total(cat).as_secs_f64()
    }

    /// End-to-end seconds, read from the top-level run span.
    pub fn elapsed_s(&self) -> f64 {
        self.seconds(SpanCategory::Run)
    }

    /// Total communication seconds across the four phase families.
    pub fn comm_s(&self) -> f64 {
        self.seconds(SpanCategory::Halo)
            + self.seconds(SpanCategory::Allreduce)
            + self.seconds(SpanCategory::Pairs)
            + self.seconds(SpanCategory::Other)
    }
}

/// Decompose the 112×1 configuration under every technology plus the
/// host-network Docker ablation.
pub fn run(lab: &QueryEngine, seed: u64) -> Vec<Breakdown> {
    let mut out = Vec::new();
    for env in [
        Execution::bare_metal(),
        Execution::singularity_self_contained(),
        Execution::shifter(),
        Execution::docker(),
    ] {
        let plan = lab
            .plan(
                &Scenario::new(
                    harborsim_hw::presets::lenox(),
                    workloads::artery_cfd_lenox(),
                )
                .execution(env)
                .nodes(4)
                .ranks_per_node(28),
            )
            .expect("breakdown scenario compiles");
        let mut rec = Recorder::capturing();
        let outcome = plan.execute(seed, &mut rec);
        out.push(Breakdown {
            label: env.label(),
            result: outcome.result,
            trace: rec.take_buffer(),
        });
    }
    // the ablation: Docker's cgroup tax without its bridge network
    let cluster = harborsim_hw::presets::lenox();
    let case = workloads::artery_cfd_lenox();
    let map = RankMap::block(4, 28, 1);
    let mut rec = Recorder::capturing();
    let result = AnalyticEngine::new(
        cluster.node.clone(),
        NetworkModel::compose(
            cluster.interconnect,
            TransportSelection::Native,
            DataPath::Host,
            Topology::small_cluster(),
        ),
        map,
        EngineConfig {
            compute_tax: 1.02,
            ..EngineConfig::default()
        },
    )
    .run_traced(&case.job_profile(map.ranks()), seed, &mut rec);
    rec.span(
        SpanCategory::Run,
        "scenario-run",
        0,
        SimTime::ZERO,
        SimTime::ZERO + result.elapsed,
    );
    out.push(Breakdown {
        label: "Docker --net=host (modelled)".into(),
        result,
        trace: rec.take_buffer(),
    });
    out
}

/// The rows' captured traces, labelled, for export.
pub fn traces(rows: &[Breakdown]) -> Vec<(String, TraceBuffer)> {
    rows.iter()
        .map(|b| (b.label.clone(), b.trace.clone()))
        .collect()
}

/// Render the decomposition as a table.
pub fn table(rows: &[Breakdown]) -> TableData {
    TableData {
        id: "ext-breakdown".into(),
        title: "Time decomposition, artery CFD at 112x1 on Lenox".into(),
        headers: vec![
            "Technology".into(),
            "Compute".into(),
            "Halo".into(),
            "Allreduce".into(),
            "Other".into(),
            "Total".into(),
        ],
        rows: rows
            .iter()
            .map(|b| {
                vec![
                    b.label.clone(),
                    fmt_seconds(b.seconds(SpanCategory::Compute)),
                    fmt_seconds(b.seconds(SpanCategory::Halo)),
                    fmt_seconds(b.seconds(SpanCategory::Allreduce)),
                    fmt_seconds(b.seconds(SpanCategory::Other)),
                    fmt_seconds(b.elapsed_s()),
                ]
            })
            .collect(),
    }
}

/// The mechanism claims.
pub fn check_shape(rows: &[Breakdown]) -> ShapeReport {
    let mut report = ShapeReport::new();
    let find = |label: &str| rows.iter().find(|b| b.label.contains(label));
    let (Some(bare), Some(docker), Some(hostnet)) = (
        find("Bare-metal"),
        find("Docker self-contained"),
        find("net=host"),
    ) else {
        report.push("missing rows".into());
        return report;
    };
    // Docker's extra time is communication, not compute
    let extra_compute = docker.seconds(SpanCategory::Compute) - bare.seconds(SpanCategory::Compute);
    let extra_comm = docker.comm_s() - bare.comm_s();
    expect(
        &mut report,
        extra_comm > 5.0 * extra_compute.max(0.0),
        format!("Docker's penalty must be network-borne: comm +{extra_comm:.1}s vs compute +{extra_compute:.1}s"),
    );
    // host-network Docker collapses onto bare metal
    let rel = hostnet.elapsed_s() / bare.elapsed_s();
    expect(
        &mut report,
        (1.0..1.06).contains(&rel),
        format!("--net=host Docker should be within 6% of bare metal, got {rel:.3}x"),
    );
    // and far below bridge Docker
    expect(
        &mut report,
        docker.elapsed_s() > 1.25 * hostnet.elapsed_s(),
        "bridge Docker must clearly exceed host-network Docker".into(),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_mechanism_holds() {
        let rows = run(&QueryEngine::new(), 1);
        assert_eq!(rows.len(), 5);
        let report = check_shape(&rows);
        assert!(report.is_empty(), "{report:#?}");
        let t = table(&rows);
        assert_eq!(t.rows.len(), 5);
        assert!(t.to_ascii().contains("net=host"));
    }

    #[test]
    fn trace_view_agrees_with_engine_result() {
        // the table is read from the trace; the engine result is a roll-up
        // of the same spans — single analytic track, so they agree exactly
        for b in run(&QueryEngine::new(), 2) {
            assert!(!b.trace.is_empty(), "{}", b.label);
            assert_eq!(
                b.seconds(SpanCategory::Compute),
                b.result.compute.as_secs_f64(),
                "{}",
                b.label
            );
            assert_eq!(b.elapsed_s(), b.result.elapsed.as_secs_f64(), "{}", b.label);
            assert_eq!(
                b.comm_s(),
                b.result.comm.total().as_secs_f64(),
                "{}",
                b.label
            );
        }
    }
}
