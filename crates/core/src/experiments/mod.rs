//! The paper's evaluation, experiment by experiment.
//!
//! Each submodule regenerates one figure or table:
//!
//! | module | paper artifact |
//! |---|---|
//! | [`fig1`] | Fig. 1 — containerization solutions on Lenox |
//! | [`fig2`] | Fig. 2 — portability on CTE-POWER |
//! | [`fig3`] | Fig. 3 — scalability on MareNostrum4 |
//! | [`tables`] | Eval §B.1 deployment overhead / image size / execution time, and §B.2 cross-architecture portability |
//! | [`ext_io`] | the paper's future-work item: container I/O & distributed storage (image-startup storms) |
//! | [`ext_breakdown`] | extension: compute/halo/allreduce decomposition + the Docker `--net=host` mechanism ablation |
//! | [`ext_weak`] | extension: weak scaling of the FSI case at fixed cells/rank |
//! | [`ext_campaign`] | extension: multi-job campaign turnaround under FIFO + EASY backfill, with cross-job cache effects |
//! | [`ext_open_system`] | extension: open-system campaign — Poisson arrivals, Zipf job mix, per-runtime queue-wait/slowdown tails under deployment storms |
//! | [`ext_oversub`] | extension: spine oversubscription sweep with the per-link utilization table |
//! | [`ext_degraded`] | extension: one degraded node uplink, end-to-end robustness |
//! | [`ext_locality`] | extension: block vs round-robin placement against halo locality |
//! | [`validation`] | engine cross-validation: message-level DES vs closed-form analytic over a configuration matrix |
//!
//! Every experiment exposes `run(lab, seeds)` — routed through one shared
//! [`QueryEngine`](crate::lab::QueryEngine), so repeated configurations
//! across experiments and trace captures share cached plans — returning
//! structured data, and a `check_shape(&data)` that encodes the paper's
//! qualitative claims; the integration tests and the reproduction binary
//! both call them. Most also expose a `traces(..)` provider returning captured
//! [`TraceBuffer`](harborsim_des::trace::TraceBuffer)s for representative
//! configurations, which `reproduce_all --trace <dir>` exports as
//! chrome://tracing JSON via [`crate::traceviz`].

pub mod ext_breakdown;
pub mod ext_campaign;
pub mod ext_degraded;
pub mod ext_io;
pub mod ext_locality;
pub mod ext_open_system;
pub mod ext_oversub;
pub mod ext_weak;
pub mod fig1;
pub mod fig2;
pub mod fig3;
pub mod tables;
pub mod validation;

/// Outcome of a shape check: empty = all claims hold.
pub type ShapeReport = Vec<String>;

/// Helper: push a message if `cond` fails.
pub(crate) fn expect(report: &mut ShapeReport, cond: bool, msg: String) {
    if !cond {
        report.push(msg);
    }
}

/// Helper for the per-experiment `traces()` providers: resolve `scenario`
/// through the lab (hitting plans the figure sweeps already compiled) and
/// capture one seed's full trace under `label`.
pub(crate) fn capture(
    lab: &crate::lab::QueryEngine,
    label: &str,
    scenario: &crate::scenario::Scenario,
    seed: u64,
) -> (String, harborsim_des::trace::TraceBuffer) {
    let plan = lab.plan(scenario).expect("trace scenario compiles");
    (label.to_string(), plan.capture_trace(seed))
}

/// Compile a committed experiment script and take its (single) campaign.
/// The `.hsim` files live next to their runners and are checked in; a
/// script that fails to compile is a build artifact gone bad, so this
/// panics rather than propagating.
pub(crate) fn load_campaign(src: &str) -> crate::script::CompiledCampaign {
    let mut compiled =
        crate::script::compile_str(src).expect("committed experiment script compiles");
    assert_eq!(
        compiled.campaigns.len(),
        1,
        "experiment scripts hold exactly one campaign"
    );
    compiled.campaigns.remove(0)
}

/// Run a two-sweep campaign grid as one lab batch and chunk it into
/// figure series: the outer sweep's labels name the series, `x_of` maps
/// each run's scenario to its x coordinate.
pub(crate) fn campaign_series(
    lab: &crate::lab::QueryEngine,
    seeds: &[u64],
    campaign: crate::script::CompiledCampaign,
    x_of: impl Fn(&crate::scenario::Scenario) -> f64,
) -> Vec<crate::report::Series> {
    let inner: usize = campaign.sweep_lens[1..].iter().product();
    let mut labels = Vec::with_capacity(campaign.runs.len());
    let mut xs = Vec::with_capacity(campaign.runs.len());
    let mut scenarios = Vec::with_capacity(campaign.runs.len());
    for run in campaign.runs {
        labels.push(run.labels[0].clone());
        xs.push(x_of(&run.scenario));
        scenarios.push(run.scenario);
    }
    let means = lab
        .handle(crate::lab::LabRequest::batch(scenarios, seeds))
        .means();
    labels
        .chunks(inner)
        .zip(xs.chunks(inner).zip(means.chunks(inner)))
        .map(|(labels, (xs, ys))| {
            crate::report::Series::new(
                &labels[0],
                xs.iter().copied().zip(ys.iter().copied()).collect(),
            )
        })
        .collect()
}

/// Capture one trace per outer-sweep value of a campaign, at inner grid
/// index `inner_idx` (the representative configuration).
pub(crate) fn campaign_traces(
    lab: &crate::lab::QueryEngine,
    campaign: &crate::script::CompiledCampaign,
    inner_idx: usize,
    seed: u64,
) -> Vec<(String, harborsim_des::trace::TraceBuffer)> {
    let inner: usize = campaign.sweep_lens[1..].iter().product();
    campaign
        .runs
        .iter()
        .enumerate()
        .filter(|(i, _)| i % inner == inner_idx)
        .map(|(_, run)| capture(lab, &run.labels[0], &run.scenario, seed))
        .collect()
}
