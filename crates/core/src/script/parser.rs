//! Recursive-descent parser: spanned tokens to the [`ast`](crate::script::ast).
//!
//! The grammar is keyword-directed — every statement starts with a word —
//! so one token of lookahead suffices and no statement terminators are
//! needed. All diagnostics are [`ScriptError`]s (stage `Parse`) carrying
//! the span of the offending token.

use crate::script::ast::{
    Atom, Campaign, EngineSpec, EnvSpec, ExperimentsSpec, Item, PlacementSpec, Script, SeedsSpec,
    Setting, Sweep, SweepPoint, SweepValues,
};
use crate::script::lexer::{lex, Tok, Token};
use crate::script::{ScriptError, Span, Spanned};

/// Parse `src` into a [`Script`].
///
/// # Errors
/// [`ScriptError`] (stage `Lex` or `Parse`) with the offending position.
pub fn parse(src: &str) -> Result<Script, ScriptError> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let mut items = Vec::new();
    while !p.at_end() {
        items.push(p.item()?);
    }
    Ok(Script { items })
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    /// Span of the next token, or of the end of input.
    fn here(&self) -> Span {
        match self.peek() {
            Some(t) => t.span,
            None => self
                .tokens
                .last()
                .map(|t| t.span)
                .unwrap_or(Span { line: 1, col: 1 }),
        }
    }

    fn next(&mut self, what: &str) -> Result<Token, ScriptError> {
        let span = self.here();
        match self.tokens.get(self.pos) {
            Some(t) => {
                self.pos += 1;
                Ok(t.clone())
            }
            None => Err(ScriptError::parse(
                span,
                format!("expected {what}, found end of script"),
            )),
        }
    }

    fn word(&mut self, what: &str) -> Result<(String, Span), ScriptError> {
        let t = self.next(what)?;
        match t.tok {
            Tok::Word(w) => Ok((w, t.span)),
            other => Err(ScriptError::parse(
                t.span,
                format!("expected {what}, found {other}"),
            )),
        }
    }

    fn int(&mut self, what: &str) -> Result<(u64, Span), ScriptError> {
        let t = self.next(what)?;
        match t.tok {
            Tok::Int(n) => Ok((n, t.span)),
            other => Err(ScriptError::parse(
                t.span,
                format!("expected {what}, found {other}"),
            )),
        }
    }

    /// A float literal; a bare integer is accepted and widened (`taper 1`
    /// means `taper 1.0`).
    fn number(&mut self, what: &str) -> Result<(f64, Span), ScriptError> {
        let t = self.next(what)?;
        match t.tok {
            Tok::Float(x) => Ok((x, t.span)),
            Tok::Int(n) => Ok((n as f64, t.span)),
            other => Err(ScriptError::parse(
                t.span,
                format!("expected {what}, found {other}"),
            )),
        }
    }

    fn string(&mut self, what: &str) -> Result<(String, Span), ScriptError> {
        let t = self.next(what)?;
        match t.tok {
            Tok::Str(s) => Ok((s, t.span)),
            other => Err(ScriptError::parse(
                t.span,
                format!("expected {what}, found {other}"),
            )),
        }
    }

    fn expect(&mut self, tok: Tok, what: &str) -> Result<Span, ScriptError> {
        let t = self.next(what)?;
        if t.tok == tok {
            Ok(t.span)
        } else {
            Err(ScriptError::parse(
                t.span,
                format!("expected {what}, found {}", t.tok),
            ))
        }
    }

    fn eat(&mut self, tok: &Tok) -> bool {
        if self.peek().map(|t| &t.tok) == Some(tok) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn peek_int(&self) -> bool {
        matches!(self.peek().map(|t| &t.tok), Some(Tok::Int(_)))
    }

    fn peek_word(&self, w: &str) -> bool {
        matches!(self.peek().map(|t| &t.tok), Some(Tok::Word(word)) if word == w)
    }

    /// One or more integer literals (greedy).
    fn int_list(&mut self, what: &str) -> Result<Vec<u64>, ScriptError> {
        let mut out = vec![self.int(what)?.0];
        while self.peek_int() {
            out.push(self.int(what)?.0);
        }
        Ok(out)
    }

    fn item(&mut self) -> Result<Spanned<Item>, ScriptError> {
        let (word, span) =
            self.word("a directive (seeds, taper, shards, trace, experiments, campaign)")?;
        let item = match word.as_str() {
            "seeds" => Item::Seeds(self.seeds_spec()?),
            "taper" => Item::Taper(self.number("a taper value")?.0),
            "shards" => Item::Shards(self.int("a shard count")?.0),
            "trace" => Item::Trace(self.string("a quoted trace directory")?.0),
            "experiments" => Item::Experiments(self.experiments_spec()?),
            "campaign" => Item::Campaign(self.campaign()?),
            other => {
                return Err(ScriptError::parse(
                    span,
                    format!(
                        "unknown directive `{other}` (expected seeds, taper, shards, trace, experiments, or campaign)"
                    ),
                ))
            }
        };
        Ok(Spanned::new(item, span))
    }

    fn seeds_spec(&mut self) -> Result<SeedsSpec, ScriptError> {
        if self.peek_word("quick") {
            self.pos += 1;
            return Ok(SeedsSpec::Quick);
        }
        if self.peek_word("default") {
            self.pos += 1;
            return Ok(SeedsSpec::Default);
        }
        Ok(SeedsSpec::List(self.int_list(
            "a seed protocol (quick, default, or seed numbers)",
        )?))
    }

    fn experiments_spec(&mut self) -> Result<ExperimentsSpec, ScriptError> {
        if self.peek_word("all") {
            self.pos += 1;
            return Ok(ExperimentsSpec::All);
        }
        let mut names = Vec::new();
        let (first, span) = self.word("an experiment name (or `all`)")?;
        names.push(Spanned::new(first, span));
        // experiment names are words that are not directives or settings;
        // stop at the first word that starts something else
        while let Some(Token {
            tok: Tok::Word(w), ..
        }) = self.peek()
        {
            if is_keyword(w) {
                break;
            }
            let (name, span) = self.word("an experiment name")?;
            names.push(Spanned::new(name, span));
        }
        Ok(ExperimentsSpec::Named(names))
    }

    fn campaign(&mut self) -> Result<Campaign, ScriptError> {
        let (name, _) = self.string("a quoted campaign name")?;
        self.expect(Tok::LBrace, "`{` opening the campaign body")?;
        let mut body = Vec::new();
        loop {
            if self.eat(&Tok::RBrace) {
                break;
            }
            if self.at_end() {
                return Err(ScriptError::parse(
                    self.here(),
                    format!("campaign {name:?} is missing its closing `}}`"),
                ));
            }
            body.push(self.setting()?);
        }
        Ok(Campaign { name, body })
    }

    fn setting(&mut self) -> Result<Spanned<Setting>, ScriptError> {
        let (word, span) = self.word("a campaign setting")?;
        let setting = match word.as_str() {
            "cluster" => Setting::Cluster(self.word("a cluster name")?.0),
            "workload" => Setting::Workload(self.word("a workload name")?.0),
            "env" => Setting::Env(self.env_spec()?),
            "nodes" => Setting::Nodes(self.int("a node count")?.0),
            "rpn" => Setting::Rpn(self.int("ranks per node")?.0),
            "threads" => Setting::Threads(self.int("threads per rank")?.0),
            "engine" => Setting::Engine(self.engine_spec()?),
            "deploy" => Setting::Deploy,
            "placement" => Setting::Placement(self.placement_spec()?),
            "spine-taper" => Setting::SpineTaper(self.number("a taper value")?.0),
            "degrade-uplink" => {
                let (node, _) = self.int("a node index")?;
                let (factor, _) = self.number("a capacity factor")?;
                Setting::DegradeUplink(node, factor)
            }
            "seeds" => Setting::Seeds(self.int_list("seed numbers")?),
            "sweep" => Setting::Sweep(self.sweep()?),
            "arrivals" => {
                self.literal_word("poisson", "arrival process")?;
                self.keyed_number("rate", "an arrival rate (jobs per second)")
                    .map(Setting::Arrivals)?
            }
            "mix" => self.mix()?,
            "tenants" => Setting::Tenants(self.int("a tenant count")?.0),
            "horizon" => Setting::Horizon(self.number("a horizon in seconds")?.0),
            other => {
                return Err(ScriptError::parse(
                    span,
                    format!("unknown campaign setting `{other}`"),
                ))
            }
        };
        Ok(Spanned::new(setting, span))
    }

    /// Exactly the word `want`, e.g. the `poisson` in `arrivals poisson`.
    fn literal_word(&mut self, want: &str, what: &str) -> Result<Span, ScriptError> {
        let (word, span) = self.word(&format!("`{want}` ({what})"))?;
        if word == want {
            Ok(span)
        } else {
            Err(ScriptError::parse(
                span,
                format!("unknown {what} `{word}` (expected {want})"),
            ))
        }
    }

    /// A `key=<number>` pair, e.g. `rate=0.05` or `s=1.1`.
    fn keyed_number(&mut self, key: &str, what: &str) -> Result<f64, ScriptError> {
        self.literal_word(key, "parameter name")?;
        self.expect(Tok::Eq, &format!("`=` after `{key}`"))?;
        Ok(self.number(what)?.0)
    }

    /// `mix zipf s=<x> over <knob> [v, v, ...]` (the `mix` word is
    /// already consumed).
    fn mix(&mut self) -> Result<Setting, ScriptError> {
        self.literal_word("zipf", "mix distribution")?;
        let s = self.keyed_number("s", "a zipf exponent")?;
        self.literal_word("over", "keyword")?;
        let (knob, _) = self.word("a mix knob (nodes, workload, env)")?;
        let open = self.expect(Tok::LBracket, "`[` opening the mix values")?;
        let mut values = Vec::new();
        loop {
            if self.eat(&Tok::RBracket) {
                break;
            }
            values.push(self.atoms("a mix value", &[Tok::Comma, Tok::RBracket])?);
            if self.eat(&Tok::RBracket) {
                break;
            }
            self.expect(Tok::Comma, "`,` or `]` between mix values")?;
        }
        if values.is_empty() {
            return Err(ScriptError::parse(open, "a mix needs at least one value"));
        }
        Ok(Setting::Mix { s, knob, values })
    }

    fn env_spec(&mut self) -> Result<EnvSpec, ScriptError> {
        let (word, span) = self.word("a runtime (bare-metal, docker, shifter, singularity)")?;
        env_from_words(&word, || {
            self.word("a containment (self-contained, system-specific)")
        })
        .map_err(|msg| ScriptError::parse(span, msg))
    }

    fn engine_spec(&mut self) -> Result<EngineSpec, ScriptError> {
        let (word, span) = self.word("an engine (analytic, des)")?;
        match word.as_str() {
            "analytic" => Ok(EngineSpec::Analytic),
            "des" => {
                let steps = self.int("max steps per kind")?.0;
                let shards = if self.peek_word("shards") {
                    self.pos += 1;
                    self.int("a shard count")?.0
                } else {
                    0
                };
                Ok(EngineSpec::Des { steps, shards })
            }
            other => Err(ScriptError::parse(
                span,
                format!("unknown engine `{other}` (expected analytic or des)"),
            )),
        }
    }

    fn placement_spec(&mut self) -> Result<PlacementSpec, ScriptError> {
        let (word, span) = self.word("a placement (block, round-robin)")?;
        match word.as_str() {
            "block" => Ok(PlacementSpec::Block),
            "round-robin" => Ok(PlacementSpec::RoundRobin),
            other => Err(ScriptError::parse(
                span,
                format!("unknown placement `{other}` (expected block or round-robin)"),
            )),
        }
    }

    fn sweep(&mut self) -> Result<Sweep, ScriptError> {
        let mut knobs = Vec::new();
        if self.eat(&Tok::LParen) {
            loop {
                let (knob, span) = self.word("a knob name")?;
                knobs.push(Spanned::new(knob, span));
                if self.eat(&Tok::RParen) {
                    break;
                }
                self.expect(Tok::Comma, "`,` or `)` in the knob tuple")?;
            }
        } else {
            let (knob, span) = self.word("a knob name (or a parenthesized knob tuple)")?;
            knobs.push(Spanned::new(knob, span));
        }
        // values: either an inclusive integer range or a bracketed list
        if self.peek_int() {
            let (lo, span) = self.int("the range start")?;
            self.expect(Tok::DotDot, "`..` in the sweep range")?;
            let (hi, _) = self.int("the range end")?;
            if knobs.len() != 1 {
                return Err(ScriptError::parse(
                    span,
                    "a range sweep takes exactly one knob".to_string(),
                ));
            }
            if lo > hi {
                return Err(ScriptError::parse(
                    span,
                    format!("empty range {lo}..{hi} (start exceeds end)"),
                ));
            }
            return Ok(Sweep {
                knobs,
                values: SweepValues::Range(lo, hi),
            });
        }
        let open = self.expect(Tok::LBracket, "`[` opening the sweep values")?;
        let mut points = Vec::new();
        loop {
            if self.eat(&Tok::RBracket) {
                break;
            }
            points.push(self.sweep_point(knobs.len())?);
            if self.eat(&Tok::RBracket) {
                break;
            }
            self.expect(Tok::Comma, "`,` or `]` between sweep values")?;
        }
        if points.is_empty() {
            return Err(ScriptError::parse(open, "a sweep needs at least one value"));
        }
        Ok(Sweep {
            knobs,
            values: SweepValues::List(points),
        })
    }

    fn sweep_point(&mut self, knob_count: usize) -> Result<Spanned<SweepPoint>, ScriptError> {
        let span = self.here();
        let parts = if self.eat(&Tok::LParen) {
            let mut parts = Vec::new();
            loop {
                parts.push(self.atoms("a value", &[Tok::Comma, Tok::RParen])?);
                if self.eat(&Tok::RParen) {
                    break;
                }
                self.expect(Tok::Comma, "`,` or `)` in the value tuple")?;
            }
            parts
        } else {
            vec![self.atoms("a value", &[Tok::Comma, Tok::RBracket])?]
        };
        if parts.len() != knob_count {
            return Err(ScriptError::parse(
                span,
                format!(
                    "this sweep names {knob_count} knob(s) but the value has {} part(s)",
                    parts.len()
                ),
            ));
        }
        let label = if self.peek_word("as") {
            self.pos += 1;
            Some(self.string("a quoted label after `as`")?.0)
        } else {
            None
        };
        Ok(Spanned::new(SweepPoint { parts, label }, span))
    }

    /// One or more atoms, up to (not consuming) any of `stops` or the
    /// reserved word `as`.
    fn atoms(&mut self, what: &str, stops: &[Tok]) -> Result<Vec<Atom>, ScriptError> {
        let mut out = Vec::new();
        loop {
            match self.peek() {
                Some(t) if stops.contains(&t.tok) => break,
                Some(Token {
                    tok: Tok::Word(w), ..
                }) if w == "as" => break,
                Some(Token { tok, span }) => {
                    let atom = match tok {
                        Tok::Int(n) => Atom::Int(*n),
                        Tok::Float(x) => Atom::Float(*x),
                        Tok::Word(w) => Atom::Word(w.clone()),
                        other => {
                            return Err(ScriptError::parse(
                                *span,
                                format!("expected {what}, found {other}"),
                            ))
                        }
                    };
                    out.push(atom);
                    self.pos += 1;
                }
                None => {
                    return Err(ScriptError::parse(
                        self.here(),
                        format!("expected {what}, found end of script"),
                    ))
                }
            }
        }
        if out.is_empty() {
            return Err(ScriptError::parse(self.here(), format!("expected {what}")));
        }
        Ok(out)
    }
}

/// Words that start a statement — the boundary tokens for greedy lists
/// like experiment-name sequences.
fn is_keyword(w: &str) -> bool {
    matches!(
        w,
        "seeds" | "taper" | "shards" | "trace" | "experiments" | "campaign"
    )
}

/// Resolve 1–2 words into an [`EnvSpec`]; `second` is only called when the
/// runtime is `singularity`.
pub(crate) fn env_from_words<E>(
    first: &str,
    second: impl FnOnce() -> Result<(String, Span), E>,
) -> Result<EnvSpec, String>
where
    E: Into<ScriptError>,
{
    match first {
        "bare-metal" => Ok(EnvSpec::BareMetal),
        "docker" => Ok(EnvSpec::Docker),
        "shifter" => Ok(EnvSpec::Shifter),
        "singularity" => {
            let (containment, _) = second().map_err(|e| e.into().msg)?;
            match containment.as_str() {
                "self-contained" => Ok(EnvSpec::SingularitySelfContained),
                "system-specific" => Ok(EnvSpec::SingularitySystemSpecific),
                other => Err(format!(
                    "unknown containment `{other}` (expected self-contained or system-specific)"
                )),
            }
        }
        other => Err(format!(
            "unknown runtime `{other}` (expected bare-metal, docker, shifter, or singularity)"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::script::ast::synth;
    use crate::script::ScriptStage;

    #[test]
    fn a_full_script_parses() {
        let script = parse(
            r#"
            # the whole front end in one script
            seeds quick
            taper 0.5
            trace "target/traces"
            experiments fig1 ext-locality
            campaign "demo" {
              cluster cte-power
              workload cfd-cte
              env singularity system-specific
              nodes 16
              rpn 40
              threads 1
              engine des 5
              deploy
              placement round-robin
              spine-taper 0.8
              degrade-uplink 3 0.25
              seeds 1 2 3
              sweep nodes 2..4
              sweep (rpn, threads) [(20, 2) as "20x2", (40, 1)]
              sweep env [bare-metal as "Bare-metal", singularity self-contained]
            }
            "#,
        )
        .expect("parses");
        assert_eq!(script.items.len(), 5);
        let campaign = script.campaigns().next().unwrap();
        assert_eq!(campaign.name, "demo");
        assert_eq!(campaign.body.len(), 15);
        let sweeps: Vec<&Sweep> = campaign
            .body
            .iter()
            .filter_map(|s| match &s.value {
                Setting::Sweep(sw) => Some(sw),
                _ => None,
            })
            .collect();
        assert_eq!(sweeps.len(), 3);
        assert_eq!(sweeps[0].values, SweepValues::Range(2, 4));
        assert_eq!(sweeps[1].knobs.len(), 2);
        match &sweeps[2].values {
            SweepValues::List(points) => {
                assert_eq!(points[0].value.label.as_deref(), Some("Bare-metal"));
                assert_eq!(points[1].value.label, None);
                assert_eq!(
                    points[1].value.parts,
                    vec![vec![
                        Atom::Word("singularity".into()),
                        Atom::Word("self-contained".into())
                    ]]
                );
            }
            other => panic!("expected a list, got {other:?}"),
        }
    }

    #[test]
    fn round_trip_through_the_pretty_printer() {
        let src = r#"
            seeds 7 8
            campaign "rt" {
              cluster lenox
              workload cfd-small
              spine-taper 0.5
              sweep env [docker as "Docker", bare-metal]
              sweep nodes 1..4
              sweep degrade-uplink [0 1.0, 0 0.5]
            }
        "#;
        let first = parse(src).expect("parses");
        let printed = first.to_string();
        let second = parse(&printed).expect("canonical text re-parses");
        assert_eq!(first, second, "round trip must be identity:\n{printed}");
    }

    #[test]
    fn open_campaign_directives_parse_and_round_trip() {
        let src = r#"
            campaign "open" {
              cluster lenox
              workload cfd-small
              arrivals poisson rate=0.05
              horizon 1200.0
              tenants 6
              mix zipf s=1.3 over nodes [1, 2, 4]
              mix zipf s=1.1 over env [docker, shifter, singularity self-contained]
            }
        "#;
        let first = parse(src).expect("parses");
        let campaign = first.campaigns().next().unwrap();
        assert_eq!(campaign.body.len(), 7);
        assert_eq!(campaign.body[2].value, Setting::Arrivals(0.05));
        assert_eq!(campaign.body[3].value, Setting::Horizon(1200.0));
        assert_eq!(campaign.body[4].value, Setting::Tenants(6));
        match &campaign.body[6].value {
            Setting::Mix { s, knob, values } => {
                assert_eq!(*s, 1.1);
                assert_eq!(knob, "env");
                assert_eq!(values.len(), 3);
                assert_eq!(
                    values[2],
                    vec![
                        Atom::Word("singularity".into()),
                        Atom::Word("self-contained".into())
                    ]
                );
            }
            other => panic!("expected a mix, got {other:?}"),
        }
        let printed = first.to_string();
        let second = parse(&printed).expect("canonical text re-parses");
        assert_eq!(first, second, "round trip must be identity:\n{printed}");
    }

    #[test]
    fn malformed_open_directives_are_rejected() {
        let e = parse("campaign \"x\" { arrivals uniform rate=0.1 }").unwrap_err();
        assert!(e.msg.contains("expected poisson"), "{e}");
        let e = parse("campaign \"x\" { arrivals poisson rate 0.1 }").unwrap_err();
        assert!(e.msg.contains("`=`"), "{e}");
        let e = parse("campaign \"x\" { mix zipf s=1.1 over nodes [] }").unwrap_err();
        assert!(e.msg.contains("at least one value"), "{e}");
        let e = parse("campaign \"x\" { mix normal s=1.1 over nodes [1] }").unwrap_err();
        assert!(e.msg.contains("expected zipf"), "{e}");
    }

    #[test]
    fn errors_carry_the_offending_span() {
        let e = parse("campaign \"x\" {\n  cluster lenox\n  wibble 3\n}").unwrap_err();
        assert_eq!(e.stage, ScriptStage::Parse);
        assert_eq!(e.span, Span { line: 3, col: 3 });
        assert!(e.msg.contains("wibble"), "{e}");
    }

    #[test]
    fn missing_close_brace_is_diagnosed() {
        let e = parse("campaign \"x\" { cluster lenox").unwrap_err();
        assert!(e.msg.contains("closing"), "{e}");
    }

    #[test]
    fn tuple_arity_is_checked() {
        let e = parse("campaign \"x\" { sweep (rpn, threads) [(2, 14), (4)] }").unwrap_err();
        assert!(e.msg.contains("2 knob(s)"), "{e}");
        let e = parse("campaign \"x\" { sweep nodes [] }").unwrap_err();
        assert!(e.msg.contains("at least one value"), "{e}");
    }

    #[test]
    fn bad_range_is_rejected() {
        let e = parse("campaign \"x\" { sweep nodes 4..2 }").unwrap_err();
        assert!(e.msg.contains("empty range"), "{e}");
        let e = parse("campaign \"x\" { sweep (a, b) 2..4 }").unwrap_err();
        assert!(e.msg.contains("exactly one knob"), "{e}");
    }

    #[test]
    fn taper_accepts_a_bare_integer() {
        let script = parse("taper 1").expect("parses");
        assert_eq!(script.items[0], synth(Item::Taper(1.0)));
    }
}
