//! AST → scenario grid: resolve names, expand sweeps, fingerprint.
//!
//! Compilation turns every campaign block into the cross product of its
//! sweeps (first sweep outermost — the env-outer/config-inner ordering
//! the figure runners chunk by), building a full
//! [`Scenario`] for each grid point. All
//! validation lives here — registry names, ranges, sweep knob/value
//! shapes — so the scenario builders' assertions can never fire on
//! script input; every rejection is a spanned
//! [`ScriptError`] (stage `Compile`).

use crate::lab::PlanKey;
use crate::open::{MixSpec, OpenSpec};
use crate::runner::default_seeds;
use crate::scenario::{EngineKind, Execution, Scenario};
use crate::script::ast::{
    Atom, Campaign, EngineSpec, EnvSpec, ExperimentsSpec, Item, PlacementSpec, Script, SeedsSpec,
    Setting, Sweep, SweepValues,
};
use crate::script::parser::parse;
use crate::script::{ScriptError, Span};
use crate::workloads;
use harborsim_alya::workload::AlyaCase;
use harborsim_hw::presets;
use harborsim_mpi::Placement;

/// One knob binding a sweep point applies: `(knob, atoms, span)`.
type KnobBind = (String, Vec<Atom>, Span);

/// One expanded sweep dimension: its labelled points, in source order.
type SweepDim = Vec<(String, Vec<KnobBind>)>;

/// The experiment names `experiments` may select, in `reproduce_all`'s
/// execution order.
pub const EXPERIMENT_NAMES: [&str; 13] = [
    "fig1",
    "fig2",
    "fig3",
    "tables",
    "validation",
    "ext-io",
    "ext-breakdown",
    "ext-campaign",
    "ext-weak",
    "ext-oversub",
    "ext-degraded",
    "ext-locality",
    "ext-open-system",
];

/// The cluster registry: canonical name, aliases, constructor.
const CLUSTERS: [(&str, &[&str]); 4] = [
    ("lenox", &[]),
    ("marenostrum4", &["mn4"]),
    ("cte-power", &["cte"]),
    ("thunderx", &[]),
];

/// The workload registry names.
const WORKLOADS: [&str; 6] = [
    "cfd-small",
    "cfd-lenox",
    "cfd-cte",
    "fsi-small",
    "fsi-mn4",
    "chain-halo",
];

/// A whole script, compiled: the run protocol plus one scenario grid per
/// campaign.
pub struct CompiledScript {
    /// Seeds each run repeats over (campaigns may override via their own
    /// `seeds` setting): `quick` → the first default seed, `default` or
    /// absent → the full default protocol.
    pub seeds: Vec<u64>,
    /// Engine-level spine-taper fallback (the `taper` directive — the
    /// script form of `--ablate-taper`/`--oversub`).
    pub taper: Option<f64>,
    /// DES shard-count fallback (the `shards` directive — the script form
    /// of `--shards`). Campaign runs whose engine directive did not pin
    /// its own count compile with this; 1 when absent.
    pub shards: u32,
    /// Trace output directory, if the script asks for traces.
    pub trace_dir: Option<String>,
    /// Which paper experiments to run, if the script selects any.
    pub experiments: Option<ExperimentsSpec>,
    /// One compiled grid per campaign block, in script order.
    pub campaigns: Vec<CompiledCampaign>,
}

impl std::fmt::Debug for CompiledScript {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Scenario boxes a trait object, so the grid renders as shape +
        // fingerprints rather than full scenarios
        f.debug_struct("CompiledScript")
            .field("seeds", &self.seeds)
            .field("taper", &self.taper)
            .field("shards", &self.shards)
            .field("trace_dir", &self.trace_dir)
            .field("experiments", &self.experiments)
            .field("campaigns", &self.campaigns)
            .finish()
    }
}

impl CompiledScript {
    /// Canonical [`PlanKey`] fingerprints of every run of every campaign,
    /// in grid order, under this script's taper fallback. A run whose
    /// workload opts out of memoization fingerprints as 0.
    pub fn fingerprints(&self) -> Vec<u64> {
        self.campaigns
            .iter()
            .flat_map(|c| c.runs.iter())
            .map(|run| run.fingerprint(self.taper))
            .collect()
    }
}

/// One campaign block, expanded to its scenario grid.
pub struct CompiledCampaign {
    /// The quoted campaign name.
    pub name: String,
    /// Campaign-level seed override, if present.
    pub seeds: Option<Vec<u64>>,
    /// Number of values in each sweep, in declaration order — the grid
    /// shape. `runs.len()` is their product; the first sweep is
    /// outermost.
    pub sweep_lens: Vec<usize>,
    /// Every grid point, first sweep outermost.
    pub runs: Vec<CompiledRun>,
}

impl std::fmt::Debug for CompiledCampaign {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompiledCampaign")
            .field("name", &self.name)
            .field("seeds", &self.seeds)
            .field("sweep_lens", &self.sweep_lens)
            .field(
                "runs",
                &self.runs.iter().map(|r| &r.labels).collect::<Vec<_>>(),
            )
            .finish()
    }
}

impl CompiledCampaign {
    /// This campaign's seeds, falling back to the script-level protocol.
    pub fn seeds_or<'a>(&'a self, fallback: &'a [u64]) -> &'a [u64] {
        self.seeds.as_deref().unwrap_or(fallback)
    }
}

/// One grid point: a runnable scenario plus its sweep labels.
pub struct CompiledRun {
    /// One label per sweep, in declaration order — the explicit
    /// `as "Label"` if given, otherwise the value's canonical rendering.
    pub labels: Vec<String>,
    /// The fully built scenario.
    pub scenario: Scenario,
}

impl CompiledRun {
    /// Canonical [`PlanKey`] fingerprint under `fallback_taper`, or 0 if
    /// the workload opted out of memoization.
    pub fn fingerprint(&self, fallback_taper: Option<f64>) -> u64 {
        PlanKey::of(&self.scenario, fallback_taper)
            .map(|key| key.fingerprint())
            .unwrap_or(0)
    }
}

/// Parse and compile in one step.
///
/// # Errors
/// [`ScriptError`] from whichever stage rejects the input.
pub fn compile_str(src: &str) -> Result<CompiledScript, ScriptError> {
    compile(&parse(src)?)
}

/// Compile a parsed [`Script`].
///
/// # Errors
/// [`ScriptError`] (stage `Compile`) naming the offending span.
pub fn compile(script: &Script) -> Result<CompiledScript, ScriptError> {
    let mut seeds = default_seeds().to_vec();
    let mut taper = None;
    let mut shards: u32 = 1;
    let mut trace_dir = None;
    let mut experiments = None;
    // pass 1 — directives, so a script-level `shards` reaches every
    // campaign no matter where it appears in the file
    for item in &script.items {
        match &item.value {
            Item::Seeds(spec) => seeds = resolve_seeds(spec, item.span)?,
            Item::Taper(t) => {
                check_fraction(*t, item.span, "taper")?;
                taper = Some(*t);
            }
            Item::Shards(n) => shards = checked_shards(*n, item.span)?,
            Item::Trace(dir) => trace_dir = Some(dir.clone()),
            Item::Experiments(spec) => {
                if let ExperimentsSpec::Named(names) = spec {
                    for name in names {
                        if !EXPERIMENT_NAMES.contains(&name.value.as_str()) {
                            return Err(ScriptError::compile(
                                name.span,
                                format!(
                                    "unknown experiment `{}` (known: {})",
                                    name.value,
                                    EXPERIMENT_NAMES.join(", ")
                                ),
                            ));
                        }
                    }
                }
                experiments = Some(spec.clone());
            }
            Item::Campaign(_) => {}
        }
    }
    // pass 2 — campaigns, compiled under the script-level shard fallback
    let mut campaigns = Vec::new();
    for item in &script.items {
        if let Item::Campaign(campaign) = &item.value {
            campaigns.push(compile_campaign(campaign, item.span, shards)?);
        }
    }
    Ok(CompiledScript {
        seeds,
        taper,
        shards,
        trace_dir,
        experiments,
        campaigns,
    })
}

fn resolve_seeds(spec: &SeedsSpec, span: Span) -> Result<Vec<u64>, ScriptError> {
    match spec {
        SeedsSpec::Quick => Ok(default_seeds()[..1].to_vec()),
        SeedsSpec::Default => Ok(default_seeds().to_vec()),
        SeedsSpec::List(list) => {
            if list.is_empty() {
                Err(ScriptError::compile(span, "empty seed list"))
            } else {
                Ok(list.clone())
            }
        }
    }
}

/// The per-run configuration sweeps mutate: plain data, cheap to clone,
/// turned into a [`Scenario`] only once the grid point is final.
#[derive(Clone)]
struct Cfg {
    cluster: Option<String>,
    workload: Option<String>,
    env: EnvSpec,
    nodes: u32,
    rpn: Option<u32>,
    threads: u32,
    engine: EngineKind,
    /// DES shard count; starts at the script-level fallback, overridden
    /// by an `engine des ... shards N` directive.
    shards: u32,
    deploy: bool,
    placement: Placement,
    spine_taper: Option<f64>,
    degraded: Vec<(u32, f64)>,
    open: OpenCfg,
}

/// The open-system directives of a campaign, collected before validation
/// assembles them into an [`OpenSpec`] (or rejects the combination).
#[derive(Clone, Default)]
struct OpenCfg {
    arrivals: Option<f64>,
    horizon: Option<f64>,
    tenants: Option<u32>,
    node_mix: Option<(f64, Vec<u32>)>,
    workload_mix: Option<(f64, Vec<String>)>,
    env_mix: Option<(f64, Vec<EnvSpec>)>,
}

impl Cfg {
    fn fresh(shards: u32) -> Cfg {
        Cfg {
            cluster: None,
            workload: None,
            env: EnvSpec::BareMetal,
            nodes: 1,
            rpn: None,
            threads: 1,
            engine: EngineKind::Analytic,
            shards,
            deploy: false,
            placement: Placement::Block,
            spine_taper: None,
            degraded: Vec::new(),
            open: OpenCfg::default(),
        }
    }
}

fn compile_campaign(
    campaign: &Campaign,
    span: Span,
    fallback_shards: u32,
) -> Result<CompiledCampaign, ScriptError> {
    let mut base = Cfg::fresh(fallback_shards);
    let mut seeds = None;
    let mut sweeps: Vec<(&Sweep, Span)> = Vec::new();
    for setting in &campaign.body {
        let at = setting.span;
        match &setting.value {
            Setting::Cluster(name) => {
                resolve_cluster(name, at)?;
                base.cluster = Some(name.clone());
            }
            Setting::Workload(name) => {
                resolve_workload(name, at)?;
                base.workload = Some(name.clone());
            }
            Setting::Env(env) => base.env = *env,
            Setting::Nodes(n) => base.nodes = checked_u32(*n, at, "nodes")?,
            Setting::Rpn(n) => base.rpn = Some(checked_u32(*n, at, "rpn")?),
            Setting::Threads(n) => base.threads = checked_u32(*n, at, "threads")?,
            Setting::Engine(spec) => {
                base.engine = engine_kind(spec, at)?;
                if let EngineSpec::Des { shards, .. } = spec {
                    if *shards != 0 {
                        base.shards = checked_shards(*shards, at)?;
                    }
                }
            }
            Setting::Deploy => base.deploy = true,
            Setting::Placement(p) => base.placement = placement(p),
            Setting::SpineTaper(t) => {
                check_fraction(*t, at, "spine-taper")?;
                base.spine_taper = Some(*t);
            }
            Setting::DegradeUplink(node, factor) => {
                let node = checked_u32(*node, at, "degraded node index")?;
                check_fraction(*factor, at, "degradation factor")?;
                if *factor < 1.0 {
                    base.degraded.push((node, *factor));
                }
            }
            Setting::Seeds(list) => {
                if list.is_empty() {
                    return Err(ScriptError::compile(at, "empty seed list"));
                }
                seeds = Some(list.clone());
            }
            Setting::Sweep(sweep) => sweeps.push((sweep, at)),
            Setting::Arrivals(rate) => {
                check_positive(*rate, at, "arrival rate")?;
                base.open.arrivals = Some(*rate);
            }
            Setting::Horizon(t) => {
                check_positive(*t, at, "horizon")?;
                base.open.horizon = Some(*t);
            }
            Setting::Tenants(n) => {
                base.open.tenants = Some(checked_u32(*n, at, "tenants")?);
            }
            Setting::Mix { s, knob, values } => apply_mix(&mut base.open, *s, knob, values, at)?,
        }
    }

    // expand each sweep to (label, [(knob, atoms)]) points
    let mut dims: Vec<SweepDim> = Vec::new();
    for (sweep, at) in &sweeps {
        for knob in &sweep.knobs {
            known_knob(&knob.value, knob.span)?;
        }
        let mut points = Vec::new();
        match &sweep.values {
            SweepValues::Range(lo, hi) => {
                let knob = &sweep.knobs[0];
                for n in *lo..=*hi {
                    points.push((
                        n.to_string(),
                        vec![(knob.value.clone(), vec![Atom::Int(n)], *at)],
                    ));
                }
            }
            SweepValues::List(list) => {
                for point in list {
                    let label = point
                        .value
                        .label
                        .clone()
                        .unwrap_or_else(|| point.value.default_label());
                    let binds = sweep
                        .knobs
                        .iter()
                        .zip(&point.value.parts)
                        .map(|(knob, atoms)| (knob.value.clone(), atoms.clone(), point.span))
                        .collect();
                    points.push((label, binds));
                }
            }
        }
        dims.push(points);
    }

    let sweep_lens: Vec<usize> = dims.iter().map(Vec::len).collect();
    let total: usize = sweep_lens.iter().product();
    let mut runs = Vec::with_capacity(total);
    for flat in 0..total {
        // odometer: first sweep outermost
        let mut rest = flat;
        let mut labels = Vec::with_capacity(dims.len());
        let mut cfg = base.clone();
        let mut picks = Vec::with_capacity(dims.len());
        for len in sweep_lens.iter().rev() {
            picks.push(rest % len);
            rest /= len;
        }
        picks.reverse();
        for (dim, &pick) in dims.iter().zip(&picks) {
            let (label, binds) = &dim[pick];
            labels.push(label.clone());
            for (knob, atoms, at) in binds {
                apply_knob(&mut cfg, knob, atoms, *at)?;
            }
        }
        runs.push(CompiledRun {
            labels,
            scenario: build_scenario(&cfg, span)?,
        });
    }
    Ok(CompiledCampaign {
        name: campaign.name.clone(),
        seeds,
        sweep_lens,
        runs,
    })
}

/// Knobs a sweep may vary.
const KNOBS: [&str; 9] = [
    "cluster",
    "workload",
    "env",
    "nodes",
    "rpn",
    "threads",
    "placement",
    "spine-taper",
    "degrade-uplink",
];

fn known_knob(knob: &str, span: Span) -> Result<(), ScriptError> {
    if KNOBS.contains(&knob) {
        Ok(())
    } else {
        Err(ScriptError::compile(
            span,
            format!("unknown sweep knob `{knob}` (known: {})", KNOBS.join(", ")),
        ))
    }
}

fn apply_knob(cfg: &mut Cfg, knob: &str, atoms: &[Atom], at: Span) -> Result<(), ScriptError> {
    match knob {
        "cluster" => {
            let name = one_word(atoms, at, "a cluster name")?;
            resolve_cluster(&name, at)?;
            cfg.cluster = Some(name);
        }
        "workload" => {
            let name = one_word(atoms, at, "a workload name")?;
            resolve_workload(&name, at)?;
            cfg.workload = Some(name);
        }
        "env" => cfg.env = env_from_atoms(atoms, at)?,
        "nodes" => cfg.nodes = one_u32(atoms, at, "nodes")?,
        "rpn" => cfg.rpn = Some(one_u32(atoms, at, "rpn")?),
        "threads" => cfg.threads = one_u32(atoms, at, "threads")?,
        "placement" => {
            cfg.placement = match one_word(atoms, at, "a placement")?.as_str() {
                "block" => Placement::Block,
                "round-robin" => Placement::RoundRobin,
                other => {
                    return Err(ScriptError::compile(
                        at,
                        format!("unknown placement `{other}` (expected block or round-robin)"),
                    ))
                }
            }
        }
        "spine-taper" => {
            let t = one_number(atoms, at, "a taper value")?;
            check_fraction(t, at, "spine-taper")?;
            cfg.spine_taper = Some(t);
        }
        "degrade-uplink" => {
            // a `(node, factor)` pair as two space-separated atoms; a
            // factor of 1.0 is the healthy fabric (no entry), so a sweep
            // can include the baseline as a grid point
            let [node, factor] = atoms else {
                return Err(ScriptError::compile(
                    at,
                    "degrade-uplink takes a node index and a capacity factor",
                ));
            };
            let node = match node {
                Atom::Int(n) => checked_u32(*n, at, "degraded node index")?,
                other => {
                    return Err(ScriptError::compile(
                        at,
                        format!("expected a node index, found `{other}`"),
                    ))
                }
            };
            let factor = atom_number(factor, at, "a capacity factor")?;
            check_fraction(factor, at, "degradation factor")?;
            cfg.degraded = if factor < 1.0 {
                vec![(node, factor)]
            } else {
                Vec::new()
            };
        }
        _ => unreachable!("knob names are checked by known_knob"),
    }
    Ok(())
}

fn build_scenario(cfg: &Cfg, span: Span) -> Result<Scenario, ScriptError> {
    let cluster_name = cfg.cluster.as_deref().ok_or_else(|| {
        ScriptError::compile(span, "campaign needs a `cluster` (set it or sweep it)")
    })?;
    let workload_name = cfg.workload.as_deref().ok_or_else(|| {
        ScriptError::compile(span, "campaign needs a `workload` (set it or sweep it)")
    })?;
    let cluster = resolve_cluster(cluster_name, span)?;
    let case = resolve_workload(workload_name, span)?;
    let ranks_per_node = cfg.rpn.unwrap_or_else(|| cluster.node.cores());
    for &(node, _) in &cfg.degraded {
        if node >= cfg.nodes {
            return Err(ScriptError::compile(
                span,
                format!(
                    "degraded node {node} is outside the job ({} node(s))",
                    cfg.nodes
                ),
            ));
        }
    }
    let open = open_spec(cfg, workload_name, span)?;
    // built as a struct literal: the case is already boxed, and
    // Scenario::new would re-box the box and lose its memo key
    Ok(Scenario {
        cluster,
        case,
        env: execution(cfg.env),
        nodes: cfg.nodes,
        ranks_per_node,
        threads_per_rank: cfg.threads,
        engine: cfg.engine,
        deploy: cfg.deploy,
        placement: cfg.placement,
        spine_taper: cfg.spine_taper,
        degraded_uplinks: cfg.degraded.clone(),
        shards: cfg.shards,
        open,
    })
}

/// Apply one `mix` directive to the campaign's open configuration.
fn apply_mix(
    open: &mut OpenCfg,
    s: f64,
    knob: &str,
    values: &[Vec<Atom>],
    at: Span,
) -> Result<(), ScriptError> {
    check_positive(s, at, "zipf exponent")?;
    let duplicate =
        |knob: &str| ScriptError::compile(at, format!("this campaign already has a `{knob}` mix"));
    match knob {
        "nodes" => {
            if open.node_mix.is_some() {
                return Err(duplicate(knob));
            }
            let mut menu = Vec::with_capacity(values.len());
            for atoms in values {
                menu.push(one_u32(atoms, at, "nodes")?);
            }
            open.node_mix = Some((s, menu));
        }
        "workload" => {
            if open.workload_mix.is_some() {
                return Err(duplicate(knob));
            }
            let mut menu = Vec::with_capacity(values.len());
            for atoms in values {
                let name = one_word(atoms, at, "a workload name")?;
                resolve_workload(&name, at)?;
                menu.push(name);
            }
            open.workload_mix = Some((s, menu));
        }
        "env" => {
            if open.env_mix.is_some() {
                return Err(duplicate(knob));
            }
            let mut menu = Vec::with_capacity(values.len());
            for atoms in values {
                menu.push(env_from_atoms(atoms, at)?);
            }
            open.env_mix = Some((s, menu));
        }
        other => {
            return Err(ScriptError::compile(
                at,
                format!("unknown mix knob `{other}` (expected nodes, workload, or env)"),
            ))
        }
    }
    Ok(())
}

/// Ceiling on the expected job count (`rate × horizon`) of one open
/// campaign — far above any sensible study, low enough that a typo cannot
/// ask for millions of sampled jobs.
const MAX_EXPECTED_JOBS: f64 = 100_000.0;

/// Assemble the campaign's open directives into an [`OpenSpec`], filling
/// unmixed dimensions from the plain settings — or reject inconsistent
/// combinations.
fn open_spec(cfg: &Cfg, workload: &str, span: Span) -> Result<Option<OpenSpec>, ScriptError> {
    let o = &cfg.open;
    let Some(rate) = o.arrivals else {
        if o.horizon.is_some()
            || o.tenants.is_some()
            || o.node_mix.is_some()
            || o.workload_mix.is_some()
            || o.env_mix.is_some()
        {
            return Err(ScriptError::compile(
                span,
                "horizon/tenants/mix need `arrivals poisson rate=...` to open the campaign",
            ));
        }
        return Ok(None);
    };
    let Some(horizon) = o.horizon else {
        return Err(ScriptError::compile(
            span,
            "arrivals need a `horizon` (length of the submission window, seconds)",
        ));
    };
    if cfg.deploy {
        return Err(ScriptError::compile(
            span,
            "`deploy` and `arrivals` are mutually exclusive (open campaigns stage images themselves)",
        ));
    }
    let expected = rate * horizon;
    if expected > MAX_EXPECTED_JOBS {
        return Err(ScriptError::compile(
            span,
            format!(
                "arrivals sample {expected:.0} jobs on average (rate x horizon must stay at or below {MAX_EXPECTED_JOBS:.0})"
            ),
        ));
    }
    let node_mix = match &o.node_mix {
        Some((s, menu)) => MixSpec {
            s: *s,
            values: menu.clone(),
        },
        None => MixSpec::single(cfg.nodes),
    };
    let workload_mix = match &o.workload_mix {
        Some((s, menu)) => MixSpec {
            s: *s,
            values: menu.clone(),
        },
        None => MixSpec::single(workload.to_string()),
    };
    let env_mix = match &o.env_mix {
        Some((s, menu)) => MixSpec {
            s: *s,
            values: menu.iter().map(|e| execution(*e)).collect(),
        },
        None => MixSpec::single(execution(cfg.env)),
    };
    Ok(Some(OpenSpec {
        rate_per_s: rate,
        horizon_s: horizon,
        tenants: o.tenants.unwrap_or(1),
        node_mix,
        workload_mix,
        env_mix,
    }))
}

fn resolve_cluster(name: &str, span: Span) -> Result<harborsim_hw::ClusterSpec, ScriptError> {
    match name {
        "lenox" => Ok(presets::lenox()),
        "marenostrum4" | "mn4" => Ok(presets::marenostrum4()),
        "cte-power" | "cte" => Ok(presets::cte_power()),
        "thunderx" => Ok(presets::thunderx()),
        other => Err(ScriptError::compile(
            span,
            format!(
                "unknown cluster `{other}` (known: {})",
                CLUSTERS
                    .iter()
                    .map(|(name, _)| *name)
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
        )),
    }
}

fn resolve_workload(
    name: &str,
    span: Span,
) -> Result<Box<dyn AlyaCase + Send + Sync>, ScriptError> {
    match name {
        "cfd-small" => Ok(Box::new(workloads::artery_cfd_small())),
        "cfd-lenox" => Ok(Box::new(workloads::artery_cfd_lenox())),
        "cfd-cte" => Ok(Box::new(workloads::artery_cfd_cte())),
        "fsi-small" => Ok(Box::new(workloads::artery_fsi_small())),
        "fsi-mn4" => Ok(Box::new(workloads::artery_fsi_mn4())),
        "chain-halo" => Ok(Box::new(workloads::ChainHaloCase)),
        other => Err(ScriptError::compile(
            span,
            format!(
                "unknown workload `{other}` (known: {})",
                WORKLOADS.join(", ")
            ),
        )),
    }
}

fn execution(env: EnvSpec) -> Execution {
    match env {
        EnvSpec::BareMetal => Execution::bare_metal(),
        EnvSpec::Docker => Execution::docker(),
        EnvSpec::Shifter => Execution::shifter(),
        EnvSpec::SingularitySelfContained => Execution::singularity_self_contained(),
        EnvSpec::SingularitySystemSpecific => Execution::singularity_system_specific(),
    }
}

fn engine_kind(spec: &EngineSpec, span: Span) -> Result<EngineKind, ScriptError> {
    match spec {
        EngineSpec::Analytic => Ok(EngineKind::Analytic),
        EngineSpec::Des { steps, .. } => Ok(EngineKind::Des {
            max_steps_per_kind: checked_u32(*steps, span, "des steps")?,
        }),
    }
}

fn placement(spec: &PlacementSpec) -> Placement {
    match spec {
        PlacementSpec::Block => Placement::Block,
        PlacementSpec::RoundRobin => Placement::RoundRobin,
    }
}

fn env_from_atoms(atoms: &[Atom], span: Span) -> Result<EnvSpec, ScriptError> {
    let words: Vec<&str> = atoms
        .iter()
        .map(|a| match a {
            Atom::Word(w) => Ok(w.as_str()),
            other => Err(ScriptError::compile(
                span,
                format!("expected a runtime name, found `{other}`"),
            )),
        })
        .collect::<Result<_, _>>()?;
    match words.as_slice() {
        ["bare-metal"] => Ok(EnvSpec::BareMetal),
        ["docker"] => Ok(EnvSpec::Docker),
        ["shifter"] => Ok(EnvSpec::Shifter),
        ["singularity", "self-contained"] => Ok(EnvSpec::SingularitySelfContained),
        ["singularity", "system-specific"] => Ok(EnvSpec::SingularitySystemSpecific),
        ["singularity"] => Err(ScriptError::compile(
            span,
            "singularity needs a containment (self-contained or system-specific)",
        )),
        other => Err(ScriptError::compile(
            span,
            format!("unknown execution environment `{}`", other.join(" ")),
        )),
    }
}

fn check_positive(x: f64, span: Span, what: &str) -> Result<(), ScriptError> {
    if x.is_finite() && x > 0.0 {
        Ok(())
    } else {
        Err(ScriptError::compile(
            span,
            format!("{what} must be positive and finite, got {x:?}"),
        ))
    }
}

fn check_fraction(x: f64, span: Span, what: &str) -> Result<(), ScriptError> {
    if x > 0.0 && x <= 1.0 {
        Ok(())
    } else {
        Err(ScriptError::compile(
            span,
            format!("{what} must be in (0, 1], got {x:?}"),
        ))
    }
}

fn checked_shards(n: u64, span: Span) -> Result<u32, ScriptError> {
    if n == 0 {
        return Err(ScriptError::compile(span, "shards must be at least 1"));
    }
    checked_u32(n, span, "shards")
}

fn checked_u32(n: u64, span: Span, what: &str) -> Result<u32, ScriptError> {
    if n == 0 && (what == "nodes" || what == "rpn" || what == "threads" || what == "tenants") {
        return Err(ScriptError::compile(
            span,
            format!("{what} must be at least 1"),
        ));
    }
    u32::try_from(n)
        .map_err(|_| ScriptError::compile(span, format!("{what} {n} does not fit in 32 bits")))
}

fn one_word(atoms: &[Atom], span: Span, what: &str) -> Result<String, ScriptError> {
    match atoms {
        [Atom::Word(w)] => Ok(w.clone()),
        _ => Err(ScriptError::compile(span, format!("expected {what}"))),
    }
}

fn one_u32(atoms: &[Atom], span: Span, what: &str) -> Result<u32, ScriptError> {
    match atoms {
        [Atom::Int(n)] => checked_u32(*n, span, what),
        _ => Err(ScriptError::compile(
            span,
            format!("expected a single integer for {what}"),
        )),
    }
}

fn one_number(atoms: &[Atom], span: Span, what: &str) -> Result<f64, ScriptError> {
    match atoms {
        [atom] => atom_number(atom, span, what),
        _ => Err(ScriptError::compile(span, format!("expected {what}"))),
    }
}

fn atom_number(atom: &Atom, span: Span, what: &str) -> Result<f64, ScriptError> {
    match atom {
        Atom::Float(x) => Ok(*x),
        Atom::Int(n) => Ok(*n as f64),
        Atom::Word(w) => Err(ScriptError::compile(
            span,
            format!("expected {what}, found `{w}`"),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::script::ScriptStage;

    #[test]
    fn a_grid_expands_first_sweep_outermost() {
        let compiled = compile_str(
            r#"
            campaign "grid" {
              cluster cte-power
              workload cfd-cte
              rpn 40
              sweep env [bare-metal as "Bare", docker as "Docker"]
              sweep nodes [2, 4, 8]
            }
            "#,
        )
        .expect("compiles");
        let campaign = &compiled.campaigns[0];
        assert_eq!(campaign.sweep_lens, vec![2, 3]);
        assert_eq!(campaign.runs.len(), 6);
        let labels: Vec<&[String]> = campaign.runs.iter().map(|r| r.labels.as_slice()).collect();
        assert_eq!(labels[0], ["Bare".to_string(), "2".to_string()]);
        assert_eq!(labels[2], ["Bare".to_string(), "8".to_string()]);
        assert_eq!(labels[3], ["Docker".to_string(), "2".to_string()]);
        assert_eq!(campaign.runs[3].scenario.nodes, 2);
        assert_eq!(campaign.runs[5].scenario.nodes, 8);
        // every grid point fingerprints distinctly
        let prints = compiled.fingerprints();
        assert_eq!(prints.len(), 6);
        for (i, a) in prints.iter().enumerate() {
            assert_ne!(*a, 0);
            for b in &prints[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn defaults_match_the_scenario_builder() {
        let compiled =
            compile_str("campaign \"d\" { cluster lenox workload cfd-small }").expect("compiles");
        let scenario = &compiled.campaigns[0].runs[0].scenario;
        assert_eq!(scenario.nodes, 1);
        assert_eq!(scenario.ranks_per_node, 28, "rpn defaults to node cores");
        assert_eq!(scenario.threads_per_rank, 1);
        assert_eq!(compiled.seeds, default_seeds());
        let quick = compile_str("seeds quick").expect("compiles");
        assert_eq!(quick.seeds, default_seeds()[..1]);
    }

    #[test]
    fn degrade_factor_one_is_the_healthy_fabric() {
        let compiled = compile_str(
            r#"
            campaign "victim" {
              cluster cte-power workload cfd-cte nodes 16 rpn 40
              env singularity system-specific
              sweep degrade-uplink [3 1.0, 3 0.5]
            }
            "#,
        )
        .expect("compiles");
        let runs = &compiled.campaigns[0].runs;
        assert!(runs[0].scenario.degraded_uplinks.is_empty());
        assert_eq!(runs[1].scenario.degraded_uplinks, vec![(3, 0.5)]);

        let healthy = compile_str(
            r#"
            campaign "h" {
              cluster cte-power workload cfd-cte nodes 16 rpn 40
              env singularity system-specific
            }
            "#,
        )
        .expect("compiles");
        assert_eq!(
            runs[0].fingerprint(None),
            healthy.campaigns[0].runs[0].fingerprint(None),
            "factor 1.0 must be bit-identical to not degrading at all"
        );
    }

    #[test]
    fn aliases_resolve_to_the_same_cluster() {
        let a = compile_str("campaign \"a\" { cluster mn4 workload cfd-small }").unwrap();
        let b = compile_str("campaign \"b\" { cluster marenostrum4 workload cfd-small }").unwrap();
        assert_eq!(a.fingerprints(), b.fingerprints());
    }

    #[test]
    fn taper_fallback_feeds_the_fingerprint() {
        let src = "campaign \"t\" { cluster mn4 workload cfd-small nodes 2 }";
        let plain = compile_str(src).unwrap();
        let tapered = compile_str(&format!("taper 0.5\n{src}")).unwrap();
        assert_ne!(plain.fingerprints(), tapered.fingerprints());
        assert_eq!(tapered.taper, Some(0.5));
    }

    #[test]
    fn compile_rejections_are_spanned() {
        let cases = [
            ("campaign \"x\" { cluster nowhere }", "unknown cluster"),
            ("campaign \"x\" { workload nothing }", "unknown workload"),
            ("campaign \"x\" { cluster lenox }", "needs a `workload`"),
            ("campaign \"x\" { workload cfd-small }", "needs a `cluster`"),
            ("taper 1.5", "must be in (0, 1]"),
            ("taper 0.0", "must be in (0, 1]"),
            (
                "campaign \"x\" { cluster lenox workload cfd-small nodes 0 }",
                "at least 1",
            ),
            (
                "campaign \"x\" { cluster lenox workload cfd-small nodes 4294967296 }",
                "32 bits",
            ),
            (
                "campaign \"x\" { cluster lenox workload cfd-small degrade-uplink 4 0.5 }",
                "outside the job",
            ),
            (
                "campaign \"x\" { cluster lenox workload cfd-small sweep widgets [1, 2] }",
                "unknown sweep knob",
            ),
            (
                "campaign \"x\" { cluster lenox workload cfd-small sweep env [singularity] }",
                "needs a containment",
            ),
            ("experiments fig9", "unknown experiment"),
            ("shards 0", "shards must be at least 1"),
            (
                "campaign \"x\" { cluster lenox workload cfd-small engine des 5 shards 4294967296 }",
                "32 bits",
            ),
            (
                "campaign \"x\" { cluster lenox workload cfd-small horizon 100 }",
                "need `arrivals",
            ),
            (
                "campaign \"x\" { cluster lenox workload cfd-small arrivals poisson rate=0.1 }",
                "need a `horizon`",
            ),
            (
                "campaign \"x\" { cluster lenox workload cfd-small arrivals poisson rate=0.0 horizon 100 }",
                "must be positive",
            ),
            (
                "campaign \"x\" { cluster lenox workload cfd-small deploy arrivals poisson rate=0.1 horizon 100 }",
                "mutually exclusive",
            ),
            (
                "campaign \"x\" { cluster lenox workload cfd-small arrivals poisson rate=1000.0 horizon 1000 }",
                "at or below 100000",
            ),
            (
                "campaign \"x\" { cluster lenox workload cfd-small arrivals poisson rate=0.1 horizon 100 mix zipf s=1.1 over widgets [1, 2] }",
                "unknown mix knob",
            ),
            (
                "campaign \"x\" { cluster lenox workload cfd-small arrivals poisson rate=0.1 horizon 100 mix zipf s=1.1 over nodes [1] mix zipf s=1.2 over nodes [2] }",
                "already has a `nodes` mix",
            ),
            (
                "campaign \"x\" { cluster lenox workload cfd-small arrivals poisson rate=0.1 horizon 100 mix zipf s=1.1 over workload [nothing] }",
                "unknown workload",
            ),
            (
                "campaign \"x\" { cluster lenox workload cfd-small arrivals poisson rate=0.1 horizon 100 mix zipf s=1.1 over nodes [0] }",
                "at least 1",
            ),
            (
                "campaign \"x\" { cluster lenox workload cfd-small arrivals poisson rate=0.1 horizon 100 tenants 0 }",
                "at least 1",
            ),
        ];
        for (src, needle) in cases {
            let e = compile_str(src).unwrap_err();
            assert_eq!(e.stage, ScriptStage::Compile, "{src}");
            assert!(e.msg.contains(needle), "{src} -> {e}");
            assert_ne!(e.span, Span::ZERO, "{src} should carry a real span");
        }
    }

    #[test]
    fn an_open_campaign_compiles_with_defaults_for_unmixed_dimensions() {
        let compiled = compile_str(
            r#"
            campaign "open" {
              cluster lenox
              workload cfd-small
              nodes 2
              rpn 14
              arrivals poisson rate=0.05
              horizon 1200.0
              tenants 6
              mix zipf s=1.1 over env [docker, shifter]
            }
            "#,
        )
        .expect("compiles");
        let scenario = &compiled.campaigns[0].runs[0].scenario;
        let open = scenario.open.as_ref().expect("an open spec");
        assert_eq!(open.rate_per_s, 0.05);
        assert_eq!(open.horizon_s, 1200.0);
        assert_eq!(open.tenants, 6);
        // unmixed dimensions collapse to the plain settings
        assert_eq!(open.node_mix.values, vec![2]);
        assert_eq!(open.workload_mix.values, vec!["cfd-small".to_string()]);
        assert_eq!(open.env_mix.values.len(), 2);
        assert_eq!(open.env_mix.s, 1.1);

        // opening a campaign re-keys the plan
        let closed =
            compile_str("campaign \"c\" { cluster lenox workload cfd-small nodes 2 rpn 14 }")
                .expect("compiles");
        assert_ne!(compiled.fingerprints(), closed.fingerprints());
    }

    #[test]
    fn experiment_selection_is_validated_and_kept() {
        let compiled = compile_str("experiments fig1 ext-locality").unwrap();
        match compiled.experiments {
            Some(ExperimentsSpec::Named(names)) => {
                let names: Vec<_> = names.iter().map(|n| n.value.as_str()).collect();
                assert_eq!(names, ["fig1", "ext-locality"]);
            }
            other => panic!("expected named experiments, got {other:?}"),
        }
        let all = compile_str(&crate::script::flags_script(true, Some(1.0), 1)).unwrap();
        assert_eq!(all.experiments, Some(ExperimentsSpec::All));
        assert_eq!(all.taper, Some(1.0));
        assert_eq!(all.seeds, default_seeds()[..1]);
    }

    #[test]
    fn shards_directive_reaches_every_campaign_wherever_it_appears() {
        let src = r#"
            campaign "before" { cluster lenox workload cfd-small engine des 5 }
            shards 4
            campaign "after" { cluster lenox workload cfd-small engine des 5 }
            "#;
        let compiled = compile_str(src).unwrap();
        assert_eq!(compiled.shards, 4);
        for campaign in &compiled.campaigns {
            assert_eq!(
                campaign.runs[0].scenario.shards, 4,
                "{}: directive order must not matter",
                campaign.name
            );
        }
    }

    #[test]
    fn engine_pin_overrides_the_shards_fallback() {
        let compiled = compile_str(
            r#"
            shards 2
            campaign "inherit" { cluster lenox workload cfd-small engine des 5 }
            campaign "pinned" { cluster lenox workload cfd-small engine des 5 shards 8 }
            "#,
        )
        .unwrap();
        assert_eq!(compiled.campaigns[0].runs[0].scenario.shards, 2);
        assert_eq!(compiled.campaigns[1].runs[0].scenario.shards, 8);
        // no directive at all: the serial default
        let serial =
            compile_str("campaign \"s\" { cluster lenox workload cfd-small engine des 5 }")
                .unwrap();
        assert_eq!(serial.shards, 1);
        assert_eq!(serial.campaigns[0].runs[0].scenario.shards, 1);
    }

    #[test]
    fn shards_split_the_plan_key() {
        let serial =
            compile_str("campaign \"k\" { cluster lenox workload cfd-small engine des 5 }")
                .unwrap();
        let sharded = compile_str(
            "shards 4\ncampaign \"k\" { cluster lenox workload cfd-small engine des 5 }",
        )
        .unwrap();
        assert_ne!(
            serial.fingerprints(),
            sharded.fingerprints(),
            "shard count must re-key the plan"
        );
    }
}
