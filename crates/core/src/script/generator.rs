//! Deterministic random-script generator — the DSL's fuzz surface.
//!
//! [`random_script`] builds a valid-by-construction [`Script`] from an
//! [`RngStream`], so the property tests can drive
//! print → parse → compile → fingerprint over thousands of distinct
//! scripts with zero flakiness: the same seed always yields the same
//! script. Generated campaigns keep their sweep values pairwise distinct
//! within each dimension, so a correct compiler must produce pairwise
//! distinct plan-key fingerprints — a property the tests pin.
//!
//! [`mutate`] damages script *text* (still deterministically) to walk the
//! error paths: whatever the mutation produces, the pipeline must reject
//! it with a spanned [`ScriptError`](crate::script::ScriptError) or
//! compile it — never panic.

use crate::script::ast::{
    synth, Atom, Campaign, EngineSpec, EnvSpec, ExperimentsSpec, Item, PlacementSpec, Script,
    SeedsSpec, Setting, Sweep, SweepPoint, SweepValues,
};
use crate::script::compile::EXPERIMENT_NAMES;
use harborsim_des::RngStream;

const CLUSTERS: [&str; 4] = ["lenox", "marenostrum4", "cte-power", "thunderx"];
const WORKLOADS: [&str; 6] = [
    "cfd-small",
    "cfd-lenox",
    "cfd-cte",
    "fsi-small",
    "fsi-mn4",
    "chain-halo",
];
const ENVS: [EnvSpec; 5] = [
    EnvSpec::BareMetal,
    EnvSpec::Docker,
    EnvSpec::Shifter,
    EnvSpec::SingularitySelfContained,
    EnvSpec::SingularitySystemSpecific,
];

fn pick<'a, T>(rng: &mut RngStream, items: &'a [T]) -> &'a T {
    &items[rng.below(items.len() as u64) as usize]
}

/// A deterministic random script: up to three directives and 1–2
/// campaigns, each with 0–2 sweeps whose values are pairwise distinct
/// within a dimension. Always parses, always compiles.
pub fn random_script(rng: &mut RngStream) -> Script {
    let mut items = Vec::new();
    match rng.below(4) {
        0 => items.push(synth(Item::Seeds(SeedsSpec::Quick))),
        1 => items.push(synth(Item::Seeds(SeedsSpec::Default))),
        2 => items.push(synth(Item::Seeds(SeedsSpec::List(vec![
            rng.below(1000) + 1,
            rng.below(1000) + 1001,
        ])))),
        _ => {}
    }
    if rng.below(3) == 0 {
        items.push(synth(Item::Taper((rng.below(9) + 1) as f64 / 10.0)));
    }
    if rng.below(4) == 0 {
        items.push(synth(Item::Trace(format!("target/gen-{}", rng.below(100)))));
    }
    if rng.below(4) == 0 {
        items.push(synth(Item::Shards(rng.below(7) + 1)));
    }
    if rng.below(4) == 0 {
        let spec = if rng.below(2) == 0 {
            ExperimentsSpec::All
        } else {
            ExperimentsSpec::Named(vec![synth((*pick(rng, &EXPERIMENT_NAMES)).to_string())])
        };
        items.push(synth(Item::Experiments(spec)));
    }
    let campaigns = rng.below(2) + 1;
    for c in 0..campaigns {
        items.push(synth(Item::Campaign(random_campaign(rng, c))));
    }
    Script { items }
}

fn random_campaign(rng: &mut RngStream, idx: u64) -> Campaign {
    let mut body = Vec::new();
    body.push(synth(Setting::Cluster((*pick(rng, &CLUSTERS)).to_string())));
    body.push(synth(Setting::Workload(
        (*pick(rng, &WORKLOADS)).to_string(),
    )));
    // nodes first: a generated degrade-uplink must stay inside the job
    let nodes = rng.below(15) + 2;
    body.push(synth(Setting::Nodes(nodes)));
    if rng.below(2) == 0 {
        body.push(synth(Setting::Rpn(rng.below(47) + 1)));
    }
    if rng.below(3) == 0 {
        body.push(synth(Setting::Threads(rng.below(4) + 1)));
    }
    if rng.below(4) == 0 {
        body.push(synth(Setting::Env(*pick(rng, &ENVS))));
    }
    if rng.below(4) == 0 {
        body.push(synth(Setting::Placement(if rng.below(2) == 0 {
            PlacementSpec::Block
        } else {
            PlacementSpec::RoundRobin
        })));
    }
    if rng.below(4) == 0 {
        body.push(synth(Setting::SpineTaper((rng.below(9) + 1) as f64 / 10.0)));
    }
    if rng.below(5) == 0 {
        // node 0 stays inside the job even when a later nodes sweep
        // shrinks it
        body.push(synth(Setting::DegradeUplink(
            0,
            (rng.below(9) + 1) as f64 / 10.0,
        )));
    }
    if rng.below(4) == 0 {
        body.push(synth(Setting::Seeds(vec![rng.below(100) + 1])));
    }
    if rng.below(3) == 0 {
        // a des engine pin, with or without its own shard count (0 means
        // "inherit the top-level shards directive")
        body.push(synth(Setting::Engine(if rng.below(3) == 0 {
            EngineSpec::Analytic
        } else {
            EngineSpec::Des {
                steps: rng.below(6) + 2,
                shards: if rng.below(2) == 0 {
                    0
                } else {
                    rng.below(7) + 1
                },
            }
        })));
    }
    if rng.below(4) == 0 {
        // an open-system bundle: arrivals always brings its horizon, so
        // the generated script stays valid by construction (and the
        // expected job count stays far below the compile-time ceiling)
        body.push(synth(Setting::Arrivals((rng.below(20) + 1) as f64 / 100.0)));
        body.push(synth(Setting::Horizon(((rng.below(40) + 5) * 10) as f64)));
        if rng.below(2) == 0 {
            body.push(synth(Setting::Tenants(rng.below(8) + 1)));
        }
        if rng.below(2) == 0 {
            // 1/2/4 nodes fit every cluster preset
            body.push(synth(Setting::Mix {
                s: (rng.below(15) + 5) as f64 / 10.0,
                knob: "nodes".into(),
                values: vec![vec![Atom::Int(1)], vec![Atom::Int(2)], vec![Atom::Int(4)]],
            }));
        }
        if rng.below(2) == 0 {
            let count = rng.below(2) + 2;
            let offset = rng.below(ENVS.len() as u64);
            let values = (0..count)
                .map(|i| {
                    ENVS[((offset + i) % ENVS.len() as u64) as usize]
                        .words()
                        .split_whitespace()
                        .map(|w| Atom::Word(w.to_string()))
                        .collect()
                })
                .collect();
            body.push(synth(Setting::Mix {
                s: (rng.below(15) + 5) as f64 / 10.0,
                knob: "env".into(),
                values,
            }));
        }
    }
    for s in 0..rng.below(3) {
        body.push(synth(Setting::Sweep(random_sweep(rng, s))));
    }
    Campaign {
        name: format!("generated-{idx}"),
        body,
    }
}

fn random_sweep(rng: &mut RngStream, dim: u64) -> Sweep {
    // each arm keeps its values pairwise distinct within the dimension
    match rng.below(6) {
        0 => {
            let lo = rng.below(4) + 1;
            Sweep {
                knobs: vec![synth("nodes".to_string())],
                values: SweepValues::Range(lo, lo + rng.below(4) + 1),
            }
        }
        1 => {
            let base = rng.below(20) + 1;
            let points = (0..rng.below(3) + 2)
                .map(|i| labelled(rng, SweepPoint::single(vec![Atom::Int(base + i * 7)])))
                .collect();
            Sweep {
                knobs: vec![synth("rpn".to_string())],
                values: SweepValues::List(points),
            }
        }
        2 => {
            let count = rng.below(3) + 2;
            let offset = rng.below(ENVS.len() as u64);
            let points = (0..count)
                .map(|i| {
                    let env = ENVS[((offset + i) % ENVS.len() as u64) as usize];
                    let atoms = env
                        .words()
                        .split_whitespace()
                        .map(|w| Atom::Word(w.to_string()))
                        .collect();
                    labelled(rng, SweepPoint::single(atoms))
                })
                .collect();
            Sweep {
                knobs: vec![synth("env".to_string())],
                values: SweepValues::List(points),
            }
        }
        3 => Sweep {
            knobs: vec![synth("placement".to_string())],
            values: SweepValues::List(vec![
                labelled(rng, SweepPoint::single(vec![Atom::Word("block".into())])),
                labelled(
                    rng,
                    SweepPoint::single(vec![Atom::Word("round-robin".into())]),
                ),
            ]),
        },
        4 => {
            // node 0 is inside the job whatever the other dims pick
            let victim = 0;
            let points = [1.0, 0.5, 0.25]
                .iter()
                .take((rng.below(2) + 2) as usize)
                .map(|&factor| {
                    labelled(
                        rng,
                        SweepPoint::single(vec![Atom::Int(victim), Atom::Float(factor)]),
                    )
                })
                .collect();
            Sweep {
                knobs: vec![synth("degrade-uplink".to_string())],
                values: SweepValues::List(points),
            }
        }
        _ => {
            // a zipped two-knob sweep, fig1-style
            let points = (0..rng.below(2) + 2)
                .map(|i| {
                    let threads = 1 << i;
                    labelled(
                        rng,
                        SweepPoint {
                            parts: vec![
                                vec![Atom::Int(28 / threads + dim)],
                                vec![Atom::Int(threads)],
                            ],
                            label: None,
                        },
                    )
                })
                .collect();
            Sweep {
                knobs: vec![synth("rpn".to_string()), synth("threads".to_string())],
                values: SweepValues::List(points),
            }
        }
    }
}

fn labelled(rng: &mut RngStream, mut point: SweepPoint) -> crate::script::Spanned<SweepPoint> {
    if rng.below(3) == 0 {
        point.label = Some(format!("L{}", rng.below(10_000)));
    }
    synth(point)
}

/// Deterministically damage script text: truncate it, delete a span, or
/// splice in bytes from another position. The result may or may not be a
/// valid script — the property tests only require that the pipeline
/// never panics on it.
pub fn mutate(src: &str, rng: &mut RngStream) -> String {
    if src.is_empty() {
        return src.to_string();
    }
    let bytes: Vec<char> = src.chars().collect();
    let n = bytes.len() as u64;
    match rng.below(4) {
        0 => bytes[..rng.below(n) as usize].iter().collect(),
        1 => {
            let start = rng.below(n) as usize;
            let len = (rng.below(8) + 1) as usize;
            let end = (start + len).min(bytes.len());
            bytes[..start].iter().chain(&bytes[end..]).collect()
        }
        2 => {
            let at = rng.below(n) as usize;
            let from = rng.below(n) as usize;
            let len = ((rng.below(8) + 1) as usize).min(bytes.len() - from);
            let mut out: Vec<char> = bytes[..at].to_vec();
            out.extend(&bytes[from..from + len]);
            out.extend(&bytes[at..]);
            out.into_iter().collect()
        }
        _ => {
            let mut out = bytes;
            let at = rng.below(n) as usize;
            out[at] = *pick(rng, &['@', '.', '"', '}', ']', ')', '0', 'q']);
            out.into_iter().collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::script::{compile, parse};

    #[test]
    fn generated_scripts_are_deterministic() {
        let a = random_script(&mut RngStream::new(42).derive("gen"));
        let b = random_script(&mut RngStream::new(42).derive("gen"));
        assert_eq!(a, b);
        assert_eq!(a.to_string(), b.to_string());
    }

    #[test]
    fn generated_scripts_parse_and_compile() {
        for i in 0..50 {
            let mut rng = RngStream::new(0xD51).derive_idx(i);
            let script = random_script(&mut rng);
            let text = script.to_string();
            let reparsed = parse(&text).unwrap_or_else(|e| panic!("seed {i}: {e}\n{text}"));
            assert_eq!(script, reparsed, "seed {i} round trip\n{text}");
            let compiled = compile(&reparsed).unwrap_or_else(|e| panic!("seed {i}: {e}\n{text}"));
            assert!(!compiled.campaigns.is_empty());
        }
    }

    #[test]
    fn mutation_is_deterministic() {
        let src = "campaign \"x\" { cluster lenox workload cfd-small }";
        let a = mutate(src, &mut RngStream::new(7).derive("mut"));
        let b = mutate(src, &mut RngStream::new(7).derive("mut"));
        assert_eq!(a, b);
    }
}
