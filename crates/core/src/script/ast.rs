//! The syntax tree of `.hsim` scripts, plus the canonical pretty-printer.
//!
//! Equality between trees ignores source layout: positions live in
//! [`Spanned`] wrappers whose `PartialEq` compares only the value. The
//! `Display` impl on [`Script`] is the *canonical* rendering — printing a
//! parsed script and re-parsing the output yields an equal tree (the
//! round-trip property the test suite pins), which is also what makes the
//! deterministic script generator a fuzz surface: it builds trees, prints
//! them, and feeds the text back through the full pipeline.

use crate::script::{Span, Spanned};
use std::fmt;

/// A whole script: directives and campaign blocks, in source order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Script {
    /// Top-level items in the order they appeared.
    pub items: Vec<Spanned<Item>>,
}

/// One top-level statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    /// `seeds quick | seeds default | seeds 1 2 3` — the repetition
    /// protocol.
    Seeds(SeedsSpec),
    /// `taper 0.5` — the engine-level spine-taper fallback (the script
    /// equivalent of `reproduce_all --ablate-taper` / `--oversub`).
    Taper(f64),
    /// `shards 4` — the DES shard-count fallback (the script equivalent
    /// of `reproduce_all --shards`): campaigns whose engine directive did
    /// not pin its own shard count pick this up.
    Shards(u64),
    /// `trace "dir"` — export chrome://tracing JSON per experiment.
    Trace(String),
    /// `experiments all | experiments fig1 fig2` — which of the paper's
    /// experiments to regenerate.
    Experiments(ExperimentsSpec),
    /// `campaign "name" { ... }` — a scenario grid of this script's own.
    Campaign(Campaign),
}

/// The seed protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SeedsSpec {
    /// One seed — the `--quick` smoke protocol.
    Quick,
    /// The paper's five-repetition protocol.
    Default,
    /// Explicit seeds.
    List(Vec<u64>),
}

/// Which experiments a script selects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExperimentsSpec {
    /// The full suite.
    All,
    /// A named subset, in run order.
    Named(Vec<Spanned<String>>),
}

/// A campaign block: a name and its settings in source order. Plain
/// settings fix one knob; `sweep` settings add a grid dimension (first
/// sweep outermost).
#[derive(Debug, Clone, PartialEq)]
pub struct Campaign {
    /// Display name (also the figure/report id in generic runs).
    pub name: String,
    /// Body statements, in order.
    pub body: Vec<Spanned<Setting>>,
}

/// One campaign statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Setting {
    /// `cluster lenox`
    Cluster(String),
    /// `workload cfd-lenox`
    Workload(String),
    /// `env singularity self-contained`
    Env(EnvSpec),
    /// `nodes 4`
    Nodes(u64),
    /// `rpn 28` — MPI ranks per node.
    Rpn(u64),
    /// `threads 2` — OpenMP threads per rank.
    Threads(u64),
    /// `engine analytic | engine des 5`
    Engine(EngineSpec),
    /// `deploy` — also simulate image deployment.
    Deploy,
    /// `placement block | placement round-robin`
    Placement(PlacementSpec),
    /// `spine-taper 0.5` — pin this campaign's fabric taper.
    SpineTaper(f64),
    /// `degrade-uplink 3 0.5` — degrade node 3's uplink to half capacity.
    DegradeUplink(u64, f64),
    /// `seeds 1 2 3` — override the script-level protocol here only.
    Seeds(Vec<u64>),
    /// `sweep <knobs> <values>` — one grid dimension.
    Sweep(Sweep),
    /// `arrivals poisson rate=0.05` — turn the campaign into an
    /// open-system one: jobs arrive as a Poisson stream at this rate
    /// (jobs per simulated second).
    Arrivals(f64),
    /// `mix zipf s=1.1 over env [docker, shifter]` — one Zipf-weighted
    /// menu an open campaign samples per job (knob: `nodes`, `workload`,
    /// or `env`; most-popular value first).
    Mix {
        /// Zipf exponent.
        s: f64,
        /// Which per-job knob the menu feeds.
        knob: String,
        /// The menu values (multi-atom for `env` entries).
        values: Vec<Vec<Atom>>,
    },
    /// `tenants 6` — submitting tenants of an open campaign (image
    /// warmth is per tenant × runtime).
    Tenants(u64),
    /// `horizon 1200.0` — the open campaign's submission window, seconds.
    Horizon(f64),
}

/// A container runtime + containment choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnvSpec {
    /// `bare-metal`
    BareMetal,
    /// `docker`
    Docker,
    /// `shifter`
    Shifter,
    /// `singularity self-contained`
    SingularitySelfContained,
    /// `singularity system-specific`
    SingularitySystemSpecific,
}

/// Engine selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineSpec {
    /// `analytic`
    Analytic,
    /// `engine des <max-steps-per-kind> [shards <n>]` — `shards` is the
    /// DES shard count (0 = inherit the script-level `shards` directive).
    Des {
        /// Steps of each kind to actually simulate.
        steps: u64,
        /// Pinned shard count; 0 means "not pinned here".
        shards: u64,
    },
}

/// Rank layout over nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementSpec {
    /// `block`
    Block,
    /// `round-robin`
    RoundRobin,
}

/// A sweep: one or more knobs (zipped when parenthesized) and the values
/// they take, each value optionally labelled `as "..."` for legends.
#[derive(Debug, Clone, PartialEq)]
pub struct Sweep {
    /// Knob names; more than one means tuple values assign them together.
    pub knobs: Vec<Spanned<String>>,
    /// The dimension's values.
    pub values: SweepValues,
}

/// The values of one sweep dimension.
#[derive(Debug, Clone, PartialEq)]
pub enum SweepValues {
    /// `2..16` — inclusive integer range (single integer knob only).
    Range(u64, u64),
    /// `[v, v as "Label", (a, b), ...]`
    List(Vec<Spanned<SweepPoint>>),
}

/// One grid value: per-knob atom sequences (multi-atom for knobs like
/// `env` and `degrade-uplink`), plus an optional legend label.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// One atom sequence per swept knob.
    pub parts: Vec<Vec<Atom>>,
    /// `as "Label"` — the series/legend name this value contributes.
    pub label: Option<String>,
}

/// A bare value inside a sweep point.
#[derive(Debug, Clone, PartialEq)]
pub enum Atom {
    /// Unsigned integer.
    Int(u64),
    /// Float (printed with `{:?}` so it round-trips bit-exactly).
    Float(f64),
    /// Bare word (`docker`, `round-robin`, `self-contained`, ...).
    Word(String),
}

impl SweepPoint {
    /// An unlabelled single-knob point.
    pub fn single(atoms: Vec<Atom>) -> SweepPoint {
        SweepPoint {
            parts: vec![atoms],
            label: None,
        }
    }

    /// The label used when no `as "..."` was given: the value itself,
    /// rendered canonically (`"16"`, `"singularity self-contained"`,
    /// `"(2, 14)"`).
    pub fn default_label(&self) -> String {
        if self.parts.len() == 1 {
            fmt_atoms(&self.parts[0])
        } else {
            format!(
                "({})",
                self.parts
                    .iter()
                    .map(|p| fmt_atoms(p))
                    .collect::<Vec<_>>()
                    .join(", ")
            )
        }
    }
}

impl EnvSpec {
    /// The canonical source form.
    pub fn words(self) -> &'static str {
        match self {
            EnvSpec::BareMetal => "bare-metal",
            EnvSpec::Docker => "docker",
            EnvSpec::Shifter => "shifter",
            EnvSpec::SingularitySelfContained => "singularity self-contained",
            EnvSpec::SingularitySystemSpecific => "singularity system-specific",
        }
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Atom::Int(n) => write!(f, "{n}"),
            Atom::Float(x) => write!(f, "{x:?}"),
            Atom::Word(w) => f.write_str(w),
        }
    }
}

fn fmt_atoms(atoms: &[Atom]) -> String {
    atoms
        .iter()
        .map(Atom::to_string)
        .collect::<Vec<_>>()
        .join(" ")
}

fn fmt_ints(ints: &[u64]) -> String {
    ints.iter()
        .map(u64::to_string)
        .collect::<Vec<_>>()
        .join(" ")
}

impl fmt::Display for SweepPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.parts.len() == 1 {
            f.write_str(&fmt_atoms(&self.parts[0]))?;
        } else {
            write!(
                f,
                "({})",
                self.parts
                    .iter()
                    .map(|p| fmt_atoms(p))
                    .collect::<Vec<_>>()
                    .join(", ")
            )?;
        }
        if let Some(label) = &self.label {
            write!(f, " as {label:?}")?;
        }
        Ok(())
    }
}

impl fmt::Display for Sweep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sweep ")?;
        if self.knobs.len() == 1 {
            f.write_str(&self.knobs[0].value)?;
        } else {
            write!(
                f,
                "({})",
                self.knobs
                    .iter()
                    .map(|k| k.value.clone())
                    .collect::<Vec<_>>()
                    .join(", ")
            )?;
        }
        match &self.values {
            SweepValues::Range(lo, hi) => write!(f, " {lo}..{hi}"),
            SweepValues::List(points) => write!(
                f,
                " [{}]",
                points
                    .iter()
                    .map(|p| p.value.to_string())
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
        }
    }
}

impl fmt::Display for Setting {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Setting::Cluster(name) => write!(f, "cluster {name}"),
            Setting::Workload(name) => write!(f, "workload {name}"),
            Setting::Env(env) => write!(f, "env {}", env.words()),
            Setting::Nodes(n) => write!(f, "nodes {n}"),
            Setting::Rpn(n) => write!(f, "rpn {n}"),
            Setting::Threads(n) => write!(f, "threads {n}"),
            Setting::Engine(EngineSpec::Analytic) => f.write_str("engine analytic"),
            Setting::Engine(EngineSpec::Des { steps, shards: 0 }) => {
                write!(f, "engine des {steps}")
            }
            Setting::Engine(EngineSpec::Des { steps, shards }) => {
                write!(f, "engine des {steps} shards {shards}")
            }
            Setting::Deploy => f.write_str("deploy"),
            Setting::Placement(PlacementSpec::Block) => f.write_str("placement block"),
            Setting::Placement(PlacementSpec::RoundRobin) => f.write_str("placement round-robin"),
            Setting::SpineTaper(t) => write!(f, "spine-taper {t:?}"),
            Setting::DegradeUplink(node, factor) => {
                write!(f, "degrade-uplink {node} {factor:?}")
            }
            Setting::Seeds(seeds) => write!(f, "seeds {}", fmt_ints(seeds)),
            Setting::Sweep(sweep) => sweep.fmt(f),
            Setting::Arrivals(rate) => write!(f, "arrivals poisson rate={rate:?}"),
            Setting::Mix { s, knob, values } => write!(
                f,
                "mix zipf s={s:?} over {knob} [{}]",
                values
                    .iter()
                    .map(|v| fmt_atoms(v))
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
            Setting::Tenants(n) => write!(f, "tenants {n}"),
            Setting::Horizon(t) => write!(f, "horizon {t:?}"),
        }
    }
}

impl fmt::Display for Item {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Item::Seeds(SeedsSpec::Quick) => f.write_str("seeds quick"),
            Item::Seeds(SeedsSpec::Default) => f.write_str("seeds default"),
            Item::Seeds(SeedsSpec::List(seeds)) => write!(f, "seeds {}", fmt_ints(seeds)),
            Item::Taper(t) => write!(f, "taper {t:?}"),
            Item::Shards(n) => write!(f, "shards {n}"),
            Item::Trace(dir) => write!(f, "trace {dir:?}"),
            Item::Experiments(ExperimentsSpec::All) => f.write_str("experiments all"),
            Item::Experiments(ExperimentsSpec::Named(names)) => write!(
                f,
                "experiments {}",
                names
                    .iter()
                    .map(|n| n.value.clone())
                    .collect::<Vec<_>>()
                    .join(" ")
            ),
            Item::Campaign(c) => {
                writeln!(f, "campaign {:?} {{", c.name)?;
                for setting in &c.body {
                    writeln!(f, "  {}", setting.value)?;
                }
                f.write_str("}")
            }
        }
    }
}

impl fmt::Display for Script {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for item in &self.items {
            writeln!(f, "{}", item.value)?;
        }
        Ok(())
    }
}

impl Script {
    /// The campaigns of the script, in order.
    pub fn campaigns(&self) -> impl Iterator<Item = &Campaign> {
        self.items.iter().filter_map(|item| match &item.value {
            Item::Campaign(c) => Some(c),
            _ => None,
        })
    }
}

/// Shorthand for building synthesized (span-free) items in tests and the
/// generator.
pub fn synth<T>(value: T) -> Spanned<T> {
    Spanned::new(value, Span::ZERO)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_printing_is_canonical() {
        let script = Script {
            items: vec![
                synth(Item::Seeds(SeedsSpec::Quick)),
                synth(Item::Taper(0.5)),
                synth(Item::Campaign(Campaign {
                    name: "demo".into(),
                    body: vec![
                        synth(Setting::Cluster("lenox".into())),
                        synth(Setting::Workload("cfd-small".into())),
                        synth(Setting::Env(EnvSpec::SingularitySelfContained)),
                        synth(Setting::Sweep(Sweep {
                            knobs: vec![synth("nodes".into())],
                            values: SweepValues::Range(2, 4),
                        })),
                        synth(Setting::Sweep(Sweep {
                            knobs: vec![synth("rpn".into()), synth("threads".into())],
                            values: SweepValues::List(vec![
                                synth(SweepPoint {
                                    parts: vec![vec![Atom::Int(2)], vec![Atom::Int(14)]],
                                    label: Some("2x14".into()),
                                }),
                                synth(SweepPoint {
                                    parts: vec![vec![Atom::Int(4)], vec![Atom::Int(7)]],
                                    label: None,
                                }),
                            ]),
                        })),
                    ],
                })),
            ],
        };
        let text = script.to_string();
        assert_eq!(
            text,
            "seeds quick\n\
             taper 0.5\n\
             campaign \"demo\" {\n  \
               cluster lenox\n  \
               workload cfd-small\n  \
               env singularity self-contained\n  \
               sweep nodes 2..4\n  \
               sweep (rpn, threads) [(2, 14) as \"2x14\", (4, 7)]\n\
             }\n"
        );
    }

    #[test]
    fn open_campaign_settings_render_canonically() {
        assert_eq!(
            Setting::Arrivals(0.05).to_string(),
            "arrivals poisson rate=0.05"
        );
        assert_eq!(
            Setting::Mix {
                s: 1.1,
                knob: "env".into(),
                values: vec![
                    vec![Atom::Word("docker".into())],
                    vec![
                        Atom::Word("singularity".into()),
                        Atom::Word("self-contained".into())
                    ],
                ],
            }
            .to_string(),
            "mix zipf s=1.1 over env [docker, singularity self-contained]"
        );
        assert_eq!(Setting::Tenants(6).to_string(), "tenants 6");
        assert_eq!(Setting::Horizon(1200.0).to_string(), "horizon 1200.0");
    }

    #[test]
    fn default_labels_render_the_value() {
        assert_eq!(
            SweepPoint::single(vec![Atom::Int(16)]).default_label(),
            "16"
        );
        assert_eq!(
            SweepPoint::single(vec![
                Atom::Word("singularity".into()),
                Atom::Word("self-contained".into())
            ])
            .default_label(),
            "singularity self-contained"
        );
        let tuple = SweepPoint {
            parts: vec![vec![Atom::Int(2)], vec![Atom::Float(0.5)]],
            label: None,
        };
        assert_eq!(tuple.default_label(), "(2, 0.5)");
    }
}
