//! The scenario DSL: campaign scripts compiled to canonical plan keys.
//!
//! A `.hsim` script is a compact text description of a measurement
//! campaign — which cluster, which workload, which container runtime,
//! the job shape, the fabric knobs, the seeds, and sweeps over any of
//! them. Scripts are *data*: they compile into the same
//! [`Scenario`](crate::scenario::Scenario) builders every hand-written
//! experiment uses, fingerprint into the same canonical
//! [`PlanKey`](crate::lab::PlanKey)s, and execute through the same
//! [`QueryEngine`](crate::lab::QueryEngine)/plan-cache path — so a
//! campaign that used to be a Rust closure is now one committed file.
//!
//! The pipeline is the classic four stages, all hand-rolled and fully
//! in-tree:
//!
//! 1. [`lexer`] — source text to spanned tokens (`line:col` on every
//!    token, `#` comments, quoted strings, `..` ranges);
//! 2. [`parser`] — tokens to the [`ast`] (directives and campaign
//!    blocks; every resolvable name keeps its span);
//! 3. [`ast`] — the syntax tree plus the pretty-printer, whose output
//!    re-parses to an identical tree (the round-trip property the tests
//!    pin);
//! 4. [`mod@compile`] — AST to [`compile::CompiledScript`]: sweeps expand
//!    to a scenario grid (first sweep outermost), names resolve against
//!    the cluster/workload registries, every knob is range-checked, and
//!    each grid point fingerprints to a [`PlanKey`](crate::lab::PlanKey).
//!
//! Failures at any stage are a [`ScriptError`] carrying the offending
//! span; [`HarborError`](crate::error::HarborError) wraps it, so script
//! problems flow through the same typed error surface as placement and
//! build failures.
//!
//! [`generator`] produces deterministic random scripts from an
//! [`RngStream`](harborsim_des::RngStream) — the fuzz surface driving
//! the parse→compile→fingerprint property tests.
//!
//! # Example
//!
//! ```
//! use harborsim_core::script;
//!
//! let compiled = script::compile_str(
//!     r#"
//!     campaign "portability" {
//!       cluster cte-power
//!       workload cfd-small
//!       rpn 40
//!       sweep env [singularity system-specific, singularity self-contained]
//!       sweep nodes [2, 4]
//!     }
//!     "#,
//! )
//! .expect("parses and compiles");
//! assert_eq!(compiled.campaigns[0].runs.len(), 4);
//! // every grid point has a canonical PlanKey fingerprint
//! assert_eq!(compiled.fingerprints().len(), 4);
//! ```

pub mod ast;
pub mod compile;
pub mod generator;
pub mod lexer;
pub mod parser;

pub use compile::{compile, compile_str, CompiledCampaign, CompiledRun, CompiledScript};
pub use parser::parse;

use std::error::Error;
use std::fmt;

/// A position in script source: 1-based line and column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

impl Span {
    /// The span used by synthesized (non-parsed) AST nodes.
    pub const ZERO: Span = Span { line: 0, col: 0 };
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// A value plus the source span it was parsed from.
///
/// Equality ignores the span: two ASTs that differ only in layout (the
/// pretty-printed round trip, for instance) compare equal, while error
/// reporting still has a position for every resolvable name.
#[derive(Debug, Clone, Copy)]
pub struct Spanned<T> {
    /// The parsed value.
    pub value: T,
    /// Where it came from.
    pub span: Span,
}

impl<T> Spanned<T> {
    /// Wrap `value` with a span.
    pub fn new(value: T, span: Span) -> Spanned<T> {
        Spanned { value, span }
    }

    /// Wrap a synthesized value with [`Span::ZERO`].
    pub fn synth(value: T) -> Spanned<T> {
        Spanned {
            value,
            span: Span::ZERO,
        }
    }
}

impl<T: PartialEq> PartialEq for Spanned<T> {
    fn eq(&self, other: &Self) -> bool {
        self.value == other.value
    }
}

impl<T: Eq> Eq for Spanned<T> {}

/// Which stage of the script pipeline rejected the input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScriptStage {
    /// The lexer hit a malformed token.
    Lex,
    /// The parser hit an unexpected token.
    Parse,
    /// The compiler rejected a resolved value (unknown name, bad range,
    /// inconsistent sweep).
    Compile,
}

impl fmt::Display for ScriptStage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ScriptStage::Lex => "lex",
            ScriptStage::Parse => "parse",
            ScriptStage::Compile => "compile",
        })
    }
}

/// Why a script cannot become a campaign, with the offending position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScriptError {
    /// The pipeline stage that failed.
    pub stage: ScriptStage,
    /// Line/column of the offending token or statement.
    pub span: Span,
    /// Human-readable diagnosis.
    pub msg: String,
}

impl ScriptError {
    pub(crate) fn lex(span: Span, msg: impl Into<String>) -> ScriptError {
        ScriptError {
            stage: ScriptStage::Lex,
            span,
            msg: msg.into(),
        }
    }

    pub(crate) fn parse(span: Span, msg: impl Into<String>) -> ScriptError {
        ScriptError {
            stage: ScriptStage::Parse,
            span,
            msg: msg.into(),
        }
    }

    pub(crate) fn compile(span: Span, msg: impl Into<String>) -> ScriptError {
        ScriptError {
            stage: ScriptStage::Compile,
            span,
            msg: msg.into(),
        }
    }
}

impl fmt::Display for ScriptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "script {} error at {}: {}",
            self.stage, self.span, self.msg
        )
    }
}

impl Error for ScriptError {}

/// The canonical script equivalent of a `reproduce_all` flag
/// combination: `--quick` picks the one-seed protocol, `--ablate-taper`
/// / `--oversub <t>` become the engine-level `taper` directive,
/// `--shards <n>` becomes the engine-level `shards` directive (omitted
/// at the serial default of 1, so older scripts stay canonical), and the
/// full experiment suite runs. `reproduce_all` itself routes its flags
/// through this, so "flags" and "script" are one front end — the golden
/// fingerprint test holds the committed `scripts/repro_*.hsim` files
/// against exactly this text.
pub fn flags_script(quick: bool, taper: Option<f64>, shards: u32) -> String {
    let seeds = if quick { "quick" } else { "default" };
    let mut line = format!("seeds {seeds}");
    if let Some(t) = taper {
        line.push_str(&format!(" taper {t:?}"));
    }
    if shards > 1 {
        line.push_str(&format!(" shards {shards}"));
    }
    line.push_str(" experiments all\n");
    line
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spanned_equality_ignores_spans() {
        let a = Spanned::new("x", Span { line: 1, col: 2 });
        let b = Spanned::new("x", Span { line: 9, col: 9 });
        assert_eq!(a, b);
        let c = Spanned::new("y", Span { line: 1, col: 2 });
        assert_ne!(a, c);
    }

    #[test]
    fn errors_render_the_span() {
        let e = ScriptError::parse(Span { line: 3, col: 7 }, "expected a knob");
        assert_eq!(e.to_string(), "script parse error at 3:7: expected a knob");
    }

    #[test]
    fn flag_combinations_are_one_line_scripts() {
        assert_eq!(
            flags_script(false, None, 1),
            "seeds default experiments all\n"
        );
        assert_eq!(
            flags_script(true, Some(1.0), 1),
            "seeds quick taper 1.0 experiments all\n"
        );
        assert_eq!(
            flags_script(false, Some(0.5), 1),
            "seeds default taper 0.5 experiments all\n"
        );
        assert_eq!(
            flags_script(true, None, 4),
            "seeds quick shards 4 experiments all\n"
        );
        assert_eq!(
            flags_script(false, Some(0.5), 8),
            "seeds default taper 0.5 shards 8 experiments all\n"
        );
    }
}
