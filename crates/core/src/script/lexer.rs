//! Tokenizer for `.hsim` scripts.
//!
//! Hand-rolled single-pass scanner: every token carries the 1-based
//! line/column it starts at, which the parser and compiler thread into
//! [`ScriptError`] diagnostics. Newlines are
//! not tokens — the grammar is keyword-directed, so statements need no
//! terminators and a whole script can legally sit on one line.

use crate::script::{ScriptError, Span};

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Bare identifier: keywords, cluster/workload/runtime names. Words
    /// start with a letter and may contain letters, digits, `-` and `_`.
    Word(String),
    /// Unsigned integer literal.
    Int(u64),
    /// Float literal (`0.5`, `1.0`).
    Float(f64),
    /// Double-quoted string (no escape sequences; may not span lines).
    Str(String),
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `=` (key=value directives like `rate=0.05`)
    Eq,
    /// `..` (inclusive integer range)
    DotDot,
}

impl std::fmt::Display for Tok {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Tok::Word(w) => write!(f, "`{w}`"),
            Tok::Int(n) => write!(f, "`{n}`"),
            Tok::Float(x) => write!(f, "`{x:?}`"),
            Tok::Str(s) => write!(f, "{s:?}"),
            Tok::LBrace => f.write_str("`{`"),
            Tok::RBrace => f.write_str("`}`"),
            Tok::LBracket => f.write_str("`[`"),
            Tok::RBracket => f.write_str("`]`"),
            Tok::LParen => f.write_str("`(`"),
            Tok::RParen => f.write_str("`)`"),
            Tok::Comma => f.write_str("`,`"),
            Tok::Eq => f.write_str("`=`"),
            Tok::DotDot => f.write_str("`..`"),
        }
    }
}

/// A token plus where it starts.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token.
    pub tok: Tok,
    /// 1-based line/column of its first character.
    pub span: Span,
}

/// Tokenize `src`.
///
/// # Errors
/// [`ScriptError`] (stage `Lex`) on an unterminated string, a malformed
/// number, or a character outside the alphabet.
pub fn lex(src: &str) -> Result<Vec<Token>, ScriptError> {
    let mut out = Vec::new();
    let chars: Vec<char> = src.chars().collect();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;
    macro_rules! bump {
        () => {{
            if chars[i] == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
            i += 1;
        }};
    }
    while i < chars.len() {
        let c = chars[i];
        let span = Span { line, col };
        match c {
            ' ' | '\t' | '\r' | '\n' => bump!(),
            '#' => {
                while i < chars.len() && chars[i] != '\n' {
                    bump!();
                }
            }
            '{' | '}' | '[' | ']' | '(' | ')' | ',' | '=' => {
                out.push(Token {
                    tok: match c {
                        '{' => Tok::LBrace,
                        '}' => Tok::RBrace,
                        '[' => Tok::LBracket,
                        ']' => Tok::RBracket,
                        '(' => Tok::LParen,
                        ')' => Tok::RParen,
                        '=' => Tok::Eq,
                        _ => Tok::Comma,
                    },
                    span,
                });
                bump!();
            }
            '.' => {
                if i + 1 < chars.len() && chars[i + 1] == '.' {
                    bump!();
                    bump!();
                    out.push(Token {
                        tok: Tok::DotDot,
                        span,
                    });
                } else {
                    return Err(ScriptError::lex(span, "stray `.` (did you mean `..`?)"));
                }
            }
            '"' => {
                bump!();
                let mut s = String::new();
                loop {
                    if i >= chars.len() || chars[i] == '\n' {
                        return Err(ScriptError::lex(span, "unterminated string"));
                    }
                    if chars[i] == '"' {
                        bump!();
                        break;
                    }
                    s.push(chars[i]);
                    bump!();
                }
                out.push(Token {
                    tok: Tok::Str(s),
                    span,
                });
            }
            '0'..='9' => {
                let mut text = String::new();
                while i < chars.len() && chars[i].is_ascii_digit() {
                    text.push(chars[i]);
                    bump!();
                }
                // a `.` introduces a float only when followed by a digit;
                // `2..16` stays Int DotDot Int
                let is_float =
                    i + 1 < chars.len() && chars[i] == '.' && chars[i + 1].is_ascii_digit();
                if is_float {
                    text.push('.');
                    bump!();
                    while i < chars.len() && chars[i].is_ascii_digit() {
                        text.push(chars[i]);
                        bump!();
                    }
                    let x: f64 = text
                        .parse()
                        .map_err(|_| ScriptError::lex(span, format!("bad float `{text}`")))?;
                    out.push(Token {
                        tok: Tok::Float(x),
                        span,
                    });
                } else {
                    let n: u64 = text.parse().map_err(|_| {
                        ScriptError::lex(span, format!("integer `{text}` overflows"))
                    })?;
                    out.push(Token {
                        tok: Tok::Int(n),
                        span,
                    });
                }
            }
            c if c.is_ascii_alphabetic() => {
                let mut w = String::new();
                while i < chars.len()
                    && (chars[i].is_ascii_alphanumeric() || chars[i] == '-' || chars[i] == '_')
                {
                    w.push(chars[i]);
                    bump!();
                }
                out.push(Token {
                    tok: Tok::Word(w),
                    span,
                });
            }
            other => {
                return Err(ScriptError::lex(
                    span,
                    format!("unexpected character {other:?}"),
                ));
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::script::ScriptStage;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn words_numbers_and_punctuation() {
        assert_eq!(
            toks("campaign \"x\" { nodes 4 spine-taper 0.5 }"),
            vec![
                Tok::Word("campaign".into()),
                Tok::Str("x".into()),
                Tok::LBrace,
                Tok::Word("nodes".into()),
                Tok::Int(4),
                Tok::Word("spine-taper".into()),
                Tok::Float(0.5),
                Tok::RBrace,
            ]
        );
    }

    #[test]
    fn key_value_directives_tokenize() {
        assert_eq!(
            toks("arrivals poisson rate=0.05 s=1.1"),
            vec![
                Tok::Word("arrivals".into()),
                Tok::Word("poisson".into()),
                Tok::Word("rate".into()),
                Tok::Eq,
                Tok::Float(0.05),
                Tok::Word("s".into()),
                Tok::Eq,
                Tok::Float(1.1),
            ]
        );
    }

    #[test]
    fn ranges_do_not_eat_floats() {
        assert_eq!(
            toks("2..16 1.0"),
            vec![Tok::Int(2), Tok::DotDot, Tok::Int(16), Tok::Float(1.0)]
        );
    }

    #[test]
    fn comments_run_to_end_of_line() {
        assert_eq!(
            toks("nodes 4 # the whole machine\nrpn 8"),
            vec![
                Tok::Word("nodes".into()),
                Tok::Int(4),
                Tok::Word("rpn".into()),
                Tok::Int(8),
            ]
        );
    }

    #[test]
    fn spans_are_line_and_column() {
        let tokens = lex("nodes 4\n  rpn 8").unwrap();
        assert_eq!(tokens[0].span, Span { line: 1, col: 1 });
        assert_eq!(tokens[1].span, Span { line: 1, col: 7 });
        assert_eq!(tokens[2].span, Span { line: 2, col: 3 });
        assert_eq!(tokens[3].span, Span { line: 2, col: 7 });
    }

    #[test]
    fn bad_input_reports_lex_stage_and_position() {
        let e = lex("nodes @").unwrap_err();
        assert_eq!(e.stage, ScriptStage::Lex);
        assert_eq!(e.span, Span { line: 1, col: 7 });
        let e = lex("trace \"unterminated").unwrap_err();
        assert!(e.msg.contains("unterminated"));
    }
}
