//! Seed-deterministic sampling distributions for open-system campaigns.
//!
//! Open campaigns model the batch system the way berserker-style load
//! generators model process churn: job arrivals are a Poisson process
//! and the job mix is heavy-tailed ([`Zipf`] over a small rank table).
//! Both samplers draw exclusively from a caller-supplied
//! [`RngStream`] (splitmix64), so a campaign's job list is a pure
//! function of its seed — byte-identical on any host, at any DES shard
//! count, in any build mode.

use harborsim_des::RngStream;

/// A Poisson arrival process: independent exponential interarrival gaps
/// with mean `1 / rate`.
#[derive(Debug, Clone, PartialEq)]
pub struct Poisson {
    rate_per_s: f64,
}

impl Poisson {
    /// A process producing `rate_per_s` expected arrivals per simulated
    /// second. Panics unless the rate is finite and positive — the DSL
    /// compiler rejects such scripts before they get here.
    pub fn new(rate_per_s: f64) -> Poisson {
        assert!(
            rate_per_s.is_finite() && rate_per_s > 0.0,
            "arrival rate must be positive and finite, got {rate_per_s}"
        );
        Poisson { rate_per_s }
    }

    /// Expected arrivals per second.
    pub fn rate_per_s(&self) -> f64 {
        self.rate_per_s
    }

    /// Mean interarrival gap, seconds.
    pub fn mean_gap_s(&self) -> f64 {
        1.0 / self.rate_per_s
    }

    /// The next interarrival gap in seconds (inverse-CDF exponential).
    pub fn next_gap_s(&self, rng: &mut RngStream) -> f64 {
        rng.exponential(self.mean_gap_s())
    }
}

/// A Zipf distribution over ranks `0..n`: rank `k` carries weight
/// `1 / (k + 1)^s`. Sampling inverts the precomputed CDF, so a draw is
/// one uniform plus a binary search — no rejection loop, no
/// seed-dependent iteration count.
#[derive(Debug, Clone, PartialEq)]
pub struct Zipf {
    s: f64,
    /// `cum[k] = P(X <= k)`; the last entry is exactly 1.0.
    cum: Vec<f64>,
}

impl Zipf {
    /// A Zipf law with exponent `s` over `n` ranks. Panics unless `s`
    /// is finite and positive and `n >= 1`.
    pub fn new(s: f64, n: usize) -> Zipf {
        assert!(
            s.is_finite() && s > 0.0,
            "zipf exponent must be positive and finite, got {s}"
        );
        assert!(n >= 1, "a zipf distribution needs at least one rank");
        let weights: Vec<f64> = (1..=n).map(|k| (k as f64).powf(-s)).collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        let mut cum: Vec<f64> = weights
            .iter()
            .map(|w| {
                acc += w / total;
                acc
            })
            .collect();
        *cum.last_mut().expect("n >= 1") = 1.0;
        Zipf { s, cum }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cum.len()
    }

    /// Always false — the constructor requires at least one rank.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Probability of rank `k`.
    pub fn pmf(&self, k: usize) -> f64 {
        if k == 0 {
            self.cum[0]
        } else {
            self.cum[k] - self.cum[k - 1]
        }
    }

    /// Analytic mean of the sampled rank index.
    pub fn mean_rank(&self) -> f64 {
        (0..self.len()).map(|k| k as f64 * self.pmf(k)).sum()
    }

    /// Draw a rank in `0..len()`.
    pub fn sample(&self, rng: &mut RngStream) -> usize {
        let u = rng.uniform();
        // first rank whose cumulative probability covers u; the final
        // clamp is unreachable (cum ends at exactly 1.0 > u) but keeps
        // the indexing robust against rounding.
        self.cum
            .partition_point(|&c| c <= u)
            .min(self.cum.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samplers_are_bit_identical_per_seed() {
        let p = Poisson::new(0.2);
        let z = Zipf::new(1.1, 7);
        let draw = |seed: u64| -> (Vec<u64>, Vec<usize>) {
            let mut rng = RngStream::new(seed).derive("dist");
            let gaps = (0..200).map(|_| p.next_gap_s(&mut rng).to_bits()).collect();
            let ranks = (0..200).map(|_| z.sample(&mut rng)).collect();
            (gaps, ranks)
        };
        assert_eq!(draw(42), draw(42));
        assert_ne!(draw(42), draw(43));
    }

    #[test]
    fn poisson_gaps_match_the_analytic_mean_and_skew() {
        // the exponential distribution has mean 1/rate and skewness
        // exactly 2; 40k samples put both within a few percent
        let p = Poisson::new(0.25);
        let mut rng = RngStream::new(0xA5).derive("poisson-moments");
        let n = 40_000;
        let samples: Vec<f64> = (0..n).map(|_| p.next_gap_s(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        assert!(
            (mean - p.mean_gap_s()).abs() / p.mean_gap_s() < 0.03,
            "empirical mean {mean} vs analytic {}",
            p.mean_gap_s()
        );
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        let m3 = samples.iter().map(|x| (x - mean).powi(3)).sum::<f64>() / n as f64;
        let skew = m3 / var.powf(1.5);
        assert!((skew - 2.0).abs() < 0.25, "empirical skew {skew} vs 2");
    }

    #[test]
    fn zipf_matches_the_analytic_pmf_and_mean() {
        let z = Zipf::new(1.3, 5);
        let mut rng = RngStream::new(0x21F).derive("zipf-moments");
        let n = 50_000usize;
        let mut counts = [0u64; 5];
        let mut sum = 0.0;
        for _ in 0..n {
            let k = z.sample(&mut rng);
            counts[k] += 1;
            sum += k as f64;
        }
        for (k, &c) in counts.iter().enumerate() {
            let emp = c as f64 / n as f64;
            assert!(
                (emp - z.pmf(k)).abs() < 0.01,
                "rank {k}: empirical {emp} vs analytic {}",
                z.pmf(k)
            );
        }
        let mean = sum / n as f64;
        assert!(
            (mean - z.mean_rank()).abs() < 0.02,
            "empirical mean rank {mean} vs analytic {}",
            z.mean_rank()
        );
    }

    #[test]
    fn zipf_is_head_heavy_and_monotone_in_s() {
        let flatter = Zipf::new(0.8, 10);
        let steeper = Zipf::new(2.0, 10);
        assert!(steeper.pmf(0) > flatter.pmf(0));
        for z in [&flatter, &steeper] {
            for k in 1..z.len() {
                assert!(z.pmf(k) < z.pmf(k - 1), "pmf must decay with rank");
            }
            let total: f64 = (0..z.len()).map(|k| z.pmf(k)).sum();
            assert!((total - 1.0).abs() < 1e-12);
        }
    }
}
