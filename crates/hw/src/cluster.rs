//! Cluster descriptions: homogeneous pools of nodes joined by an
//! interconnect, with shared storage and an installed software stack.

use crate::node::NodeSpec;
use crate::storage::StorageSpec;
use std::fmt;

/// The interconnect family of a cluster. The `net` crate maps each kind to
/// transport parameters (native and TCP-fallback stacks).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InterconnectKind {
    /// 1 Gbit/s Ethernet, TCP only (Lenox).
    GigabitEthernet,
    /// 40 Gbit/s Ethernet, TCP only (ThunderX mini-cluster).
    FortyGigEthernet,
    /// Mellanox InfiniBand EDR, 100 Gbit/s, RDMA verbs (CTE-POWER).
    InfinibandEdr,
    /// Intel Omni-Path, 100 Gbit/s, PSM2 (MareNostrum4).
    OmniPath100,
}

impl InterconnectKind {
    /// Whether the fabric needs vendor userspace drivers for its native
    /// (kernel-bypass) transport. On plain Ethernet the "native" MPI
    /// transport *is* TCP, so a self-contained container loses nothing —
    /// on IB/OPA it loses kernel-bypass and falls to IP emulation.
    pub fn needs_userspace_driver(self) -> bool {
        matches!(
            self,
            InterconnectKind::InfinibandEdr | InterconnectKind::OmniPath100
        )
    }

    /// Human-readable fabric name.
    pub fn name(self) -> &'static str {
        match self {
            InterconnectKind::GigabitEthernet => "1GbE (TCP)",
            InterconnectKind::FortyGigEthernet => "40GbE (TCP)",
            InterconnectKind::InfinibandEdr => "InfiniBand EDR",
            InterconnectKind::OmniPath100 => "Omni-Path 100",
        }
    }

    /// The userspace library a system-specific container must bind from the
    /// host to reach the native transport, if any.
    pub fn driver_library(self) -> Option<&'static str> {
        match self {
            InterconnectKind::InfinibandEdr => Some("libmlx5/verbs"),
            InterconnectKind::OmniPath100 => Some("libpsm2"),
            _ => None,
        }
    }
}

impl fmt::Display for InterconnectKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Physical layout of a cluster's fabric as a two-level switch hierarchy:
/// node NICs feed leaf switches, leaf switches feed a spine. The `net`
/// crate turns this into an explicit link graph (`harborsim_net::link`),
/// so which traffic stays under one leaf — and how much aggregate
/// bandwidth the spine offers — is a property of the *machine*, not a
/// per-engine scalar.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FabricLayout {
    /// Downlinks per leaf switch. `None` means one flat switch spans the
    /// whole machine (small clusters with a single managed switch).
    pub nodes_per_leaf: Option<u32>,
    /// Per-switch-traversal latency in seconds.
    pub hop_latency_s: f64,
    /// Fraction of a leaf's aggregate injection bandwidth available above
    /// the leaf layer (1.0 = non-blocking, 0.5 = 2:1 oversubscribed).
    pub spine_taper: f64,
}

impl FabricLayout {
    /// One flat switch spanning every node.
    pub fn single_switch(hop_latency_s: f64) -> FabricLayout {
        FabricLayout {
            nodes_per_leaf: None,
            hop_latency_s,
            spine_taper: 1.0,
        }
    }

    /// A two-level fat tree: `nodes_per_leaf` downlinks per leaf switch,
    /// spine capacity tapered to `spine_taper` of leaf injection.
    pub fn fat_tree(nodes_per_leaf: u32, hop_latency_s: f64, spine_taper: f64) -> FabricLayout {
        assert!(nodes_per_leaf > 0, "a leaf must have downlinks");
        assert!(
            spine_taper > 0.0 && spine_taper <= 1.0,
            "taper is a fraction of injection bandwidth"
        );
        FabricLayout {
            nodes_per_leaf: Some(nodes_per_leaf),
            hop_latency_s,
            spine_taper,
        }
    }
}

/// Container software installed on a cluster, by version string. `None`
/// means the technology is not available there (e.g. no Docker on the
/// production BSC machines — it needs a root daemon).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SoftwareStack {
    /// Docker daemon version, if installed.
    pub docker: Option<String>,
    /// Singularity version, if installed.
    pub singularity: Option<String>,
    /// Shifter version, if installed.
    pub shifter: Option<String>,
}

impl SoftwareStack {
    /// Stack with only Singularity, as on the BSC production machines.
    pub fn singularity_only(version: &str) -> SoftwareStack {
        SoftwareStack {
            docker: None,
            singularity: Some(version.to_string()),
            shifter: None,
        }
    }
}

/// Why a `(nodes, ranks_per_node, threads_per_rank)` placement cannot run
/// on a cluster.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlacementError {
    /// Some placement dimension is zero.
    ZeroDimension,
    /// More nodes requested than the cluster has.
    TooManyNodes {
        /// Cluster name.
        cluster: String,
        /// Nodes requested.
        requested: u32,
        /// Nodes the cluster has.
        available: u32,
    },
    /// `ranks_per_node × threads_per_rank` exceeds the cores of a node.
    Oversubscribed {
        /// Ranks per node requested.
        ranks_per_node: u32,
        /// Threads per rank requested.
        threads_per_rank: u32,
        /// Cores each node actually has.
        cores_per_node: u32,
    },
}

impl fmt::Display for PlacementError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlacementError::ZeroDimension => {
                f.write_str("placement dimensions must be positive")
            }
            PlacementError::TooManyNodes {
                cluster,
                requested,
                available,
            } => write!(
                f,
                "{requested} nodes requested but {cluster} has only {available}"
            ),
            PlacementError::Oversubscribed {
                ranks_per_node,
                threads_per_rank,
                cores_per_node,
            } => write!(
                f,
                "{ranks_per_node}x{threads_per_rank} = {} cores per node requested but nodes have {cores_per_node}",
                ranks_per_node * threads_per_rank
            ),
        }
    }
}

impl std::error::Error for PlacementError {}

/// A cluster: `node_count` identical nodes, one interconnect, shared
/// storage, node-local storage, and the installed container stack.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterSpec {
    /// Cluster name as used in the paper.
    pub name: String,
    /// Number of compute nodes available.
    pub node_count: u32,
    /// Per-node hardware.
    pub node: NodeSpec,
    /// Inter-node fabric.
    pub interconnect: InterconnectKind,
    /// Switch hierarchy of the fabric (leaf size, hop latency, spine taper).
    pub fabric_layout: FabricLayout,
    /// Shared storage visible from all nodes.
    pub shared_storage: StorageSpec,
    /// Node-local storage, if compute nodes have any disk.
    pub local_storage: Option<StorageSpec>,
    /// Installed container technologies.
    pub software: SoftwareStack,
}

impl ClusterSpec {
    /// Total cores in the whole machine.
    pub fn total_cores(&self) -> u64 {
        self.node_count as u64 * self.node.cores() as u64
    }

    /// Cores available on `nodes` nodes.
    pub fn cores_on(&self, nodes: u32) -> u64 {
        debug_assert!(
            nodes <= self.node_count,
            "asking for more nodes than the cluster has"
        );
        nodes as u64 * self.node.cores() as u64
    }

    /// Check that a `(nodes, ranks_per_node, threads_per_rank)` placement
    /// fits the machine.
    ///
    /// # Errors
    /// Returns the specific [`PlacementError`] violated.
    pub fn validate_placement(
        &self,
        nodes: u32,
        ranks_per_node: u32,
        threads_per_rank: u32,
    ) -> Result<(), PlacementError> {
        if nodes == 0 || ranks_per_node == 0 || threads_per_rank == 0 {
            return Err(PlacementError::ZeroDimension);
        }
        if nodes > self.node_count {
            return Err(PlacementError::TooManyNodes {
                cluster: self.name.clone(),
                requested: nodes,
                available: self.node_count,
            });
        }
        if ranks_per_node * threads_per_rank > self.node.cores() {
            return Err(PlacementError::Oversubscribed {
                ranks_per_node,
                threads_per_rank,
                cores_per_node: self.node.cores(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::CpuModel;

    fn mini() -> ClusterSpec {
        ClusterSpec {
            name: "mini".into(),
            node_count: 4,
            node: NodeSpec::dual_socket(CpuModel::xeon_e5_2697v3(), 128),
            interconnect: InterconnectKind::GigabitEthernet,
            fabric_layout: FabricLayout::single_switch(0.4e-6),
            shared_storage: StorageSpec::nfs_small(),
            local_storage: Some(StorageSpec::local_scratch()),
            software: SoftwareStack::default(),
        }
    }

    #[test]
    fn core_accounting() {
        let c = mini();
        assert_eq!(c.total_cores(), 112);
        assert_eq!(c.cores_on(2), 56);
    }

    #[test]
    fn placement_validation() {
        let c = mini();
        assert!(c.validate_placement(4, 28, 1).is_ok());
        assert!(c.validate_placement(4, 2, 14).is_ok());
        assert!(
            matches!(
                c.validate_placement(5, 1, 1),
                Err(PlacementError::TooManyNodes {
                    requested: 5,
                    available: 4,
                    ..
                })
            ),
            "too many nodes"
        );
        assert!(
            matches!(
                c.validate_placement(1, 28, 2),
                Err(PlacementError::Oversubscribed {
                    cores_per_node: 28,
                    ..
                })
            ),
            "oversubscribed"
        );
        assert_eq!(
            c.validate_placement(0, 1, 1),
            Err(PlacementError::ZeroDimension)
        );
    }

    #[test]
    fn placement_error_messages() {
        let c = mini();
        let e = c.validate_placement(5, 1, 1).unwrap_err();
        assert_eq!(e.to_string(), "5 nodes requested but mini has only 4");
        let e = c.validate_placement(1, 28, 2).unwrap_err();
        assert_eq!(
            e.to_string(),
            "28x2 = 56 cores per node requested but nodes have 28"
        );
        assert!(std::error::Error::source(&e).is_none());
    }

    #[test]
    fn driver_requirements_by_fabric() {
        assert!(!InterconnectKind::GigabitEthernet.needs_userspace_driver());
        assert!(!InterconnectKind::FortyGigEthernet.needs_userspace_driver());
        assert!(InterconnectKind::InfinibandEdr.needs_userspace_driver());
        assert!(InterconnectKind::OmniPath100.needs_userspace_driver());
        assert_eq!(
            InterconnectKind::InfinibandEdr.driver_library(),
            Some("libmlx5/verbs")
        );
        assert_eq!(InterconnectKind::GigabitEthernet.driver_library(), None);
    }

    #[test]
    fn fabric_layout_constructors() {
        let flat = FabricLayout::single_switch(0.4e-6);
        assert_eq!(flat.nodes_per_leaf, None);
        assert_eq!(flat.spine_taper, 1.0);
        let tree = FabricLayout::fat_tree(48, 0.15e-6, 0.8);
        assert_eq!(tree.nodes_per_leaf, Some(48));
        assert!((tree.spine_taper - 0.8).abs() < 1e-12);
    }
}
