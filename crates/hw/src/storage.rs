//! Storage models: parallel filesystems and node-local disks.
//!
//! Storage matters twice in the study: container images must be *staged*
//! (pulled, converted, loop-mounted) before a job starts, and the paper's
//! future-work section calls for an I/O study — which HarborSim implements
//! as the image-startup-storm experiment. The key behavioural difference is
//! that a parallel filesystem's aggregate bandwidth is shared by every
//! client while a local disk is private per node.

/// What kind of storage backs a path.
#[derive(Debug, Clone, PartialEq)]
pub enum StorageKind {
    /// A shared parallel filesystem (GPFS, Lustre): high aggregate bandwidth
    /// shared across clients, per-client streaming cap, metadata-server cost
    /// per open/stat.
    ParallelFs {
        /// Aggregate backend bandwidth, bytes/s.
        aggregate_bps: f64,
        /// Per-client streaming cap, bytes/s (usually fabric-limited).
        per_client_bps: f64,
        /// Cost of one metadata operation (open/stat/create), seconds.
        metadata_op_s: f64,
    },
    /// Node-local disk: private bandwidth per node.
    LocalDisk {
        /// Streaming read bandwidth, bytes/s.
        read_bps: f64,
        /// Streaming write bandwidth, bytes/s.
        write_bps: f64,
        /// Per-operation seek/issue latency, seconds.
        op_latency_s: f64,
    },
    /// NFS over the cluster network: one server, modest bandwidth shared by
    /// all clients, high metadata cost.
    Nfs {
        /// Server bandwidth, bytes/s.
        server_bps: f64,
        /// Cost of one metadata operation, seconds.
        metadata_op_s: f64,
    },
}

/// A named storage system.
#[derive(Debug, Clone, PartialEq)]
pub struct StorageSpec {
    /// Human-readable name ("GPFS /gpfs/projects", "local /tmp", ...).
    pub name: String,
    /// Behaviour class and parameters.
    pub kind: StorageKind,
}

impl StorageSpec {
    /// GPFS as deployed on the BSC machines: ~50 GB/s backend, clients capped
    /// near fabric speed, sub-millisecond metadata.
    pub fn gpfs() -> StorageSpec {
        StorageSpec {
            name: "GPFS".into(),
            kind: StorageKind::ParallelFs {
                aggregate_bps: 50e9,
                per_client_bps: 3.0e9,
                metadata_op_s: 0.8e-3,
            },
        }
    }

    /// A SATA/early-NVMe class local scratch disk.
    pub fn local_scratch() -> StorageSpec {
        StorageSpec {
            name: "local scratch".into(),
            kind: StorageKind::LocalDisk {
                read_bps: 500e6,
                write_bps: 450e6,
                op_latency_s: 0.1e-3,
            },
        }
    }

    /// A small-cluster NFS share (Lenox, ThunderX mini-cluster).
    pub fn nfs_small() -> StorageSpec {
        StorageSpec {
            name: "NFS".into(),
            kind: StorageKind::Nfs {
                server_bps: 110e6, // bottlenecked by the 1GbE uplink
                metadata_op_s: 2.0e-3,
            },
        }
    }

    /// Aggregate bandwidth available when `clients` nodes stream
    /// concurrently, bytes/s (the number the fluid-link model is fed).
    pub fn shared_bandwidth_bps(&self, clients: u32) -> f64 {
        let c = clients.max(1) as f64;
        match &self.kind {
            StorageKind::ParallelFs {
                aggregate_bps,
                per_client_bps,
                ..
            } => aggregate_bps.min(per_client_bps * c),
            StorageKind::LocalDisk { read_bps, .. } => read_bps * c, // private per node
            StorageKind::Nfs { server_bps, .. } => *server_bps,
        }
    }

    /// Seconds for one client to read `bytes` while `clients` nodes stream
    /// concurrently and each performs `metadata_ops` metadata operations.
    pub fn read_seconds(&self, bytes: f64, clients: u32, metadata_ops: u32) -> f64 {
        debug_assert!(bytes >= 0.0);
        let c = clients.max(1) as f64;
        let meta = metadata_ops as f64 * self.metadata_op_s();
        let bw = match &self.kind {
            StorageKind::ParallelFs {
                aggregate_bps,
                per_client_bps,
                ..
            } => per_client_bps.min(aggregate_bps / c),
            StorageKind::LocalDisk { read_bps, .. } => *read_bps,
            StorageKind::Nfs { server_bps, .. } => server_bps / c,
        };
        meta + bytes / bw
    }

    /// Cost of one metadata operation on this storage, seconds.
    pub fn metadata_op_s(&self) -> f64 {
        match &self.kind {
            StorageKind::ParallelFs { metadata_op_s, .. } => *metadata_op_s,
            StorageKind::LocalDisk { op_latency_s, .. } => *op_latency_s,
            StorageKind::Nfs { metadata_op_s, .. } => *metadata_op_s,
        }
    }

    /// Whether the storage is shared between nodes (affects whether an image
    /// staged once is visible everywhere).
    pub fn is_shared(&self) -> bool {
        !matches!(self.kind, StorageKind::LocalDisk { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpfs_scales_then_saturates() {
        let g = StorageSpec::gpfs();
        let one = g.shared_bandwidth_bps(1);
        let many = g.shared_bandwidth_bps(1000);
        assert!((one - 3.0e9).abs() < 1.0);
        assert!((many - 50e9).abs() < 1.0, "aggregate cap");
    }

    #[test]
    fn local_disk_is_private() {
        let d = StorageSpec::local_scratch();
        // per-client read time independent of client count
        let t1 = d.read_seconds(1e9, 1, 0);
        let t256 = d.read_seconds(1e9, 256, 0);
        assert!((t1 - t256).abs() < 1e-12);
    }

    #[test]
    fn nfs_divides_by_clients() {
        let n = StorageSpec::nfs_small();
        let t1 = n.read_seconds(110e6, 1, 0);
        let t10 = n.read_seconds(110e6, 10, 0);
        assert!((t1 - 1.0).abs() < 1e-9);
        assert!((t10 - 10.0).abs() < 1e-6);
    }

    #[test]
    fn parallel_fs_per_client_throttles_at_scale() {
        let g = StorageSpec::gpfs();
        // 1 client: capped by per-client 3 GB/s
        let t1 = g.read_seconds(3.0e9, 1, 0);
        assert!((t1 - 1.0).abs() < 1e-9);
        // 100 clients: each gets 0.5 GB/s
        let t100 = g.read_seconds(3.0e9, 100, 0);
        assert!((t100 - 6.0).abs() < 1e-9);
    }

    #[test]
    fn metadata_adds_fixed_cost() {
        let g = StorageSpec::gpfs();
        let base = g.read_seconds(0.0, 1, 0);
        let with_meta = g.read_seconds(0.0, 1, 100);
        assert!(base < 1e-12);
        assert!((with_meta - 0.08).abs() < 1e-9);
    }

    #[test]
    fn shared_flags() {
        assert!(StorageSpec::gpfs().is_shared());
        assert!(StorageSpec::nfs_small().is_shared());
        assert!(!StorageSpec::local_scratch().is_shared());
    }
}
