//! # harborsim-hw
//!
//! Hardware models for the HarborSim study: CPUs, compute nodes, storage
//! systems, and full cluster descriptions, including exact presets of the
//! four machines used in the paper (Lenox, MareNostrum4, CTE-POWER and the
//! Mont-Blanc ThunderX mini-cluster).
//!
//! The models are deliberately *sustained-throughput* models rather than
//! cycle-accurate ones: what the containers-in-HPC study exercises is the
//! ratio between compute grain and communication cost, which is governed by
//! per-core sustained GFLOP/s on memory-bound solver kernels, node core
//! counts, and fabric class — all encoded here from public spec sheets.

pub mod cluster;
pub mod cpu;
pub mod node;
pub mod presets;
pub mod storage;
pub mod threading;

pub use cluster::{ClusterSpec, FabricLayout, InterconnectKind, PlacementError, SoftwareStack};
pub use cpu::{CpuArch, CpuModel};
pub use node::NodeSpec;
pub use storage::{StorageKind, StorageSpec};
pub use threading::ThreadingModel;
