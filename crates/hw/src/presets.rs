//! The four clusters of the paper, as `ClusterSpec` presets.
//!
//! All figures come from the paper's "Experimental environment" section:
//!
//! | Cluster    | Nodes | CPU                       | Cores/node | Fabric        | Containers installed |
//! |------------|-------|---------------------------|------------|---------------|----------------------|
//! | Lenox      | 4     | 2× Xeon E5-2697v3         | 28         | 1GbE TCP      | Docker 1.11.1, Singularity 2.4.5, Shifter 16.08.3 |
//! | MareNostrum4 | 3456 | 2× Xeon Platinum 8160    | 48         | Omni-Path 100 | Singularity 2.4.2 |
//! | CTE-POWER  | 52    | 2× POWER9 8335-GTG        | 40         | IB EDR        | Singularity 2.5.1 |
//! | ThunderX   | 4     | 2× Cavium CN8890          | 96         | 40GbE TCP     | Singularity 2.5.2 |

use crate::cluster::{ClusterSpec, FabricLayout, InterconnectKind, SoftwareStack};
use crate::cpu::CpuModel;
use crate::node::NodeSpec;
use crate::storage::StorageSpec;

/// Lenox: the four-node Lenovo cluster with administrative rights — the only
/// machine where Docker can run, hence the venue for the Fig. 1 comparison.
pub fn lenox() -> ClusterSpec {
    ClusterSpec {
        name: "Lenox".into(),
        node_count: 4,
        node: NodeSpec::dual_socket(CpuModel::xeon_e5_2697v3(), 128),
        interconnect: InterconnectKind::GigabitEthernet,
        fabric_layout: FabricLayout::single_switch(0.4e-6),
        shared_storage: StorageSpec::nfs_small(),
        local_storage: Some(StorageSpec::local_scratch()),
        software: SoftwareStack {
            docker: Some("1.11.1".into()),
            singularity: Some("2.4.5".into()),
            shifter: Some("16.08.3".into()),
        },
    }
}

/// MareNostrum4: the BSC Tier-0 machine — venue of the Fig. 3 scalability
/// study up to 256 nodes / 12,288 cores.
pub fn marenostrum4() -> ClusterSpec {
    ClusterSpec {
        name: "MareNostrum4".into(),
        node_count: 3456,
        node: NodeSpec::dual_socket(CpuModel::xeon_platinum_8160(), 96),
        interconnect: InterconnectKind::OmniPath100,
        fabric_layout: FabricLayout::fat_tree(48, 0.15e-6, 0.8),
        shared_storage: StorageSpec::gpfs(),
        local_storage: Some(StorageSpec::local_scratch()),
        software: SoftwareStack::singularity_only("2.4.2"),
    }
}

/// CTE-POWER: the BSC POWER9 cluster — venue of the Fig. 2 portability
/// comparison (system-specific vs self-contained on InfiniBand EDR).
pub fn cte_power() -> ClusterSpec {
    ClusterSpec {
        name: "CTE-POWER".into(),
        node_count: 52,
        node: NodeSpec::dual_socket(CpuModel::power9_8335gtg(), 512),
        interconnect: InterconnectKind::InfinibandEdr,
        fabric_layout: FabricLayout::fat_tree(26, 0.12e-6, 1.0),
        shared_storage: StorageSpec::gpfs(),
        local_storage: Some(StorageSpec::local_scratch()),
        software: SoftwareStack::singularity_only("2.5.1"),
    }
}

/// The Mont-Blanc ThunderX mini-cluster: four Armv8 nodes — the third
/// architecture of the portability study.
pub fn thunderx() -> ClusterSpec {
    ClusterSpec {
        name: "ThunderX".into(),
        node_count: 4,
        node: NodeSpec::dual_socket(CpuModel::thunderx_cn8890(), 128),
        interconnect: InterconnectKind::FortyGigEthernet,
        fabric_layout: FabricLayout::single_switch(0.4e-6),
        shared_storage: StorageSpec::nfs_small(),
        local_storage: Some(StorageSpec::local_scratch()),
        software: SoftwareStack::singularity_only("2.5.2"),
    }
}

/// All four presets, in the order the paper introduces them.
pub fn all() -> Vec<ClusterSpec> {
    vec![lenox(), marenostrum4(), cte_power(), thunderx()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::CpuArch;

    #[test]
    fn paper_core_counts() {
        assert_eq!(lenox().node.cores(), 28);
        assert_eq!(marenostrum4().node.cores(), 48);
        assert_eq!(cte_power().node.cores(), 40);
        assert_eq!(thunderx().node.cores(), 96);
    }

    #[test]
    fn fig3_scale_fits() {
        // 256 nodes x 48 cores = 12,288 cores, as stated in the paper
        let mn4 = marenostrum4();
        assert_eq!(mn4.cores_on(256), 12_288);
        assert!(mn4.node_count >= 256);
    }

    #[test]
    fn three_architectures_for_portability() {
        let archs: Vec<CpuArch> = [marenostrum4(), cte_power(), thunderx()]
            .iter()
            .map(|c| c.node.cpu.arch)
            .collect();
        assert_eq!(
            archs,
            vec![CpuArch::X86_64, CpuArch::Ppc64le, CpuArch::Aarch64]
        );
    }

    #[test]
    fn docker_only_on_lenox() {
        assert!(lenox().software.docker.is_some());
        for c in [marenostrum4(), cte_power(), thunderx()] {
            assert!(c.software.docker.is_none(), "{}", c.name);
            assert!(c.software.singularity.is_some(), "{}", c.name);
        }
    }

    #[test]
    fn fabrics_match_paper() {
        assert_eq!(lenox().interconnect, InterconnectKind::GigabitEthernet);
        assert_eq!(marenostrum4().interconnect, InterconnectKind::OmniPath100);
        assert_eq!(cte_power().interconnect, InterconnectKind::InfinibandEdr);
        assert_eq!(thunderx().interconnect, InterconnectKind::FortyGigEthernet);
    }

    #[test]
    fn all_returns_four() {
        assert_eq!(all().len(), 4);
    }

    #[test]
    fn fabric_layouts_match_machines() {
        // the two mini-clusters sit behind one managed switch; the BSC
        // machines are fat trees (MN4's spine tapered, CTE's effectively not)
        assert_eq!(lenox().fabric_layout.nodes_per_leaf, None);
        assert_eq!(thunderx().fabric_layout.nodes_per_leaf, None);
        assert_eq!(marenostrum4().fabric_layout.nodes_per_leaf, Some(48));
        assert!((marenostrum4().fabric_layout.spine_taper - 0.8).abs() < 1e-12);
        assert_eq!(cte_power().fabric_layout.nodes_per_leaf, Some(26));
        assert_eq!(cte_power().fabric_layout.spine_taper, 1.0);
    }
}
