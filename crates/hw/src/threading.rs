//! Shared-memory (OpenMP-style) threading efficiency model.
//!
//! Alya runs hybrid MPI×OpenMP; Fig. 1 of the paper sweeps the
//! ranks-per-node × threads-per-rank balance at a fixed core count. Two
//! effects shape that curve and both are modelled here:
//!
//! 1. **Amdahl residue** — a small per-rank serial fraction that threads
//!    cannot help with (sequential assembly sections, MPI progress, I/O).
//! 2. **Fork/join overhead** — every parallel region pays a barrier cost
//!    that grows with the number of threads (log-ish tree barrier).
//!
//! The model is compute-oriented: memory-bandwidth saturation within a
//! socket is folded into the calibrated per-core sustained rate.

/// Parameters of the threading model.
#[derive(Debug, Clone, PartialEq)]
pub struct ThreadingModel {
    /// Fraction of each rank's work that stays serial no matter how many
    /// threads are available (Amdahl).
    pub serial_fraction: f64,
    /// Cost of one fork/join barrier for 2 threads, in microseconds; scales
    /// with `log2(threads)`.
    pub barrier_base_us: f64,
    /// Number of parallel regions (fork/join pairs) per "work unit" — the
    /// solver reports work in units that carry this many regions.
    pub regions_per_unit: f64,
}

impl Default for ThreadingModel {
    fn default() -> Self {
        ThreadingModel {
            serial_fraction: 0.02,
            barrier_base_us: 4.0,
            regions_per_unit: 1.0,
        }
    }
}

impl ThreadingModel {
    /// A model tuned for well-optimized HPC codes (Alya-class): 2% serial
    /// residue, 4 µs base barrier.
    pub fn hpc_default() -> Self {
        Self::default()
    }

    /// Wall-clock seconds to execute work that takes `serial_seconds` on one
    /// core, using `threads` threads, including Amdahl residue and barrier
    /// overheads for `regions` parallel regions.
    pub fn parallel_time(&self, serial_seconds: f64, threads: u32, regions: f64) -> f64 {
        debug_assert!(threads >= 1);
        debug_assert!(serial_seconds >= 0.0);
        if threads == 1 {
            // single-threaded ranks skip fork/join entirely
            return serial_seconds;
        }
        let t = threads as f64;
        let parallel = serial_seconds * (1.0 - self.serial_fraction) / t;
        let serial = serial_seconds * self.serial_fraction;
        let barrier = self.barrier_base_us * 1e-6 * t.log2() * regions;
        parallel + serial + barrier
    }

    /// Parallel efficiency on `threads` threads for work of the given serial
    /// duration and region count: `serial / (threads * parallel_time)`.
    pub fn efficiency(&self, serial_seconds: f64, threads: u32, regions: f64) -> f64 {
        let tp = self.parallel_time(serial_seconds, threads, regions);
        if tp <= 0.0 {
            return 1.0;
        }
        serial_seconds / (threads as f64 * tp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_thread_is_exact() {
        let m = ThreadingModel::hpc_default();
        assert_eq!(m.parallel_time(3.0, 1, 10.0), 3.0);
        assert!((m.efficiency(3.0, 1, 10.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn speedup_monotone_but_sublinear() {
        let m = ThreadingModel::hpc_default();
        let w = 10.0;
        let mut prev = f64::INFINITY;
        for t in [1u32, 2, 4, 8, 14, 28] {
            let time = m.parallel_time(w, t, 100.0);
            assert!(time < prev, "time must fall with threads (t={t})");
            prev = time;
            let eff = m.efficiency(w, t, 100.0);
            assert!(eff <= 1.0 + 1e-12, "no superlinear speedup (t={t})");
        }
    }

    #[test]
    fn efficiency_decreases_with_threads() {
        let m = ThreadingModel::hpc_default();
        let e2 = m.efficiency(10.0, 2, 100.0);
        let e28 = m.efficiency(10.0, 28, 100.0);
        assert!(e2 > e28);
        assert!(
            e28 > 0.5,
            "28 threads should still be >50% efficient, got {e28}"
        );
    }

    #[test]
    fn tiny_work_dominated_by_barriers() {
        let m = ThreadingModel::hpc_default();
        // 1 µs of work across 28 threads with one region: barrier dominates
        let t = m.parallel_time(1e-6, 28, 1.0);
        assert!(t > 10e-6);
    }

    #[test]
    fn amdahl_limit() {
        let m = ThreadingModel {
            serial_fraction: 0.1,
            barrier_base_us: 0.0,
            regions_per_unit: 1.0,
        };
        // with f=0.1 and no barrier cost, max speedup is 10
        let t = m.parallel_time(1.0, 1_000_000, 0.0);
        assert!((1.0 / t - 10.0).abs() / 10.0 < 0.01);
    }
}
