//! CPU models: instruction-set architecture plus sustained-throughput
//! parameters for solver-class kernels.

use std::fmt;

/// Instruction-set architecture of a CPU.
///
/// Architecture identity matters to the *portability* part of the study: a
/// container image built for one ISA cannot run on another, and an image
/// built with ISA-specific compiler flags (e.g. AVX-512) may be slower or
/// fail on older implementations of the same ISA.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CpuArch {
    /// x86-64 (Intel/AMD).
    X86_64,
    /// IBM POWER (ppc64le).
    Ppc64le,
    /// 64-bit Arm (aarch64).
    Aarch64,
}

impl CpuArch {
    /// The conventional GNU triple-ish name for the architecture.
    pub fn name(self) -> &'static str {
        match self {
            CpuArch::X86_64 => "x86_64",
            CpuArch::Ppc64le => "ppc64le",
            CpuArch::Aarch64 => "aarch64",
        }
    }

    /// Whether a binary built for `self` can execute on `other` without
    /// emulation. HarborSim models no binary translation, so this is plain
    /// equality — exactly the wall the paper's portability section runs into.
    pub fn can_execute(self, other: CpuArch) -> bool {
        self == other
    }
}

impl fmt::Display for CpuArch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A CPU model: identity plus sustained performance parameters.
///
/// `cg_gflops_per_core` is the sustained double-precision rate of one core on
/// conjugate-gradient-class kernels (sparse/stencil, memory-bound) — the
/// regime Alya's solvers live in. These sit at 4–8% of nominal peak, which is
/// what published HPCG-style measurements show for each of these chips.
#[derive(Debug, Clone, PartialEq)]
pub struct CpuModel {
    /// Marketing name, e.g. "Intel Xeon Platinum 8160".
    pub name: String,
    /// Instruction-set architecture.
    pub arch: CpuArch,
    /// Microarchitecture label, e.g. "Skylake-SP" (informational, and used
    /// by ISA-feature compatibility checks, e.g. AVX-512 images on Haswell).
    pub uarch: String,
    /// Nominal clock in GHz.
    pub clock_ghz: f64,
    /// Physical cores per socket.
    pub cores_per_socket: u32,
    /// Sustained per-core GFLOP/s on CG-class (memory-bound) kernels.
    pub cg_gflops_per_core: f64,
    /// Memory bandwidth per socket in GB/s (STREAM-like).
    pub mem_bw_gbs_per_socket: f64,
    /// ISA feature level, ordered: a binary compiled for level L runs only on
    /// CPUs with `isa_level >= L` *within the same arch* (e.g. x86-64-v3 vs
    /// v4). Models the paper's "tuned image vs portable image" trade-off.
    pub isa_level: u8,
}

impl CpuModel {
    /// Intel Xeon E5-2697 v3 (Haswell, 14 cores) — the Lenox cluster CPU.
    pub fn xeon_e5_2697v3() -> CpuModel {
        CpuModel {
            name: "Intel Xeon E5-2697 v3".into(),
            arch: CpuArch::X86_64,
            uarch: "Haswell".into(),
            clock_ghz: 2.6,
            cores_per_socket: 14,
            cg_gflops_per_core: 2.0,
            mem_bw_gbs_per_socket: 59.0,
            isa_level: 3, // x86-64-v3: AVX2
        }
    }

    /// Intel Xeon Platinum 8160 (Skylake-SP, 24 cores) — MareNostrum4.
    pub fn xeon_platinum_8160() -> CpuModel {
        CpuModel {
            name: "Intel Xeon Platinum 8160".into(),
            arch: CpuArch::X86_64,
            uarch: "Skylake-SP".into(),
            clock_ghz: 2.1,
            cores_per_socket: 24,
            cg_gflops_per_core: 2.6,
            mem_bw_gbs_per_socket: 107.0,
            isa_level: 4, // x86-64-v4: AVX-512
        }
    }

    /// IBM POWER9 8335-GTG (20 cores) — CTE-POWER.
    pub fn power9_8335gtg() -> CpuModel {
        CpuModel {
            name: "IBM POWER9 8335-GTG".into(),
            arch: CpuArch::Ppc64le,
            uarch: "POWER9".into(),
            clock_ghz: 3.0,
            cores_per_socket: 20,
            cg_gflops_per_core: 2.2,
            mem_bw_gbs_per_socket: 120.0,
            isa_level: 1,
        }
    }

    /// Cavium ThunderX CN8890 (48 cores) — Mont-Blanc ThunderX mini-cluster.
    pub fn thunderx_cn8890() -> CpuModel {
        CpuModel {
            name: "Cavium ThunderX CN8890".into(),
            arch: CpuArch::Aarch64,
            uarch: "ThunderX".into(),
            clock_ghz: 2.0,
            cores_per_socket: 48,
            // in-order cores, no SIMD FMA pipe to speak of: weak per-core DP
            cg_gflops_per_core: 0.55,
            mem_bw_gbs_per_socket: 40.0,
            isa_level: 1,
        }
    }

    /// Seconds for one core to execute `flops` floating-point operations at
    /// the sustained CG-class rate.
    pub fn core_seconds(&self, flops: f64) -> f64 {
        debug_assert!(flops >= 0.0);
        flops / (self.cg_gflops_per_core * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arch_compat_is_equality() {
        assert!(CpuArch::X86_64.can_execute(CpuArch::X86_64));
        assert!(!CpuArch::X86_64.can_execute(CpuArch::Aarch64));
        assert!(!CpuArch::Ppc64le.can_execute(CpuArch::X86_64));
    }

    #[test]
    fn presets_have_sane_parameters() {
        for cpu in [
            CpuModel::xeon_e5_2697v3(),
            CpuModel::xeon_platinum_8160(),
            CpuModel::power9_8335gtg(),
            CpuModel::thunderx_cn8890(),
        ] {
            assert!(cpu.clock_ghz > 0.5 && cpu.clock_ghz < 5.0, "{}", cpu.name);
            assert!(cpu.cores_per_socket >= 14, "{}", cpu.name);
            assert!(
                cpu.cg_gflops_per_core > 0.1 && cpu.cg_gflops_per_core < 10.0,
                "{}",
                cpu.name
            );
            // sustained rate must be a small fraction of nominal peak
            let peak_ish = cpu.clock_ghz * 16.0; // generous upper bound GF/s/core
            assert!(cpu.cg_gflops_per_core < peak_ish, "{}", cpu.name);
        }
    }

    #[test]
    fn skylake_beats_thunderx_per_core() {
        let sky = CpuModel::xeon_platinum_8160();
        let tx = CpuModel::thunderx_cn8890();
        assert!(sky.cg_gflops_per_core > 3.0 * tx.cg_gflops_per_core);
    }

    #[test]
    fn core_seconds_scales_linearly() {
        let cpu = CpuModel::xeon_platinum_8160();
        let t1 = cpu.core_seconds(1e9);
        let t2 = cpu.core_seconds(2e9);
        assert!((t2 / t1 - 2.0).abs() < 1e-12);
        // 1 GFLOP at 2.6 GF/s ~ 0.385 s
        assert!((t1 - 1.0 / 2.6).abs() < 1e-9);
    }

    #[test]
    fn arch_names() {
        assert_eq!(CpuArch::X86_64.to_string(), "x86_64");
        assert_eq!(CpuArch::Ppc64le.to_string(), "ppc64le");
        assert_eq!(CpuArch::Aarch64.to_string(), "aarch64");
    }
}
