//! Compute-node models.

use crate::cpu::CpuModel;
use crate::threading::ThreadingModel;

/// A compute node: sockets of a CPU model plus memory and threading
/// parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeSpec {
    /// CPU populated in every socket.
    pub cpu: CpuModel,
    /// Number of sockets.
    pub sockets: u32,
    /// Main memory in GiB.
    pub mem_gib: u32,
    /// Shared-memory threading behaviour of this node's software stack.
    pub threading: ThreadingModel,
}

impl NodeSpec {
    /// A dual-socket node of the given CPU with the default HPC threading
    /// model.
    pub fn dual_socket(cpu: CpuModel, mem_gib: u32) -> NodeSpec {
        NodeSpec {
            cpu,
            sockets: 2,
            mem_gib,
            threading: ThreadingModel::hpc_default(),
        }
    }

    /// Total physical cores on the node.
    pub fn cores(&self) -> u32 {
        self.sockets * self.cpu.cores_per_socket
    }

    /// Aggregate memory bandwidth in GB/s.
    pub fn mem_bw_gbs(&self) -> f64 {
        self.sockets as f64 * self.cpu.mem_bw_gbs_per_socket
    }

    /// Wall-clock seconds for one MPI rank on this node to execute `flops`
    /// using `threads` OpenMP threads across `regions` parallel regions.
    ///
    /// # Panics
    /// Panics (debug) if `threads` exceeds the node's core count — a rank
    /// cannot use more threads than cores in the pinned HPC configurations
    /// the study uses.
    pub fn rank_compute_seconds(&self, flops: f64, threads: u32, regions: f64) -> f64 {
        debug_assert!(threads >= 1 && threads <= self.cores());
        let serial = self.cpu.core_seconds(flops);
        self.threading.parallel_time(serial, threads, regions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node() -> NodeSpec {
        NodeSpec::dual_socket(CpuModel::xeon_e5_2697v3(), 128)
    }

    #[test]
    fn core_count() {
        assert_eq!(node().cores(), 28);
    }

    #[test]
    fn mem_bw_sums_sockets() {
        assert!((node().mem_bw_gbs() - 118.0).abs() < 1e-9);
    }

    #[test]
    fn more_threads_less_time() {
        let n = node();
        let flops = 1e10;
        let t1 = n.rank_compute_seconds(flops, 1, 10.0);
        let t14 = n.rank_compute_seconds(flops, 14, 10.0);
        assert!(t14 < t1 / 8.0, "t1={t1} t14={t14}");
    }

    #[test]
    fn fixed_total_cores_tradeoff_exists() {
        // 28 cores filled as ranks x threads: total node throughput when
        // splitting the same total work W across r ranks of t threads each.
        let n = node();
        let total_flops = 1e11;
        let mut times = Vec::new();
        for (ranks, threads) in [(2u32, 14u32), (4, 7), (14, 2), (28, 1)] {
            let per_rank = total_flops / ranks as f64;
            times.push(n.rank_compute_seconds(per_rank, threads, 50.0));
        }
        // pure-MPI (28x1) must beat heavily-threaded (2x14) on pure compute
        // (no communication modelled here): fewer barriers, no serial residue
        // amplification.
        assert!(times[3] < times[0]);
    }
}
