//! Network topology: the switch hierarchy messages traverse.
//!
//! `Topology` names the shape (single switch, or a two-level fat tree with
//! a spine taper); [`crate::link::LinkGraph`] expands it into explicit
//! capacity-carrying links once the node count is known. Point-to-point
//! helpers ([`Topology::path_latency_s`], [`Topology::bandwidth_factor`])
//! stay here for single-message estimates; whole-round costs go through
//! the link graph.

use harborsim_hw::FabricLayout;

/// A topology model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Topology {
    /// Single switch: every node pair is one hop apart, full bisection.
    SingleSwitch {
        /// Per-switch-traversal latency in seconds.
        hop_latency_s: f64,
    },
    /// A `levels`-deep fat tree with `radix`-port switches and a global
    /// bandwidth taper (1.0 = full bisection, 0.5 = 2:1 oversubscribed).
    FatTree {
        /// Downlinks per edge switch (nodes per leaf).
        nodes_per_leaf: u32,
        /// Per-switch-traversal latency in seconds.
        hop_latency_s: f64,
        /// Fraction of injection bandwidth available for traffic that must
        /// cross the spine (1.0 = non-blocking).
        taper: f64,
    },
}

impl Topology {
    /// A small cluster's single managed switch (Lenox, ThunderX).
    pub fn small_cluster() -> Topology {
        Topology::SingleSwitch {
            hop_latency_s: 0.4e-6,
        }
    }

    /// MareNostrum4-like Omni-Path fat tree (48-node leaves, non-blocking
    /// within a rack pair, tapered above).
    pub fn mn4_fat_tree() -> Topology {
        Topology::FatTree {
            nodes_per_leaf: 48,
            hop_latency_s: 0.15e-6,
            taper: 0.8,
        }
    }

    /// CTE-POWER-like EDR fat tree (small machine, effectively one level).
    pub fn cte_fat_tree() -> Topology {
        Topology::FatTree {
            nodes_per_leaf: 26,
            hop_latency_s: 0.12e-6,
            taper: 1.0,
        }
    }

    /// The topology a cluster's declared [`FabricLayout`] describes.
    pub fn from_layout(layout: &FabricLayout) -> Topology {
        match layout.nodes_per_leaf {
            None => Topology::SingleSwitch {
                hop_latency_s: layout.hop_latency_s,
            },
            Some(nodes_per_leaf) => Topology::FatTree {
                nodes_per_leaf,
                hop_latency_s: layout.hop_latency_s,
                taper: layout.spine_taper,
            },
        }
    }

    /// Number of switch traversals between two nodes.
    pub fn hops(&self, node_a: u32, node_b: u32) -> u32 {
        if node_a == node_b {
            return 0;
        }
        match self {
            Topology::SingleSwitch { .. } => 1,
            Topology::FatTree { nodes_per_leaf, .. } => {
                if node_a / nodes_per_leaf == node_b / nodes_per_leaf {
                    1 // same leaf switch
                } else {
                    3 // leaf -> spine -> leaf
                }
            }
        }
    }

    /// Extra latency for the path between two nodes, seconds.
    pub fn path_latency_s(&self, node_a: u32, node_b: u32) -> f64 {
        let h = self.hops(node_a, node_b) as f64;
        match self {
            Topology::SingleSwitch { hop_latency_s } => h * hop_latency_s,
            Topology::FatTree { hop_latency_s, .. } => h * hop_latency_s,
        }
    }

    /// Bandwidth de-rating for traffic between two nodes (1.0 within a leaf,
    /// the taper across the spine).
    pub fn bandwidth_factor(&self, node_a: u32, node_b: u32) -> f64 {
        match self {
            Topology::SingleSwitch { .. } => 1.0,
            Topology::FatTree {
                nodes_per_leaf,
                taper,
                ..
            } => {
                if node_a == node_b || node_a / nodes_per_leaf == node_b / nodes_per_leaf {
                    1.0
                } else {
                    *taper
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_node_is_free() {
        let t = Topology::mn4_fat_tree();
        assert_eq!(t.hops(5, 5), 0);
        assert_eq!(t.path_latency_s(5, 5), 0.0);
        assert_eq!(t.bandwidth_factor(5, 5), 1.0);
    }

    #[test]
    fn single_switch_is_one_hop() {
        let t = Topology::small_cluster();
        assert_eq!(t.hops(0, 3), 1);
        assert!(t.path_latency_s(0, 3) > 0.0);
        assert_eq!(t.bandwidth_factor(0, 3), 1.0);
    }

    #[test]
    fn fat_tree_leaf_locality() {
        let t = Topology::mn4_fat_tree();
        assert_eq!(t.hops(0, 47), 1, "same 48-node leaf");
        assert_eq!(t.hops(0, 48), 3, "crosses the spine");
        assert!(t.path_latency_s(0, 48) > t.path_latency_s(0, 47));
        assert_eq!(t.bandwidth_factor(0, 47), 1.0);
        assert!((t.bandwidth_factor(0, 48) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn layouts_expand_to_topologies() {
        assert_eq!(
            Topology::from_layout(&FabricLayout::single_switch(0.4e-6)),
            Topology::small_cluster()
        );
        assert_eq!(
            Topology::from_layout(&FabricLayout::fat_tree(48, 0.15e-6, 0.8)),
            Topology::mn4_fat_tree()
        );
    }
}
