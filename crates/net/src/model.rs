//! The composed network model: fabric × transport stack × container data
//! path × topology.

use crate::fabric::{fabric_transports, nic_bandwidth_bps, shm_transport};
use crate::topology::Topology;
use crate::transport::TransportParams;
use harborsim_hw::InterconnectKind;

/// Which transport stack the MPI library managed to open.
///
/// Bare-metal and *system-specific* containers (host MPI and fabric
/// libraries bound into the image) open the native stack. *Self-contained*
/// containers carry their own MPI without the host's vendor userspace
/// drivers, so on kernel-bypass fabrics they fall back to IP emulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransportSelection {
    /// Kernel-bypass / best available stack.
    Native,
    /// TCP over the fabric's IP personality (IPoIB, IPoFabric, plain TCP).
    TcpFallback,
}

/// How container networking wraps the transport.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DataPath {
    /// Host networking: bare metal, Singularity, Shifter. No wrapping.
    Host,
    /// Docker's default bridge network: every message crosses a veth pair
    /// and NAT in the root network namespace. Three costs, all calibrated
    /// against published container-networking microbenchmarks:
    ///
    /// - a per-message CPU tax on the sending rank's core;
    /// - a *serialized* per-message cost on the node's single softirq/NAT
    ///   path — the term that grows with ranks-per-node and produces the
    ///   paper's "Docker degrades as we scale in MPI";
    /// - an absolute throughput ceiling of the bridge data path (irrelevant
    ///   on 1GbE, where the wire remains the bottleneck; crippling on
    ///   kernel-bypass fabrics).
    DockerBridge {
        /// Extra per-message CPU overhead on the sending rank, seconds.
        per_message_cpu_s: f64,
        /// Serialized per-message cost on the node's bridge path, seconds.
        serialized_per_msg_s: f64,
        /// Bridge throughput ceiling, bytes/s.
        bandwidth_cap_bps: f64,
    },
}

impl DataPath {
    /// Default Docker bridge parameters: ~45 µs NAT/veth CPU per message,
    /// ~10 µs serialized softirq time per message, ~2.5 GB/s path ceiling.
    pub fn docker_default_bridge() -> DataPath {
        DataPath::DockerBridge {
            per_message_cpu_s: 45e-6,
            serialized_per_msg_s: 10e-6,
            bandwidth_cap_bps: 2.5e9,
        }
    }
}

/// The effective communication behaviour observed by one MPI job.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkModel {
    /// Effective inter-node transport.
    pub inter: TransportParams,
    /// Effective intra-node transport.
    pub intra: TransportParams,
    /// Raw NIC bandwidth per node (cap for aggregate outbound traffic).
    pub nic_bw_bps: f64,
    /// Switch topology.
    pub topology: Topology,
    /// Serialized per-message cost on the node's container-network path
    /// (0 on host networking): every outgoing message — intra or inter —
    /// queues through this, modelling the bridge's single softirq path.
    pub node_serialized_per_msg_s: f64,
}

impl NetworkModel {
    /// Compose the model for a fabric, stack selection and data path, with a
    /// topology chosen by the caller (clusters pick theirs in presets).
    pub fn compose(
        fabric: InterconnectKind,
        selection: TransportSelection,
        path: DataPath,
        topology: Topology,
    ) -> NetworkModel {
        let stacks = fabric_transports(fabric);
        let base_inter = match selection {
            TransportSelection::Native => stacks.native,
            TransportSelection::TcpFallback => stacks.tcp_fallback,
        };
        let (inter, intra, serialized) = match path {
            DataPath::Host => (base_inter, shm_transport(), 0.0),
            DataPath::DockerBridge {
                per_message_cpu_s,
                serialized_per_msg_s,
                bandwidth_cap_bps,
            } => {
                let mut inter = base_inter;
                inter.overhead_s += per_message_cpu_s;
                inter.bandwidth_bps = inter.bandwidth_bps.min(bandwidth_cap_bps);
                // between two containers on one node the packet still crosses
                // both veth pairs and the bridge: latency is software-only but
                // far above shared memory, bandwidth is memcpy-through-kernel
                let intra = TransportParams::new(
                    12e-6,
                    6e-6 + per_message_cpu_s / 2.0,
                    2.0e9_f64.min(bandwidth_cap_bps),
                    32 * 1024,
                );
                (inter, intra, serialized_per_msg_s)
            }
        };
        NetworkModel {
            inter,
            intra,
            nic_bw_bps: nic_bandwidth_bps(fabric),
            topology,
            node_serialized_per_msg_s: serialized,
        }
    }

    /// The transport used between two ranks placed on the given nodes.
    pub fn transport_between(&self, node_a: u32, node_b: u32) -> &TransportParams {
        if node_a == node_b {
            &self.intra
        } else {
            &self.inter
        }
    }

    /// Uncontended point-to-point time between ranks on the given nodes,
    /// including topology path latency and spine bandwidth tapering.
    pub fn ptp_seconds(&self, node_a: u32, node_b: u32, bytes: u64) -> f64 {
        if node_a == node_b {
            return self.intra.ptp_seconds(bytes);
        }
        let base = self.inter.ptp_seconds(bytes);
        let ser = self.inter.serialization_seconds(bytes);
        let factor = self.topology.bandwidth_factor(node_a, node_b);
        base - ser + ser / factor + self.topology.path_latency_s(node_a, node_b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn host_ib() -> NetworkModel {
        NetworkModel::compose(
            InterconnectKind::InfinibandEdr,
            TransportSelection::Native,
            DataPath::Host,
            Topology::cte_fat_tree(),
        )
    }

    #[test]
    fn native_vs_fallback_on_ib() {
        let native = host_ib();
        let fallback = NetworkModel::compose(
            InterconnectKind::InfinibandEdr,
            TransportSelection::TcpFallback,
            DataPath::Host,
            Topology::cte_fat_tree(),
        );
        let msg = 64 * 1024;
        let tn = native.ptp_seconds(0, 1, msg);
        let tf = fallback.ptp_seconds(0, 1, msg);
        assert!(tf > 5.0 * tn, "fallback {tf} native {tn}");
        // intra-node path is unaffected by the stack selection
        assert_eq!(native.intra, fallback.intra);
    }

    #[test]
    fn docker_bridge_taxes_both_paths() {
        let host = NetworkModel::compose(
            InterconnectKind::GigabitEthernet,
            TransportSelection::Native,
            DataPath::Host,
            Topology::small_cluster(),
        );
        let docker = NetworkModel::compose(
            InterconnectKind::GigabitEthernet,
            TransportSelection::Native,
            DataPath::docker_default_bridge(),
            Topology::small_cluster(),
        );
        for bytes in [0u64, 1024, 1 << 20] {
            assert!(
                docker.ptp_seconds(0, 1, bytes) > host.ptp_seconds(0, 1, bytes),
                "inter bytes={bytes}"
            );
            assert!(
                docker.ptp_seconds(0, 0, bytes) > host.ptp_seconds(0, 0, bytes),
                "intra bytes={bytes}"
            );
        }
    }

    #[test]
    fn intra_node_uses_shm_on_host_path() {
        let m = host_ib();
        assert!(m.ptp_seconds(3, 3, 4096) < m.ptp_seconds(3, 4, 4096));
        assert_eq!(m.intra, crate::fabric::shm_transport());
    }

    #[test]
    fn topology_taper_applies_across_leaves() {
        let m = NetworkModel::compose(
            InterconnectKind::OmniPath100,
            TransportSelection::Native,
            DataPath::Host,
            Topology::mn4_fat_tree(),
        );
        let big = 10 << 20;
        let in_leaf = m.ptp_seconds(0, 47, big);
        let cross = m.ptp_seconds(0, 48, big);
        assert!(cross > in_leaf, "cross={cross} in_leaf={in_leaf}");
    }

    #[test]
    fn transport_between_picks_correctly() {
        let m = host_ib();
        assert_eq!(*m.transport_between(2, 2), m.intra);
        assert_eq!(*m.transport_between(2, 3), m.inter);
    }
}
