//! Per-fabric transport parameter presets.
//!
//! Each fabric exposes two stacks:
//!
//! - **native** — what the host's MPI reaches through vendor userspace
//!   drivers (verbs on InfiniBand, PSM2 on Omni-Path, plain TCP on
//!   Ethernet — Ethernet has no kernel-bypass stack in these clusters);
//! - **tcp_fallback** — what an MPI library falls back to when the native
//!   userspace driver is missing, as happens inside a *self-contained*
//!   container image: IPoIB on InfiniBand, IPoFabric on Omni-Path, and the
//!   same TCP as native on Ethernet (nothing to lose there).
//!
//! Numbers follow published microbenchmarks of these stacks (OSU-style):
//! kernel-bypass fabrics sit at ~1 µs / ~11 GB/s, their IP-emulation modes
//! at ~20 µs / ~1 GB/s, TCP over 1GbE at ~50 µs / 117 MB/s.

use crate::transport::TransportParams;
use harborsim_hw::InterconnectKind;

/// The two stacks a fabric offers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FabricTransports {
    /// Kernel-bypass (or best available) stack.
    pub native: TransportParams,
    /// IP-emulation stack used when userspace drivers are unavailable.
    pub tcp_fallback: TransportParams,
}

/// Transport parameters for a fabric kind.
pub fn fabric_transports(kind: InterconnectKind) -> FabricTransports {
    match kind {
        InterconnectKind::GigabitEthernet => {
            let tcp = TransportParams::new(50e-6, 10e-6, 117e6, 32 * 1024);
            FabricTransports {
                native: tcp,
                tcp_fallback: tcp,
            }
        }
        InterconnectKind::FortyGigEthernet => {
            let tcp = TransportParams::new(25e-6, 8e-6, 4.4e9, 32 * 1024);
            FabricTransports {
                native: tcp,
                tcp_fallback: tcp,
            }
        }
        InterconnectKind::InfinibandEdr => FabricTransports {
            native: TransportParams::new(1.0e-6, 0.3e-6, 11.5e9, 16 * 1024),
            tcp_fallback: TransportParams::new(18e-6, 6e-6, 1.2e9, 32 * 1024),
        },
        InterconnectKind::OmniPath100 => FabricTransports {
            native: TransportParams::new(1.1e-6, 0.3e-6, 11.0e9, 16 * 1024),
            tcp_fallback: TransportParams::new(20e-6, 6e-6, 2.2e9, 32 * 1024),
        },
    }
}

/// Intra-node shared-memory transport (CMA/XPMEM-style): sub-microsecond
/// latency; the bandwidth figure is the *node-wide* aggregate copy rate
/// (all pairs share the memory system, which moves tens of GB/s — always
/// faster than any NIC, or scattering ranks across nodes would look good).
pub fn shm_transport() -> TransportParams {
    TransportParams::new(0.3e-6, 0.15e-6, 40e9, 4 * 1024)
}

/// Raw NIC bandwidth of a fabric in bytes/s (for per-node uplink contention:
/// all ranks of a node share this regardless of stack).
pub fn nic_bandwidth_bps(kind: InterconnectKind) -> f64 {
    match kind {
        InterconnectKind::GigabitEthernet => 117e6,
        InterconnectKind::FortyGigEthernet => 4.4e9,
        InterconnectKind::InfinibandEdr => 11.5e9,
        InterconnectKind::OmniPath100 => 11.0e9,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ethernet_fallback_equals_native() {
        for kind in [
            InterconnectKind::GigabitEthernet,
            InterconnectKind::FortyGigEthernet,
        ] {
            let f = fabric_transports(kind);
            assert_eq!(f.native, f.tcp_fallback, "{kind}");
        }
    }

    #[test]
    fn kernel_bypass_fabrics_lose_badly_on_fallback() {
        for kind in [
            InterconnectKind::InfinibandEdr,
            InterconnectKind::OmniPath100,
        ] {
            let f = fabric_transports(kind);
            assert!(
                f.tcp_fallback.latency_s > 10.0 * f.native.latency_s,
                "{kind}: fallback latency should be >10x native"
            );
            assert!(
                f.native.bandwidth_bps >= 4.0 * f.tcp_fallback.bandwidth_bps,
                "{kind}: native bandwidth should be >=4x fallback"
            );
        }
    }

    #[test]
    fn shm_beats_every_wire() {
        let shm = shm_transport();
        for kind in [
            InterconnectKind::GigabitEthernet,
            InterconnectKind::FortyGigEthernet,
            InterconnectKind::InfinibandEdr,
            InterconnectKind::OmniPath100,
        ] {
            let f = fabric_transports(kind);
            assert!(shm.latency_s < f.native.latency_s, "{kind}");
        }
    }

    #[test]
    fn fabric_ranking_small_messages() {
        // 8-byte latency ordering: IB ~ OPA << 40GbE << 1GbE
        let t = |k| fabric_transports(k).native.ptp_seconds(8);
        let ib = t(InterconnectKind::InfinibandEdr);
        let opa = t(InterconnectKind::OmniPath100);
        let e40 = t(InterconnectKind::FortyGigEthernet);
        let e1 = t(InterconnectKind::GigabitEthernet);
        assert!(ib < e40 && opa < e40 && e40 < e1);
    }

    #[test]
    fn nic_bandwidth_consistent_with_native_transport() {
        for kind in [
            InterconnectKind::GigabitEthernet,
            InterconnectKind::FortyGigEthernet,
            InterconnectKind::InfinibandEdr,
            InterconnectKind::OmniPath100,
        ] {
            let nic = nic_bandwidth_bps(kind);
            let native = fabric_transports(kind).native.bandwidth_bps;
            assert!((nic - native).abs() / nic < 1e-9, "{kind}");
        }
    }
}
