//! # harborsim-net
//!
//! Interconnect models: fabric transport parameters (LogGP-style), transport
//! *stacks* (native kernel-bypass vs TCP fallback), container data paths
//! (host networking vs Docker's bridge/NAT), and the routed link graph —
//! explicit node→leaf→spine links with capacities, routes, and the fluid
//! schedule both simulation engines cost communication rounds with.
//!
//! The central object is [`NetworkModel`]: the *effective* communication
//! behaviour an MPI job observes once the fabric, the transport stack the MPI
//! library managed to open, and the container data path are composed. The
//! whole portability story of the paper lives in this composition:
//!
//! - **bare metal / system-specific container** on InfiniBand EDR →
//!   [`TransportSelection::Native`] → 1 µs latency, 11.5 GB/s;
//! - **self-contained container** on the same machine → its bundled MPI
//!   cannot see `libmlx5`, so [`TransportSelection::TcpFallback`] → 18 µs
//!   latency, 1.2 GB/s over IPoIB — and Fig. 2/3's flattening curves follow;
//! - **Docker with default bridge networking** → every message additionally
//!   traverses veth + NAT ([`DataPath::DockerBridge`]) — and Fig. 1's
//!   divergence with rank count follows.

pub mod fabric;
pub mod link;
pub mod model;
pub mod route;
pub mod scratch;
pub mod topology;
pub mod transport;

pub use fabric::{fabric_transports, shm_transport, FabricTransports};
pub use link::{Link, LinkClass, LinkGraph, LinkId};
pub use model::{DataPath, NetworkModel, TransportSelection};
pub use route::{route_tables_built, LinkSchedule, Route, RouteTable};
pub use scratch::ScratchPool;
pub use topology::Topology;
pub use transport::TransportParams;
