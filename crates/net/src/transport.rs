//! LogGP-style transport parameters and point-to-point timing.
//!
//! A transport is described by four numbers plus the eager/rendezvous
//! threshold of the MPI protocol running over it:
//!
//! - `latency_s` — one-way wire + stack traversal latency (LogGP's *L*),
//! - `overhead_s` — per-message CPU cost at each endpoint (LogGP's *o*),
//! - `bandwidth_bps` — sustained streaming bandwidth (1/*G*),
//! - `eager_threshold` — messages larger than this use the rendezvous
//!   protocol, paying an extra request/acknowledge round-trip before data
//!   can flow.

/// Parameters of one transport stack.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransportParams {
    /// One-way latency in seconds.
    pub latency_s: f64,
    /// Per-message send/receive CPU overhead in seconds (each side).
    pub overhead_s: f64,
    /// Effective streaming bandwidth in bytes/second.
    pub bandwidth_bps: f64,
    /// Messages above this many bytes use the rendezvous protocol.
    pub eager_threshold: u64,
}

impl TransportParams {
    /// Construct with explicit values, validating positivity.
    pub fn new(latency_s: f64, overhead_s: f64, bandwidth_bps: f64, eager_threshold: u64) -> Self {
        assert!(latency_s >= 0.0 && overhead_s >= 0.0);
        assert!(bandwidth_bps > 0.0, "bandwidth must be positive");
        TransportParams {
            latency_s,
            overhead_s,
            bandwidth_bps,
            eager_threshold,
        }
    }

    /// End-to-end time for one point-to-point message of `bytes`, assuming a
    /// ready receiver and an uncontended path.
    ///
    /// Eager: `2o + L + bytes/BW`. Rendezvous adds a request/ack handshake:
    /// one extra round-trip (`2(L + 2o)`) before the payload moves.
    pub fn ptp_seconds(&self, bytes: u64) -> f64 {
        let serialization = bytes as f64 / self.bandwidth_bps;
        let base = 2.0 * self.overhead_s + self.latency_s + serialization;
        if bytes > self.eager_threshold {
            base + 2.0 * (self.latency_s + 2.0 * self.overhead_s)
        } else {
            base
        }
    }

    /// Time for the payload only (no latency/overhead) — used when a message
    /// is pipelined behind others on the same NIC.
    pub fn serialization_seconds(&self, bytes: u64) -> f64 {
        bytes as f64 / self.bandwidth_bps
    }

    /// Latency + per-message costs only (the α term of the α-β model).
    pub fn alpha_seconds(&self, bytes: u64) -> f64 {
        self.ptp_seconds(bytes) - self.serialization_seconds(bytes)
    }

    /// A transport with an extra per-message overhead and a bandwidth
    /// de-rating factor applied — how container data paths wrap a base
    /// transport.
    pub fn with_per_message_tax(&self, extra_overhead_s: f64, bandwidth_factor: f64) -> Self {
        assert!(bandwidth_factor > 0.0 && bandwidth_factor <= 1.0);
        TransportParams {
            latency_s: self.latency_s,
            overhead_s: self.overhead_s + extra_overhead_s,
            bandwidth_bps: self.bandwidth_bps * bandwidth_factor,
            eager_threshold: self.eager_threshold,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tcp_1gbe() -> TransportParams {
        TransportParams::new(50e-6, 10e-6, 117e6, 32 * 1024)
    }

    #[test]
    fn zero_byte_message_costs_alpha() {
        let t = tcp_1gbe();
        let dt = t.ptp_seconds(0);
        assert!((dt - (50e-6 + 20e-6)).abs() < 1e-12);
    }

    #[test]
    fn large_messages_dominated_by_bandwidth() {
        let t = tcp_1gbe();
        let dt = t.ptp_seconds(117_000_000); // 1 second of wire time
        assert!(dt > 1.0 && dt < 1.001);
    }

    #[test]
    fn rendezvous_kicks_in_above_threshold() {
        let t = tcp_1gbe();
        let below = t.ptp_seconds(32 * 1024);
        let above = t.ptp_seconds(32 * 1024 + 1);
        // the extra round-trip is 2*(L + 2o) = 2*(50+20)us = 140us
        let jump = above - below;
        // (plus one byte of serialization, ~8.5 ns on 1GbE)
        assert!((jump - 140e-6).abs() < 1e-7, "jump={jump}");
    }

    #[test]
    fn monotone_in_bytes() {
        let t = tcp_1gbe();
        let mut prev = 0.0;
        for bytes in [0u64, 1, 100, 10_000, 32_768, 32_769, 1 << 20, 1 << 24] {
            let dt = t.ptp_seconds(bytes);
            assert!(dt >= prev, "bytes={bytes}");
            prev = dt;
        }
    }

    #[test]
    fn per_message_tax_composition() {
        let base = tcp_1gbe();
        let taxed = base.with_per_message_tax(30e-6, 0.5);
        assert!((taxed.overhead_s - 40e-6).abs() < 1e-12);
        assert!((taxed.bandwidth_bps - 58.5e6).abs() < 1.0);
        assert_eq!(taxed.eager_threshold, base.eager_threshold);
        // the tax strictly slows every message
        for bytes in [0u64, 1024, 1 << 20] {
            assert!(taxed.ptp_seconds(bytes) > base.ptp_seconds(bytes));
        }
    }

    #[test]
    fn alpha_beta_split_adds_up() {
        let t = tcp_1gbe();
        for bytes in [0u64, 512, 100_000] {
            let total = t.ptp_seconds(bytes);
            let split = t.alpha_seconds(bytes) + t.serialization_seconds(bytes);
            assert!((total - split).abs() < 1e-15);
        }
    }
}
