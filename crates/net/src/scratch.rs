//! A tiny thread-safe free-list of reusable scratch state.
//!
//! Engines that execute a cached plan repeatedly (`ScenarioPlan::execute`
//! over many seeds) keep their per-run working state — event arenas, link
//! schedules, tally vectors — in a [`ScratchPool`] instead of reallocating
//! it every run: take a box off the pool (or build a fresh one on first
//! use), reset it in place, run, put it back. Concurrent executions on the
//! lab's worker pool each take their own box, so the pool grows to the peak
//! concurrency and then stops allocating.
//!
//! The pool deliberately knows nothing about the scratch type: resetting is
//! the caller's job, because only the engine knows which dimensions of the
//! scratch depend on the plan.

use std::sync::{Arc, Mutex};

/// A shared stack of `Box<T>` scratch values.
pub struct ScratchPool<T> {
    stack: Arc<Mutex<Vec<Box<T>>>>,
}

impl<T> ScratchPool<T> {
    /// An empty pool.
    pub fn new() -> ScratchPool<T> {
        ScratchPool {
            stack: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// Pop a scratch value, if one is idle. `None` means the caller should
    /// build a fresh one (and [`put`](ScratchPool::put) it back when done).
    pub fn take(&self) -> Option<Box<T>> {
        self.stack.lock().expect("scratch pool poisoned").pop()
    }

    /// Return a scratch value to the pool for the next run.
    pub fn put(&self, scratch: Box<T>) {
        self.stack
            .lock()
            .expect("scratch pool poisoned")
            .push(scratch);
    }

    /// Number of idle scratch values currently pooled.
    pub fn idle(&self) -> usize {
        self.stack.lock().expect("scratch pool poisoned").len()
    }
}

impl<T> Default for ScratchPool<T> {
    fn default() -> Self {
        ScratchPool::new()
    }
}

// Clones share the same pool: a cloned engine reuses its sibling's scratch.
impl<T> Clone for ScratchPool<T> {
    fn clone(&self) -> Self {
        ScratchPool {
            stack: Arc::clone(&self.stack),
        }
    }
}

impl<T> std::fmt::Debug for ScratchPool<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScratchPool")
            .field("idle", &self.idle())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_put_round_trip_reuses_storage() {
        let pool: ScratchPool<Vec<u64>> = ScratchPool::new();
        assert!(pool.take().is_none());
        let mut v = Box::new(vec![0u64; 128]);
        let ptr = v.as_ptr();
        v.clear();
        pool.put(v);
        assert_eq!(pool.idle(), 1);
        let back = pool.take().expect("pooled value");
        assert_eq!(back.as_ptr(), ptr, "same allocation comes back");
        assert!(pool.take().is_none());
    }

    #[test]
    fn clones_share_the_pool() {
        let a: ScratchPool<u32> = ScratchPool::new();
        let b = a.clone();
        a.put(Box::new(7));
        assert_eq!(b.idle(), 1);
        assert_eq!(*b.take().unwrap(), 7);
        assert_eq!(a.idle(), 0);
    }
}
