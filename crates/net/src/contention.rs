//! NIC-sharing (contention) helpers for the analytic engine.
//!
//! When many ranks on one node communicate at once, per-message CPU costs
//! parallelize across their cores but the wire does not: every byte must
//! leave through the same NIC. These closed forms feed the bulk-synchronous
//! MPI engine; the message-level DES engine gets the same behaviour from a
//! FIFO resource per NIC.

use crate::transport::TransportParams;

/// Wall-clock seconds for a phase in which `senders` ranks on one node each
/// send `msgs_per_sender` messages of `bytes_per_msg` bytes to peers on other
/// nodes, given the node's raw NIC bandwidth.
///
/// Model: per-rank protocol CPU time runs in parallel (each rank owns a
/// core); payload serialization shares the *node-level* stream rate —
/// `min(transport BW, NIC BW)`. A transport's bandwidth figure is a
/// node-level cap, not per-flow: kernel-bypass stacks saturate the NIC from
/// one flow, and IP-emulation stacks (IPoIB, IPoFabric) bottleneck in the
/// kernel no matter how many ranks send — which is exactly why a
/// self-contained container cannot "use the Mellanox EDR network".
pub fn concurrent_send_seconds(
    t: &TransportParams,
    nic_bw_bps: f64,
    senders: u32,
    msgs_per_sender: u32,
    bytes_per_msg: u64,
) -> f64 {
    debug_assert!(senders >= 1);
    let per_rank_alpha = msgs_per_sender as f64 * t.alpha_seconds(bytes_per_msg);
    let total_bytes = senders as f64 * msgs_per_sender as f64 * bytes_per_msg as f64;
    let aggregate_bw = t.bandwidth_bps.min(nic_bw_bps);
    per_rank_alpha + total_bytes / aggregate_bw
}

/// The effective per-rank bandwidth when `senders` ranks share one node's
/// outbound stream rate.
pub fn per_rank_bandwidth_bps(t: &TransportParams, nic_bw_bps: f64, senders: u32) -> f64 {
    debug_assert!(senders >= 1);
    t.bandwidth_bps.min(nic_bw_bps) / senders as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ib() -> TransportParams {
        TransportParams::new(1.0e-6, 0.3e-6, 11.5e9, 16 * 1024)
    }

    fn gbe() -> TransportParams {
        TransportParams::new(50e-6, 10e-6, 117e6, 32 * 1024)
    }

    #[test]
    fn single_sender_matches_ptp() {
        let t = ib();
        let a = concurrent_send_seconds(&t, 11.5e9, 1, 1, 4096);
        let b = t.ptp_seconds(4096);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn nic_bound_fabric_serializes_bytes() {
        // on IB, one flow already saturates the NIC: doubling senders about
        // doubles the wire time for the same per-sender volume
        let t = ib();
        let big = 1 << 20;
        let one = concurrent_send_seconds(&t, 11.5e9, 1, 1, big);
        let two = concurrent_send_seconds(&t, 11.5e9, 2, 1, big);
        let ratio = two / one;
        assert!(ratio > 1.8 && ratio < 2.2, "ratio={ratio}");
    }

    #[test]
    fn contention_grows_with_senders_on_gbe() {
        let t = gbe();
        let mut prev = 0.0;
        for senders in [1u32, 2, 7, 14, 28] {
            let dt = concurrent_send_seconds(&t, 117e6, senders, 4, 10_000);
            assert!(dt > prev, "senders={senders}");
            prev = dt;
        }
    }

    #[test]
    fn per_rank_bandwidth_splits_nic() {
        let t = gbe();
        let b1 = per_rank_bandwidth_bps(&t, 117e6, 1);
        let b28 = per_rank_bandwidth_bps(&t, 117e6, 28);
        assert!((b1 - 117e6).abs() < 1.0);
        assert!((b28 - 117e6 / 28.0).abs() < 1.0);
    }
}
