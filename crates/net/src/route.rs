//! Routes over the link graph, and the fluid schedule that costs them.
//!
//! A [`RouteTable`] fixes, once per compiled scenario, which links every
//! (src rank, dst rank) pair traverses. Routing is deterministic — up to
//! the leaf, across the spine, down — so the table only needs each rank's
//! node placement to answer in O(1); nothing is materialized per pair
//! (a 256-node MareNostrum4 job has 12,288 ranks — 150M pairs).
//!
//! [`LinkSchedule`] is the analytic engine's costing device: a fluid
//! (max-min sharing, no packet granularity) schedule where every message of
//! a round deposits `bytes / capacity` of busy time on each link it
//! crosses, and the round's wire time is the busiest link. The DES engine
//! uses the same routes but materializes the links as FIFO resources, so
//! both engines disagree only about queueing, never about topology.

use crate::link::{LinkGraph, LinkId};
use std::sync::atomic::{AtomicU64, Ordering};

/// How many [`RouteTable`]s have been built, process-wide. Route tables are
/// per-plan artifacts: sweeps that rebuild them per seed are doing O(seeds)
/// work that should be O(1), and the regression tests pin that.
static ROUTE_TABLES_BUILT: AtomicU64 = AtomicU64::new(0);

/// Process-wide count of [`RouteTable::build`] calls.
pub fn route_tables_built() -> u64 {
    ROUTE_TABLES_BUILT.load(Ordering::Relaxed)
}

/// The ordered links one message traverses, plus the switch latency it pays.
///
/// At most four links (node-up, leaf-up, leaf-down, node-down); same-node
/// traffic traverses none and same-leaf traffic skips the spine pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Route {
    links: [LinkId; 4],
    len: u8,
    latency_s: f64,
}

impl Route {
    const LOCAL: Route = Route {
        links: [LinkId(0); 4],
        len: 0,
        latency_s: 0.0,
    };

    /// The links in traversal order (which is also the DES lock order).
    #[inline]
    pub fn links(&self) -> &[LinkId] {
        &self.links[..self.len as usize]
    }

    /// True when src and dst share a node: no links, no switch latency.
    #[inline]
    pub fn is_local(&self) -> bool {
        self.len == 0
    }

    /// Total switch-traversal latency along the route, seconds.
    #[inline]
    pub fn latency_s(&self) -> f64 {
        self.latency_s
    }
}

/// Per-plan routing: a link graph plus each rank's node placement.
#[derive(Debug, Clone, PartialEq)]
pub struct RouteTable {
    graph: LinkGraph,
    node_of_rank: Box<[u32]>,
}

impl RouteTable {
    /// Bind a graph to a rank placement. Counted in [`route_tables_built`].
    pub fn build(graph: LinkGraph, node_of_rank: Vec<u32>) -> RouteTable {
        assert!(!node_of_rank.is_empty(), "a job has at least one rank");
        for (r, &n) in node_of_rank.iter().enumerate() {
            assert!(n < graph.nodes(), "rank {r} placed on absent node {n}");
        }
        ROUTE_TABLES_BUILT.fetch_add(1, Ordering::Relaxed);
        RouteTable {
            graph,
            node_of_rank: node_of_rank.into_boxed_slice(),
        }
    }

    /// The link graph routed over.
    pub fn graph(&self) -> &LinkGraph {
        &self.graph
    }

    /// Mutable graph access, for degrading links before the table is shared.
    pub fn graph_mut(&mut self) -> &mut LinkGraph {
        &mut self.graph
    }

    /// Ranks in the placement.
    pub fn ranks(&self) -> u32 {
        self.node_of_rank.len() as u32
    }

    /// The node hosting `rank`.
    #[inline]
    pub fn node_of(&self, rank: u32) -> u32 {
        self.node_of_rank[rank as usize]
    }

    /// The route from rank `src` to rank `dst`, computed in O(1).
    #[inline]
    pub fn route(&self, src: u32, dst: u32) -> Route {
        self.route_between_nodes(self.node_of(src), self.node_of(dst))
    }

    /// The route between two nodes.
    pub fn route_between_nodes(&self, a: u32, b: u32) -> Route {
        if a == b {
            return Route::LOCAL;
        }
        let g = &self.graph;
        let (la, lb) = (g.leaf_of(a), g.leaf_of(b));
        if la == lb {
            Route {
                links: [g.node_up(a), g.node_down(b), LinkId(0), LinkId(0)],
                len: 2,
                latency_s: g.hop_latency_s(),
            }
        } else {
            Route {
                links: [g.node_up(a), g.leaf_up(la), g.leaf_down(lb), g.node_down(b)],
                len: 4,
                latency_s: 3.0 * g.hop_latency_s(),
            }
        }
    }
}

/// Fluid costing of one communication round over a [`LinkGraph`].
///
/// `add` deposits a message on its route; [`wire_seconds`](Self::wire_seconds)
/// then reads off the round's serialization time as the busiest link — every
/// link drains its queued bytes at full capacity, concurrently. The per-link
/// busy and byte tallies survive for utilization reporting.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkSchedule {
    busy_s: Vec<f64>,
    bytes: Vec<u64>,
    max_latency_s: f64,
}

impl LinkSchedule {
    /// An empty schedule over `links` links (see [`LinkGraph::len`]).
    pub fn new(links: usize) -> LinkSchedule {
        LinkSchedule {
            busy_s: vec![0.0; links],
            bytes: vec![0; links],
            max_latency_s: 0.0,
        }
    }

    /// Deposit one `bytes`-sized message on `route`.
    pub fn add(&mut self, graph: &LinkGraph, route: &Route, bytes: u64) {
        for &l in route.links() {
            self.busy_s[l.index()] += bytes as f64 / graph.capacity_bps(l);
            self.bytes[l.index()] += bytes;
        }
        self.max_latency_s = self.max_latency_s.max(route.latency_s());
    }

    /// The round's wire time: the busiest link's drain time.
    pub fn wire_seconds(&self) -> f64 {
        self.busy_s.iter().copied().fold(0.0, f64::max)
    }

    /// The longest switch latency any message of the round pays.
    pub fn max_latency_s(&self) -> f64 {
        self.max_latency_s
    }

    /// Per-link busy seconds, indexed by [`LinkId::index`].
    pub fn busy_s(&self) -> &[f64] {
        &self.busy_s
    }

    /// Per-link bytes carried, indexed by [`LinkId::index`].
    pub fn bytes(&self) -> &[u64] {
        &self.bytes
    }

    /// Clear the schedule for the next round, keeping the allocation.
    pub fn reset(&mut self) {
        self.busy_s.fill(0.0);
        self.bytes.fill(0);
        self.max_latency_s = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Topology;

    fn table() -> RouteTable {
        // 4 nodes x 2-node leaves, 2 ranks per node, block placement
        let g = LinkGraph::build(
            &Topology::FatTree {
                nodes_per_leaf: 2,
                hop_latency_s: 1e-6,
                taper: 0.5,
            },
            4,
            1e9,
            1e9,
        );
        RouteTable::build(g, vec![0, 0, 1, 1, 2, 2, 3, 3])
    }

    #[test]
    fn builds_are_counted() {
        let before = route_tables_built();
        let _a = table();
        let _b = table();
        assert!(route_tables_built() >= before + 2);
    }

    #[test]
    fn same_node_routes_nothing() {
        let t = table();
        let r = t.route(0, 1);
        assert!(r.is_local());
        assert!(r.links().is_empty());
        assert_eq!(r.latency_s(), 0.0);
    }

    #[test]
    fn same_leaf_skips_the_spine() {
        let t = table();
        let r = t.route(0, 2); // node 0 -> node 1, both under leaf 0
        let g = t.graph();
        assert_eq!(r.links(), &[g.node_up(0), g.node_down(1)]);
        assert!((r.latency_s() - 1e-6).abs() < 1e-15);
    }

    #[test]
    fn cross_leaf_traverses_four_links_in_order() {
        let t = table();
        let r = t.route(1, 7); // node 0 (leaf 0) -> node 3 (leaf 1)
        let g = t.graph();
        assert_eq!(
            r.links(),
            &[g.node_up(0), g.leaf_up(0), g.leaf_down(1), g.node_down(3)]
        );
        assert!((r.latency_s() - 3e-6).abs() < 1e-15);
    }

    #[test]
    fn schedule_finds_the_busiest_link() {
        let t = table();
        let g = t.graph();
        let mut s = LinkSchedule::new(g.len());
        // two cross-leaf flows out of leaf 0 share its spine uplink
        // (capacity 0.5 * 2 * 1e9 = 1e9): uplink carries 2000 bytes
        s.add(g, &t.route(0, 4), 1000);
        s.add(g, &t.route(2, 6), 1000);
        let up = g.leaf_up(0).index();
        assert_eq!(s.bytes()[up], 2000);
        assert!((s.busy_s()[up] - 2000.0 / 1e9).abs() < 1e-18);
        assert!((s.wire_seconds() - 2000.0 / 1e9).abs() < 1e-18);
        assert!((s.max_latency_s() - 3e-6).abs() < 1e-15);
        s.reset();
        assert_eq!(s.wire_seconds(), 0.0);
        assert_eq!(s.bytes()[up], 0);
    }

    #[test]
    fn local_messages_cost_no_wire_time() {
        let t = table();
        let g = t.graph();
        let mut s = LinkSchedule::new(g.len());
        s.add(g, &t.route(0, 1), 1_000_000);
        assert_eq!(s.wire_seconds(), 0.0);
        assert_eq!(s.max_latency_s(), 0.0);
    }
}
