//! The explicit link graph of a cluster fabric.
//!
//! A [`LinkGraph`] materializes the topology as directed capacity-carrying
//! links: every node owns an uplink and a downlink to its leaf switch, and
//! every leaf switch owns an uplink and a downlink to the spine. Traffic
//! between two nodes under the same leaf uses `node-up → node-down`;
//! traffic crossing leaves uses `node-up → leaf-up → leaf-down → node-down`.
//! Single-switch clusters are the degenerate case of one leaf spanning the
//! whole machine, whose spine links are never routed over.
//!
//! Capacities encode the contention model both engines share:
//!
//! - A **node link** carries the node's *stream rate* —
//!   `min(transport bandwidth, NIC bandwidth)`. A transport's bandwidth
//!   figure is a node-level cap, not per-flow: kernel-bypass stacks saturate
//!   the NIC from one flow, and IP-emulation stacks (IPoIB, IPoFabric)
//!   bottleneck in the kernel no matter how many ranks send — which is
//!   exactly why a self-contained container cannot "use the Mellanox EDR
//!   network". Per-rank protocol CPU time still parallelizes across cores;
//!   only payload bytes serialize here.
//! - A **leaf (spine) link** carries `taper × nodes_per_leaf × NIC
//!   bandwidth`: the aggregate uplink capacity of the leaf. With `taper <
//!   1` the spine — not any NIC — becomes the bottleneck of a global
//!   exchange, which is the 256-node effect of the paper's Fig. 3.
//!
//! The analytic engine costs a communication round as the busiest link of
//! a fluid schedule over these capacities ([`crate::route::LinkSchedule`]);
//! the DES engine materializes each link as a FIFO resource with one slot
//! per node-stream share. One graph, two engines, one source of truth.

use crate::topology::Topology;

/// Index of one directed link in a [`LinkGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkId(pub u32);

impl LinkId {
    /// Dense index into per-link arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// What a link connects. The variants are declared in route order (a route
/// traverses classes strictly in this order), which is also the canonical
/// lock order the DES engine acquires link resources in — making
/// simultaneous multi-link holds deadlock-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkClass {
    /// Node NIC → leaf switch.
    NodeUp,
    /// Leaf switch → spine.
    LeafUp,
    /// Spine → leaf switch.
    LeafDown,
    /// Leaf switch → node NIC.
    NodeDown,
}

impl LinkClass {
    /// True for the two spine-facing classes.
    pub fn is_spine(self) -> bool {
        matches!(self, LinkClass::LeafUp | LinkClass::LeafDown)
    }
}

/// One directed link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Link {
    /// What this link connects.
    pub class: LinkClass,
    /// Node index (for node links) or leaf index (for leaf links).
    pub index: u32,
    /// Capacity in bytes/second (after any degradation).
    pub capacity_bps: f64,
}

/// The directed link graph of a fabric serving `nodes` nodes.
///
/// Link ids are laid out densely: `[0, n)` node uplinks, `[n, 2n)` node
/// downlinks, then `L` leaf uplinks and `L` leaf downlinks.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkGraph {
    links: Vec<Link>,
    nodes: u32,
    nodes_per_leaf: u32,
    leaves: u32,
    hop_latency_s: f64,
}

impl LinkGraph {
    /// Build the graph for `topology` over `nodes` nodes.
    ///
    /// `node_stream_bps` is the node-level stream rate — `min(transport
    /// bandwidth, NIC bandwidth)` of the effective inter-node transport;
    /// `nic_bw_bps` is the raw NIC rate, which sizes the leaf uplinks
    /// (the switch hardware does not slow down because the endpoints run a
    /// kernel-bound transport).
    pub fn build(topology: &Topology, nodes: u32, node_stream_bps: f64, nic_bw_bps: f64) -> Self {
        assert!(nodes > 0, "a graph needs at least one node");
        assert!(node_stream_bps > 0.0 && nic_bw_bps > 0.0);
        let (nodes_per_leaf, hop_latency_s, taper) = match *topology {
            Topology::SingleSwitch { hop_latency_s } => (nodes, hop_latency_s, 1.0),
            Topology::FatTree {
                nodes_per_leaf,
                hop_latency_s,
                taper,
            } => (nodes_per_leaf, hop_latency_s, taper),
        };
        let leaves = nodes.div_ceil(nodes_per_leaf);
        let leaf_capacity = taper * nodes_per_leaf as f64 * nic_bw_bps;
        let mut links = Vec::with_capacity(2 * (nodes + leaves) as usize);
        for class in [LinkClass::NodeUp, LinkClass::NodeDown] {
            links.extend((0..nodes).map(|i| Link {
                class,
                index: i,
                capacity_bps: node_stream_bps,
            }));
        }
        for class in [LinkClass::LeafUp, LinkClass::LeafDown] {
            links.extend((0..leaves).map(|i| Link {
                class,
                index: i,
                capacity_bps: leaf_capacity,
            }));
        }
        LinkGraph {
            links,
            nodes,
            nodes_per_leaf,
            leaves,
            hop_latency_s,
        }
    }

    /// Number of links.
    pub fn len(&self) -> usize {
        self.links.len()
    }

    /// True when the graph has no links (never: `build` requires a node).
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }

    /// Nodes served by this graph.
    pub fn nodes(&self) -> u32 {
        self.nodes
    }

    /// Leaf switches in this graph.
    pub fn leaves(&self) -> u32 {
        self.leaves
    }

    /// Per-switch-traversal latency, seconds.
    pub fn hop_latency_s(&self) -> f64 {
        self.hop_latency_s
    }

    /// The leaf switch serving `node`.
    #[inline]
    pub fn leaf_of(&self, node: u32) -> u32 {
        node / self.nodes_per_leaf
    }

    /// The uplink of `node`.
    #[inline]
    pub fn node_up(&self, node: u32) -> LinkId {
        debug_assert!(node < self.nodes);
        LinkId(node)
    }

    /// The downlink of `node`.
    #[inline]
    pub fn node_down(&self, node: u32) -> LinkId {
        debug_assert!(node < self.nodes);
        LinkId(self.nodes + node)
    }

    /// The spine uplink of leaf `leaf`.
    #[inline]
    pub fn leaf_up(&self, leaf: u32) -> LinkId {
        debug_assert!(leaf < self.leaves);
        LinkId(2 * self.nodes + leaf)
    }

    /// The spine downlink of leaf `leaf`.
    #[inline]
    pub fn leaf_down(&self, leaf: u32) -> LinkId {
        debug_assert!(leaf < self.leaves);
        LinkId(2 * self.nodes + self.leaves + leaf)
    }

    /// The link behind an id.
    #[inline]
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.index()]
    }

    /// Capacity of a link, bytes/second.
    #[inline]
    pub fn capacity_bps(&self, id: LinkId) -> f64 {
        self.links[id.index()].capacity_bps
    }

    /// Multiply a link's capacity by `factor` — a degraded cable, a flapping
    /// port, a drained spine plane. The robustness scenarios drive this.
    pub fn degrade(&mut self, id: LinkId, factor: f64) {
        assert!(factor > 0.0 && factor <= 1.0, "degradation is a de-rating");
        self.links[id.index()].capacity_bps *= factor;
    }

    /// Human-readable label, e.g. `node3:up`, `leaf0:spine-down`.
    pub fn label(&self, id: LinkId) -> String {
        let l = self.link(id);
        match l.class {
            LinkClass::NodeUp => format!("node{}:up", l.index),
            LinkClass::NodeDown => format!("node{}:down", l.index),
            LinkClass::LeafUp => format!("leaf{}:spine-up", l.index),
            LinkClass::LeafDown => format!("leaf{}:spine-down", l.index),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mn4_graph(nodes: u32) -> LinkGraph {
        // OPA native: stream = NIC = 11 GB/s, 48-node leaves, 0.8 taper
        LinkGraph::build(&Topology::mn4_fat_tree(), nodes, 11.0e9, 11.0e9)
    }

    #[test]
    fn id_layout_is_dense_and_disjoint() {
        let g = mn4_graph(100); // 3 leaves
        assert_eq!(g.leaves(), 3);
        assert_eq!(g.len(), 2 * 100 + 2 * 3);
        let mut seen = std::collections::HashSet::new();
        for n in 0..100 {
            assert!(seen.insert(g.node_up(n)));
            assert!(seen.insert(g.node_down(n)));
        }
        for l in 0..3 {
            assert!(seen.insert(g.leaf_up(l)));
            assert!(seen.insert(g.leaf_down(l)));
        }
        assert_eq!(seen.len(), g.len());
    }

    #[test]
    fn capacities_follow_the_taper() {
        let g = mn4_graph(96);
        assert_eq!(g.capacity_bps(g.node_up(5)), 11.0e9);
        let leaf = g.capacity_bps(g.leaf_up(0));
        assert!((leaf - 0.8 * 48.0 * 11.0e9).abs() < 1.0, "leaf={leaf}");
        assert!(g.link(g.leaf_up(1)).class.is_spine());
        assert!(!g.link(g.node_down(1)).class.is_spine());
    }

    #[test]
    fn fallback_stream_rate_caps_node_links_only() {
        // self-contained container on OPA: 1.2 GB/s kernel-bound stream,
        // but the switch hardware still runs at full rate
        let g = LinkGraph::build(&Topology::mn4_fat_tree(), 96, 1.2e9, 11.0e9);
        assert_eq!(g.capacity_bps(g.node_up(0)), 1.2e9);
        assert!(g.capacity_bps(g.leaf_up(0)) > 100.0e9);
    }

    #[test]
    fn single_switch_is_one_leaf() {
        let g = LinkGraph::build(&Topology::small_cluster(), 4, 117e6, 117e6);
        assert_eq!(g.leaves(), 1);
        assert_eq!(g.leaf_of(0), g.leaf_of(3));
        assert_eq!(g.len(), 2 * 4 + 2);
    }

    #[test]
    fn degrade_scales_one_link() {
        let mut g = mn4_graph(96);
        let before = g.capacity_bps(g.node_up(3));
        g.degrade(g.node_up(3), 0.25);
        assert!((g.capacity_bps(g.node_up(3)) - 0.25 * before).abs() < 1.0);
        assert_eq!(g.capacity_bps(g.node_up(4)), before, "others untouched");
    }

    #[test]
    fn labels_name_the_endpoint() {
        let g = mn4_graph(96);
        assert_eq!(g.label(g.node_up(3)), "node3:up");
        assert_eq!(g.label(g.node_down(0)), "node0:down");
        assert_eq!(g.label(g.leaf_up(1)), "leaf1:spine-up");
        assert_eq!(g.label(g.leaf_down(0)), "leaf0:spine-down");
    }
}
