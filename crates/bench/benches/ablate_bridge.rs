//! Ablation: how much bridge overhead can Docker afford? (DESIGN.md §5)
//!
//! Sweeps the serialized per-message softirq/NAT cost of the Docker bridge
//! and reports the slowdown vs bare metal at the paper's pure-MPI 112×1
//! configuration — answering "what would Docker's networking need to cost
//! for it to match Singularity?".

use harborsim_bench::harness::{criterion_group, criterion_main, Criterion};
use harborsim_core::workloads;
use harborsim_net::DataPath;
use std::hint::black_box;

fn slowdown_at(serialized_us: f64) -> f64 {
    use harborsim_mpi::analytic::{AnalyticEngine, EngineConfig};
    use harborsim_mpi::RankMap;
    use harborsim_net::{NetworkModel, Topology, TransportSelection};

    let cluster = harborsim_hw::presets::lenox();
    let case = workloads::artery_cfd_lenox();
    let map = RankMap::block(4, 28, 1);
    let job = harborsim_alya::workload::AlyaCase::job_profile(&case, map.ranks());
    let run = |path: DataPath, tax: f64| {
        AnalyticEngine::new(
            cluster.node.clone(),
            NetworkModel::compose(
                cluster.interconnect,
                TransportSelection::Native,
                path,
                Topology::small_cluster(),
            ),
            map,
            EngineConfig {
                compute_tax: tax,
                ..EngineConfig::default()
            },
        )
        .run(&job, 1)
        .elapsed
        .as_secs_f64()
    };
    let bare = run(DataPath::Host, 1.0);
    let docker = run(
        DataPath::DockerBridge {
            per_message_cpu_s: 45e-6,
            serialized_per_msg_s: serialized_us * 1e-6,
            bandwidth_cap_bps: 2.5e9,
        },
        1.02,
    );
    docker / bare
}

fn bench(c: &mut Criterion) {
    println!("Docker slowdown vs bare metal at 112x1 on Lenox, by bridge cost:");
    let mut prev = 0.0;
    for us in [0.0, 2.0, 5.0, 10.0, 20.0, 40.0] {
        let s = slowdown_at(us);
        println!("  serialized {us:>4.0} us/msg -> {s:.2}x");
        assert!(s >= prev, "slowdown must be monotone in bridge cost");
        prev = s;
    }
    // with a free bridge Docker still pays its per-message CPU + cgroup tax
    assert!(slowdown_at(0.0) > 1.0);
    assert!(
        slowdown_at(10.0) > 1.4,
        "default bridge must reproduce Fig. 1"
    );

    let mut g = c.benchmark_group("ablate_bridge");
    g.sample_size(20);
    g.bench_function("slowdown_sweep_point", |b| {
        b.iter(|| black_box(slowdown_at(black_box(10.0))));
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
