//! Ablation: the eager/rendezvous protocol threshold (DESIGN.md §5).
//!
//! Below the threshold a message costs `2o + L + bytes/BW`; above it the
//! rendezvous handshake adds a full round-trip. Sweeping the threshold on a
//! halo-heavy workload shows where the protocol switch starts to matter —
//! and that it cannot explain the container effects (both engines apply the
//! same protocol regardless of runtime).

use harborsim_bench::harness::{criterion_group, criterion_main, Criterion};
use harborsim_mpi::analytic::{AnalyticEngine, EngineConfig};
use harborsim_mpi::workload::{CommPhase, JobProfile, StepProfile};
use harborsim_mpi::RankMap;
use harborsim_net::{DataPath, NetworkModel, Topology, TransportSelection};
use std::hint::black_box;

fn elapsed_with_threshold(eager_threshold: u64, halo_bytes: u64) -> f64 {
    let cluster = harborsim_hw::presets::cte_power();
    let mut network = NetworkModel::compose(
        cluster.interconnect,
        TransportSelection::Native,
        DataPath::Host,
        Topology::cte_fat_tree(),
    );
    network.inter.eager_threshold = eager_threshold;
    network.intra.eager_threshold = eager_threshold;
    let map = RankMap::block(8, 40, 1);
    let job = JobProfile::uniform(
        StepProfile {
            flops_per_rank: 1e8,
            imbalance: 1.0,
            regions: 1.0,
            comm: vec![CommPhase::Halo1D {
                bytes: halo_bytes,
                repeats: 30,
            }],
        },
        50,
    );
    AnalyticEngine::new(cluster.node, network, map, EngineConfig::default())
        .run(&job, 1)
        .elapsed
        .as_secs_f64()
}

fn bench(c: &mut Criterion) {
    let halo = 32 * 1024; // the CFD case's CG halo scale
    println!("eager-threshold sweep (32 KB halos on InfiniBand EDR):");
    let mut last = f64::INFINITY;
    for threshold in [1u64, 4 << 10, 16 << 10, 64 << 10, 1 << 20] {
        let t = elapsed_with_threshold(threshold, halo);
        println!("  threshold {threshold:>8} B -> {t:.3} s");
        // raising the threshold past the message size removes handshakes:
        // times are non-increasing along the sweep
        assert!(
            t <= last * 1.001,
            "raising the threshold must not slow things"
        );
        last = t;
    }
    let rendezvous = elapsed_with_threshold(1, halo);
    let eager = elapsed_with_threshold(1 << 20, halo);
    assert!(
        rendezvous > eager,
        "forcing rendezvous must cost: {rendezvous} vs {eager}"
    );

    let mut g = c.benchmark_group("ablate_eager");
    g.sample_size(20);
    g.bench_function("cost_model_point", |b| {
        b.iter(|| black_box(elapsed_with_threshold(black_box(16 << 10), halo)));
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
