//! Micro-benchmarks of the simulation substrates: DES event throughput,
//! fair-share fluid links, RNG streams, the message-level MPI engine, the
//! work-stealing pool against the fixed-chunk baseline, and the lab's
//! plan-cache hit path.

use harborsim_bench::baseline::{churn_arena, churn_reference};
use harborsim_bench::harness::{criterion_group, criterion_main, Criterion, Throughput};
use harborsim_des::trace::Recorder;
use harborsim_des::{Engine, FluidLink, RngStream, SimDuration};
use harborsim_mpi::analytic::EngineConfig;
use harborsim_mpi::workload::{CommPhase, JobProfile, StepProfile};
use harborsim_mpi::{DesEngine, RankMap};
use harborsim_net::{DataPath, NetworkModel, Topology, TransportSelection};
use std::hint::black_box;

fn bench_des_events(c: &mut Criterion) {
    let mut g = c.benchmark_group("des_kernel");
    let n: u64 = 100_000;
    g.throughput(Throughput::Elements(n));
    g.bench_function("event_chain_100k", |b| {
        b.iter(|| {
            let mut eng: Engine<u64> = Engine::new();
            fn tick(eng: &mut Engine<u64>, left: &mut u64) {
                if *left > 0 {
                    *left -= 1;
                    eng.schedule(SimDuration::from_nanos(10), tick);
                }
            }
            eng.schedule(SimDuration::from_nanos(10), tick);
            let mut left = n;
            eng.run(&mut left);
            black_box(eng.now())
        });
    });
    g.bench_function("heap_fanout_10k", |b| {
        b.iter(|| {
            let mut eng: Engine<u64> = Engine::new();
            for i in 0..10_000u64 {
                eng.schedule(SimDuration::from_nanos(i % 997), |_, c| *c += 1);
            }
            let mut count = 0;
            eng.run(&mut count);
            black_box(count)
        });
    });
    g.finish();
}

/// Schedule/cancel/pop churn — the access pattern the MPI protocol events
/// produce — on the arena + 4-ary-heap engine versus the boxed-closure
/// `BinaryHeap` + tombstone-set representation it replaced. The acceptance
/// bar for the event-loop rework is ≥2x events/sec here.
fn bench_event_churn(c: &mut Criterion) {
    const ROUNDS: usize = 32;
    const BATCH: usize = 512;
    let mut g = c.benchmark_group("des_churn");
    g.throughput(Throughput::Elements((ROUNDS * BATCH) as u64));
    g.bench_function("arena_typed", |b| {
        b.iter(|| black_box(churn_arena(ROUNDS, BATCH)));
    });
    g.bench_function("boxed_binaryheap", |b| {
        b.iter(|| black_box(churn_reference(ROUNDS, BATCH)));
    });
    g.finish();
}

/// One full CFD solver step (momentum + divergence + CG projection +
/// correction) at two mesh sizes, in cell-updates/sec.
fn bench_cfd_step(c: &mut Criterion) {
    use harborsim_alya::mesh::TubeMesh;
    use harborsim_alya::{CfdConfig, CfdSolver};
    let mut g = c.benchmark_group("cfd_step");
    for (nx, ny, nz, r) in [(13usize, 13usize, 24usize, 5.0), (21, 21, 48, 8.0)] {
        let mesh = TubeMesh::cylinder(nx, ny, nz, r);
        let cfg = CfdConfig::stable(&mesh, 50.0, 0.1);
        let active = mesh.active_cells() as u64;
        let mut s = CfdSolver::new(mesh, cfg);
        s.run(5); // settle the CG warm start
        g.throughput(Throughput::Elements(active));
        g.bench_function(format!("step_{nx}x{ny}x{nz}").as_str(), |b| {
            b.iter(|| {
                s.step();
                black_box(s.stats.steps)
            });
        });
    }
    g.finish();
}

/// Execute-many on one cached plan: the per-seed hot path the query
/// engine's sharded batches are made of (ties into the plan-cache benches
/// below — this is the cost of each cache *hit*'s payload).
fn bench_execute_many(c: &mut Criterion) {
    use harborsim_core::lab::QueryEngine;
    use harborsim_core::scenario::{Execution, Scenario};
    let scenario = Scenario::new(
        harborsim_hw::presets::lenox(),
        harborsim_core::workloads::artery_cfd_small(),
    )
    .execution(Execution::singularity_self_contained())
    .nodes(2)
    .ranks_per_node(14);
    let lab = QueryEngine::new();
    let plan = lab.plan(&scenario).expect("scenario compiles");
    let mut g = c.benchmark_group("plan_execute");
    g.bench_function("cached_plan_one_seed", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(plan.execute(seed, &mut Recorder::off()).elapsed)
        });
    });
    g.finish();
}

fn bench_fluid(c: &mut Criterion) {
    struct St {
        link: FluidLink<St>,
        done: u32,
    }
    fn acc(s: &mut St) -> &mut FluidLink<St> {
        &mut s.link
    }
    let mut g = c.benchmark_group("fluid_link");
    g.bench_function("storm_512_flows", |b| {
        b.iter(|| {
            let mut eng: Engine<St> = Engine::new();
            let mut st = St {
                link: FluidLink::new(1e9, acc),
                done: 0,
            };
            for i in 0..512u64 {
                eng.schedule(SimDuration::from_micros(i), |eng, st: &mut St| {
                    st.link.start_flow(eng, 1e6, |_, st| st.done += 1);
                });
            }
            eng.run(&mut st);
            black_box(st.done)
        });
    });
    g.finish();
}

fn bench_rng(c: &mut Criterion) {
    let mut g = c.benchmark_group("rng");
    g.throughput(Throughput::Elements(1_000_000));
    g.bench_function("splitmix_1m", |b| {
        let mut r = RngStream::new(1);
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..1_000_000 {
                acc ^= r.next_u64();
            }
            black_box(acc)
        });
    });
    g.finish();
}

fn micro_engine_and_job() -> (DesEngine, JobProfile) {
    let engine = DesEngine::new(
        harborsim_hw::presets::lenox().node,
        NetworkModel::compose(
            harborsim_hw::InterconnectKind::GigabitEthernet,
            TransportSelection::Native,
            DataPath::Host,
            Topology::small_cluster(),
        ),
        RankMap::block(4, 28, 1),
        EngineConfig::default(),
    );
    let job = JobProfile::uniform(
        StepProfile {
            flops_per_rank: 1e7,
            imbalance: 1.02,
            regions: 4.0,
            comm: vec![
                CommPhase::Halo1D {
                    bytes: 10_000,
                    repeats: 4,
                },
                CommPhase::Allreduce {
                    bytes: 8,
                    repeats: 8,
                },
            ],
        },
        5,
    );
    (engine, job)
}

fn bench_route_table(c: &mut Criterion) {
    use harborsim_mpi::route_table;
    // full-scale Fig. 3 point: 256 MareNostrum4 nodes, 12,288 ranks
    let network = NetworkModel::compose(
        harborsim_hw::InterconnectKind::OmniPath100,
        TransportSelection::Native,
        DataPath::Host,
        Topology::mn4_fat_tree(),
    );
    let map = RankMap::block(256, 48, 1);
    let mut g = c.benchmark_group("route_table");
    g.throughput(Throughput::Elements(u64::from(map.ranks())));
    g.bench_function("build_256_nodes_12288_ranks", |b| {
        b.iter(|| black_box(route_table(black_box(&map), &network).ranks()));
    });
    g.finish();
}

fn bench_des_mpi(c: &mut Criterion) {
    let (engine, job) = micro_engine_and_job();
    let probe = engine.run(&job, 1);
    let msgs = probe.inter_node_msgs + probe.intra_node_msgs;
    let mut g = c.benchmark_group("des_mpi");
    g.throughput(Throughput::Elements(msgs));
    g.bench_function("message_level_112_ranks", |b| {
        b.iter(|| black_box(engine.run(&job, 1).elapsed));
    });
    g.finish();
}

/// Per-shard scaling of the conservative parallel DES on the 256-node
/// fat-tree campaign (the `par_des_eps` baseline workload). Every row
/// computes the identical result — shard count is an execution knob —
/// so the rows read as a scaling curve for the host's parallelism; on a
/// single-hardware-thread host the sharded rows only show the
/// synchronization overhead.
fn bench_par_des(c: &mut Criterion) {
    use harborsim_bench::baseline::par_des_campaign;
    let (engine, job) = par_des_campaign();
    let (probe, events) = engine.run_counted(&job, 1, &mut Recorder::off());
    let mut g = c.benchmark_group("par_des");
    g.throughput(Throughput::Elements(events));
    for shards in [1u32, 2, 4, 8] {
        let sharded = {
            let (e, _) = par_des_campaign();
            e.with_shards(shards)
        };
        // every shard count must re-execute the identical campaign
        let (check, check_events) = sharded.run_counted(&job, 1, &mut Recorder::off());
        assert_eq!(check, probe, "{shards} shards drifted from serial");
        assert_eq!(check_events, events);
        g.bench_function(format!("campaign_256n_{shards}shards").as_str(), |b| {
            b.iter(|| black_box(sharded.run_counted(&job, 1, &mut Recorder::off()).1));
        });
    }
    g.finish();
}

fn bench_recorder_modes(c: &mut Criterion) {
    let (engine, job) = micro_engine_and_job();
    let mut g = c.benchmark_group("recorder");
    g.bench_function("des_recorder_off", |b| {
        b.iter(|| black_box(engine.run_traced(&job, 1, &mut Recorder::off()).elapsed));
    });
    g.bench_function("des_recorder_aggregating", |b| {
        b.iter(|| {
            black_box(
                engine
                    .run_traced(&job, 1, &mut Recorder::aggregating())
                    .elapsed,
            )
        });
    });
    g.bench_function("des_recorder_capturing", |b| {
        b.iter(|| {
            black_box(
                engine
                    .run_traced(&job, 1, &mut Recorder::capturing())
                    .elapsed,
            )
        });
    });
    g.finish();
    guard_recorder_overhead(&engine, &job);
}

/// The no-op recorder must be a true no-op: running the DES engine with
/// `Recorder::off()` may not cost measurably more than the aggregating
/// mode, which does strictly more work per span. Min-of-N interleaved
/// samples with an absolute slack keep the guard robust to scheduler
/// noise; a failure means the off-mode early return stopped being free.
fn guard_recorder_overhead(engine: &DesEngine, job: &JobProfile) {
    const ROUNDS: usize = 7;
    const RUNS_PER_SAMPLE: u64 = 3;
    let sample = |mk: fn() -> Recorder| -> f64 {
        let t0 = std::time::Instant::now();
        for seed in 0..RUNS_PER_SAMPLE {
            black_box(engine.run_traced(job, seed, &mut mk()).elapsed);
        }
        t0.elapsed().as_secs_f64()
    };
    let (mut off, mut agg) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..ROUNDS {
        off = off.min(sample(Recorder::off));
        agg = agg.min(sample(Recorder::aggregating));
    }
    let slack_s = 500e-6;
    println!(
        "recorder overhead guard: off {:.3} ms, aggregating {:.3} ms ({:+.2}%)",
        off * 1e3,
        agg * 1e3,
        (off / agg - 1.0) * 100.0
    );
    assert!(
        off <= agg * 1.02 + slack_s,
        "no-op recorder slower than the aggregating mode: off {off:.6}s vs aggregating {agg:.6}s"
    );
}

/// Work-stealing vs the fixed-chunk baseline on a skewed workload: item 0
/// costs ~64x the rest, the shape that strands a fixed chunking's first
/// worker while its siblings idle. Stealing should never lose, and wins
/// outright once the skew exceeds one chunk's worth of work.
fn bench_pool_skew(c: &mut Criterion) {
    const ITEMS: usize = 256;
    fn spin(iters: u64) -> u64 {
        let mut acc = 1u64;
        for i in 0..iters {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
        }
        acc
    }
    let cost = |i: usize| if i == 0 { 2_000_000 } else { 31_250 };
    let mut g = c.benchmark_group("par_pool");
    g.throughput(Throughput::Elements(ITEMS as u64));
    g.bench_function("skewed_work_stealing", |b| {
        b.iter(|| {
            let items: Vec<usize> = (0..ITEMS).collect();
            black_box(harborsim_par::run(items, |i| spin(cost(i))))
        });
    });
    g.bench_function("skewed_fixed_chunk", |b| {
        b.iter(|| {
            let items: Vec<usize> = (0..ITEMS).collect();
            black_box(harborsim_par::run_chunked(items, |i| spin(cost(i))))
        });
    });
    g.finish();
}

/// The lab's plan-cache hit path: after one compile, every further
/// resolve of the same scenario is a fingerprint + LRU lookup, orders of
/// magnitude under a compile (route table, image build, validation).
fn bench_plan_cache(c: &mut Criterion) {
    use harborsim_core::lab::QueryEngine;
    use harborsim_core::scenario::{Execution, Scenario};
    let mk = || {
        Scenario::new(
            harborsim_hw::presets::lenox(),
            harborsim_core::workloads::artery_cfd_small(),
        )
        .execution(Execution::singularity_self_contained())
        .nodes(2)
        .ranks_per_node(14)
    };
    let mut g = c.benchmark_group("plan_cache");
    g.bench_function("hit", |b| {
        let lab = QueryEngine::new();
        lab.plan(&mk()).expect("compiles");
        b.iter(|| black_box(lab.plan(&mk()).expect("hits")));
    });
    g.bench_function("miss_compile", |b| {
        b.iter(|| {
            let lab = QueryEngine::new();
            black_box(lab.plan(&mk()).expect("compiles"))
        });
    });
    g.finish();
}

/// The scenario-DSL front end: parse-only and parse+compile of the
/// largest committed campaign (Fig. 3's 21-run grid), in scripts/sec.
/// Compilation expands the full grid and builds every scenario, so this
/// also bounds the fixed cost `reproduce_all --script` adds per run.
fn bench_script_front_end(c: &mut Criterion) {
    use harborsim_core::script::{self, parse};
    let src = harborsim_core::experiments::fig3::SCRIPT;
    parse(src).expect("committed script parses");
    let mut g = c.benchmark_group("script");
    g.throughput(Throughput::Elements(1));
    g.bench_function("parse_fig3", |b| {
        b.iter(|| black_box(parse(black_box(src)).unwrap().items.len()));
    });
    g.bench_function("parse_and_compile_fig3", |b| {
        b.iter(|| {
            let compiled = script::compile_str(black_box(src)).unwrap();
            black_box(compiled.campaigns[0].runs.len())
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_des_events,
    bench_event_churn,
    bench_cfd_step,
    bench_fluid,
    bench_rng,
    bench_route_table,
    bench_des_mpi,
    bench_par_des,
    bench_recorder_modes,
    bench_pool_skew,
    bench_plan_cache,
    bench_execute_many,
    bench_script_front_end
);
criterion_main!(benches);
