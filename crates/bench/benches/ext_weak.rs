//! Bench: the weak-scaling extension.

use harborsim_bench::harness::{criterion_group, criterion_main, Criterion};
use harborsim_bench::write_figure;
use harborsim_core::experiments::ext_weak;
use harborsim_core::lab::QueryEngine;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let lab = QueryEngine::new();
    let fig = ext_weak::run(&lab, &[1, 2]);
    write_figure(&fig);
    let violations = ext_weak::check_shape(&fig);
    assert!(violations.is_empty(), "weak-scaling shape: {violations:#?}");

    let mut g = c.benchmark_group("ext_weak");
    g.sample_size(10);
    g.bench_function("full_sweep", |b| {
        b.iter(|| black_box(ext_weak::run(&lab, black_box(&[1]))));
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
