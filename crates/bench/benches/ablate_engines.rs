//! Ablation: the two MPI performance engines.
//!
//! The message-level DES engine and the closed-form analytic engine consume
//! the same workload IR; this bench measures the accuracy/throughput
//! trade-off between them on the same scenario (DESIGN.md §5).

use harborsim_bench::harness::{criterion_group, criterion_main, Criterion};
use harborsim_core::scenario::{EngineKind, Execution, Scenario};
use harborsim_core::workloads;
use std::hint::black_box;

fn scenario(engine: EngineKind) -> Scenario {
    Scenario::new(
        harborsim_hw::presets::lenox(),
        workloads::artery_cfd_small(),
    )
    .execution(Execution::singularity_self_contained())
    .nodes(4)
    .ranks_per_node(14)
    .engine(engine)
}

fn bench(c: &mut Criterion) {
    // report the accuracy gap once
    let a = scenario(EngineKind::Analytic).run(5).elapsed.as_secs_f64();
    let d = scenario(EngineKind::Des {
        max_steps_per_kind: 5,
    })
    .run(5)
    .elapsed
    .as_secs_f64();
    println!(
        "engine predictions: analytic={a:.3}s des={d:.3}s ratio={:.3}",
        d / a
    );
    assert!(
        (0.4..2.5).contains(&(d / a)),
        "engines diverged: {a} vs {d}"
    );

    let mut g = c.benchmark_group("ablate_engines");
    g.sample_size(10);
    g.bench_function("analytic_56_ranks", |b| {
        let sc = scenario(EngineKind::Analytic);
        b.iter(|| black_box(sc.run(black_box(3)).elapsed));
    });
    g.bench_function("des_56_ranks", |b| {
        let sc = scenario(EngineKind::Des {
            max_steps_per_kind: 5,
        });
        b.iter(|| black_box(sc.run(black_box(3)).elapsed));
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
