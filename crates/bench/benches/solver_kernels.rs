//! Micro-benchmarks of the real mini-Alya solvers: CFD step cost (serial vs
//! Rayon), the coupled FSI step, and the functional thread-MPI collectives.

use harborsim_alya::cfd::{CfdConfig, CfdSolver};
use harborsim_alya::fsi::{CoupledFsi, FsiConfig};
use harborsim_alya::mesh::TubeMesh;
use harborsim_alya::pulse1d::{cardiac_inflow, PulseConfig, PulseSolver};
use harborsim_bench::harness::{criterion_group, criterion_main, Criterion, Throughput};
use harborsim_mpi::thread_mpi::ThreadComm;
use std::hint::black_box;

fn bench_cfd(c: &mut Criterion) {
    let mesh = TubeMesh::cylinder(33, 33, 64, 14.0);
    let cells = mesh.active_cells() as u64;
    let mut g = c.benchmark_group("cfd_step");
    g.sample_size(10);
    g.throughput(Throughput::Elements(cells));
    for (label, parallel) in [("serial", false), ("threaded", true)] {
        let mut cfg = CfdConfig::stable(&mesh, 30.0, 0.1);
        cfg.parallel = parallel;
        cfg.cg_max_iters = 40;
        let mut solver = CfdSolver::new(mesh.clone(), cfg);
        solver.run(3); // warm up the pressure field
        g.bench_function(label, |b| {
            b.iter(|| {
                solver.step();
                black_box(solver.stats.steps)
            });
        });
    }
    g.finish();
}

fn bench_fsi(c: &mut Criterion) {
    let mut g = c.benchmark_group("fsi_step");
    g.bench_function("coupled_200_stations", |b| {
        let mut fsi = CoupledFsi::new(
            PulseConfig::artery(200),
            40.0,
            FsiConfig::default(),
            cardiac_inflow,
        );
        b.iter(|| black_box(fsi.step()));
    });
    g.bench_function("fluid_only_200_stations", |b| {
        let mut fluid = PulseSolver::new(PulseConfig::artery(200), cardiac_inflow);
        b.iter(|| {
            fluid.step();
            black_box(fluid.time)
        });
    });
    g.finish();
}

fn bench_thread_mpi(c: &mut Criterion) {
    let mut g = c.benchmark_group("thread_mpi");
    g.sample_size(10);
    g.bench_function("allreduce_8_ranks_x100", |b| {
        b.iter(|| {
            let sums = ThreadComm::run(8, |comm| {
                let mut acc = 0.0;
                for i in 0..100 {
                    acc += comm.allreduce_sum_scalar(i as f64);
                }
                acc
            });
            black_box(sums)
        });
    });
    g.finish();
}

criterion_group!(benches, bench_cfd, bench_fsi, bench_thread_mpi);
criterion_main!(benches);
