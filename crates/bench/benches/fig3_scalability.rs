//! Bench: regeneration of Fig. 3 (scalability on MareNostrum4).
//!
//! The 256-node point runs 12,288 simulated ranks through the analytic
//! engine; this bench demonstrates the closed-form engine's cost at the
//! paper's full scale.

use harborsim_bench::harness::{criterion_group, criterion_main, Criterion};
use harborsim_bench::write_figure;
use harborsim_core::experiments::fig3;
use harborsim_core::lab::QueryEngine;
use harborsim_core::scenario::{Execution, Scenario};
use harborsim_core::workloads;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let lab = QueryEngine::new();
    let fig = fig3::run(&lab, &[1, 2]);
    write_figure(&fig);
    let violations = fig3::check_shape(&fig);
    assert!(violations.is_empty(), "fig3 shape: {violations:#?}");

    let mut g = c.benchmark_group("fig3");
    g.sample_size(10);
    g.bench_function("full_sweep", |b| {
        b.iter(|| black_box(fig3::run(&lab, black_box(&[1]))));
    });
    g.bench_function("single_point_12288_ranks", |b| {
        let sc = Scenario::new(
            harborsim_hw::presets::marenostrum4(),
            workloads::artery_fsi_mn4(),
        )
        .execution(Execution::singularity_system_specific())
        .nodes(256)
        .ranks_per_node(48);
        b.iter(|| black_box(sc.run(black_box(9)).elapsed));
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
