//! Bench: the campaign-turnaround extension (batch scheduler + cross-job
//! cache effects).

use harborsim_bench::harness::{criterion_group, criterion_main, Criterion};
use harborsim_bench::write_table;
use harborsim_core::experiments::ext_campaign;
use harborsim_core::lab::QueryEngine;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let lab = QueryEngine::new();
    let rows = ext_campaign::run(&lab, &[1, 2]);
    write_table(&ext_campaign::table(&rows));
    let violations = ext_campaign::check_shape(&rows);
    assert!(violations.is_empty(), "campaign shape: {violations:#?}");

    let mut g = c.benchmark_group("ext_campaign");
    g.sample_size(10);
    g.bench_function("five_technology_campaign", |b| {
        b.iter(|| black_box(ext_campaign::run(&lab, black_box(&[1]))));
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
