//! Bench: regeneration of Fig. 2 (portability on CTE-POWER).

use harborsim_bench::harness::{criterion_group, criterion_main, Criterion};
use harborsim_bench::write_figure;
use harborsim_core::experiments::fig2;
use harborsim_core::lab::QueryEngine;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let lab = QueryEngine::new();
    let fig = fig2::run(&lab, &[1, 2]);
    write_figure(&fig);
    let violations = fig2::check_shape(&fig);
    assert!(violations.is_empty(), "fig2 shape: {violations:#?}");

    let mut g = c.benchmark_group("fig2");
    g.sample_size(10);
    g.bench_function("full_sweep", |b| {
        b.iter(|| black_box(fig2::run(&lab, black_box(&[1]))));
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
