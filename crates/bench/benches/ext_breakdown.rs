//! Bench: the time-decomposition extension (incl. the Docker `--net=host`
//! mechanism ablation).

use harborsim_bench::harness::{criterion_group, criterion_main, Criterion};
use harborsim_bench::write_table;
use harborsim_core::experiments::ext_breakdown;
use harborsim_core::lab::QueryEngine;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let lab = QueryEngine::new();
    let rows = ext_breakdown::run(&lab, 1);
    write_table(&ext_breakdown::table(&rows));
    let violations = ext_breakdown::check_shape(&rows);
    assert!(violations.is_empty(), "breakdown shape: {violations:#?}");

    let mut g = c.benchmark_group("ext_breakdown");
    g.sample_size(10);
    g.bench_function("five_way_decomposition", |b| {
        b.iter(|| black_box(ext_breakdown::run(&lab, black_box(1))));
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
