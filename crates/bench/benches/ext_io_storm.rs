//! Bench: the future-work extension — image-startup storms (I/O and
//! distributed storage behaviour of containers at scale).

use harborsim_bench::harness::{criterion_group, criterion_main, Criterion};
use harborsim_bench::write_figure;
use harborsim_core::experiments::ext_io;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let fig = ext_io::run();
    write_figure(&fig);
    let violations = ext_io::check_shape(&fig);
    assert!(violations.is_empty(), "ext-io shape: {violations:#?}");

    let mut g = c.benchmark_group("ext_io");
    g.sample_size(10);
    g.bench_function("storm_sweep", |b| {
        b.iter(|| black_box(ext_io::run()));
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
