//! Ablation: rank placement (DESIGN.md §5).
//!
//! Block placement keeps neighbouring subdomains on the same node;
//! round-robin scatters them so every halo edge crosses the wire. The gap
//! between the two quantifies how much of the scaling story is placement.

use harborsim_alya::workload::AlyaCase;
use harborsim_bench::harness::{criterion_group, criterion_main, Criterion};
use harborsim_core::workloads;
use harborsim_mpi::analytic::{AnalyticEngine, EngineConfig};
use harborsim_mpi::mapping::{Placement, RankMap};
use harborsim_net::{DataPath, NetworkModel, Topology, TransportSelection};
use std::hint::black_box;

fn elapsed(placement: Placement, nodes: u32) -> f64 {
    let cluster = harborsim_hw::presets::cte_power();
    let map = RankMap {
        nodes,
        ranks_per_node: 40,
        threads_per_rank: 1,
        placement,
    };
    let job = workloads::artery_cfd_cte().job_profile(map.ranks());
    AnalyticEngine::new(
        cluster.node,
        NetworkModel::compose(
            cluster.interconnect,
            TransportSelection::Native,
            DataPath::Host,
            Topology::cte_fat_tree(),
        ),
        map,
        EngineConfig::default(),
    )
    .run(&job, 1)
    .elapsed
    .as_secs_f64()
}

/// A chain-halo job where placement provably matters: block cuts
/// `nodes-1` edges, round-robin cuts every edge.
fn chain_elapsed(placement: Placement, nodes: u32) -> f64 {
    use harborsim_mpi::workload::{CommPhase, JobProfile, StepProfile};
    let cluster = harborsim_hw::presets::cte_power();
    let map = RankMap {
        nodes,
        ranks_per_node: 40,
        threads_per_rank: 1,
        placement,
    };
    let job = JobProfile::uniform(
        StepProfile {
            flops_per_rank: 1e8,
            imbalance: 1.0,
            regions: 1.0,
            comm: vec![CommPhase::Halo1D {
                bytes: 200_000,
                repeats: 20,
            }],
        },
        50,
    );
    AnalyticEngine::new(
        cluster.node,
        NetworkModel::compose(
            cluster.interconnect,
            TransportSelection::Native,
            DataPath::Host,
            Topology::cte_fat_tree(),
        ),
        map,
        EngineConfig::default(),
    )
    .run(&job, 1)
    .elapsed
    .as_secs_f64()
}

fn bench(c: &mut Criterion) {
    // informational: the 3D-partitioned CFD case. Round-robin can tie here
    // when the rank-grid strides alias the node count (whole axes stay
    // node-local by arithmetic accident) — which is itself a finding.
    println!("placement ablation on CTE-POWER (artery CFD, 3D partition):");
    for nodes in [4u32, 8, 16] {
        let block = elapsed(Placement::Block, nodes);
        let rr = elapsed(Placement::RoundRobin, nodes);
        println!(
            "  {nodes:>3} nodes: block {block:.1}s  round-robin {rr:.1}s  ({:.2}x)",
            rr / block
        );
        assert!(
            rr >= 0.95 * block,
            "even with stride aliasing, scattering should not clearly win: {rr} < {block}"
        );
    }
    // the hard claim: on a 1D chain decomposition the placement effect is
    // unambiguous — round-robin cuts every halo edge
    println!("placement ablation (1D chain halos):");
    for nodes in [4u32, 8, 16] {
        let block = chain_elapsed(Placement::Block, nodes);
        let rr = chain_elapsed(Placement::RoundRobin, nodes);
        println!(
            "  {nodes:>3} nodes: block {block:.1}s  round-robin {rr:.1}s  ({:.2}x)",
            rr / block
        );
        assert!(
            rr > 1.25 * block,
            "cutting every chain edge must hurt: {rr} vs {block}"
        );
    }

    let mut g = c.benchmark_group("ablate_mapping");
    g.sample_size(20);
    g.bench_function("block_16_nodes", |b| {
        b.iter(|| black_box(elapsed(Placement::Block, black_box(16))));
    });
    g.bench_function("round_robin_16_nodes", |b| {
        b.iter(|| black_box(elapsed(Placement::RoundRobin, black_box(16))));
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
