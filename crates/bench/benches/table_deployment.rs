//! Bench: regeneration of the §B.1 deployment-overhead table.

use harborsim_bench::harness::{criterion_group, criterion_main, Criterion};
use harborsim_bench::write_table;
use harborsim_core::experiments::tables;
use harborsim_core::lab::QueryEngine;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let lab = QueryEngine::new();
    let t = tables::deployment(&lab, &[1, 2]);
    write_table(&t);
    let violations = tables::check_deployment_shape(&t);
    assert!(violations.is_empty(), "deployment shape: {violations:#?}");

    let mut g = c.benchmark_group("table_deployment");
    g.sample_size(10);
    g.bench_function("full_table", |b| {
        b.iter(|| black_box(tables::deployment(&lab, black_box(&[1]))));
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
