//! Bench: regeneration of Fig. 1 (containerization solutions on Lenox).
//!
//! Times the full 4-technology × 5-configuration sweep and persists the
//! figure artifacts as a side effect.

use harborsim_bench::harness::{criterion_group, criterion_main, Criterion};
use harborsim_bench::write_figure;
use harborsim_core::experiments::fig1;
use harborsim_core::lab::QueryEngine;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let lab = QueryEngine::new();
    let fig = fig1::run(&lab, &[1, 2]);
    write_figure(&fig);
    let violations = fig1::check_shape(&fig);
    assert!(violations.is_empty(), "fig1 shape: {violations:#?}");

    let mut g = c.benchmark_group("fig1");
    g.sample_size(10);
    g.bench_function("full_sweep", |b| {
        b.iter(|| black_box(fig1::run(&lab, black_box(&[1]))));
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
