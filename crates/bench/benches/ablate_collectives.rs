//! Ablation: allreduce algorithm choice (DESIGN.md §5).
//!
//! Recursive doubling vs ring vs Rabenseifner at the payload sizes Alya
//! produces: 8-byte dot products (latency-bound, the FSI case's staple)
//! through multi-megabyte reductions (bandwidth-bound).

use harborsim_bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion};
use harborsim_mpi::analytic::{AnalyticEngine, EngineConfig};
use harborsim_mpi::collectives::AllreduceAlgo;
use harborsim_mpi::workload::{CommPhase, JobProfile, StepProfile};
use harborsim_mpi::RankMap;
use harborsim_net::{DataPath, NetworkModel, Topology, TransportSelection};
use std::hint::black_box;

fn engine(algo: AllreduceAlgo) -> AnalyticEngine {
    AnalyticEngine::new(
        harborsim_hw::presets::marenostrum4().node,
        NetworkModel::compose(
            harborsim_hw::InterconnectKind::OmniPath100,
            TransportSelection::Native,
            DataPath::Host,
            Topology::mn4_fat_tree(),
        ),
        RankMap::block(32, 48, 1),
        EngineConfig {
            allreduce_algo: algo,
            ..EngineConfig::default()
        },
    )
}

fn allreduce_job(bytes: u64) -> JobProfile {
    JobProfile::uniform(
        StepProfile {
            flops_per_rank: 0.0,
            imbalance: 1.0,
            regions: 0.0,
            comm: vec![CommPhase::Allreduce { bytes, repeats: 1 }],
        },
        1,
    )
}

fn bench(c: &mut Criterion) {
    // print the predicted cost table once — the actual ablation result
    println!("allreduce cost on 1536 ranks (MN4/Omni-Path):");
    println!(
        "{:>10} {:>16} {:>16} {:>16}",
        "bytes", "rec-doubling", "ring", "rabenseifner"
    );
    for bytes in [8u64, 1024, 64 * 1024, 8 << 20] {
        let t = |algo| {
            engine(algo)
                .run(&allreduce_job(bytes), 1)
                .elapsed
                .as_secs_f64()
                * 1e6
        };
        println!(
            "{:>10} {:>14.1}us {:>14.1}us {:>14.1}us",
            bytes,
            t(AllreduceAlgo::RecursiveDoubling),
            t(AllreduceAlgo::Ring),
            t(AllreduceAlgo::Rabenseifner)
        );
    }
    // the crossover the textbooks promise: ring wins for huge payloads,
    // recursive doubling for tiny ones
    let tiny_rd = engine(AllreduceAlgo::RecursiveDoubling)
        .run(&allreduce_job(8), 1)
        .elapsed;
    let tiny_ring = engine(AllreduceAlgo::Ring)
        .run(&allreduce_job(8), 1)
        .elapsed;
    assert!(tiny_rd < tiny_ring);
    let big_rd = engine(AllreduceAlgo::RecursiveDoubling)
        .run(&allreduce_job(64 << 20), 1)
        .elapsed;
    let big_ring = engine(AllreduceAlgo::Ring)
        .run(&allreduce_job(64 << 20), 1)
        .elapsed;
    assert!(
        big_ring < big_rd,
        "ring must win at 64 MB: {big_ring} vs {big_rd}"
    );

    let mut g = c.benchmark_group("ablate_collectives");
    g.sample_size(20);
    for algo in [
        AllreduceAlgo::RecursiveDoubling,
        AllreduceAlgo::Ring,
        AllreduceAlgo::Rabenseifner,
    ] {
        g.bench_with_input(
            BenchmarkId::new("cost_model_8B", format!("{algo:?}")),
            &algo,
            |b, &algo| {
                let e = engine(algo);
                let job = allreduce_job(8);
                b.iter(|| black_box(e.run(&job, 1).elapsed));
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
