//! A self-contained micro-benchmark harness with a Criterion-shaped API.
//!
//! The benches only need a tiny slice of Criterion: named groups, a
//! per-group sample size, element throughput, and `Bencher::iter`. This
//! module provides exactly that over `std::time::Instant`, so the bench
//! targets build and run with no external crates. Each benchmark runs a
//! warm-up pass and then samples under a wall-clock budget, printing
//! `ns/iter` (and elements/s when a throughput was declared).

use std::time::{Duration, Instant};

/// Wall-clock budget per benchmark function.
const BENCH_BUDGET: Duration = Duration::from_millis(300);

/// Entry point state; mirrors `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

/// Declared work per iteration, for rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
}

/// A `group/function` benchmark label.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Label composed of a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            name: format!("{}/{}", function.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { name: s.into() }
    }
}

impl Criterion {
    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing sample-size and throughput
/// settings; mirrors `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Cap the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declare per-iteration work for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Time a benchmark function.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            max_samples: self.sample_size as u64,
            iters: 0,
            total: Duration::ZERO,
        };
        f(&mut b);
        self.report(&id.name, &b);
        self
    }

    /// Time a benchmark function against an explicit input.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// End the group (kept for API parity; reporting is per-function).
    pub fn finish(&mut self) {}

    fn report(&self, name: &str, b: &Bencher) {
        if b.iters == 0 {
            println!("bench {}/{name}: no samples", self.name);
            return;
        }
        let ns_per_iter = b.total.as_nanos() as f64 / b.iters as f64;
        match self.throughput {
            Some(Throughput::Elements(n)) => {
                let rate = n as f64 * b.iters as f64 / b.total.as_secs_f64();
                println!(
                    "bench {}/{name}: {ns_per_iter:.0} ns/iter ({} samples, {rate:.3e} elem/s)",
                    self.name, b.iters
                );
            }
            None => {
                println!(
                    "bench {}/{name}: {ns_per_iter:.0} ns/iter ({} samples)",
                    self.name, b.iters
                );
            }
        }
    }
}

/// Passed to each benchmark closure; mirrors `criterion::Bencher`.
pub struct Bencher {
    max_samples: u64,
    iters: u64,
    total: Duration,
}

impl Bencher {
    /// Run `f` once to warm up, then repeatedly under the sample cap and
    /// wall-clock budget, accumulating timing.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        std::hint::black_box(f());
        let started = Instant::now();
        loop {
            let t0 = Instant::now();
            std::hint::black_box(f());
            self.total += t0.elapsed();
            self.iters += 1;
            if self.iters >= self.max_samples || started.elapsed() >= BENCH_BUDGET {
                break;
            }
        }
    }
}

/// Mirrors `criterion::criterion_group!`: bundles bench functions into one
/// runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::harness::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Mirrors `criterion::criterion_main!`: the bench binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

pub use crate::{criterion_group, criterion_main};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_samples() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("selftest");
        g.sample_size(3);
        let mut runs = 0u64;
        g.bench_function("counting", |b| {
            b.iter(|| {
                runs += 1;
                runs
            });
        });
        g.finish();
        // one warm-up + at most three samples
        assert!((2..=4).contains(&runs), "runs={runs}");
    }

    #[test]
    fn benchmark_id_formats() {
        let id = BenchmarkId::new("cost_model", "Ring");
        assert_eq!(id.name, "cost_model/Ring");
    }
}
