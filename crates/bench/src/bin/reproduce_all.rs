//! Regenerate every figure and table of the paper in one run.
//!
//! ```sh
//! cargo run --release -p harborsim-bench --bin reproduce_all [-- FLAGS]
//! ```
//!
//! Flags:
//!
//! - `--quick` — one seed instead of the paper's five-repetition protocol
//!   (fast smoke run; numbers shift slightly, shapes must still hold).
//! - `--script <file>` — drive the run from a `.hsim` campaign script
//!   instead of flags: the script's `seeds`/`taper`/`trace`/`experiments`
//!   directives replace `--quick`/`--ablate-taper`/`--oversub`/`--trace`,
//!   and every `campaign` block runs through the generic campaign runner
//!   (labels, means, canonical plan-key fingerprints; campaigns with
//!   `arrivals` run through the open-system engine and report queue-wait
//!   tails). Mutually exclusive with `--ablate-taper` and `--oversub` —
//!   those flags *are* a script (see
//!   `harborsim_core::script::flags_script` and the committed equivalents
//!   under `scripts/`). `--quick` combines with `--script`: it truncates
//!   the script's seed lists to one (the CI smoke mode).
//! - `--trace <dir>` — additionally export one chrome://tracing JSON per
//!   experiment into `<dir>` (`fig1.trace.json`, …), capturing
//!   representative configurations through the simulation trace layer.
//! - `--ablate-taper` — force every fat-tree fabric non-blocking
//!   (spine taper 1.0): how much of each figure is spine bandwidth.
//! - `--oversub <taper>` — force every fat-tree fabric to the given spine
//!   taper (e.g. `0.5` for 2:1 oversubscription). Mutually exclusive with
//!   `--ablate-taper`; scenario-pinned tapers (the oversubscription sweep)
//!   are unaffected.
//! - `--shards <n>` — run every DES-engine experiment on `n` event-engine
//!   shards (conservative parallel DES). Results are bit-identical to the
//!   serial engine at any shard count; the knob only changes how the event
//!   loop is executed. Equivalent to the `shards <n>` script directive.
//! - `--bench-baseline` — measure the simulator's hot-path throughput (DES
//!   event churn, CFD cell-updates, cached-plan execute-many, lab-daemon
//!   queries/sec under the built-in load generator), write it to
//!   `target/study/BENCH_baseline.json`, and fail if DES events/sec or
//!   daemon queries/sec regress more than 20% against the committed
//!   `BENCH_baseline.json` at the repository root (spin-calibrated, so the
//!   gate is machine-independent).
//! - `--serve <addr>` — skip the reproduction and run the lab as a
//!   resident daemon on `addr` (e.g. `127.0.0.1:7878`): plan cache
//!   warm-started for the four paper clusters, queries answered over the
//!   versioned JSON wire protocol (`POST /v1/lab`, `GET /v1/stats`,
//!   `POST /v1/shutdown`). Runs until a shutdown request arrives.
//! - `--serve-bench` — start daemons on ephemeral loopback ports and turn
//!   the built-in load generator on them: the closed loop (fixed in-flight
//!   pipelined requests per connection) against both front ends — the
//!   thread-per-connection fallback and the epoll reactor — then an
//!   open-loop Poisson run (latency-corrected, so slow responses cannot
//!   hide behind coordinated omission) and a connection-count sweep on the
//!   reactor. Prints throughput, latency tails (p50/p99/p999), the
//!   per-connection error breakdown, and the per-shard cache counters.
//! - `--burst <addr>` — pipelined burst against an *already running*
//!   daemon at `addr`: 64 connections, pipeline depth 4, 16 queries each.
//!   Exits nonzero on any error and never shuts the target down (the CI
//!   smoke uses this to probe the reactor's multiplexing under a real
//!   socket storm before asking it to shut down).
//!
//! Artifacts land in `target/study/` (CSV + SVG + ASCII per figure, CSV +
//! ASCII per table, plus a machine-readable `summary.json`), and every
//! shape check — the paper's qualitative claims — is evaluated and printed.

use harborsim_bench::baseline::BenchBaseline;
use harborsim_bench::{out_dir, write_figure, write_table, write_trace};
use harborsim_core::experiments::{
    ext_breakdown, ext_campaign, ext_degraded, ext_io, ext_locality, ext_open_system, ext_oversub,
    ext_weak, fig1, fig2, fig3, tables, validation,
};
use harborsim_core::lab::QueryEngine;
use harborsim_core::script::ast::ExperimentsSpec;
use harborsim_core::script::{compile_str, flags_script, CompiledScript};
use std::path::PathBuf;
use std::time::Instant;

fn report_shapes(name: &str, violations: &[String]) -> bool {
    if violations.is_empty() {
        println!("  [ok] {name}: all of the paper's claims hold");
        true
    } else {
        println!("  [!!] {name}:");
        for v in violations {
            println!("       - {v}");
        }
        false
    }
}

/// One labelled loadgen run, printed as a table row. Returns the error
/// count so the caller can fail the process at the end.
fn bench_row(label: &str, report: &harborsim_bench::loadgen::LoadgenReport) -> u64 {
    println!(
        "  {label:<34} {:>6} ok {:>4} err {:>9.1} q/s  p50 {:>7.2} ms  p99 {:>7.2} ms  p999 {:>7.2} ms",
        report.requests, report.errors, report.qps, report.p50_ms, report.p99_ms, report.p999_ms
    );
    if report.errors > 0 || report.per_client.iter().any(|c| c.connect_failed) {
        print!("{}", report.error_breakdown());
    }
    report.errors
}

/// `--serve-bench`: daemon + load generator in one process. Runs the
/// closed loop against both front ends (thread-per-connection and the
/// epoll reactor, pipeline depths 1 and 4), an open-loop Poisson run,
/// and a connection-count sweep; reports throughput, latency tails
/// (p50/p99/p999), the per-connection error breakdown, and the
/// per-shard cache counters (the Zipf hot-head skew made visible).
fn serve_bench_run() {
    use harborsim_bench::loadgen::{connection_sweep, run_with, Drive};
    use harborsim_core::lab::daemon::{LabDaemon, ServeMode};
    const CLIENTS: usize = 8;
    const REQUESTS_PER_CLIENT: u64 = 64;
    const POISSON_RATE_PER_S: f64 = 2000.0;
    const WORKERS: usize = 4;
    const SWEEP_CONNS: &[usize] = &[1, 8, 32, 64];
    const SWEEP_REQUESTS_PER_CONN: u64 = 16;
    let mut errors = 0u64;

    println!("== Lab daemon under the built-in load generator ==");
    println!(
        "{CLIENTS} clients x {REQUESTS_PER_CLIENT} queries per run, Zipf query mix over {} \
         scenarios, {WORKERS} compute workers",
        harborsim_bench::loadgen::MENU_LEN
    );

    // Closed loop, both front ends: same offered load, the only change
    // is how the daemon multiplexes connections.
    println!("closed loop (fixed in-flight per connection):");
    for (mode, in_flight) in [
        (ServeMode::Threaded, 1),
        (ServeMode::Reactor, 1),
        (ServeMode::Reactor, 4),
    ] {
        let engine = std::sync::Arc::new(QueryEngine::new());
        let daemon = LabDaemon::bind("127.0.0.1:0", engine, WORKERS)
            .expect("bind the serve-bench daemon on loopback")
            .mode(mode);
        let addr = daemon.local_addr();
        let handle = daemon.spawn();
        let report = run_with(
            addr,
            CLIENTS,
            REQUESTS_PER_CLIENT,
            Drive::Closed { in_flight },
        );
        errors += bench_row(
            &format!("{} / pipeline depth {in_flight}", mode.name()),
            &report,
        );
        handle.shutdown();
    }

    // Open loop + sweep on one reactor daemon, whose engine then shows
    // the accumulated shard skew.
    let engine = std::sync::Arc::new(QueryEngine::new());
    let daemon = LabDaemon::bind("127.0.0.1:0", std::sync::Arc::clone(&engine), WORKERS)
        .expect("bind the serve-bench daemon on loopback")
        .mode(ServeMode::Reactor);
    let addr = daemon.local_addr();
    let handle = daemon.spawn();
    println!(
        "open loop (Poisson arrivals at {POISSON_RATE_PER_S}/s aggregate, latency-corrected):"
    );
    let report = run_with(
        addr,
        CLIENTS,
        REQUESTS_PER_CLIENT,
        Drive::Open {
            rate_per_s: POISSON_RATE_PER_S,
        },
    );
    errors += bench_row("reactor / open", &report);
    println!(
        "connection sweep (closed loop, {SWEEP_REQUESTS_PER_CONN} queries per connection, \
         pipeline depth 2):"
    );
    for (conns, report) in connection_sweep(addr, SWEEP_CONNS, SWEEP_REQUESTS_PER_CONN, 2) {
        errors += bench_row(&format!("reactor / {conns} connections"), &report);
    }
    println!("  {}", engine.stats().summary_line());
    println!(
        "  admission batching: {} executes answered from an in-flight twin",
        engine.batched_executes()
    );
    print_shard_skew(&engine);
    handle.shutdown();
    if errors > 0 {
        std::process::exit(1);
    }
}

/// `--burst <addr>`: pipelined burst against an already-running daemon
/// (64 connections, pipeline depth 4, 16 queries each). Exits nonzero
/// on any error; never shuts the target down — that stays the caller's
/// decision. This is the CI smoke's concurrency probe.
fn burst_run(addr_text: &str) {
    use harborsim_bench::loadgen::{run_with, Drive};
    const CONNS: usize = 64;
    const REQUESTS_PER_CONN: u64 = 16;
    const IN_FLIGHT: usize = 4;
    let addr: std::net::SocketAddr = addr_text.parse().unwrap_or_else(|e| {
        eprintln!("--burst needs a socket address (got {addr_text}: {e})");
        std::process::exit(2);
    });
    println!(
        "== Pipelined burst against http://{addr} ({CONNS} connections x \
         {REQUESTS_PER_CONN} queries, pipeline depth {IN_FLIGHT}) =="
    );
    let report = run_with(
        addr,
        CONNS,
        REQUESTS_PER_CONN,
        Drive::Closed {
            in_flight: IN_FLIGHT,
        },
    );
    println!(
        "  {} answered, {} errors, {:.1}s wall: {:.1} queries/s, p50 {:.2} ms, \
         p99 {:.2} ms, p999 {:.2} ms",
        report.requests,
        report.errors,
        report.wall_s,
        report.qps,
        report.p50_ms,
        report.p99_ms,
        report.p999_ms
    );
    print!("{}", report.error_breakdown());
    if report.errors > 0 || report.per_client.iter().any(|c| c.connect_failed) {
        std::process::exit(1);
    }
}

/// Per-shard cache counters: the skew a Zipf-over-plan-keys workload
/// leaves behind (hot shards pile up hits, cold shards stay near-empty).
fn print_shard_skew(lab: &QueryEngine) {
    println!("  per-shard plan cache (hits/misses/waits/entries):");
    for (i, s) in lab.shard_stats().iter().enumerate() {
        println!(
            "    shard {i}: {:>6} hits {:>4} misses {:>4} waits {:>4} entries",
            s.hits, s.misses, s.waits, s.entries
        );
    }
}

fn main() {
    let mut quick = false;
    let mut bench_baseline = false;
    let mut serve_addr: Option<String> = None;
    let mut serve_bench = false;
    let mut burst_addr: Option<String> = None;
    let mut trace_dir: Option<PathBuf> = None;
    let mut taper: Option<f64> = None;
    let mut shards: u32 = 1;
    let mut script_path: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--bench-baseline" => bench_baseline = true,
            "--serve" => {
                let addr = args.next().unwrap_or_else(|| {
                    eprintln!("--serve needs a listen address argument (e.g. 127.0.0.1:7878)");
                    std::process::exit(2);
                });
                serve_addr = Some(addr);
            }
            "--serve-bench" => serve_bench = true,
            "--burst" => {
                let addr = args.next().unwrap_or_else(|| {
                    eprintln!("--burst needs a target address argument (e.g. 127.0.0.1:7878)");
                    std::process::exit(2);
                });
                burst_addr = Some(addr);
            }
            "--trace" => {
                let dir = args.next().unwrap_or_else(|| {
                    eprintln!("--trace needs a directory argument");
                    std::process::exit(2);
                });
                trace_dir = Some(PathBuf::from(dir));
            }
            "--ablate-taper" => taper = Some(1.0),
            "--oversub" => {
                let t = args
                    .next()
                    .and_then(|v| v.parse::<f64>().ok())
                    .filter(|t| *t > 0.0 && *t <= 1.0);
                match t {
                    Some(t) => taper = Some(t),
                    None => {
                        eprintln!("--oversub needs a taper in (0, 1]");
                        std::process::exit(2);
                    }
                }
            }
            "--shards" => {
                let n = args.next().and_then(|v| v.parse::<u32>().ok());
                match n {
                    Some(n) if n >= 1 => shards = n,
                    _ => {
                        eprintln!("--shards needs a count of at least 1");
                        std::process::exit(2);
                    }
                }
            }
            "--script" => {
                let path = args.next().unwrap_or_else(|| {
                    eprintln!("--script needs a .hsim file argument");
                    std::process::exit(2);
                });
                script_path = Some(PathBuf::from(path));
            }
            other => {
                eprintln!(
                    "unknown flag {other} (usage: reproduce_all [--quick] [--bench-baseline] [--serve <addr>] [--serve-bench] [--burst <addr>] [--trace <dir>] [--ablate-taper | --oversub <taper>] [--shards <n>] [--script <file>])"
                );
                std::process::exit(2);
            }
        }
    }

    // Daemon modes replace the reproduction entirely: the lab *is* the
    // artifact.
    if let Some(addr) = serve_addr {
        let engine = std::sync::Arc::new(QueryEngine::new());
        let daemon =
            harborsim_core::lab::daemon::LabDaemon::bind(&addr, engine, 8).unwrap_or_else(|e| {
                eprintln!("cannot bind {addr}: {e}");
                std::process::exit(2);
            });
        println!(
            "lab daemon serving on http://{} (plan cache warm-started; POST /v1/lab, GET /v1/stats, POST /v1/shutdown)",
            daemon.local_addr()
        );
        daemon.serve();
        println!("lab daemon: shutdown request received, drained, exiting.");
        return;
    }
    if serve_bench {
        serve_bench_run();
        return;
    }
    if let Some(addr) = burst_addr {
        burst_run(&addr);
        return;
    }

    // Flags and scripts are one front end: a flag combination is exactly
    // the one-line script `flags_script` renders, so both paths compile
    // the same way and fingerprint to the same plan keys.
    let mut compiled: CompiledScript = match &script_path {
        Some(path) => {
            if taper.is_some() || shards != 1 {
                eprintln!(
                    "--script replaces --ablate-taper/--oversub/--shards: put `taper <t>` / `shards <n>` in the script instead"
                );
                std::process::exit(2);
            }
            let src = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("cannot read {}: {e}", path.display());
                std::process::exit(2);
            });
            compile_str(&src).unwrap_or_else(|e| {
                eprintln!("{}: {e}", path.display());
                std::process::exit(2);
            })
        }
        None => compile_str(&flags_script(quick, taper, shards))
            .expect("the flag front end always renders a valid script"),
    };
    // `--script X --quick` = run X's grid on one seed (the CI smoke mode)
    if script_path.is_some() && quick {
        compiled.seeds.truncate(1);
        for campaign in &mut compiled.campaigns {
            if let Some(seeds) = &mut campaign.seeds {
                seeds.truncate(1);
            }
        }
    }

    let taper = compiled.taper;
    let seeds: &[u64] = &compiled.seeds;
    let trace_dir = trace_dir.or_else(|| compiled.trace_dir.clone().map(PathBuf::from));
    let selected = |name: &str| match &compiled.experiments {
        None => false,
        Some(ExperimentsSpec::All) => true,
        Some(ExperimentsSpec::Named(names)) => names.iter().any(|n| n.value == name),
    };

    // The taper override is plumbed explicitly: one engine, one fallback,
    // shared by every experiment — so cached plans carry the ablation in
    // their keys instead of reading process-global state.
    let lab = QueryEngine::new().spine_taper_fallback(taper);
    if let Some(t) = taper {
        println!("NOTE: spine taper forced to {t} on every fat-tree fabric for this run.\n");
    }
    let trace = |name: &str, parts: &[(String, harborsim_des::trace::TraceBuffer)]| {
        if let Some(dir) = &trace_dir {
            write_trace(dir, name, parts);
        }
    };
    let t0 = Instant::now();
    let mut all_ok = true;
    let mut summary: Vec<(&str, String)> = Vec::new();

    if bench_baseline {
        println!("== Performance baseline (hot-path throughput) ==");
        let measured = harborsim_bench::baseline::measure();
        println!("{}", measured.to_ascii());
        let path = out_dir().join("BENCH_baseline.json");
        std::fs::write(&path, measured.to_json()).expect("write bench baseline");
        println!("  written to {}", path.display());
        let committed = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_baseline.json");
        match std::fs::read_to_string(&committed)
            .ok()
            .and_then(|t| BenchBaseline::from_json(&t))
        {
            Some(base) => {
                let (violations, warnings) = measured.check_regression(&base);
                for w in &warnings {
                    println!("  [--] {w}");
                }
                if violations.is_empty() {
                    println!("  [ok] no regression vs the committed baseline (spin-normalized)");
                } else {
                    for v in &violations {
                        println!("  [!!] {v}");
                    }
                    all_ok = false;
                }
            }
            None => println!(
                "  [--] no committed BENCH_baseline.json to compare against ({})",
                committed.display()
            ),
        }
        println!();
    }

    if compiled.experiments.is_some() {
        println!("== Machine calibration (model constants, derived) ==");
        println!(
            "{:<14} {:>16} {:>16} {:>12} {:>10}",
            "cluster", "node GF/s (CG)", "machine TF/s", "8B msg [us]", "BW [GB/s]"
        );
        for m in harborsim_core::calibration::all_machines() {
            println!(
                "{:<14} {:>16.0} {:>16.1} {:>12.1} {:>10.1}",
                m.name,
                m.node_sustained_gflops,
                m.machine_sustained_tflops,
                m.small_message_us,
                m.fabric_gbs
            );
        }
        println!();
    }

    if selected("fig1") {
        println!("== Fig. 1: containerization solutions (Lenox) ==");
        let f1 = fig1::run(&lab, seeds);
        write_figure(&f1);
        println!("{}", f1.to_ascii(72, 18));
        all_ok &= report_shapes("fig1", &fig1::check_shape(&f1));
        summary.push(("fig1", f1.to_json()));
        trace("fig1", &fig1::traces(&lab, seeds[0]));
    }

    if selected("fig2") {
        println!("\n== Fig. 2: portability (CTE-POWER) ==");
        let f2 = fig2::run(&lab, seeds);
        write_figure(&f2);
        println!("{}", f2.to_ascii(72, 18));
        all_ok &= report_shapes("fig2", &fig2::check_shape(&f2));
        summary.push(("fig2", f2.to_json()));
        trace("fig2", &fig2::traces(&lab, seeds[0]));
    }

    if selected("fig3") {
        println!("\n== Fig. 3: scalability (MareNostrum4, up to 12,288 cores) ==");
        let f3 = fig3::run(&lab, seeds);
        write_figure(&f3);
        println!("{}", f3.to_ascii(72, 18));
        all_ok &= report_shapes("fig3", &fig3::check_shape(&f3));
        summary.push(("fig3", f3.to_json()));
        trace("fig3", &fig3::traces(&lab, seeds[0]));
    }

    if selected("tables") {
        println!("\n== Table: deployment overhead / image size / execution time ==");
        let td = tables::deployment(&lab, seeds);
        write_table(&td);
        println!("{}", td.to_ascii());
        all_ok &= report_shapes("table-deployment", &tables::check_deployment_shape(&td));
        summary.push(("table_deployment", td.to_json()));
        trace("table-deployment", &tables::deployment_traces());

        println!("\n== Table: portability across three architectures ==");
        let tp = tables::portability(&lab, seeds);
        write_table(&tp);
        println!("{}", tp.to_ascii());
        all_ok &= report_shapes("table-portability", &tables::check_portability_shape(&tp));
        summary.push(("table_portability", tp.to_json()));
    }

    if selected("ext-io") {
        println!("\n== Extension: I/O & distributed storage (image-startup storm) ==");
        let fe = ext_io::run();
        write_figure(&fe);
        println!("{}", fe.to_ascii(72, 18));
        all_ok &= report_shapes("ext-io", &ext_io::check_shape(&fe));
        summary.push(("ext_io", fe.to_json()));
        trace("ext-io", &ext_io::traces());
    }

    if selected("ext-breakdown") {
        println!("\n== Extension: time decomposition + Docker --net=host ablation ==");
        let rows = ext_breakdown::run(&lab, seeds[0]);
        let tb = ext_breakdown::table(&rows);
        write_table(&tb);
        println!("{}", tb.to_ascii());
        all_ok &= report_shapes("ext-breakdown", &ext_breakdown::check_shape(&rows));
        summary.push(("ext_breakdown", tb.to_json()));
        trace("ext-breakdown", &ext_breakdown::traces(&rows));
    }

    if selected("ext-campaign") {
        println!("\n== Extension: campaign turnaround under the batch scheduler ==");
        let rows = ext_campaign::run(&lab, seeds);
        let tc = ext_campaign::table(&rows);
        write_table(&tc);
        println!("{}", tc.to_ascii());
        all_ok &= report_shapes("ext-campaign", &ext_campaign::check_shape(&rows));
        summary.push(("ext_campaign", tc.to_json()));
        trace("ext-campaign", &ext_campaign::traces());
    }

    if selected("ext-open-system") {
        println!("\n== Extension: open-system campaign (arrivals, mix, storms) ==");
        let data = ext_open_system::run(&lab, seeds);
        let to = ext_open_system::table(&data);
        write_table(&to);
        println!("{}", to.to_ascii());
        all_ok &= report_shapes("ext-open-system", &ext_open_system::check_shape(&data));
        summary.push(("ext_open_system", to.to_json()));
        trace("ext-open-system", &ext_open_system::traces(&lab, seeds[0]));
    }

    if selected("ext-weak") {
        println!("\n== Extension: weak scaling ==");
        let fw = ext_weak::run(&lab, seeds);
        write_figure(&fw);
        println!("{}", fw.to_ascii(72, 18));
        all_ok &= report_shapes("ext-weak", &ext_weak::check_shape(&fw));
        summary.push(("ext_weak", fw.to_json()));
        trace("ext-weak", &ext_weak::traces(&lab, seeds[0]));
    }

    if selected("ext-oversub") {
        println!("\n== Extension: spine oversubscription ==");
        let study = ext_oversub::run(&lab, seeds);
        write_figure(&study.fig);
        println!("{}", study.fig.to_ascii(72, 18));
        let tl = ext_oversub::table(&study);
        write_table(&tl);
        println!("{}", tl.to_ascii());
        all_ok &= report_shapes("ext-oversub", &ext_oversub::check_shape(&study));
        summary.push(("ext_oversub", study.fig.to_json()));
    }

    if selected("ext-degraded") {
        println!("\n== Extension: degraded-link robustness ==");
        let fd = ext_degraded::run(&lab, seeds);
        write_figure(&fd);
        println!("{}", fd.to_ascii(72, 18));
        all_ok &= report_shapes("ext-degraded", &ext_degraded::check_shape(&fd));
        summary.push(("ext_degraded", fd.to_json()));
    }

    if selected("ext-locality") {
        println!("\n== Extension: placement locality on the fat tree ==");
        let fl = ext_locality::run(&lab, seeds);
        write_figure(&fl);
        println!("{}", fl.to_ascii(72, 18));
        all_ok &= report_shapes("ext-locality", &ext_locality::check_shape(&fl));
        summary.push(("ext_locality", fl.to_json()));
    }

    if selected("validation") {
        if compiled.shards > 1 {
            println!(
                "\n== Engine cross-validation (DES on {} shards vs analytic) ==",
                compiled.shards
            );
        } else {
            println!("\n== Engine cross-validation (DES vs analytic) ==");
        }
        let vrows = validation::run_with_shards(&lab, compiled.shards);
        let tv = validation::table(&vrows);
        write_table(&tv);
        println!("{}", tv.to_ascii());
        all_ok &= report_shapes("ext-validation", &validation::check_shape(&vrows));
        summary.push(("validation", tv.to_json()));
        trace("validation", &validation::traces(&lab, seeds[0]));
    }

    // The generic campaign runner: every `campaign` block in the script
    // becomes a labelled grid of (mean elapsed, canonical plan-key
    // fingerprint) rows, executed through the same lab and plan cache as
    // the paper experiments.
    let fallback_seeds = compiled.seeds.clone();
    for campaign in compiled.campaigns {
        println!("\n== Campaign: {} ==", campaign.name);
        let campaign_seeds: Vec<u64> = campaign.seeds_or(&fallback_seeds).to_vec();
        let mut labels = Vec::with_capacity(campaign.runs.len());
        let mut prints = Vec::with_capacity(campaign.runs.len());
        let mut scenarios = Vec::with_capacity(campaign.runs.len());
        for run in campaign.runs {
            let label = if run.labels.is_empty() {
                "(base)".to_string()
            } else {
                run.labels.join(" / ")
            };
            labels.push(label);
            prints.push(run.fingerprint(taper));
            scenarios.push(run.scenario);
        }
        // An open campaign (`arrivals poisson …`) is not a grid of solver
        // runs but a stochastic arrival process: route it through the
        // open-system engine and report tail latency instead of means.
        if scenarios.iter().any(|s| s.open.is_some()) {
            println!(
                "{:<44} {:>7} {:>7} {:>10} {:>10}   {:<16}",
                "open run", "jobs", "util", "wait p50", "wait p99", "plan key"
            );
            for ((label, scenario), print) in labels.iter().zip(&scenarios).zip(&prints) {
                let mut wait = harborsim_core::QuantileSketch::new();
                let mut jobs = 0u64;
                let mut util = 0.0;
                for &seed in &campaign_seeds {
                    let report = harborsim_core::run_open_campaign(
                        &lab,
                        scenario,
                        seed,
                        &mut harborsim_des::trace::Recorder::off(),
                    )
                    .unwrap_or_else(|e| {
                        eprintln!("open campaign {label} failed: {e}");
                        std::process::exit(1);
                    });
                    jobs += report.jobs;
                    util += report.utilization;
                    for s in &report.per_runtime {
                        wait.merge(&s.wait);
                    }
                }
                util /= campaign_seeds.len().max(1) as f64;
                println!(
                    "{label:<44} {jobs:>7} {:>6.0}% {:>9.1}s {:>9.1}s   {print:016x}",
                    util * 100.0,
                    wait.p50(),
                    wait.p99()
                );
            }
        } else {
            let means = lab
                .handle(harborsim_core::lab::LabRequest::batch(
                    scenarios,
                    &campaign_seeds,
                ))
                .means();
            println!("{:<44} {:>12}   {:<16}", "run", "mean [s]", "plan key");
            for ((label, mean), print) in labels.iter().zip(&means).zip(&prints) {
                println!("{label:<44} {mean:>12.2}   {print:016x}");
            }
        }
    }

    let body: Vec<String> = summary
        .iter()
        .map(|(k, v)| format!("  \"{k}\": {v}"))
        .collect();
    let summary_path = out_dir().join("summary.json");
    std::fs::write(&summary_path, format!("{{\n{}\n}}\n", body.join(",\n")))
        .expect("write summary");

    println!("\n{}", lab.stats().summary_line());
    if trace_dir.is_some() {
        print_shard_skew(&lab);
    }
    println!(
        "Done in {:.1}s. Artifacts in {} (summary.json, per-figure csv/svg/txt).",
        t0.elapsed().as_secs_f64(),
        out_dir().display()
    );
    if let Some(dir) = &trace_dir {
        println!(
            "Traces in {} (one chrome://tracing JSON per experiment).",
            dir.display()
        );
    }
    if !all_ok {
        println!("SOME SHAPE CHECKS FAILED — see above.");
        std::process::exit(1);
    }
    println!("All shape checks passed: the reproduction matches the paper's claims.");
}
