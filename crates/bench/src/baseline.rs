//! The tracked performance baseline.
//!
//! `reproduce_all --bench-baseline` measures the simulator's hot
//! paths — DES event churn, the Alya CFD step, cached-plan
//! execute-many throughput, the sharded 256-node campaign, the
//! open-system campaign engine, and the lab daemon under its built-in
//! load generator — and writes them to
//! `target/study/BENCH_baseline.json`. A copy committed at the repository
//! root (`BENCH_baseline.json`) records the trajectory PR-over-PR; the CI
//! smoke job re-measures and fails if DES events/sec regresses more than
//! 20% against the committed numbers.
//!
//! Raw throughput is machine-dependent, so every run also measures a tiny
//! integer-spin calibration loop; comparisons divide each rate by the spin
//! rate of its own run, cancelling the machine out (the same normalization
//! the paper's cross-machine tables rely on).

use harborsim_alya::mesh::{TubeMesh, NB_XM, NB_XP, NB_YM, NB_YP};
use harborsim_alya::{CfdConfig, CfdSolver};
use harborsim_batch::{run_open, OpenCluster, OpenJob};
use harborsim_container::StagePlan;
use harborsim_des::queue::EventQueue;
use harborsim_des::trace::Recorder;
use harborsim_des::{Engine, Event, RngStream, SimDuration};
use harborsim_mpi::analytic::EngineConfig;
use harborsim_mpi::workload::{CommPhase, JobProfile, StepProfile};
use harborsim_mpi::{DesEngine, RankMap};
use harborsim_net::{DataPath, NetworkModel, Topology, TransportSelection};
use std::collections::HashSet;
use std::hint::black_box;
use std::time::Instant;

/// Schedule/cancel/pop rounds of the churn workload.
const CHURN_ROUNDS: usize = 64;
/// Events scheduled per churn round.
const CHURN_BATCH: usize = 512;
/// Timing repetitions; the best (least-interfered) sample is kept.
const TIMING_REPS: usize = 5;
/// Allowed normalized events/sec regression before the gate fails.
const REGRESSION_TOLERANCE: f64 = 0.20;

/// One measured baseline: absolute rates plus the calibration spin rate
/// that makes them comparable across machines.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchBaseline {
    /// Calibration: wrapping-multiply spin loop, million ops/sec.
    pub spin_mops: f64,
    /// Arena + 4-ary-heap engine on the churn workload, events/sec.
    pub des_churn_new_eps: f64,
    /// Boxed-closure `BinaryHeap` + tombstone-set reference on the same
    /// workload, events/sec.
    pub des_churn_old_eps: f64,
    /// `des_churn_new_eps / des_churn_old_eps`.
    pub churn_speedup: f64,
    /// CFD step at 13×13×24 (radius 5), cell-updates/sec.
    pub cfd_small_cups: f64,
    /// CFD step at 21×21×48 (radius 8), cell-updates/sec.
    pub cfd_large_cups: f64,
    /// Cross-section-list momentum sweep vs the branch-tested full-plane
    /// scan it replaced, on identical data.
    pub cfd_momentum_speedup: f64,
    /// `ScenarioPlan::execute` on a cached plan, runs/sec.
    pub execute_many_rps: f64,
    /// Serial DES on the 256-node fat-tree campaign, events/sec.
    pub par_des_serial_eps: f64,
    /// Sharded DES (4 shards) on the same campaign, events/sec. The
    /// shard count is an execution knob, not a model knob — the sharded
    /// run is bit-identical to serial.
    pub par_des_eps: f64,
    /// `par_des_eps / par_des_serial_eps`. Only meaningful next to
    /// [`BenchBaseline::host_threads`]: on a single-hardware-thread host
    /// the shards time-slice one core and the ratio sits at or below
    /// 1.0; the speedup materializes with the hardware parallelism.
    pub par_des_speedup: f64,
    /// Hardware threads available to the measuring process — the honest
    /// context for `par_des_speedup`.
    pub host_threads: f64,
    /// Open-system campaign engine (arrivals + EASY backfill + staging
    /// flows) on the canned storm workload, events/sec.
    pub open_system_eps: f64,
    /// Lab daemon (threaded front end) under the closed-loop load
    /// generator (4 clients, Zipf query mix over the scenario menu,
    /// seeds cycling mod 3), answered queries/sec over the loopback
    /// socket.
    pub daemon_qps: f64,
    /// 99th-percentile request latency of the same run, milliseconds.
    /// Tracked as a warning (tail latency on a shared CI runner is too
    /// noisy to gate hard).
    pub daemon_p99_ms: f64,
    /// Lab daemon (epoll reactor front end) under the same closed-loop
    /// generator with 4 pipelined requests in flight per connection,
    /// answered queries/sec.
    pub daemon_mux_qps: f64,
    /// 99th-percentile request latency of the mux run, milliseconds
    /// (tracked, not gated, like `daemon_p99_ms`).
    pub daemon_mux_p99_ms: f64,
    /// Simultaneous keep-alive connections the reactor held over a
    /// 4-worker pool, every one of them answering queries — the
    /// concurrency headroom the reactor exists for (thread-per-
    /// connection caps at the pool size). Gated as a floor, not a rate.
    pub daemon_open_conns: f64,
}

/// Best-of-N wall-clock timing of `work`, returning `units / seconds`.
fn rate_of<F: FnMut() -> u64>(units: f64, mut work: F) -> f64 {
    black_box(work()); // warm-up: touch code, grow scratch to steady state
    let mut best = f64::INFINITY;
    for _ in 0..TIMING_REPS {
        let t0 = Instant::now();
        black_box(work());
        best = best.min(t0.elapsed().as_secs_f64());
    }
    units / best
}

fn spin(iters: u64) -> u64 {
    let mut acc = 1u64;
    for i in 0..iters {
        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
    }
    acc
}

/// The calibration spin rate in million ops/sec.
fn spin_mops() -> f64 {
    const ITERS: u64 = 50_000_000;
    rate_of(ITERS as f64, || spin(ITERS)) / 1e6
}

#[derive(Clone, Copy)]
struct ChurnEv;

impl Event<u64> for ChurnEv {
    fn fire(self, _eng: &mut Engine<u64, ChurnEv>, fired: &mut u64) {
        *fired += 1;
    }
}

/// The churn workload on the arena engine: per round, schedule a batch of
/// cancellable events at pseudo-random near-future times, cancel every
/// third one, drain. Returns events fired (a determinism check more than a
/// result).
pub fn churn_arena(rounds: usize, batch: usize) -> u64 {
    let mut eng: Engine<u64, ChurnEv> = Engine::new();
    let mut rng = RngStream::new(0xC0DE);
    let mut ids = Vec::with_capacity(batch);
    let mut fired = 0u64;
    for _ in 0..rounds {
        ids.clear();
        for _ in 0..batch {
            ids.push(
                eng.schedule_cancellable_event(SimDuration::from_nanos(rng.below(1000)), ChurnEv),
            );
        }
        for id in ids.iter().skip(1).step_by(3) {
            eng.cancel(*id);
        }
        eng.run(&mut fired);
    }
    fired
}

/// The same workload on the representation the engine replaced, replicated
/// from the seed engine: per event an `id: Option<u64>` tag plus a boxed
/// closure in the reference `BinaryHeap` queue, cancellation through a
/// tombstone hash set probed on every cancellable pop, and a peek-then-pop
/// event loop.
pub fn churn_reference(rounds: usize, batch: usize) -> u64 {
    struct Entry {
        id: Option<u64>,
        f: Box<dyn FnOnce(&mut u64)>,
    }
    let mut q: EventQueue<Entry> = EventQueue::new();
    let mut cancelled: HashSet<u64> = HashSet::new();
    let mut next_id = 0u64;
    let mut rng = RngStream::new(0xC0DE);
    let mut ids = Vec::with_capacity(batch);
    let mut now = harborsim_des::SimTime::ZERO;
    let mut fired = 0u64;
    for _ in 0..rounds {
        ids.clear();
        for _ in 0..batch {
            let at = now + SimDuration::from_nanos(rng.below(1000));
            let id = next_id;
            next_id += 1;
            // capture state, as the engine's protocol closures did — a
            // captureless closure would box a ZST and skip the allocation
            let step = 1u64;
            q.push(
                at,
                Entry {
                    id: Some(id),
                    f: Box::new(move |fired: &mut u64| *fired += step),
                },
            );
            ids.push(id);
        }
        for id in ids.iter().skip(1).step_by(3) {
            cancelled.insert(*id);
        }
        while let Some(at) = q.peek_time() {
            let s = q.pop().expect("peeked entry vanished");
            debug_assert_eq!(s.at, at);
            if let Some(id) = s.payload.id {
                if cancelled.remove(&id) {
                    continue;
                }
            }
            now = s.at;
            (s.payload.f)(&mut fired);
        }
    }
    fired
}

/// CFD cell-updates/sec: `steps` full solver steps on an
/// `nx × ny × nz` tube, after a short warm-up so the CG warm start is in
/// its steady state.
fn cfd_rate(nx: usize, ny: usize, nz: usize, radius: f64, steps: usize) -> f64 {
    let mesh = TubeMesh::cylinder(nx, ny, nz, radius);
    let cfg = CfdConfig::stable(&mesh, 50.0, 0.1);
    let active = mesh.active_cells() as f64;
    let mut s = CfdSolver::new(mesh, cfg);
    s.run(5);
    rate_of(active * steps as f64, || {
        s.run(steps);
        s.stats.steps
    })
}

/// The branch-tested full-plane momentum sweep the cross-section list
/// replaced: every cell of every interior plane is visited and the mask is
/// probed per neighbour. Kept here as the measured "before" of the kernel
/// restructuring.
fn momentum_reference(mesh: &TubeMesh, u: &[f64], out: &mut [f64]) {
    let (nx, ny, nz) = (mesh.nx, mesh.ny, mesh.nz);
    let plane = nx * ny;
    for k in 1..nz - 1 {
        for j in 0..ny {
            for i in 0..nx {
                let idx = i + nx * j + plane * k;
                if !mesh.active_flat(idx) {
                    out[idx] = 0.0;
                    continue;
                }
                let get = |di: isize, dj: isize, dk: isize| -> f64 {
                    let (ii, jj, kk) = (i as isize + di, j as isize + dj, k as isize + dk);
                    if mesh.is_active(ii, jj, kk) {
                        u[(ii as usize) + nx * (jj as usize) + plane * (kk as usize)]
                    } else {
                        0.0
                    }
                };
                let c = u[idx];
                let lap = get(-1, 0, 0)
                    + get(1, 0, 0)
                    + get(0, -1, 0)
                    + get(0, 1, 0)
                    + get(0, 0, -1)
                    + get(0, 0, 1)
                    - 6.0 * c;
                out[idx] = c + 0.01 * lap;
            }
        }
    }
}

/// The same diffusion sweep over the precomputed cross-section list.
fn momentum_crosslist(mesh: &TubeMesh, u: &[f64], out: &mut [f64]) {
    let nx = mesh.nx;
    let plane = nx * mesh.ny;
    for k in 1..mesh.nz - 1 {
        let base = plane * k;
        for c in mesh.cross_cells() {
            let idx = base + c.o as usize;
            let nb = c.nb;
            let cv = u[idx];
            let xm = if nb & NB_XM != 0 { u[idx - 1] } else { 0.0 };
            let xp = if nb & NB_XP != 0 { u[idx + 1] } else { 0.0 };
            let ym = if nb & NB_YM != 0 { u[idx - nx] } else { 0.0 };
            let yp = if nb & NB_YP != 0 { u[idx + nx] } else { 0.0 };
            let lap = xm + xp + ym + yp + u[idx - plane] + u[idx + plane] - 6.0 * cv;
            out[idx] = cv + 0.01 * lap;
        }
    }
}

/// Measured speedup of the cross-section-list sweep over the full-plane
/// branch-tested scan, on identical data (results are asserted equal).
fn momentum_speedup() -> f64 {
    let mesh = TubeMesh::cylinder(21, 21, 48, 8.0);
    let n = mesh.total_cells();
    let mut u = vec![0.0; n];
    for (i, x) in u.iter_mut().enumerate() {
        if mesh.active_flat(i) {
            *x = (i % 97) as f64 * 0.013;
        }
    }
    let mut a = vec![0.0; n];
    let mut b = vec![0.0; n];
    const SWEEPS: usize = 40;
    let slow = rate_of(SWEEPS as f64, || {
        for _ in 0..SWEEPS {
            momentum_reference(&mesh, &u, &mut a);
        }
        SWEEPS as u64
    });
    let fast = rate_of(SWEEPS as f64, || {
        for _ in 0..SWEEPS {
            momentum_crosslist(&mesh, &u, &mut b);
        }
        SWEEPS as u64
    });
    assert_eq!(a, b, "reference and cross-list sweeps must agree exactly");
    fast / slow
}

/// The 256-node parallel-DES campaign: MareNostrum4's tapered fat tree
/// crossed by halos and allreduces from 512 ranks — large enough that
/// the domain decomposition spans every leaf group, small enough that
/// `--bench-baseline` stays a few seconds. Shared by the baseline and
/// the `engine_micro` per-shard scaling rows.
pub fn par_des_campaign() -> (DesEngine, JobProfile) {
    let cluster = harborsim_hw::presets::marenostrum4();
    let engine = DesEngine::new(
        cluster.node,
        NetworkModel::compose(
            cluster.interconnect,
            TransportSelection::Native,
            DataPath::Host,
            Topology::mn4_fat_tree(),
        ),
        RankMap::block(256, 2, 1),
        EngineConfig::default(),
    );
    let job = JobProfile::uniform(
        StepProfile {
            flops_per_rank: 5e7,
            imbalance: 1.01,
            regions: 2.0,
            comm: vec![
                CommPhase::Halo1D {
                    bytes: 50_000,
                    repeats: 2,
                },
                CommPhase::Allreduce {
                    bytes: 8,
                    repeats: 4,
                },
            ],
        },
        2,
    );
    (engine, job)
}

/// Events/sec of the 256-node campaign at `shards` (1 = the serial
/// event loop).
pub fn par_des_eps(shards: u32) -> f64 {
    let (engine, job) = par_des_campaign();
    let engine = engine.with_shards(shards);
    let (_, events) = engine.run_counted(&job, 1, &mut Recorder::off());
    rate_of(events as f64, || {
        engine.run_counted(&job, 1, &mut Recorder::off()).1
    })
}

/// The canned open-system storm: `n` jobs from `tenants` tenants arrive
/// over `horizon_s` seconds on a 24-node machine, each staging a
/// registry pull and/or a parallel-filesystem unpack before solving —
/// enough co-arrival that the FluidLink fair-share repartitioning (the
/// expensive part of the open engine) is exercised throughout.
pub fn open_storm_jobs(n: u32, tenants: u32, horizon_s: f64) -> Vec<OpenJob> {
    let mut rng = RngStream::new(0x0BE7).derive("bench-open");
    (0..n)
        .map(|id| {
            let registry = if rng.below(3) > 0 {
                (50 + rng.below(200)) as f64 * 1e6
            } else {
                0.0
            };
            OpenJob {
                id,
                tenant: rng.below(u64::from(tenants)) as u32,
                class: 0,
                nodes: 1 + rng.below(4) as u32,
                submit_s: horizon_s * id as f64 / n as f64,
                solver_s: (30 + rng.below(120)) as f64,
                walltime_s: 600.0,
                stage: StagePlan {
                    registry_bytes: registry,
                    pfs_bytes: (100 + rng.below(900)) as f64 * 1e6,
                    fixed_s: 2.0 + rng.below(6) as f64,
                },
            }
        })
        .collect()
}

/// Events/sec of the open-system campaign engine on the canned storm.
fn open_system_eps() -> f64 {
    let cluster = OpenCluster {
        total_nodes: 24,
        registry_bps: 117e6,
        pfs_bps: 4e9,
    };
    let jobs = open_storm_jobs(400, 8, 1800.0);
    let events = run_open(&cluster, jobs.clone(), &mut Recorder::off()).events;
    rate_of(events as f64, || {
        run_open(&cluster, jobs.clone(), &mut Recorder::off()).events
    })
}

/// Daemon throughput and tail latency under the built-in load
/// generator, one serving model at a time: bind a warm-started daemon
/// on a loopback port, drive it closed-loop (no think time — the
/// regression gate wants the throughput ceiling, not an arrival-rate
/// echo), and read qps + p99 off the report. The threaded run keeps
/// `in_flight: 1` (the pre-reactor workload, so `daemon_qps` stays
/// comparable PR-over-PR); the reactor run pipelines 4 per connection —
/// the concurrency the mux front end exists for. `--serve-bench` runs
/// the same generator with Poisson pacing for the arrival-process view.
fn daemon_rates(mode: harborsim_core::lab::daemon::ServeMode, in_flight: usize) -> (f64, f64) {
    use harborsim_core::lab::daemon::LabDaemon;
    use harborsim_core::lab::QueryEngine;
    use std::sync::Arc;
    let daemon = LabDaemon::bind("127.0.0.1:0", Arc::new(QueryEngine::new()), 4)
        .expect("bind the baseline daemon on loopback")
        .mode(mode);
    let handle = daemon.spawn();
    let report = crate::loadgen::run_with(
        handle.addr(),
        4,
        96,
        crate::loadgen::Drive::Closed { in_flight },
    );
    handle.shutdown();
    assert_eq!(report.errors, 0, "baseline loadgen run errored: {report:?}");
    (report.qps, report.p99_ms)
}

/// How many simultaneous keep-alive connections the reactor holds over
/// a 4-worker pool: open 256, query every one, then query every one
/// *again* (proving none were dropped to make room), and read the
/// daemon's own `open_conns` counter with all of them still connected.
fn daemon_open_conns() -> f64 {
    use harborsim_core::lab::daemon::{LabClient, LabDaemon, ServeMode};
    use harborsim_core::lab::{LabRequest, QueryEngine};
    use std::sync::Arc;
    const CONNS: usize = 256;
    let daemon = LabDaemon::bind("127.0.0.1:0", Arc::new(QueryEngine::new()), 4)
        .expect("bind the baseline daemon on loopback")
        .mode(ServeMode::Reactor);
    let handle = daemon.spawn();
    let mut clients: Vec<LabClient> = (0..CONNS)
        .map(|i| LabClient::connect(handle.addr()).unwrap_or_else(|e| panic!("connect {i}: {e}")))
        .collect();
    for pass in 0..2 {
        for (i, client) in clients.iter_mut().enumerate() {
            let req = LabRequest::plan(crate::loadgen::menu_scenario(i % crate::loadgen::MENU_LEN));
            client
                .query(&req)
                .unwrap_or_else(|e| panic!("pass {pass} conn {i}: {e}"));
        }
    }
    let stats = clients[0]
        .stats()
        .expect("stats over a held connection")
        .into_stats();
    let open = stats.daemon.map_or(0, |d| d.open_conns);
    drop(clients);
    handle.shutdown();
    open as f64
}

/// Cached-plan `execute` throughput, runs/sec (untraced, as the batch
/// sharding of the query engine drives it).
fn execute_many_rps() -> f64 {
    use harborsim_core::lab::QueryEngine;
    use harborsim_core::scenario::{Execution, Scenario};
    let scenario = Scenario::new(
        harborsim_hw::presets::lenox(),
        harborsim_core::workloads::artery_cfd_small(),
    )
    .execution(Execution::singularity_self_contained())
    .nodes(2)
    .ranks_per_node(14);
    let lab = QueryEngine::new();
    let plan = lab.plan(&scenario).expect("scenario compiles");
    const RUNS: u64 = 64;
    rate_of(RUNS as f64, || {
        let mut acc = 0u64;
        for seed in 0..RUNS {
            acc ^= plan.execute(seed, &mut Recorder::off()).elapsed.as_nanos();
        }
        acc
    })
}

/// Measure the full baseline. Takes a few seconds; intended for
/// `reproduce_all --bench-baseline` and the CI smoke job.
pub fn measure() -> BenchBaseline {
    use harborsim_core::lab::daemon::ServeMode;
    let spin = spin_mops();
    let (daemon_qps, daemon_p99_ms) = daemon_rates(ServeMode::Threaded, 1);
    let (daemon_mux_qps, daemon_mux_p99_ms) = daemon_rates(ServeMode::Reactor, 4);
    let daemon_open_conns = daemon_open_conns();
    let churn_events = (CHURN_ROUNDS * CHURN_BATCH) as f64;
    let new_eps = rate_of(churn_events, || churn_arena(CHURN_ROUNDS, CHURN_BATCH));
    let old_eps = rate_of(churn_events, || churn_reference(CHURN_ROUNDS, CHURN_BATCH));
    let serial_eps = par_des_eps(1);
    let sharded_eps = par_des_eps(4);
    BenchBaseline {
        spin_mops: spin,
        des_churn_new_eps: new_eps,
        des_churn_old_eps: old_eps,
        churn_speedup: new_eps / old_eps,
        cfd_small_cups: cfd_rate(13, 13, 24, 5.0, 20),
        cfd_large_cups: cfd_rate(21, 21, 48, 8.0, 5),
        cfd_momentum_speedup: momentum_speedup(),
        execute_many_rps: execute_many_rps(),
        par_des_serial_eps: serial_eps,
        par_des_eps: sharded_eps,
        par_des_speedup: sharded_eps / serial_eps,
        host_threads: std::thread::available_parallelism()
            .map(|n| n.get() as f64)
            .unwrap_or(1.0),
        open_system_eps: open_system_eps(),
        daemon_qps,
        daemon_p99_ms,
        daemon_mux_qps,
        daemon_mux_p99_ms,
        daemon_open_conns,
    }
}

impl BenchBaseline {
    /// Serialize to the committed JSON shape.
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"schema\": 5,\n  \"spin_mops\": {:.1},\n  \"des_churn_new_eps\": {:.0},\n  \"des_churn_old_eps\": {:.0},\n  \"churn_speedup\": {:.2},\n  \"cfd_small_cups\": {:.0},\n  \"cfd_large_cups\": {:.0},\n  \"cfd_momentum_speedup\": {:.2},\n  \"execute_many_rps\": {:.1},\n  \"par_des_serial_eps\": {:.0},\n  \"par_des_eps\": {:.0},\n  \"par_des_speedup\": {:.2},\n  \"host_threads\": {:.0},\n  \"open_system_eps\": {:.0},\n  \"daemon_qps\": {:.1},\n  \"daemon_p99_ms\": {:.2},\n  \"daemon_mux_qps\": {:.1},\n  \"daemon_mux_p99_ms\": {:.2},\n  \"daemon_open_conns\": {:.0}\n}}\n",
            self.spin_mops,
            self.des_churn_new_eps,
            self.des_churn_old_eps,
            self.churn_speedup,
            self.cfd_small_cups,
            self.cfd_large_cups,
            self.cfd_momentum_speedup,
            self.execute_many_rps,
            self.par_des_serial_eps,
            self.par_des_eps,
            self.par_des_speedup,
            self.host_threads,
            self.open_system_eps,
            self.daemon_qps,
            self.daemon_p99_ms,
            self.daemon_mux_qps,
            self.daemon_mux_p99_ms,
            self.daemon_open_conns,
        )
    }

    /// Parse the committed JSON shape (tolerant of field order).
    pub fn from_json(text: &str) -> Option<BenchBaseline> {
        let field = |key: &str| -> Option<f64> {
            let pat = format!("\"{key}\"");
            let at = text.find(&pat)? + pat.len();
            let rest = text[at..].trim_start().strip_prefix(':')?.trim_start();
            let end = rest
                .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e'))
                .unwrap_or(rest.len());
            rest[..end].parse().ok()
        };
        Some(BenchBaseline {
            spin_mops: field("spin_mops")?,
            des_churn_new_eps: field("des_churn_new_eps")?,
            des_churn_old_eps: field("des_churn_old_eps")?,
            churn_speedup: field("churn_speedup")?,
            cfd_small_cups: field("cfd_small_cups")?,
            cfd_large_cups: field("cfd_large_cups")?,
            cfd_momentum_speedup: field("cfd_momentum_speedup")?,
            execute_many_rps: field("execute_many_rps")?,
            par_des_serial_eps: field("par_des_serial_eps")?,
            par_des_eps: field("par_des_eps")?,
            par_des_speedup: field("par_des_speedup")?,
            host_threads: field("host_threads")?,
            // schema 2 baselines predate the open engine, schema 3 the
            // daemon, schema 4 the reactor; parse them with the metrics
            // absent rather than discarding the whole file
            open_system_eps: field("open_system_eps").unwrap_or(0.0),
            daemon_qps: field("daemon_qps").unwrap_or(0.0),
            daemon_p99_ms: field("daemon_p99_ms").unwrap_or(0.0),
            daemon_mux_qps: field("daemon_mux_qps").unwrap_or(0.0),
            daemon_mux_p99_ms: field("daemon_mux_p99_ms").unwrap_or(0.0),
            daemon_open_conns: field("daemon_open_conns").unwrap_or(0.0),
        })
    }

    /// A human-readable report.
    pub fn to_ascii(&self) -> String {
        format!(
            "  calibration spin        {:>12.1} Mops/s\n\
             \x20 DES churn (arena)       {:>12.3e} events/s\n\
             \x20 DES churn (reference)   {:>12.3e} events/s  (speedup {:.2}x)\n\
             \x20 CFD step 13x13x24       {:>12.3e} cell-updates/s\n\
             \x20 CFD step 21x21x48       {:>12.3e} cell-updates/s  (momentum sweep {:.2}x)\n\
             \x20 cached-plan execute     {:>12.1} runs/s\n\
             \x20 DES 256n campaign (1)   {:>12.3e} events/s\n\
             \x20 DES 256n campaign (4)   {:>12.3e} events/s  ({:.2}x on {:.0} host thread(s))\n\
             \x20 open-system storm       {:>12.3e} events/s\n\
             \x20 lab daemon (threaded)   {:>12.1} queries/s  (p99 {:.2} ms)\n\
             \x20 lab daemon (reactor)    {:>12.1} queries/s  (p99 {:.2} ms, pipeline depth 4)\n\
             \x20 reactor open conns      {:>12.0} keep-alive sockets over 4 workers",
            self.spin_mops,
            self.des_churn_new_eps,
            self.des_churn_old_eps,
            self.churn_speedup,
            self.cfd_small_cups,
            self.cfd_large_cups,
            self.cfd_momentum_speedup,
            self.execute_many_rps,
            self.par_des_serial_eps,
            self.par_des_eps,
            self.par_des_speedup,
            self.host_threads,
            self.open_system_eps,
            self.daemon_qps,
            self.daemon_p99_ms,
            self.daemon_mux_qps,
            self.daemon_mux_p99_ms,
            self.daemon_open_conns,
        )
    }

    /// Compare against a committed baseline, normalizing both sides by
    /// their own calibration spin rate. Returns `(violations, warnings)`:
    /// empty violations = pass, warnings are comparisons that were
    /// skipped rather than failed. Gates: the DES churn events/sec rate,
    /// and — only when both runs saw the same hardware thread count —
    /// the sharded-DES speedup ratio, which is a property of the host's
    /// parallelism as much as of the code and would false-alarm across
    /// machines. The other rates are tracked but informational.
    pub fn check_regression(&self, committed: &BenchBaseline) -> (Vec<String>, Vec<String>) {
        let mut violations = Vec::new();
        let mut warnings = Vec::new();
        let norm_now = self.des_churn_new_eps / self.spin_mops;
        let norm_then = committed.des_churn_new_eps / committed.spin_mops;
        let ratio = norm_now / norm_then;
        if ratio < 1.0 - REGRESSION_TOLERANCE {
            violations.push(format!(
                "DES events/sec regressed {:.0}% vs the committed baseline \
                 (normalized {norm_now:.0} vs {norm_then:.0} events per Mspin)",
                (1.0 - ratio) * 100.0
            ));
        }
        if committed.daemon_qps == 0.0 {
            warnings.push(
                "skipping the daemon_qps comparison: the committed baseline predates \
                 the lab daemon (schema < 4)"
                    .to_string(),
            );
        } else {
            let norm_now = self.daemon_qps / self.spin_mops;
            let norm_then = committed.daemon_qps / committed.spin_mops;
            let ratio = norm_now / norm_then;
            if ratio < 1.0 - REGRESSION_TOLERANCE {
                violations.push(format!(
                    "daemon queries/sec regressed {:.0}% vs the committed baseline \
                     (normalized {norm_now:.2} vs {norm_then:.2} queries per Mspin)",
                    (1.0 - ratio) * 100.0
                ));
            }
            // tail latency is informational: CI runners share cores and
            // the p99 of a loopback socket is scheduler noise as much as
            // code — surface big shifts, never fail on them
            if committed.daemon_p99_ms > 0.0 && self.daemon_p99_ms > 3.0 * committed.daemon_p99_ms {
                warnings.push(format!(
                    "daemon p99 latency moved {:.2} ms -> {:.2} ms (tracked, not gated)",
                    committed.daemon_p99_ms, self.daemon_p99_ms
                ));
            }
        }
        if committed.daemon_mux_qps == 0.0 {
            warnings.push(
                "skipping the daemon_mux_qps comparison: the committed baseline predates \
                 the reactor front end (schema < 5)"
                    .to_string(),
            );
        } else {
            let norm_now = self.daemon_mux_qps / self.spin_mops;
            let norm_then = committed.daemon_mux_qps / committed.spin_mops;
            let ratio = norm_now / norm_then;
            if ratio < 1.0 - REGRESSION_TOLERANCE {
                violations.push(format!(
                    "reactor daemon queries/sec regressed {:.0}% vs the committed baseline \
                     (normalized {norm_now:.2} vs {norm_then:.2} queries per Mspin)",
                    (1.0 - ratio) * 100.0
                ));
            }
            if committed.daemon_mux_p99_ms > 0.0
                && self.daemon_mux_p99_ms > 3.0 * committed.daemon_mux_p99_ms
            {
                warnings.push(format!(
                    "reactor daemon p99 latency moved {:.2} ms -> {:.2} ms (tracked, not gated)",
                    committed.daemon_mux_p99_ms, self.daemon_mux_p99_ms
                ));
            }
        }
        // The connection count is a capability floor, not a rate: no
        // spin normalization, any shrink is a regression.
        if committed.daemon_open_conns > 0.0 && self.daemon_open_conns < committed.daemon_open_conns
        {
            violations.push(format!(
                "reactor held {:.0} simultaneous connections, the committed baseline held {:.0}",
                self.daemon_open_conns, committed.daemon_open_conns
            ));
        }
        if self.host_threads != committed.host_threads {
            warnings.push(format!(
                "skipping the par_des_speedup comparison: this host has {:.0} \
                 hardware thread(s), the committed baseline was measured on {:.0}",
                self.host_threads, committed.host_threads
            ));
        } else {
            let ratio = self.par_des_speedup / committed.par_des_speedup;
            if ratio < 1.0 - REGRESSION_TOLERANCE {
                violations.push(format!(
                    "sharded-DES speedup regressed {:.0}% vs the committed baseline \
                     ({:.2}x vs {:.2}x on {:.0} host thread(s))",
                    (1.0 - ratio) * 100.0,
                    self.par_des_speedup,
                    committed.par_des_speedup,
                    self.host_threads
                ));
            }
        }
        (violations, warnings)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn churn_workloads_fire_the_same_events() {
        // both representations must execute the identical logical workload
        let fired = churn_arena(4, 30);
        assert_eq!(fired, churn_reference(4, 30));
        // per round: 30 scheduled, every third of the tail cancelled
        let cancelled_per_round = (1..30).step_by(3).count() as u64;
        assert_eq!(fired, 4 * (30 - cancelled_per_round));
    }

    #[test]
    fn json_round_trips() {
        let b = BenchBaseline {
            spin_mops: 1234.5,
            des_churn_new_eps: 2.0e7,
            des_churn_old_eps: 1.0e7,
            churn_speedup: 2.0,
            cfd_small_cups: 3.0e7,
            cfd_large_cups: 2.5e7,
            cfd_momentum_speedup: 1.4,
            execute_many_rps: 800.0,
            par_des_serial_eps: 1.0e6,
            par_des_eps: 3.0e6,
            par_des_speedup: 3.0,
            host_threads: 8.0,
            open_system_eps: 5.0e5,
            daemon_qps: 250.0,
            daemon_p99_ms: 12.5,
            daemon_mux_qps: 410.0,
            daemon_mux_p99_ms: 9.5,
            daemon_open_conns: 256.0,
        };
        let parsed = BenchBaseline::from_json(&b.to_json()).expect("parses");
        assert_eq!(parsed, b);
        assert!(BenchBaseline::from_json("{}").is_none());
        // a schema-2 file (no open_system_eps) still parses, metric zeroed
        let legacy = b
            .to_json()
            .replace("  \"open_system_eps\": 500000,\n", "")
            .replace("  \"daemon_qps\": 250.0,\n", "")
            .replace("  \"daemon_p99_ms\": 12.50,\n", "")
            .replace("  \"daemon_mux_qps\": 410.0,\n", "")
            .replace("  \"daemon_mux_p99_ms\": 9.50,\n", "")
            .replace("  \"daemon_open_conns\": 256\n", "");
        let parsed = BenchBaseline::from_json(&legacy).expect("schema 2 parses");
        assert_eq!(parsed.open_system_eps, 0.0);
        assert_eq!(parsed.daemon_qps, 0.0);
        assert_eq!(parsed.daemon_mux_qps, 0.0);
        assert_eq!(parsed.daemon_open_conns, 0.0);
        assert_eq!(parsed.par_des_speedup, 3.0);
    }

    #[test]
    fn regression_gate_normalizes_by_spin_rate() {
        let base = BenchBaseline {
            spin_mops: 1000.0,
            des_churn_new_eps: 1.0e7,
            des_churn_old_eps: 5.0e6,
            churn_speedup: 2.0,
            cfd_small_cups: 1.0,
            cfd_large_cups: 1.0,
            cfd_momentum_speedup: 1.0,
            execute_many_rps: 1.0,
            par_des_serial_eps: 1.0e6,
            par_des_eps: 2.0e6,
            par_des_speedup: 2.0,
            host_threads: 4.0,
            open_system_eps: 1.0e5,
            daemon_qps: 300.0,
            daemon_p99_ms: 10.0,
            daemon_mux_qps: 600.0,
            daemon_mux_p99_ms: 8.0,
            daemon_open_conns: 256.0,
        };
        // a machine half as fast across the board is NOT a regression
        let mut slower_machine = base.clone();
        slower_machine.spin_mops = 500.0;
        slower_machine.des_churn_new_eps = 5.0e6;
        let (violations, warnings) = slower_machine.check_regression(&base);
        assert!(violations.is_empty() && warnings.is_empty());
        // same machine, 30% fewer events/sec IS one
        let mut regressed = base.clone();
        regressed.des_churn_new_eps = 0.7e7;
        assert_eq!(regressed.check_regression(&base).0.len(), 1);
        // 10% is inside the tolerance
        let mut noise = base.clone();
        noise.des_churn_new_eps = 0.9e7;
        assert!(noise.check_regression(&base).0.is_empty());
    }

    #[test]
    fn speedup_gate_skips_across_host_thread_counts() {
        let mut base = BenchBaseline {
            spin_mops: 1000.0,
            des_churn_new_eps: 1.0e7,
            des_churn_old_eps: 5.0e6,
            churn_speedup: 2.0,
            cfd_small_cups: 1.0,
            cfd_large_cups: 1.0,
            cfd_momentum_speedup: 1.0,
            execute_many_rps: 1.0,
            par_des_serial_eps: 1.0e6,
            par_des_eps: 3.0e6,
            par_des_speedup: 3.0,
            host_threads: 8.0,
            open_system_eps: 1.0e5,
            daemon_qps: 300.0,
            daemon_p99_ms: 10.0,
            daemon_mux_qps: 600.0,
            daemon_mux_p99_ms: 8.0,
            daemon_open_conns: 256.0,
        };
        // same thread count, speedup collapsed: a violation, no warning
        let mut collapsed = base.clone();
        collapsed.par_des_eps = 1.2e6;
        collapsed.par_des_speedup = 1.2;
        let (violations, warnings) = collapsed.check_regression(&base);
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert!(violations[0].contains("sharded-DES speedup"));
        assert!(warnings.is_empty());
        // the committed baseline came from a 1-thread CI runner: the same
        // collapsed numbers are incomparable, so the gate warns and skips
        base.host_threads = 1.0;
        base.par_des_eps = 0.9e6;
        base.par_des_speedup = 0.9;
        let (violations, warnings) = collapsed.check_regression(&base);
        assert!(violations.is_empty(), "{violations:?}");
        assert_eq!(warnings.len(), 1);
        assert!(warnings[0].contains("skipping the par_des_speedup"));
    }

    #[test]
    fn daemon_gate_normalizes_skips_legacy_and_warns_on_tails() {
        let base = BenchBaseline {
            spin_mops: 1000.0,
            des_churn_new_eps: 1.0e7,
            des_churn_old_eps: 5.0e6,
            churn_speedup: 2.0,
            cfd_small_cups: 1.0,
            cfd_large_cups: 1.0,
            cfd_momentum_speedup: 1.0,
            execute_many_rps: 1.0,
            par_des_serial_eps: 1.0e6,
            par_des_eps: 2.0e6,
            par_des_speedup: 2.0,
            host_threads: 4.0,
            open_system_eps: 1.0e5,
            daemon_qps: 400.0,
            daemon_p99_ms: 10.0,
            daemon_mux_qps: 800.0,
            daemon_mux_p99_ms: 8.0,
            daemon_open_conns: 256.0,
        };
        // 30% fewer queries/sec on the same machine: a violation
        let mut slow = base.clone();
        slow.daemon_qps = 280.0;
        let (violations, _) = slow.check_regression(&base);
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert!(violations[0].contains("daemon queries/sec"));
        // a machine half as fast across the board is not one
        let mut slower_machine = base.clone();
        slower_machine.spin_mops = 500.0;
        slower_machine.daemon_qps = 200.0;
        assert!(slower_machine.check_regression(&base).0.is_empty());
        // a schema-3 committed baseline (no daemon numbers) skips with a
        // warning instead of dividing by zero
        let mut legacy = base.clone();
        legacy.daemon_qps = 0.0;
        legacy.daemon_p99_ms = 0.0;
        legacy.daemon_mux_qps = 0.0;
        legacy.daemon_mux_p99_ms = 0.0;
        legacy.daemon_open_conns = 0.0;
        let (violations, warnings) = base.check_regression(&legacy);
        assert!(violations.is_empty(), "{violations:?}");
        assert!(warnings
            .iter()
            .any(|w| w.contains("skipping the daemon_qps")));
        assert!(warnings
            .iter()
            .any(|w| w.contains("skipping the daemon_mux_qps")));
        // a 4x tail-latency move is a warning, never a violation
        let mut spiky = base.clone();
        spiky.daemon_p99_ms = 40.0;
        spiky.daemon_mux_p99_ms = 32.0;
        let (violations, warnings) = spiky.check_regression(&base);
        assert!(violations.is_empty(), "{violations:?}");
        assert!(warnings.iter().any(|w| w.contains("daemon p99")));
        assert!(warnings.iter().any(|w| w.contains("reactor daemon p99")));
    }

    #[test]
    fn reactor_gates_catch_mux_and_connection_regressions() {
        let base = BenchBaseline {
            spin_mops: 1000.0,
            des_churn_new_eps: 1.0e7,
            des_churn_old_eps: 5.0e6,
            churn_speedup: 2.0,
            cfd_small_cups: 1.0,
            cfd_large_cups: 1.0,
            cfd_momentum_speedup: 1.0,
            execute_many_rps: 1.0,
            par_des_serial_eps: 1.0e6,
            par_des_eps: 2.0e6,
            par_des_speedup: 2.0,
            host_threads: 4.0,
            open_system_eps: 1.0e5,
            daemon_qps: 400.0,
            daemon_p99_ms: 10.0,
            daemon_mux_qps: 800.0,
            daemon_mux_p99_ms: 8.0,
            daemon_open_conns: 256.0,
        };
        // 30% fewer mux queries/sec on the same machine: a violation
        let mut slow = base.clone();
        slow.daemon_mux_qps = 560.0;
        let (violations, _) = slow.check_regression(&base);
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert!(violations[0].contains("reactor daemon queries/sec"));
        // a machine half as fast across the board is not one
        let mut slower_machine = base.clone();
        slower_machine.spin_mops = 500.0;
        slower_machine.daemon_mux_qps = 400.0;
        assert!(slower_machine.check_regression(&base).0.is_empty());
        // the connection floor is absolute: fewer sockets held is a
        // violation even on a slower machine
        let mut shrunk = base.clone();
        shrunk.spin_mops = 500.0;
        shrunk.daemon_open_conns = 64.0;
        let (violations, _) = shrunk.check_regression(&base);
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert!(violations[0].contains("simultaneous connections"));
        // holding more than the committed floor passes
        let mut grown = base.clone();
        grown.daemon_open_conns = 512.0;
        assert!(grown.check_regression(&base).0.is_empty());
    }
}
