//! # harborsim-bench
//!
//! The benchmark harness: Criterion benches (one per figure/table plus the
//! DESIGN.md §5 ablations and engine micro-benchmarks) and the
//! `reproduce_all` binary that regenerates every artifact of the paper into
//! `target/study/`.

pub mod baseline;
pub mod harness;
pub mod loadgen;

use harborsim_core::report::{FigureData, TableData};
use std::fs;
use std::path::PathBuf;

/// Where reproduction artifacts land.
pub fn out_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/study");
    fs::create_dir_all(&dir).expect("create target/study");
    dir
}

/// Persist a figure as CSV + SVG + ASCII.
pub fn write_figure(fig: &FigureData) {
    let dir = out_dir();
    fs::write(dir.join(format!("{}.csv", fig.id)), fig.to_csv()).expect("csv");
    fs::write(dir.join(format!("{}.svg", fig.id)), fig.to_svg(720, 440)).expect("svg");
    fs::write(dir.join(format!("{}.txt", fig.id)), fig.to_ascii(72, 22)).expect("txt");
}

/// Persist a table as CSV + ASCII.
pub fn write_table(t: &TableData) {
    let dir = out_dir();
    fs::write(dir.join(format!("{}.csv", t.id)), t.to_csv()).expect("csv");
    fs::write(dir.join(format!("{}.txt", t.id)), t.to_ascii()).expect("txt");
}

/// Seeds used by every reproduction (five repetitions, as in the paper's
/// averaging protocol).
pub fn repro_seeds() -> &'static [u64] {
    harborsim_core::runner::default_seeds()
}

/// Persist captured traces for one experiment as a chrome://tracing JSON
/// document (`<dir>/<name>.trace.json`, loadable in `chrome://tracing` or
/// Perfetto).
pub fn write_trace(
    dir: &std::path::Path,
    name: &str,
    parts: &[(String, harborsim_des::trace::TraceBuffer)],
) {
    fs::create_dir_all(dir).expect("create trace dir");
    fs::write(
        dir.join(format!("{name}.trace.json")),
        harborsim_core::traceviz::chrome_trace_json(parts),
    )
    .expect("trace json");
}

#[cfg(test)]
mod tests {
    use super::*;
    use harborsim_core::report::Series;

    #[test]
    fn artifacts_round_trip_to_disk() {
        let fig = FigureData {
            id: "selftest-fig".into(),
            title: "self test".into(),
            x_label: "x".into(),
            y_label: "y".into(),
            series: vec![Series::new("s", vec![(1.0, 2.0), (2.0, 1.0)])],
        };
        write_figure(&fig);
        let dir = out_dir();
        for ext in ["csv", "svg", "txt"] {
            let p = dir.join(format!("selftest-fig.{ext}"));
            assert!(p.exists(), "{p:?}");
            fs::remove_file(p).ok();
        }
    }
}
