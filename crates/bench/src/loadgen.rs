//! The daemon load generator: the lab benchmarking itself.
//!
//! `reproduce_all --serve-bench` starts a [`LabDaemon`](harborsim_core::lab::daemon::LabDaemon) on a loopback
//! port and turns this generator on it: `clients` concurrent
//! connections, each pacing its sends by Poisson interarrivals (the
//! open-system model's own arrival process, aimed at the lab) and
//! drawing *which* query to send from a Zipf distribution over a fixed
//! menu of scenarios spanning the four paper clusters — so a hot head
//! of plan keys hammers a few cache shards while a long tail keeps
//! compiling, exactly the skew the sharded cache and admission batching
//! exist for. Seeds cycle `i % 3`, so concurrent clients regularly
//! collide on the same `(plan, seed)` and the daemon's batched-execute
//! rendezvous gets real traffic.
//!
//! Per-request wall-clock latencies stream into the same
//! [`QuantileSketch`] the open-system campaigns use for queue waits;
//! the report's `qps` and `p99_ms` land in `BENCH_baseline.json`
//! (schema 4) next to the solver hot paths.

use harborsim_core::lab::daemon::LabClient;
use harborsim_core::lab::{LabRequest, LabResponse};
use harborsim_core::scenario::{Execution, Scenario};
use harborsim_core::{Poisson, QuantileSketch, Zipf};
use harborsim_des::RngStream;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

/// Zipf exponent of the query mix: a strong hot head (the first menu
/// entry draws ~30% of the traffic) with a compiling tail.
const ZIPF_S: f64 = 1.1;
/// Seeds cycle this modulus, forcing same-`(plan, seed)` collisions.
const SEED_CYCLE: u64 = 3;

/// What one load-generation run measured.
#[derive(Debug, Clone)]
pub struct LoadgenReport {
    /// Requests answered successfully.
    pub requests: u64,
    /// Requests that failed (socket or protocol errors).
    pub errors: u64,
    /// Wall-clock seconds from first send to last response.
    pub wall_s: f64,
    /// Answered requests per wall-clock second.
    pub qps: f64,
    /// Median request latency, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile request latency, milliseconds.
    pub p99_ms: f64,
}

/// Menu size; [`menu_scenario`] accepts indices `0..MENU_LEN`.
pub const MENU_LEN: usize = 12;

/// The `i`-th menu entry: small-but-distinct scenarios across the four
/// paper clusters. Every entry compiles to its own plan key, so Zipf
/// over indices is Zipf over plan keys. (`Scenario` is not `Clone` —
/// workloads are boxed traits — so the menu is a constructor, not a
/// table.)
pub fn menu_scenario(i: usize) -> Scenario {
    let lenox = harborsim_hw::presets::lenox;
    let mn4 = harborsim_hw::presets::marenostrum4;
    let cte = harborsim_hw::presets::cte_power;
    let tx = harborsim_hw::presets::thunderx;
    let cfd = harborsim_core::workloads::artery_cfd_small;
    match i {
        // the hot head: the warm-start set itself, one per cluster
        0 => Scenario::new(lenox(), cfd()),
        1 => Scenario::new(mn4(), cfd()),
        2 => Scenario::new(cte(), cfd()),
        3 => Scenario::new(tx(), cfd()),
        // containerized variants
        4 => Scenario::new(lenox(), cfd())
            .execution(Execution::singularity_self_contained())
            .nodes(2)
            .ranks_per_node(14),
        5 => Scenario::new(lenox(), cfd())
            .execution(Execution::docker())
            .nodes(2)
            .ranks_per_node(14),
        6 => Scenario::new(mn4(), cfd())
            .execution(Execution::singularity_system_specific())
            .nodes(2)
            .ranks_per_node(48),
        7 => Scenario::new(cte(), cfd())
            .execution(Execution::singularity_system_specific())
            .nodes(2)
            .ranks_per_node(20),
        // scale-out tail
        8 => Scenario::new(mn4(), cfd())
            .execution(Execution::bare_metal())
            .nodes(4)
            .ranks_per_node(48),
        9 => Scenario::new(lenox(), cfd())
            .execution(Execution::singularity_self_contained())
            .nodes(4)
            .ranks_per_node(14),
        10 => Scenario::new(tx(), cfd())
            .execution(Execution::singularity_self_contained())
            .nodes(2)
            .ranks_per_node(48),
        11 => Scenario::new(lenox(), harborsim_core::workloads::ChainHaloCase)
            .nodes(2)
            .ranks_per_node(14),
        _ => panic!("menu index {i} out of range (menu has {MENU_LEN} entries)"),
    }
}

/// Drive a serving daemon at `addr` with `clients` concurrent
/// connections, `requests_per_client` queries each, at an aggregate
/// Poisson arrival rate of `rate_per_s` (split evenly across clients;
/// `f64::INFINITY` for a closed loop with no think time).
pub fn run(
    addr: SocketAddr,
    clients: usize,
    requests_per_client: u64,
    rate_per_s: f64,
) -> LoadgenReport {
    let clients = clients.max(1);
    let per_client_rate = rate_per_s / clients as f64;
    let t0 = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            std::thread::spawn(move || {
                let mut rng = RngStream::new(0x10AD).derive(&format!("client-{c}"));
                let zipf = Zipf::new(ZIPF_S, MENU_LEN);
                // closed loop (infinite rate) has no arrival process
                let arrivals = per_client_rate
                    .is_finite()
                    .then(|| Poisson::new(per_client_rate.max(1e-9)));
                let mut client = match LabClient::connect(addr) {
                    Ok(client) => client,
                    Err(_) => {
                        return (0u64, requests_per_client, QuantileSketch::new());
                    }
                };
                let mut ok = 0u64;
                let mut errors = 0u64;
                let mut lat = QuantileSketch::new();
                for i in 0..requests_per_client {
                    if let Some(arrivals) = &arrivals {
                        let gap = arrivals.next_gap_s(&mut rng);
                        std::thread::sleep(Duration::from_secs_f64(gap.min(0.050)));
                    }
                    let scenario = menu_scenario(zipf.sample(&mut rng));
                    let req = LabRequest::execute(scenario, i % SEED_CYCLE);
                    let sent = Instant::now();
                    match client.query(&req) {
                        Ok(LabResponse::Execute(_)) => {
                            lat.observe(sent.elapsed().as_secs_f64() * 1e3);
                            ok += 1;
                        }
                        Ok(_) | Err(_) => errors += 1,
                    }
                }
                (ok, errors, lat)
            })
        })
        .collect();
    let mut requests = 0u64;
    let mut errors = 0u64;
    let mut lat = QuantileSketch::new();
    for h in handles {
        let (ok, err, sketch) = h.join().expect("loadgen client panicked");
        requests += ok;
        errors += err;
        lat.merge(&sketch);
    }
    let wall_s = t0.elapsed().as_secs_f64();
    LoadgenReport {
        requests,
        errors,
        wall_s,
        qps: requests as f64 / wall_s.max(1e-9),
        p50_ms: lat.p50(),
        p99_ms: lat.p99(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harborsim_core::lab::daemon::LabDaemon;
    use harborsim_core::lab::QueryEngine;
    use std::sync::Arc;

    #[test]
    fn menu_entries_have_distinct_plan_keys() {
        use harborsim_core::lab::PlanKey;
        let keys: Vec<u64> = (0..MENU_LEN)
            .map(|i| {
                PlanKey::of(&menu_scenario(i), None)
                    .expect("menu scenarios are cacheable")
                    .fingerprint()
            })
            .collect();
        let mut dedup = keys.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), keys.len(), "menu keys collide: {keys:?}");
    }

    #[test]
    fn loadgen_drives_a_live_daemon() {
        let daemon =
            LabDaemon::bind("127.0.0.1:0", Arc::new(QueryEngine::new()), 4).expect("bind loopback");
        let handle = daemon.spawn();
        let report = run(handle.addr(), 4, 8, f64::INFINITY);
        assert_eq!(report.errors, 0, "{report:?}");
        assert_eq!(report.requests, 32);
        assert!(report.qps > 0.0 && report.p99_ms >= report.p50_ms);
        handle.shutdown();
    }
}
