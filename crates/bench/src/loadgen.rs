//! The daemon load generator: the lab benchmarking itself.
//!
//! `reproduce_all --serve-bench` starts a [`LabDaemon`](harborsim_core::lab::daemon::LabDaemon) on a loopback
//! port and turns this generator on it: `clients` concurrent
//! connections, each drawing *which* query to send from a Zipf
//! distribution over a fixed menu of scenarios spanning the four paper
//! clusters — so a hot head of plan keys hammers a few cache shards
//! while a long tail keeps compiling, exactly the skew the sharded
//! cache and admission batching exist for. Seeds cycle `i % 3`, so
//! concurrent clients regularly collide on the same `(plan, seed)` and
//! the daemon's batched-execute rendezvous gets real traffic.
//!
//! Two [`Drive`] modes:
//!
//! * **Closed loop** — each connection keeps a fixed number of requests
//!   in flight (pipelined over one keep-alive socket; `in_flight: 1` is
//!   the classic request/response ping-pong). Latency is measured send
//!   → response. Closed loops measure *capacity*: the daemon is never
//!   offered more than `clients × in_flight` concurrent work.
//! * **Open loop** — arrivals follow a Poisson process at a fixed
//!   aggregate rate, and the schedule is computed *up front*: every
//!   request's latency is measured from its **scheduled** send time,
//!   not from whenever the client thread got around to writing it, so a
//!   stalled daemon inflates the recorded tail instead of silently
//!   thinning the arrival stream (no coordinated omission). Open loops
//!   measure *latency under offered load*.
//!
//! Per-request latencies stream into the same
//! [`QuantileSketch`] the open-system campaigns use for queue waits —
//! p50/p99/p999 — and each connection reports its own error count, so a
//! single sick socket is visible instead of vanishing into an
//! aggregate. The report's `qps` and `p99_ms` land in
//! `BENCH_baseline.json` (schema 5) next to the solver hot paths.

use harborsim_core::lab::daemon::LabClient;
use harborsim_core::lab::{LabRequest, LabResponse};
use harborsim_core::scenario::{Execution, Scenario};
use harborsim_core::{Poisson, QuantileSketch, Zipf};
use harborsim_des::RngStream;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

/// Zipf exponent of the query mix: a strong hot head (the first menu
/// entry draws ~30% of the traffic) with a compiling tail.
const ZIPF_S: f64 = 1.1;
/// Seeds cycle this modulus, forcing same-`(plan, seed)` collisions.
const SEED_CYCLE: u64 = 3;
/// Open-loop pipeline depth cap per connection: past this many
/// outstanding requests the client blocks on the oldest response
/// (latency stays corrected — it is measured from the schedule).
const OPEN_DEPTH_CAP: usize = 64;
/// Longest single inter-arrival sleep (bounds worst-case run time).
const MAX_GAP_S: f64 = 0.050;

/// How each load-generator connection offers work to the daemon.
#[derive(Debug, Clone, Copy)]
pub enum Drive {
    /// Fixed in-flight pipelined requests per connection; a response
    /// completion immediately triggers the next send.
    Closed {
        /// Outstanding requests each connection maintains (min 1).
        in_flight: usize,
    },
    /// Poisson arrivals at `rate_per_s` aggregate (split evenly across
    /// connections), latency-corrected against the precomputed
    /// schedule.
    Open {
        /// Aggregate arrival rate, requests per second.
        rate_per_s: f64,
    },
}

/// One connection's outcome.
#[derive(Debug, Clone)]
pub struct ClientReport {
    /// Requests answered with a successful execute outcome.
    pub ok: u64,
    /// Requests that failed (socket, protocol, or wire errors).
    pub errors: u64,
    /// The connection could not even be established.
    pub connect_failed: bool,
}

/// What one load-generation run measured.
#[derive(Debug, Clone)]
pub struct LoadgenReport {
    /// Requests answered successfully, across all connections.
    pub requests: u64,
    /// Requests that failed, across all connections.
    pub errors: u64,
    /// Wall-clock seconds from first send to last response.
    pub wall_s: f64,
    /// Answered requests per wall-clock second.
    pub qps: f64,
    /// Median request latency, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile request latency, milliseconds.
    pub p99_ms: f64,
    /// 99.9th-percentile request latency, milliseconds.
    pub p999_ms: f64,
    /// Per-connection breakdown, in connection order.
    pub per_client: Vec<ClientReport>,
}

impl LoadgenReport {
    /// The per-connection error breakdown: one line per connection
    /// that saw trouble, or a single all-clear line. A single sick
    /// socket shows up by index instead of vanishing into a total.
    pub fn error_breakdown(&self) -> String {
        let mut out = String::new();
        for (i, c) in self.per_client.iter().enumerate() {
            if c.errors > 0 || c.connect_failed {
                let note = if c.connect_failed {
                    " (connect failed)"
                } else {
                    ""
                };
                let _ = writeln!(
                    out,
                    "    conn {i:>3}: {:>6} ok  {:>6} errors{note}",
                    c.ok, c.errors
                );
            }
        }
        if out.is_empty() {
            out.push_str("    all connections clean\n");
        }
        out
    }
}

/// Menu size; [`menu_scenario`] accepts indices `0..MENU_LEN`.
pub const MENU_LEN: usize = 12;

/// The `i`-th menu entry: small-but-distinct scenarios across the four
/// paper clusters. Every entry compiles to its own plan key, so Zipf
/// over indices is Zipf over plan keys. (`Scenario` is not `Clone` —
/// workloads are boxed traits — so the menu is a constructor, not a
/// table.)
pub fn menu_scenario(i: usize) -> Scenario {
    let lenox = harborsim_hw::presets::lenox;
    let mn4 = harborsim_hw::presets::marenostrum4;
    let cte = harborsim_hw::presets::cte_power;
    let tx = harborsim_hw::presets::thunderx;
    let cfd = harborsim_core::workloads::artery_cfd_small;
    match i {
        // the hot head: the warm-start set itself, one per cluster
        0 => Scenario::new(lenox(), cfd()),
        1 => Scenario::new(mn4(), cfd()),
        2 => Scenario::new(cte(), cfd()),
        3 => Scenario::new(tx(), cfd()),
        // containerized variants
        4 => Scenario::new(lenox(), cfd())
            .execution(Execution::singularity_self_contained())
            .nodes(2)
            .ranks_per_node(14),
        5 => Scenario::new(lenox(), cfd())
            .execution(Execution::docker())
            .nodes(2)
            .ranks_per_node(14),
        6 => Scenario::new(mn4(), cfd())
            .execution(Execution::singularity_system_specific())
            .nodes(2)
            .ranks_per_node(48),
        7 => Scenario::new(cte(), cfd())
            .execution(Execution::singularity_system_specific())
            .nodes(2)
            .ranks_per_node(20),
        // scale-out tail
        8 => Scenario::new(mn4(), cfd())
            .execution(Execution::bare_metal())
            .nodes(4)
            .ranks_per_node(48),
        9 => Scenario::new(lenox(), cfd())
            .execution(Execution::singularity_self_contained())
            .nodes(4)
            .ranks_per_node(14),
        10 => Scenario::new(tx(), cfd())
            .execution(Execution::singularity_self_contained())
            .nodes(2)
            .ranks_per_node(48),
        11 => Scenario::new(lenox(), harborsim_core::workloads::ChainHaloCase)
            .nodes(2)
            .ranks_per_node(14),
        _ => panic!("menu index {i} out of range (menu has {MENU_LEN} entries)"),
    }
}

/// Drive a serving daemon at `addr` with `clients` connections,
/// `requests_per_client` queries each, under the given [`Drive`] mode.
pub fn run_with(
    addr: SocketAddr,
    clients: usize,
    requests_per_client: u64,
    drive: Drive,
) -> LoadgenReport {
    let clients = clients.max(1);
    let t0 = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            std::thread::spawn(move || {
                let mut rng = RngStream::new(0x10AD).derive(&format!("client-{c}"));
                let zipf = Zipf::new(ZIPF_S, MENU_LEN);
                let mut client = match LabClient::connect(addr) {
                    Ok(client) => client,
                    Err(_) => {
                        return (
                            ClientReport {
                                ok: 0,
                                errors: requests_per_client,
                                connect_failed: true,
                            },
                            QuantileSketch::new(),
                        )
                    }
                };
                match drive {
                    Drive::Closed { in_flight } => drive_closed(
                        &mut client,
                        requests_per_client,
                        in_flight.max(1),
                        &mut rng,
                        &zipf,
                    ),
                    Drive::Open { rate_per_s } => drive_open(
                        &mut client,
                        requests_per_client,
                        (rate_per_s / clients as f64).max(1e-9),
                        &mut rng,
                        &zipf,
                    ),
                }
            })
        })
        .collect();
    let mut per_client = Vec::with_capacity(clients);
    let mut lat = QuantileSketch::new();
    for h in handles {
        let (report, sketch) = h.join().expect("loadgen client panicked");
        lat.merge(&sketch);
        per_client.push(report);
    }
    let requests = per_client.iter().map(|c| c.ok).sum::<u64>();
    let errors = per_client.iter().map(|c| c.errors).sum::<u64>();
    let wall_s = t0.elapsed().as_secs_f64();
    LoadgenReport {
        requests,
        errors,
        wall_s,
        qps: requests as f64 / wall_s.max(1e-9),
        p50_ms: lat.p50(),
        p99_ms: lat.p99(),
        p999_ms: lat.p999(),
        per_client,
    }
}

/// Back-compat entry point: a finite rate is an open loop at that
/// aggregate rate; `f64::INFINITY` is the classic closed ping-pong
/// (one request in flight per connection).
pub fn run(
    addr: SocketAddr,
    clients: usize,
    requests_per_client: u64,
    rate_per_s: f64,
) -> LoadgenReport {
    let drive = if rate_per_s.is_finite() {
        Drive::Open { rate_per_s }
    } else {
        Drive::Closed { in_flight: 1 }
    };
    run_with(addr, clients, requests_per_client, drive)
}

/// Closed-loop sweep over connection counts: how throughput and tails
/// move as concurrency grows with the per-connection demand fixed.
pub fn connection_sweep(
    addr: SocketAddr,
    conn_counts: &[usize],
    requests_per_conn: u64,
    in_flight: usize,
) -> Vec<(usize, LoadgenReport)> {
    conn_counts
        .iter()
        .map(|&conns| {
            (
                conns,
                run_with(addr, conns, requests_per_conn, Drive::Closed { in_flight }),
            )
        })
        .collect()
}

/// One scenario-menu request with the colliding seed cycle.
fn next_request(i: u64, rng: &mut RngStream, zipf: &Zipf) -> LabRequest {
    LabRequest::execute(menu_scenario(zipf.sample(rng)), i % SEED_CYCLE)
}

fn observe(lat: &mut QuantileSketch, since: Instant) {
    lat.observe(since.elapsed().as_secs_f64() * 1e3);
}

/// Fixed in-flight pipelining over one keep-alive connection.
fn drive_closed(
    client: &mut LabClient,
    total: u64,
    in_flight: usize,
    rng: &mut RngStream,
    zipf: &Zipf,
) -> (ClientReport, QuantileSketch) {
    let mut ok = 0u64;
    let mut errors = 0u64;
    let mut lat = QuantileSketch::new();
    let mut sent: VecDeque<Instant> = VecDeque::with_capacity(in_flight);
    let mut next = 0u64;
    loop {
        while next < total && sent.len() < in_flight {
            let req = next_request(next, rng, zipf);
            if client.send(&req).is_err() {
                // The socket is gone: everything unanswered is an error.
                return (
                    ClientReport {
                        ok,
                        errors: total - ok,
                        connect_failed: false,
                    },
                    lat,
                );
            }
            sent.push_back(Instant::now());
            next += 1;
        }
        let Some(t_sent) = sent.pop_front() else {
            break;
        };
        match client.recv() {
            Ok(LabResponse::Execute(_)) => {
                observe(&mut lat, t_sent);
                ok += 1;
            }
            Ok(_) => errors += 1,
            Err(_) => {
                return (
                    ClientReport {
                        ok,
                        errors: total - ok,
                        connect_failed: false,
                    },
                    lat,
                );
            }
        }
    }
    (
        ClientReport {
            ok,
            errors,
            connect_failed: false,
        },
        lat,
    )
}

/// Poisson arrivals against a precomputed schedule; latency is
/// measured from the *scheduled* send time, so client-side stalls
/// inflate the recorded tail instead of thinning the offered load.
fn drive_open(
    client: &mut LabClient,
    total: u64,
    rate_per_s: f64,
    rng: &mut RngStream,
    zipf: &Zipf,
) -> (ClientReport, QuantileSketch) {
    let mut ok = 0u64;
    let mut errors = 0u64;
    let mut lat = QuantileSketch::new();
    let arrivals = Poisson::new(rate_per_s);
    let mut at = 0.0f64;
    let schedule: Vec<Duration> = (0..total)
        .map(|_| {
            at += arrivals.next_gap_s(rng).min(MAX_GAP_S);
            Duration::from_secs_f64(at)
        })
        .collect();
    let start = Instant::now();
    // scheduled send instants of outstanding requests, oldest first
    let mut sent: VecDeque<Instant> = VecDeque::new();
    let abort = |ok: u64, lat: QuantileSketch| {
        (
            ClientReport {
                ok,
                errors: total - ok,
                connect_failed: false,
            },
            lat,
        )
    };
    for (i, offset) in schedule.iter().enumerate() {
        if sent.len() >= OPEN_DEPTH_CAP {
            let t_sched = sent.pop_front().expect("outstanding request");
            match client.recv() {
                Ok(LabResponse::Execute(_)) => {
                    observe(&mut lat, t_sched);
                    ok += 1;
                }
                Ok(_) => errors += 1,
                Err(_) => return abort(ok, lat),
            }
        }
        let due = start + *offset;
        let now = Instant::now();
        if due > now {
            std::thread::sleep(due - now);
        }
        let req = next_request(i as u64, rng, zipf);
        if client.send(&req).is_err() {
            return abort(ok, lat);
        }
        sent.push_back(due);
    }
    while let Some(t_sched) = sent.pop_front() {
        match client.recv() {
            Ok(LabResponse::Execute(_)) => {
                observe(&mut lat, t_sched);
                ok += 1;
            }
            Ok(_) => errors += 1,
            Err(_) => return abort(ok, lat),
        }
    }
    (
        ClientReport {
            ok,
            errors,
            connect_failed: false,
        },
        lat,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use harborsim_core::lab::daemon::{LabDaemon, ServeMode};
    use harborsim_core::lab::QueryEngine;
    use std::sync::Arc;

    #[test]
    fn menu_entries_have_distinct_plan_keys() {
        use harborsim_core::lab::PlanKey;
        let keys: Vec<u64> = (0..MENU_LEN)
            .map(|i| {
                PlanKey::of(&menu_scenario(i), None)
                    .expect("menu scenarios are cacheable")
                    .fingerprint()
            })
            .collect();
        let mut dedup = keys.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), keys.len(), "menu keys collide: {keys:?}");
    }

    #[test]
    fn loadgen_drives_a_live_daemon() {
        let daemon =
            LabDaemon::bind("127.0.0.1:0", Arc::new(QueryEngine::new()), 4).expect("bind loopback");
        let handle = daemon.spawn();
        let report = run(handle.addr(), 4, 8, f64::INFINITY);
        assert_eq!(report.errors, 0, "{report:?}");
        assert_eq!(report.requests, 32);
        assert!(report.qps > 0.0 && report.p99_ms >= report.p50_ms);
        assert!(report.p999_ms >= report.p99_ms);
        assert_eq!(report.per_client.len(), 4);
        assert!(report.per_client.iter().all(|c| c.ok == 8 && c.errors == 0));
        assert!(report.error_breakdown().contains("all connections clean"));
        handle.shutdown();
    }

    #[test]
    fn pipelined_and_open_drives_answer_every_request() {
        let daemon =
            LabDaemon::bind("127.0.0.1:0", Arc::new(QueryEngine::new()), 2).expect("bind loopback");
        let handle = daemon.spawn();
        let closed = run_with(handle.addr(), 3, 10, Drive::Closed { in_flight: 4 });
        assert_eq!(closed.errors, 0, "{closed:?}");
        assert_eq!(closed.requests, 30);
        let open = run_with(handle.addr(), 2, 8, Drive::Open { rate_per_s: 400.0 });
        assert_eq!(open.errors, 0, "{open:?}");
        assert_eq!(open.requests, 16);
        handle.shutdown();
    }

    #[test]
    fn connection_sweep_covers_each_count_on_the_threaded_fallback() {
        // The sweep and the drive modes are front-end agnostic: run
        // this one against the portable threaded server.
        let daemon = LabDaemon::bind("127.0.0.1:0", Arc::new(QueryEngine::new()), 4)
            .expect("bind loopback")
            .mode(ServeMode::Threaded);
        let handle = daemon.spawn();
        let sweep = connection_sweep(handle.addr(), &[1, 2, 4], 6, 2);
        assert_eq!(sweep.len(), 3);
        for (conns, report) in &sweep {
            assert_eq!(report.errors, 0, "{conns} conns: {report:?}");
            assert_eq!(report.requests, *conns as u64 * 6);
            assert_eq!(report.per_client.len(), *conns);
        }
        handle.shutdown();
    }
}
