//! The deployment pipeline as a discrete-event simulation.
//!
//! "Deployment overhead" in the study is everything between `sbatch` and
//! the first solver instruction: getting the image onto every node and
//! starting the containers. The interesting behaviour is *contention*:
//!
//! - Docker nodes pull compressed layers from a registry whose uplink they
//!   share, then unpack locally;
//! - Singularity nodes loop-mount one SIF from the parallel filesystem and
//!   fault in the executable's working set — hundreds of nodes at once;
//! - Shifter first pays a one-time gateway conversion (pull + mksquashfs),
//!   then behaves like Singularity against its UDI.
//!
//! Shared pipes (registry uplink, parallel FS) are fair-share
//! [`FluidLink`]s; per-node work is plain event delays.

use crate::image::{ImageFormat, ImageManifest};
use crate::runtime::{ExecutionEnvironment, RuntimeKind};
use harborsim_des::trace::{Recorder, SpanCategory};
use harborsim_des::{Engine, FluidLink, SimDuration, SimTime};
use harborsim_hw::StorageSpec;

/// Bytes of the image a starting container actually reads (binary + shared
/// libraries page in; the rest of the rootfs stays cold). Shared with the
/// open-system staging model in [`crate::storm`].
pub(crate) const WORKING_SET_BYTES: u64 = 260_000_000;
/// Local unpack (gunzip + untar to overlayfs) throughput, bytes/s of
/// uncompressed output.
pub(crate) const UNPACK_BPS: f64 = 180e6;
/// Gateway squashfs pack throughput, bytes/s of input.
pub(crate) const GATEWAY_PACK_BPS: f64 = 80e6;
/// Metadata round-trips to a registry before bytes flow.
pub(crate) const REGISTRY_METADATA_S: f64 = 0.35;

/// A deployment to run.
#[derive(Debug, Clone)]
pub struct DeployPlan {
    /// Number of nodes that must be ready.
    pub nodes: u32,
    /// Runtime + containment.
    pub env: ExecutionEnvironment,
    /// The image being deployed.
    pub image: ImageManifest,
    /// The cluster's shared storage (SIF/UDI home, application home).
    pub shared_storage: StorageSpec,
    /// Registry uplink bandwidth shared by all pulling nodes, bytes/s.
    pub registry_uplink_bps: f64,
    /// Whether the Shifter gateway already converted this image.
    pub shifter_udi_cached: bool,
    /// Whether node-local layer caches already hold this image's layers
    /// (a previous job pulled it): Docker pulls become metadata-only.
    pub docker_layers_cached: bool,
}

/// What the deployment cost.
#[derive(Debug, Clone, PartialEq)]
pub struct DeploymentReport {
    /// Time until the *last* node was ready (job can start).
    pub makespan: SimDuration,
    /// Time until the first node was ready.
    pub first_ready: SimDuration,
    /// Mean node-ready time, seconds.
    pub mean_ready_s: f64,
    /// One-time gateway conversion time (Shifter only), seconds.
    pub gateway_seconds: f64,
    /// Bytes pulled from the registry in total.
    pub bytes_pulled: u64,
    /// Bytes read from the parallel filesystem in total.
    pub bytes_from_pfs: u64,
    /// The image size staged per node (format-specific), bytes.
    pub image_bytes: u64,
}

struct Dep {
    registry: FluidLink<Dep>,
    pfs: FluidLink<Dep>,
    layers_left: Vec<u32>,
    unpack_bytes: u64,
    start_s: f64,
    remaining: u32,
    /// Always capturing: the report is derived from the recorded spans.
    rec: Recorder,
}

fn reg_of(d: &mut Dep) -> &mut FluidLink<Dep> {
    &mut d.registry
}
fn pfs_of(d: &mut Dep) -> &mut FluidLink<Dep> {
    &mut d.pfs
}

fn node_ready(_eng: &Engine<Dep>, d: &mut Dep, _node: usize) {
    d.remaining -= 1;
}

impl DeployPlan {
    /// Run the deployment, emitting pull / convert / unpack / start spans
    /// through `rec` (one track per node; the Shifter gateway conversion
    /// on track `nodes`). Pass [`Recorder::off`] for the untraced path.
    /// The report is a *derived view* over the trace: per-node ready times
    /// are the ends of the `Start` spans, the gateway time is the
    /// `Convert` span, and the byte totals are trace counters.
    pub fn run(&self, rec: &mut Recorder) -> DeploymentReport {
        let n = self.nodes as usize;
        let format = self.env.runtime.image_format();
        let image_bytes = format.map_or(0, |f| self.image.size_bytes(f));
        let pfs_bw = self.shared_storage.shared_bandwidth_bps(self.nodes);
        let meta_s = self.shared_storage.metadata_op_s();

        let mut dep = Dep {
            registry: FluidLink::new(self.registry_uplink_bps, reg_of),
            pfs: FluidLink::new(pfs_bw, pfs_of),
            layers_left: vec![self.image.layers.len() as u32; n],
            unpack_bytes: self.image.uncompressed_bytes(),
            start_s: self.env.runtime.start_seconds(),
            remaining: self.nodes,
            // the local recorder always captures, whatever the caller's
            // mode: deriving the report needs the span end times
            rec: Recorder::capturing(),
        };
        dep.rec.declare_tracks(self.nodes);
        let mut eng: Engine<Dep> = Engine::new();

        let mut gateway_seconds = 0.0;
        let mut bytes_pulled: u64 = 0;
        let mut bytes_from_pfs: u64 = 0;

        match self.env.runtime {
            RuntimeKind::BareMetal => {
                // load the executable + libraries from shared storage
                let ws = WORKING_SET_BYTES.min(170_000_000) as f64;
                bytes_from_pfs = ws as u64 * self.nodes as u64;
                for node in 0..n {
                    let delay = SimDuration::from_secs_f64(meta_s * 40.0);
                    eng.schedule(delay, move |eng, d: &mut Dep| {
                        let t0 = eng.now();
                        d.pfs.start_flow(eng, ws, move |eng, d| {
                            let now = eng.now();
                            d.rec
                                .span(SpanCategory::Pull, "pfs-working-set", node as u32, t0, now);
                            let start = SimDuration::from_secs_f64(d.start_s);
                            d.rec.span(
                                SpanCategory::Start,
                                "process-start",
                                node as u32,
                                now,
                                now + start,
                            );
                            eng.schedule(start, move |eng, d| node_ready(eng, d, node));
                        });
                    });
                }
            }
            RuntimeKind::Docker => {
                if self.docker_layers_cached {
                    // warm node caches: metadata check + start only
                    for node in 0..n {
                        let delay = SimDuration::from_secs_f64(REGISTRY_METADATA_S);
                        eng.schedule(delay, move |eng, d: &mut Dep| {
                            let now = eng.now();
                            d.rec.span(
                                SpanCategory::Pull,
                                "registry-metadata",
                                node as u32,
                                SimTime::ZERO,
                                now,
                            );
                            let start = SimDuration::from_secs_f64(d.start_s);
                            d.rec.span(
                                SpanCategory::Start,
                                "container-start",
                                node as u32,
                                now,
                                now + start,
                            );
                            eng.schedule(start, move |eng, d| node_ready(eng, d, node));
                        });
                    }
                } else {
                    bytes_pulled = self
                        .image
                        .layers
                        .iter()
                        .map(|l| l.compressed_bytes())
                        .sum::<u64>()
                        * self.nodes as u64;
                    for node in 0..n {
                        let layers: Vec<u64> = self
                            .image
                            .layers
                            .iter()
                            .map(|l| l.compressed_bytes())
                            .collect();
                        let delay = SimDuration::from_secs_f64(REGISTRY_METADATA_S);
                        eng.schedule(delay, move |eng, d: &mut Dep| {
                            let t0 = eng.now();
                            for &bytes in &layers {
                                d.registry.start_flow(eng, bytes as f64, move |eng, d| {
                                    let now = eng.now();
                                    d.rec.span(
                                        SpanCategory::Pull,
                                        "layer-pull",
                                        node as u32,
                                        t0,
                                        now,
                                    );
                                    d.layers_left[node] -= 1;
                                    if d.layers_left[node] == 0 {
                                        // all layers local: unpack, then start
                                        let unpack = SimDuration::from_secs_f64(
                                            d.unpack_bytes as f64 / UNPACK_BPS,
                                        );
                                        d.rec.span(
                                            SpanCategory::Unpack,
                                            "unpack-layers",
                                            node as u32,
                                            now,
                                            now + unpack,
                                        );
                                        eng.schedule(unpack, move |eng, d| {
                                            let now = eng.now();
                                            let start = SimDuration::from_secs_f64(d.start_s);
                                            d.rec.span(
                                                SpanCategory::Start,
                                                "container-start",
                                                node as u32,
                                                now,
                                                now + start,
                                            );
                                            eng.schedule(start, move |eng, d| {
                                                node_ready(eng, d, node)
                                            });
                                        });
                                    }
                                });
                            }
                        });
                    }
                }
            }
            RuntimeKind::Singularity | RuntimeKind::Shifter => {
                // Shifter: one-time gateway conversion before any node starts
                if self.env.runtime == RuntimeKind::Shifter && !self.shifter_udi_cached {
                    let pull = self
                        .image
                        .layers
                        .iter()
                        .map(|l| l.compressed_bytes())
                        .sum::<u64>();
                    bytes_pulled = pull;
                    gateway_seconds = REGISTRY_METADATA_S
                        + pull as f64 / self.registry_uplink_bps
                        + self.image.uncompressed_bytes() as f64 / GATEWAY_PACK_BPS
                        + self.image.size_bytes(ImageFormat::ShifterUdi) as f64 / pfs_bw.min(1.5e9);
                }
                let ws = WORKING_SET_BYTES.min(image_bytes.max(1)) as f64;
                bytes_from_pfs = ws as u64 * self.nodes as u64;
                let gw = SimDuration::from_secs_f64(gateway_seconds);
                if gateway_seconds > 0.0 {
                    // the one-time gateway conversion, on its own track
                    dep.rec.span(
                        SpanCategory::Convert,
                        "gateway-conversion",
                        self.nodes,
                        SimTime::ZERO,
                        SimTime::ZERO + gw,
                    );
                }
                for node in 0..n {
                    // mount: a handful of metadata ops + superblock reads
                    let delay = gw + SimDuration::from_secs_f64(meta_s * 6.0);
                    eng.schedule(delay, move |eng, d: &mut Dep| {
                        let t0 = eng.now();
                        d.pfs.start_flow(eng, ws, move |eng, d| {
                            let now = eng.now();
                            d.rec
                                .span(SpanCategory::Pull, "pfs-working-set", node as u32, t0, now);
                            let start = SimDuration::from_secs_f64(d.start_s);
                            d.rec.span(
                                SpanCategory::Start,
                                "container-start",
                                node as u32,
                                now,
                                now + start,
                            );
                            eng.schedule(start, move |eng, d| node_ready(eng, d, node));
                        });
                    });
                }
            }
        }

        eng.run(&mut dep);
        assert_eq!(dep.remaining, 0, "deployment left nodes unready");
        dep.rec.counter("bytes_pulled", bytes_pulled as f64);
        dep.rec.counter("bytes_from_pfs", bytes_from_pfs as f64);

        // a node is ready when its Start span ends: exactly one per track
        let ready_ns: Vec<u64> = dep
            .rec
            .buffer()
            .spans()
            .iter()
            .filter(|s| s.category == SpanCategory::Start)
            .map(|s| s.end.as_nanos())
            .collect();
        assert_eq!(ready_ns.len(), n, "every node must record a start span");
        let rollup = dep.rec.rollup();
        let report = DeploymentReport {
            makespan: SimDuration::from_nanos(ready_ns.iter().copied().max().unwrap_or(0)),
            first_ready: SimDuration::from_nanos(ready_ns.iter().copied().min().unwrap_or(0)),
            mean_ready_s: ready_ns.iter().map(|&t| t as f64).sum::<f64>() * 1e-9 / n as f64,
            gateway_seconds: rollup.total(SpanCategory::Convert).as_secs_f64(),
            bytes_pulled: rollup.counter("bytes_pulled") as u64,
            bytes_from_pfs: rollup.counter("bytes_from_pfs") as u64,
            image_bytes,
        };
        rec.merge(dep.rec);
        report
    }
}

/// Convenience: deployment overhead of `env` for `image` on a cluster-like
/// storage config, uncached. Pass [`Recorder::off`] for the untraced path.
pub fn deployment_overhead(
    nodes: u32,
    env: ExecutionEnvironment,
    image: &ImageManifest,
    shared_storage: &StorageSpec,
    rec: &mut Recorder,
) -> DeploymentReport {
    DeployPlan {
        nodes,
        env,
        image: image.clone(),
        shared_storage: shared_storage.clone(),
        registry_uplink_bps: 117e6, // registry reached over the cluster uplink
        shifter_udi_cached: false,
        docker_layers_cached: false,
    }
    .run(rec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{alya_recipe, BuildEngine};
    use crate::containment::Containment;
    use harborsim_hw::CpuModel;

    fn image() -> ImageManifest {
        BuildEngine::self_contained(CpuModel::xeon_e5_2697v3())
            .build(&alya_recipe())
            .unwrap()
            .manifest
    }

    fn env(r: RuntimeKind) -> ExecutionEnvironment {
        ExecutionEnvironment {
            runtime: r,
            containment: Containment::SelfContained,
        }
    }

    #[test]
    fn bare_metal_is_fastest() {
        let img = image();
        let storage = StorageSpec::nfs_small();
        let bare = deployment_overhead(
            4,
            env(RuntimeKind::BareMetal),
            &img,
            &storage,
            &mut Recorder::off(),
        );
        for r in [
            RuntimeKind::Docker,
            RuntimeKind::Singularity,
            RuntimeKind::Shifter,
        ] {
            let rep = deployment_overhead(4, env(r), &img, &storage, &mut Recorder::off());
            assert!(
                rep.makespan > bare.makespan,
                "{r:?} should cost more than bare metal"
            );
        }
    }

    #[test]
    fn docker_pull_dominates_on_small_cluster() {
        let img = image();
        let storage = StorageSpec::nfs_small();
        let docker = deployment_overhead(
            4,
            env(RuntimeKind::Docker),
            &img,
            &storage,
            &mut Recorder::off(),
        );
        let sing = deployment_overhead(
            4,
            env(RuntimeKind::Singularity),
            &img,
            &storage,
            &mut Recorder::off(),
        );
        // each Docker node pulls the full compressed image over a shared
        // 117 MB/s uplink; Singularity reads only the working set
        assert!(
            docker.makespan.as_secs_f64() > 2.0 * sing.makespan.as_secs_f64(),
            "docker {} vs singularity {}",
            docker.makespan,
            sing.makespan
        );
        assert!(docker.bytes_pulled > 4 * 300_000_000);
        assert_eq!(sing.bytes_pulled, 0);
    }

    #[test]
    fn shifter_gateway_pays_once() {
        let img = image();
        let storage = StorageSpec::gpfs();
        let cold = DeployPlan {
            nodes: 4,
            env: env(RuntimeKind::Shifter),
            image: img.clone(),
            shared_storage: storage.clone(),
            registry_uplink_bps: 117e6,
            shifter_udi_cached: false,
            docker_layers_cached: false,
        }
        .run(&mut Recorder::off());
        let warm = DeployPlan {
            nodes: 4,
            env: env(RuntimeKind::Shifter),
            image: img.clone(),
            shared_storage: storage,
            registry_uplink_bps: 117e6,
            shifter_udi_cached: true,
            docker_layers_cached: false,
        }
        .run(&mut Recorder::off());
        assert!(cold.gateway_seconds > 10.0);
        assert_eq!(warm.gateway_seconds, 0.0);
        assert!(
            warm.makespan.as_secs_f64() < cold.makespan.as_secs_f64() / 2.0,
            "cached UDI must deploy much faster: warm {} cold {}",
            warm.makespan,
            cold.makespan
        );
    }

    #[test]
    fn singularity_storm_scales_with_nodes_on_gpfs() {
        let img = image();
        let storage = StorageSpec::gpfs();
        let t = |nodes: u32| {
            deployment_overhead(
                nodes,
                env(RuntimeKind::Singularity),
                &img,
                &storage,
                &mut Recorder::off(),
            )
            .makespan
            .as_secs_f64()
        };
        let small = t(4);
        let large = t(256);
        // 256 nodes x 260 MB working set = 66 GB through a 50 GB/s backend
        assert!(
            large > small,
            "storm must hurt: 4 nodes {small}, 256 nodes {large}"
        );
        assert!(
            large < 60.0,
            "but GPFS absorbs it in under a minute: {large}"
        );
    }

    #[test]
    fn warm_docker_caches_skip_the_pull() {
        let img = image();
        let storage = StorageSpec::nfs_small();
        let cold = DeployPlan {
            nodes: 4,
            env: env(RuntimeKind::Docker),
            image: img.clone(),
            shared_storage: storage.clone(),
            registry_uplink_bps: 117e6,
            shifter_udi_cached: false,
            docker_layers_cached: false,
        }
        .run(&mut Recorder::off());
        let warm = DeployPlan {
            nodes: 4,
            env: env(RuntimeKind::Docker),
            image: img,
            shared_storage: storage,
            registry_uplink_bps: 117e6,
            shifter_udi_cached: false,
            docker_layers_cached: true,
        }
        .run(&mut Recorder::off());
        assert_eq!(warm.bytes_pulled, 0);
        assert!(
            warm.makespan.as_secs_f64() < cold.makespan.as_secs_f64() / 5.0,
            "warm {} vs cold {}",
            warm.makespan,
            cold.makespan
        );
    }

    #[test]
    fn report_invariants() {
        let img = image();
        let rep = deployment_overhead(
            8,
            env(RuntimeKind::Singularity),
            &img,
            &StorageSpec::gpfs(),
            &mut Recorder::off(),
        );
        assert!(rep.first_ready <= rep.makespan);
        // nanosecond rounding of the duration fields vs the f64 mean
        assert!(rep.mean_ready_s <= rep.makespan.as_secs_f64() + 1e-8);
        assert!(rep.mean_ready_s >= rep.first_ready.as_secs_f64() - 1e-8);
        assert!(rep.image_bytes > 0);
    }
}
