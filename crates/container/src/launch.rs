//! Job-launch model: from "image staged everywhere" to "all ranks inside
//! `main()`".
//!
//! Image staging (see [`crate::deploy`]) is only half of a containerized
//! job's startup; the other half is the launcher fanning out over the
//! nodes (srun/mpirun's PMI tree) and *starting one container per rank*.
//! The runtimes differ sharply here:
//!
//! - **bare metal**: `fork`+`exec` per rank, milliseconds;
//! - **Singularity/Shifter**: a SUID exec plus mount-namespace setup per
//!   rank — cheap, and ranks on a node start mostly in parallel with a
//!   small serialized kernel portion (mount table locks);
//! - **Docker**: every `docker run`/`exec` is an RPC to the single
//!   root daemon, which serializes container creation — at 28 ranks per
//!   node this dominates the whole startup.

use crate::runtime::RuntimeKind;

/// Launcher-tree and spawn-cost parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct LaunchModel {
    /// One launcher-tree RPC hop (srun step setup, PMI exchange), seconds.
    pub rpc_latency_s: f64,
    /// Launcher tree fanout.
    pub tree_fanout: u32,
    /// Plain process spawn cost per rank, seconds.
    pub spawn_s: f64,
    /// Serialized per-rank kernel cost for namespace/mount setup
    /// (Singularity/Shifter), seconds.
    pub ns_serialized_s: f64,
}

impl Default for LaunchModel {
    fn default() -> Self {
        LaunchModel {
            rpc_latency_s: 3e-3,
            tree_fanout: 32,
            spawn_s: 2e-3,
            ns_serialized_s: 12e-3,
        }
    }
}

impl LaunchModel {
    /// Depth of the launcher tree over `nodes` nodes.
    pub fn tree_depth(&self, nodes: u32) -> u32 {
        if nodes <= 1 {
            return 1;
        }
        let mut depth = 0;
        let mut covered = 1u64;
        while covered < nodes as u64 {
            covered *= self.tree_fanout as u64;
            depth += 1;
        }
        depth
    }

    /// Seconds on one node to get `rpn` ranks of `runtime` running.
    pub fn node_seconds(&self, runtime: RuntimeKind, rpn: u32) -> f64 {
        let r = rpn as f64;
        match runtime {
            // processes spawn back-to-back from the node agent
            RuntimeKind::BareMetal => r * self.spawn_s,
            // one daemon RPC per rank, serialized in dockerd
            RuntimeKind::Docker => r * RuntimeKind::Docker.start_seconds(),
            // parallel SUID execs with a serialized mount-lock portion
            RuntimeKind::Singularity | RuntimeKind::Shifter => {
                runtime.start_seconds() + r * self.ns_serialized_s
            }
        }
    }

    /// Seconds from job grant to every rank inside `main()`.
    pub fn launch_seconds(&self, runtime: RuntimeKind, nodes: u32, rpn: u32) -> f64 {
        self.tree_depth(nodes) as f64 * self.rpc_latency_s + self.node_seconds(runtime, rpn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_depth_log_fanout() {
        let m = LaunchModel::default();
        assert_eq!(m.tree_depth(1), 1);
        assert_eq!(m.tree_depth(32), 1);
        assert_eq!(m.tree_depth(33), 2);
        assert_eq!(m.tree_depth(1024), 2);
        assert_eq!(m.tree_depth(3456), 3);
    }

    #[test]
    fn docker_launch_dominated_by_daemon() {
        let m = LaunchModel::default();
        let docker = m.launch_seconds(RuntimeKind::Docker, 4, 28);
        let sing = m.launch_seconds(RuntimeKind::Singularity, 4, 28);
        let bare = m.launch_seconds(RuntimeKind::BareMetal, 4, 28);
        assert!(docker > 25.0, "28 serialized docker runs: {docker}");
        assert!(
            sing < 1.0,
            "singularity launch should be sub-second: {sing}"
        );
        assert!(bare < sing);
    }

    #[test]
    fn launch_grows_with_ranks_per_node() {
        let m = LaunchModel::default();
        for runtime in [
            RuntimeKind::BareMetal,
            RuntimeKind::Docker,
            RuntimeKind::Singularity,
        ] {
            let few = m.launch_seconds(runtime, 4, 2);
            let many = m.launch_seconds(runtime, 4, 28);
            assert!(many > few, "{runtime:?}");
        }
    }

    #[test]
    fn tree_hops_visible_at_scale() {
        let m = LaunchModel::default();
        let small = m.launch_seconds(RuntimeKind::Singularity, 4, 1);
        let large = m.launch_seconds(RuntimeKind::Singularity, 3456, 1);
        assert!(large > small);
        assert!((large - small - 2.0 * m.rpc_latency_s).abs() < 1e-12);
    }
}
