//! A content-addressed image registry with a pull protocol.
//!
//! Stores blobs (layers) by digest and manifests by `name:tag`. Pulls are
//! planned against a client-side layer cache — the mechanism that makes a
//! second `docker pull` on the same node nearly free, and that the
//! deployment DES exercises when hundreds of nodes pull concurrently.

use crate::digest::Digest;
use crate::image::ImageManifest;
use std::collections::{BTreeMap, HashSet};

/// What a client must transfer to materialize an image.
#[derive(Debug, Clone, PartialEq)]
pub struct PullPlan {
    /// Layers to download: `(digest, compressed bytes)`, base first.
    pub fetch: Vec<(Digest, u64)>,
    /// Layers already present locally.
    pub cached: Vec<Digest>,
    /// Manifest + config round-trips (metadata requests).
    pub metadata_requests: u32,
}

impl PullPlan {
    /// Bytes that must cross the wire.
    pub fn bytes(&self) -> u64 {
        self.fetch.iter().map(|(_, b)| *b).sum()
    }

    /// Whether nothing needs downloading.
    pub fn fully_cached(&self) -> bool {
        self.fetch.is_empty()
    }
}

/// Registry error.
#[derive(Debug, Clone, PartialEq)]
pub enum RegistryError {
    /// No manifest under that reference.
    UnknownReference(String),
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::UnknownReference(r) => write!(f, "unknown reference {r:?}"),
        }
    }
}

impl std::error::Error for RegistryError {}

/// The registry.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    blobs: BTreeMap<Digest, u64>,
    manifests: BTreeMap<String, ImageManifest>,
    pulls_served: u64,
    bytes_served: u64,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Push an image under `reference` ("alya-artery:v1"). Blobs shared
    /// with already-pushed images are deduplicated, as in real registries.
    pub fn push(&mut self, reference: &str, manifest: &ImageManifest) {
        for layer in &manifest.layers {
            self.blobs
                .entry(layer.digest)
                .or_insert(layer.compressed_bytes());
        }
        self.manifests
            .insert(reference.to_string(), manifest.clone());
    }

    /// Look up a manifest.
    pub fn manifest(&self, reference: &str) -> Result<&ImageManifest, RegistryError> {
        self.manifests
            .get(reference)
            .ok_or_else(|| RegistryError::UnknownReference(reference.to_string()))
    }

    /// Plan a pull given the client's local layer cache.
    pub fn plan_pull(
        &mut self,
        reference: &str,
        local_cache: &HashSet<Digest>,
    ) -> Result<PullPlan, RegistryError> {
        let manifest = self
            .manifests
            .get(reference)
            .ok_or_else(|| RegistryError::UnknownReference(reference.to_string()))?;
        let mut fetch = Vec::new();
        let mut cached = Vec::new();
        for layer in &manifest.layers {
            if local_cache.contains(&layer.digest) {
                cached.push(layer.digest);
            } else {
                fetch.push((layer.digest, layer.compressed_bytes()));
            }
        }
        let plan = PullPlan {
            fetch,
            cached,
            metadata_requests: 2, // manifest + image config
        };
        self.pulls_served += 1;
        self.bytes_served += plan.bytes();
        Ok(plan)
    }

    /// Distinct blobs stored.
    pub fn blob_count(&self) -> usize {
        self.blobs.len()
    }

    /// Total compressed bytes stored.
    pub fn stored_bytes(&self) -> u64 {
        self.blobs.values().sum()
    }

    /// Pulls served so far.
    pub fn pulls_served(&self) -> u64 {
        self.pulls_served
    }

    /// Bytes served so far.
    pub fn bytes_served(&self) -> u64 {
        self.bytes_served
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{alya_recipe, BuildEngine};
    use harborsim_hw::CpuModel;

    fn built() -> ImageManifest {
        BuildEngine::self_contained(CpuModel::xeon_platinum_8160())
            .build(&alya_recipe())
            .unwrap()
            .manifest
    }

    #[test]
    fn push_and_pull_roundtrip() {
        let mut reg = Registry::new();
        let img = built();
        reg.push("alya:v1", &img);
        assert_eq!(reg.blob_count(), img.layers.len());
        let plan = reg.plan_pull("alya:v1", &HashSet::new()).unwrap();
        assert_eq!(plan.fetch.len(), img.layers.len());
        assert!(plan.bytes() > 100_000_000);
        assert!(!plan.fully_cached());
    }

    #[test]
    fn cache_hits_skip_layers() {
        let mut reg = Registry::new();
        let img = built();
        reg.push("alya:v1", &img);
        let full: HashSet<Digest> = img.layers.iter().map(|l| l.digest).collect();
        let plan = reg.plan_pull("alya:v1", &full).unwrap();
        assert!(plan.fully_cached());
        assert_eq!(plan.cached.len(), img.layers.len());
        // partial cache: only the base layer present
        let partial: HashSet<Digest> = [img.layers[0].digest].into();
        let plan = reg.plan_pull("alya:v1", &partial).unwrap();
        assert_eq!(plan.fetch.len(), img.layers.len() - 1);
    }

    #[test]
    fn shared_layers_dedup_across_images() {
        let mut reg = Registry::new();
        let img = built();
        reg.push("alya:v1", &img);
        let before = reg.stored_bytes();
        reg.push("alya:v1-copy", &img);
        assert_eq!(reg.stored_bytes(), before, "same blobs stored once");
    }

    #[test]
    fn unknown_reference_errors() {
        let mut reg = Registry::new();
        assert!(matches!(
            reg.plan_pull("nope:latest", &HashSet::new()),
            Err(RegistryError::UnknownReference(_))
        ));
    }

    #[test]
    fn accounting() {
        let mut reg = Registry::new();
        let img = built();
        reg.push("alya:v1", &img);
        let p1 = reg.plan_pull("alya:v1", &HashSet::new()).unwrap();
        let _ = reg.plan_pull("alya:v1", &HashSet::new()).unwrap();
        assert_eq!(reg.pulls_served(), 2);
        assert_eq!(reg.bytes_served(), 2 * p1.bytes());
    }
}
