//! Image layers, manifests, and on-disk formats.

use crate::digest::Digest;
pub use harborsim_hw::CpuArch;
use std::collections::BTreeMap;

/// Compression ratio of gzip'd rootfs tarballs (registry/transfer form).
pub const TAR_GZ_RATIO: f64 = 0.42;
/// Compression ratio of squashfs (SIF / UDI on-disk form).
pub const SQUASHFS_RATIO: f64 = 0.45;

/// One filesystem layer.
#[derive(Debug, Clone, PartialEq)]
pub struct Layer {
    /// Content digest (chain id: depends on all layers below).
    pub digest: Digest,
    /// Uncompressed size in bytes.
    pub bytes: u64,
    /// What created the layer (for `history` output).
    pub created_by: String,
}

impl Layer {
    /// Compressed (transfer) size in bytes.
    pub fn compressed_bytes(&self) -> u64 {
        (self.bytes as f64 * TAR_GZ_RATIO) as u64
    }
}

/// A built image: ordered layers plus execution metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct ImageManifest {
    /// Image name ("alya-artery").
    pub name: String,
    /// Target CPU architecture.
    pub arch: CpuArch,
    /// ISA feature level the binaries were compiled for (see
    /// [`harborsim_hw::CpuModel::isa_level`]).
    pub isa_level: u8,
    /// Layers, base first.
    pub layers: Vec<Layer>,
    /// Environment variables.
    pub env: BTreeMap<String, String>,
    /// Labels.
    pub labels: BTreeMap<String, String>,
    /// Entrypoint command.
    pub entrypoint: Option<String>,
    /// Host libraries that must be bind-mounted for the image to reach the
    /// fabric's native transport (empty for self-contained images — they
    /// carry everything, but then carry the *wrong* thing on foreign hosts).
    pub required_host_libs: Vec<String>,
}

impl ImageManifest {
    /// Total uncompressed rootfs size.
    pub fn uncompressed_bytes(&self) -> u64 {
        self.layers.iter().map(|l| l.bytes).sum()
    }

    /// Manifest digest: chain of all layer digests.
    pub fn digest(&self) -> Digest {
        let mut acc = Digest::of_str(&self.name);
        for l in &self.layers {
            acc = acc.chain(&l.digest);
        }
        acc
    }

    /// On-disk/transfer size in the given format.
    pub fn size_bytes(&self, format: ImageFormat) -> u64 {
        match format {
            ImageFormat::DockerLayered => {
                // registry form: per-layer gzip'd tarballs + manifest json
                self.layers.iter().map(Layer::compressed_bytes).sum::<u64>() + 4096
            }
            ImageFormat::SingularitySif | ImageFormat::ShifterUdi => {
                // single squashfs of the flattened rootfs + header
                (self.uncompressed_bytes() as f64 * SQUASHFS_RATIO) as u64 + 32_768
            }
        }
    }

    /// Number of objects a runtime must fetch/open to stage this image.
    pub fn object_count(&self, format: ImageFormat) -> u32 {
        match format {
            ImageFormat::DockerLayered => self.layers.len() as u32 + 1, // + manifest
            ImageFormat::SingularitySif | ImageFormat::ShifterUdi => 1,
        }
    }
}

/// The three on-disk image formats of the study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ImageFormat {
    /// Docker: a stack of gzip'd layer tarballs unpacked into overlayfs.
    DockerLayered,
    /// Singularity Image Format: one squashfs file, loop-mounted read-only.
    SingularitySif,
    /// Shifter User-Defined Image: gateway-converted squashfs on the
    /// parallel filesystem.
    ShifterUdi,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manifest(layer_mbs: &[u64]) -> ImageManifest {
        let mut prev = Digest::of_str("root");
        let layers = layer_mbs
            .iter()
            .enumerate()
            .map(|(i, mb)| {
                prev = prev.chain(&Digest::of_str(&format!("layer{i}")));
                Layer {
                    digest: prev,
                    bytes: mb * 1_000_000,
                    created_by: format!("RUN step {i}"),
                }
            })
            .collect();
        ImageManifest {
            name: "test".into(),
            arch: CpuArch::X86_64,
            isa_level: 3,
            layers,
            env: BTreeMap::new(),
            labels: BTreeMap::new(),
            entrypoint: None,
            required_host_libs: vec![],
        }
    }

    #[test]
    fn sizes_by_format() {
        let m = manifest(&[210, 350, 150, 120]);
        let un = m.uncompressed_bytes();
        assert_eq!(un, 830_000_000);
        let docker = m.size_bytes(ImageFormat::DockerLayered);
        let sif = m.size_bytes(ImageFormat::SingularitySif);
        // both compressed forms well below uncompressed
        assert!(docker < un && sif < un);
        // gzip layers (0.42) slightly smaller than squashfs (0.45) here
        assert!(docker < sif);
        assert_eq!(
            m.size_bytes(ImageFormat::ShifterUdi),
            m.size_bytes(ImageFormat::SingularitySif)
        );
    }

    #[test]
    fn object_counts() {
        let m = manifest(&[210, 350, 150]);
        assert_eq!(m.object_count(ImageFormat::DockerLayered), 4);
        assert_eq!(m.object_count(ImageFormat::SingularitySif), 1);
    }

    #[test]
    fn manifest_digest_changes_with_layers() {
        let a = manifest(&[100, 200]);
        let b = manifest(&[100, 201]);
        // same layer names but different... actually digests derive from
        // names here; change the name instead
        let mut c = a.clone();
        c.name = "other".into();
        assert_eq!(a.digest(), b.digest()); // same chain of layer ids
        assert_ne!(a.digest(), c.digest());
    }

    #[test]
    fn layer_compression() {
        let l = Layer {
            digest: Digest::of_str("x"),
            bytes: 100_000_000,
            created_by: "t".into(),
        };
        assert_eq!(l.compressed_bytes(), 42_000_000);
    }
}
