//! Behavioural models of the three container runtimes (and bare metal).
//!
//! What the study distinguishes:
//!
//! | | privilege | namespaces | network data path | image format |
//! |---|---|---|---|---|
//! | Docker | root daemon | all (full isolation) | bridge + NAT | layered tarballs |
//! | Singularity | SUID helper | Mount + PID | host | SIF (squashfs) |
//! | Shifter | SUID + image gateway | Mount + PID | host | UDI (squashfs) |
//!
//! Full isolation is what makes Docker attractive to IT and painful for
//! MPI: with the default bridge network every rank-to-rank message crosses
//! veth+NAT. Singularity and Shifter keep the host's network and IPC
//! namespaces, so MPI traffic is untouched.

use crate::containment::Containment;
use crate::image::ImageFormat;
use harborsim_hw::{InterconnectKind, SoftwareStack};
use harborsim_net::{DataPath, NetworkModel, Topology, TransportSelection};

/// Linux namespaces a runtime unshares.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Namespace {
    /// Filesystem mounts.
    Mount,
    /// Process ids.
    Pid,
    /// Network stack.
    Net,
    /// SysV IPC / POSIX queues.
    Ipc,
    /// Hostname.
    Uts,
    /// User/group id mapping.
    User,
    /// Cgroup root.
    Cgroup,
}

/// The execution technologies compared in the study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RuntimeKind {
    /// No container: the control every figure compares against.
    BareMetal,
    /// Docker with its root-owned daemon and default bridge networking.
    Docker,
    /// Singularity (SUID model), as deployed on the BSC machines.
    Singularity,
    /// Shifter (NERSC), with its image gateway.
    Shifter,
}

impl RuntimeKind {
    /// Display name as in the paper's legends.
    pub fn label(self) -> &'static str {
        match self {
            RuntimeKind::BareMetal => "Bare-metal",
            RuntimeKind::Docker => "Docker",
            RuntimeKind::Singularity => "Singularity",
            RuntimeKind::Shifter => "Shifter",
        }
    }

    /// Namespaces unshared for each rank's container.
    pub fn namespaces(self) -> &'static [Namespace] {
        match self {
            RuntimeKind::BareMetal => &[],
            RuntimeKind::Docker => &[
                Namespace::Mount,
                Namespace::Pid,
                Namespace::Net,
                Namespace::Ipc,
                Namespace::Uts,
                Namespace::Cgroup,
            ],
            RuntimeKind::Singularity | RuntimeKind::Shifter => &[Namespace::Mount, Namespace::Pid],
        }
    }

    /// Whether the runtime needs a root-owned daemon on every compute node
    /// — the reason Docker is absent from the production BSC machines.
    pub fn requires_root_daemon(self) -> bool {
        matches!(self, RuntimeKind::Docker)
    }

    /// The network data path MPI traffic takes under this runtime.
    pub fn data_path(self) -> DataPath {
        match self {
            RuntimeKind::Docker => DataPath::docker_default_bridge(),
            _ => DataPath::Host,
        }
    }

    /// Multiplicative compute slowdown (cgroup accounting, seccomp).
    pub fn compute_tax(self) -> f64 {
        match self {
            RuntimeKind::Docker => 1.02,
            RuntimeKind::Singularity | RuntimeKind::Shifter => 1.003,
            RuntimeKind::BareMetal => 1.0,
        }
    }

    /// On-disk image format consumed at run time.
    pub fn image_format(self) -> Option<ImageFormat> {
        match self {
            RuntimeKind::BareMetal => None,
            RuntimeKind::Docker => Some(ImageFormat::DockerLayered),
            RuntimeKind::Singularity => Some(ImageFormat::SingularitySif),
            RuntimeKind::Shifter => Some(ImageFormat::ShifterUdi),
        }
    }

    /// Per-node container start latency once the image is staged, seconds
    /// (daemon RPC + namespace/cgroup setup vs a SUID exec).
    pub fn start_seconds(self) -> f64 {
        match self {
            RuntimeKind::BareMetal => 0.05,   // exec + loader
            RuntimeKind::Docker => 1.1,       // dockerd create/start, netns, cgroups
            RuntimeKind::Singularity => 0.35, // SUID exec + loop mount
            RuntimeKind::Shifter => 0.55,     // slurm plugin + loop mount
        }
    }

    /// Whether a cluster's installed software stack offers this runtime.
    pub fn available_on(self, stack: &SoftwareStack) -> bool {
        match self {
            RuntimeKind::BareMetal => true,
            RuntimeKind::Docker => stack.docker.is_some(),
            RuntimeKind::Singularity => stack.singularity.is_some(),
            RuntimeKind::Shifter => stack.shifter.is_some(),
        }
    }
}

/// A complete execution choice: runtime plus image containment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ExecutionEnvironment {
    /// The runtime technology.
    pub runtime: RuntimeKind,
    /// How the image relates to the host stack (ignored for bare metal).
    pub containment: Containment,
}

impl ExecutionEnvironment {
    /// Bare metal control.
    pub fn bare_metal() -> Self {
        ExecutionEnvironment {
            runtime: RuntimeKind::BareMetal,
            containment: Containment::SystemSpecific,
        }
    }

    /// Docker with a self-contained image (the only way Docker was run in
    /// the study — it exists only on Lenox, whose fabric is plain TCP).
    pub fn docker() -> Self {
        ExecutionEnvironment {
            runtime: RuntimeKind::Docker,
            containment: Containment::SelfContained,
        }
    }

    /// Singularity with a host-integrated image.
    pub fn singularity_system_specific() -> Self {
        ExecutionEnvironment {
            runtime: RuntimeKind::Singularity,
            containment: Containment::SystemSpecific,
        }
    }

    /// Singularity with a fully portable image.
    pub fn singularity_self_contained() -> Self {
        ExecutionEnvironment {
            runtime: RuntimeKind::Singularity,
            containment: Containment::SelfContained,
        }
    }

    /// Shifter with a self-contained image.
    pub fn shifter() -> Self {
        ExecutionEnvironment {
            runtime: RuntimeKind::Shifter,
            containment: Containment::SelfContained,
        }
    }

    /// The effective MPI transport selection on a fabric.
    pub fn transport_selection(&self, fabric: InterconnectKind) -> TransportSelection {
        match self.runtime {
            RuntimeKind::BareMetal => TransportSelection::Native,
            _ => self.containment.transport_selection(fabric),
        }
    }

    /// Compose the network model this environment observes.
    pub fn network_model(&self, fabric: InterconnectKind, topology: Topology) -> NetworkModel {
        NetworkModel::compose(
            fabric,
            self.transport_selection(fabric),
            self.runtime.data_path(),
            topology,
        )
    }

    /// Legend label ("Singularity system-specific", ...).
    pub fn label(&self) -> String {
        match self.runtime {
            RuntimeKind::BareMetal => "Bare-metal".to_string(),
            r => format!("{} {}", r.label(), self.containment.label()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harborsim_hw::presets;

    #[test]
    fn namespace_policies() {
        assert_eq!(RuntimeKind::Docker.namespaces().len(), 6);
        assert_eq!(RuntimeKind::Singularity.namespaces().len(), 2);
        assert!(RuntimeKind::Singularity
            .namespaces()
            .iter()
            .all(|n| !matches!(n, Namespace::Net)));
        assert!(RuntimeKind::Docker
            .namespaces()
            .iter()
            .any(|n| matches!(n, Namespace::Net)));
    }

    #[test]
    fn docker_is_the_only_bridge() {
        assert!(matches!(
            RuntimeKind::Docker.data_path(),
            DataPath::DockerBridge { .. }
        ));
        for r in [
            RuntimeKind::BareMetal,
            RuntimeKind::Singularity,
            RuntimeKind::Shifter,
        ] {
            assert!(matches!(r.data_path(), DataPath::Host), "{r:?}");
        }
    }

    #[test]
    fn availability_follows_cluster_stacks() {
        let lenox = presets::lenox();
        let mn4 = presets::marenostrum4();
        assert!(RuntimeKind::Docker.available_on(&lenox.software));
        assert!(RuntimeKind::Shifter.available_on(&lenox.software));
        assert!(!RuntimeKind::Docker.available_on(&mn4.software));
        assert!(RuntimeKind::Singularity.available_on(&mn4.software));
        assert!(RuntimeKind::BareMetal.available_on(&mn4.software));
    }

    #[test]
    fn start_latency_ordering() {
        assert!(RuntimeKind::BareMetal.start_seconds() < RuntimeKind::Singularity.start_seconds());
        assert!(RuntimeKind::Singularity.start_seconds() < RuntimeKind::Shifter.start_seconds());
        assert!(RuntimeKind::Shifter.start_seconds() < RuntimeKind::Docker.start_seconds());
    }

    #[test]
    fn environment_transport_composition() {
        let env_ss = ExecutionEnvironment {
            runtime: RuntimeKind::Singularity,
            containment: Containment::SystemSpecific,
        };
        let env_sc = ExecutionEnvironment {
            runtime: RuntimeKind::Singularity,
            containment: Containment::SelfContained,
        };
        assert_eq!(
            env_ss.transport_selection(InterconnectKind::InfinibandEdr),
            TransportSelection::Native
        );
        assert_eq!(
            env_sc.transport_selection(InterconnectKind::InfinibandEdr),
            TransportSelection::TcpFallback
        );
        // bare metal ignores containment
        assert_eq!(
            ExecutionEnvironment::bare_metal().transport_selection(InterconnectKind::OmniPath100),
            TransportSelection::Native
        );
    }

    #[test]
    fn labels() {
        let e = ExecutionEnvironment {
            runtime: RuntimeKind::Singularity,
            containment: Containment::SelfContained,
        };
        assert_eq!(e.label(), "Singularity self-contained");
        assert_eq!(ExecutionEnvironment::bare_metal().label(), "Bare-metal");
    }

    #[test]
    fn compute_taxes_ordered() {
        assert!(RuntimeKind::Docker.compute_tax() > RuntimeKind::Singularity.compute_tax());
        assert!(RuntimeKind::Singularity.compute_tax() >= RuntimeKind::BareMetal.compute_tax());
    }
}
