//! The image build engine: recipe × containment × target CPU → manifest.
//!
//! The engine executes a recipe the way `docker build` or
//! `singularity build` would: each instruction that touches the filesystem
//! produces a layer whose size comes from the package database, and the
//! build time model accounts base-image pull, package installation and
//! (for squashfs formats) the `mksquashfs` pass.
//!
//! The *containment* policy transforms the recipe:
//!
//! - self-contained builds install MPI/fabric packages as written;
//! - system-specific builds skip them and instead record the host libraries
//!   that must be bind-mounted at run time.

use crate::containment::Containment;
use crate::digest::Digest;
use crate::image::{ImageFormat, ImageManifest, Layer};
use crate::recipe::{ImageRecipe, Instruction, PackageDb};
use harborsim_hw::{CpuModel, InterconnectKind};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Packages that belong to the MPI/fabric stack; system-specific builds
/// bind these from the host instead of installing them.
const HOST_STACK_PACKAGES: &[&str] = &[
    "openmpi",
    "mpich",
    "impi-runtime",
    "libibverbs",
    "libpsm2",
    "infiniband-diags",
];

/// Registry download bandwidth seen by the build host, bytes/s.
const BUILD_PULL_BPS: f64 = 50e6;
/// mksquashfs throughput, bytes/s of input.
const SQUASHFS_PACK_BPS: f64 = 80e6;
/// Layer commit (tar+gzip) throughput, bytes/s.
const LAYER_COMMIT_BPS: f64 = 200e6;

/// Why an image build failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// The recipe's `FROM` references a base the database doesn't know.
    UnknownBaseImage(String),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::UnknownBaseImage(base_ref) => {
                write!(f, "unknown base image {base_ref:?}")
            }
        }
    }
}

impl std::error::Error for BuildError {}

/// Process-wide count of image builds actually executed. Lets tests (and
/// the sweep-sharing logic's own regression suite) assert that compiling a
/// plan once really builds the image once.
static BUILDS_EXECUTED: AtomicU64 = AtomicU64::new(0);

/// How many image builds this process has executed so far.
pub fn builds_executed() -> u64 {
    BUILDS_EXECUTED.load(Ordering::SeqCst)
}

/// The build engine configuration.
#[derive(Debug, Clone)]
pub struct BuildEngine {
    /// Package/base database.
    pub db: PackageDb,
    /// Containment policy.
    pub containment: Containment,
    /// CPU of the build host (fixes the image architecture).
    pub build_host: CpuModel,
    /// `true` = compile with host-tuned flags (image inherits the host's
    /// ISA level and is faster but less portable); `false` = portable
    /// baseline ISA.
    pub tuned: bool,
    /// Fabric of the machine a system-specific image targets (selects the
    /// driver library to bind).
    pub target_fabric: Option<InterconnectKind>,
}

/// What a build produces.
#[derive(Debug, Clone, PartialEq)]
pub struct BuildOutput {
    /// The image.
    pub manifest: ImageManifest,
    /// Wall-clock build time, seconds (pull + install + commits).
    pub build_seconds: f64,
    /// Instructions skipped by the containment policy.
    pub skipped: Vec<String>,
}

impl BuildEngine {
    /// A self-contained build on the given host.
    pub fn self_contained(build_host: CpuModel) -> BuildEngine {
        BuildEngine {
            db: PackageDb::standard(),
            containment: Containment::SelfContained,
            build_host,
            tuned: false,
            target_fabric: None,
        }
    }

    /// A system-specific build targeting a machine's fabric.
    pub fn system_specific(build_host: CpuModel, fabric: InterconnectKind) -> BuildEngine {
        BuildEngine {
            db: PackageDb::standard(),
            containment: Containment::SystemSpecific,
            build_host,
            tuned: true,
            target_fabric: Some(fabric),
        }
    }

    /// Execute `recipe`.
    ///
    /// # Errors
    /// [`BuildError::UnknownBaseImage`] if the base image is unknown to the
    /// database.
    pub fn build(&self, recipe: &ImageRecipe) -> Result<BuildOutput, BuildError> {
        let base_ref = recipe.base();
        let base_bytes = self
            .db
            .base_size(base_ref)
            .ok_or_else(|| BuildError::UnknownBaseImage(base_ref.to_string()))?;
        BUILDS_EXECUTED.fetch_add(1, Ordering::SeqCst);

        let mut layers = Vec::new();
        let mut chain = Digest::of_str(base_ref);
        let mut env = BTreeMap::new();
        let mut labels = BTreeMap::new();
        let mut entrypoint = None;
        let mut skipped = Vec::new();
        let mut build_seconds = base_bytes as f64 / BUILD_PULL_BPS;

        layers.push(Layer {
            digest: chain,
            bytes: base_bytes,
            created_by: format!("FROM {base_ref}"),
        });

        for inst in &recipe.instructions[1..] {
            match inst {
                Instruction::From(_) => unreachable!("parser rejects second FROM"),
                Instruction::Run(cmd) => {
                    let cmd = if self.containment == Containment::SystemSpecific {
                        match strip_host_stack(cmd) {
                            StripResult::Unchanged => cmd.clone(),
                            StripResult::Emptied => {
                                skipped.push(cmd.clone());
                                continue;
                            }
                            StripResult::Reduced(rest) => {
                                skipped.push(format!("(partially) {cmd}"));
                                rest
                            }
                        }
                    } else {
                        cmd.clone()
                    };
                    let cost = self.db.price_run(&cmd);
                    chain = chain.chain(&Digest::of_str(&cmd));
                    build_seconds += cost.install_s + cost.bytes as f64 / LAYER_COMMIT_BPS;
                    layers.push(Layer {
                        digest: chain,
                        bytes: cost.bytes,
                        created_by: format!("RUN {cmd}"),
                    });
                }
                Instruction::Copy { src, dst, bytes } => {
                    chain = chain.chain(&Digest::of_str(&format!("{src}->{dst}:{bytes}")));
                    build_seconds += *bytes as f64 / LAYER_COMMIT_BPS;
                    layers.push(Layer {
                        digest: chain,
                        bytes: *bytes,
                        created_by: format!("COPY {src} {dst}"),
                    });
                }
                Instruction::Env(k, v) => {
                    env.insert(k.clone(), v.clone());
                }
                Instruction::Label(k, v) => {
                    labels.insert(k.clone(), v.clone());
                }
                Instruction::Workdir(_) => {}
                Instruction::Entrypoint(e) => entrypoint = Some(e.clone()),
            }
        }

        let required_host_libs = if self.containment == Containment::SystemSpecific {
            let mut libs = vec!["host-mpi".to_string()];
            if let Some(f) = self.target_fabric {
                if let Some(driver) = f.driver_library() {
                    libs.push(driver.to_string());
                }
            }
            libs
        } else {
            Vec::new()
        };

        Ok(BuildOutput {
            manifest: ImageManifest {
                name: recipe.name.clone(),
                arch: self.build_host.arch,
                isa_level: if self.tuned {
                    self.build_host.isa_level
                } else {
                    1
                },
                layers,
                env,
                labels,
                entrypoint,
                required_host_libs,
            },
            build_seconds,
            skipped,
        })
    }

    /// Time to convert a built image into `format`, seconds (e.g.
    /// `singularity build` squashing, or the Shifter gateway's pack pass).
    pub fn package_seconds(&self, manifest: &ImageManifest, format: ImageFormat) -> f64 {
        match format {
            ImageFormat::DockerLayered => 0.0, // layers are the native output
            ImageFormat::SingularitySif | ImageFormat::ShifterUdi => {
                manifest.uncompressed_bytes() as f64 / SQUASHFS_PACK_BPS
            }
        }
    }
}

enum StripResult {
    Unchanged,
    Emptied,
    Reduced(String),
}

/// Remove host-stack packages from an install command.
fn strip_host_stack(cmd: &str) -> StripResult {
    let tokens: Vec<&str> = cmd.split_whitespace().collect();
    let is_install = tokens
        .windows(2)
        .any(|w| matches!(w[0], "yum" | "apt-get" | "apt" | "apk" | "dnf") && w[1] == "install");
    if !is_install {
        return StripResult::Unchanged;
    }
    let kept: Vec<&str> = tokens
        .iter()
        .copied()
        .filter(|t| !HOST_STACK_PACKAGES.contains(t))
        .collect();
    let removed = tokens.len() - kept.len();
    if removed == 0 {
        return StripResult::Unchanged;
    }
    // if only "<mgr> install" remains, the whole instruction is pointless
    let residual_packages = kept
        .iter()
        .filter(|t| {
            !matches!(
                **t,
                "yum" | "apt-get" | "apt" | "apk" | "dnf" | "install" | "-y"
            )
        })
        .count();
    if residual_packages == 0 {
        StripResult::Emptied
    } else {
        StripResult::Reduced(kept.join(" "))
    }
}

/// The Alya artery recipe used throughout the study (both use cases share
/// the software stack; the mesh/case data stays on the parallel FS).
pub fn alya_recipe() -> ImageRecipe {
    ImageRecipe::parse(
        "alya-artery",
        "\
FROM centos:7.4
RUN yum install gcc gfortran make cmake
RUN yum install openblas metis hdf5
RUN yum install openmpi libibverbs libpsm2
COPY alya.bin /opt/alya/alya.bin 120MB
COPY services /opt/alya/services 45MB
ENV PATH=/opt/alya:$PATH
LABEL org.bsc.code=alya
LABEL org.bsc.case=artery
ENTRYPOINT /opt/alya/alya.bin
",
    )
    .expect("builtin recipe parses")
}

#[cfg(test)]
mod tests {
    use super::*;
    use harborsim_hw::CpuArch;

    #[test]
    fn self_contained_build_includes_everything() {
        let eng = BuildEngine::self_contained(CpuModel::xeon_platinum_8160());
        let out = eng.build(&alya_recipe()).unwrap();
        assert!(out.skipped.is_empty());
        assert!(out.manifest.required_host_libs.is_empty());
        // base + 3 RUN + 2 COPY
        assert_eq!(out.manifest.layers.len(), 6);
        let total = out.manifest.uncompressed_bytes();
        assert!(
            (800_000_000..1_400_000_000).contains(&total),
            "total={total}"
        );
        assert!(out.build_seconds > 60.0);
        assert_eq!(out.manifest.isa_level, 1, "portable build");
    }

    #[test]
    fn system_specific_build_is_smaller_and_binds_host_libs() {
        let sc = BuildEngine::self_contained(CpuModel::xeon_platinum_8160())
            .build(&alya_recipe())
            .unwrap();
        let ss = BuildEngine::system_specific(
            CpuModel::xeon_platinum_8160(),
            InterconnectKind::OmniPath100,
        )
        .build(&alya_recipe())
        .unwrap();
        assert!(
            ss.manifest.uncompressed_bytes() < sc.manifest.uncompressed_bytes(),
            "system-specific must be smaller"
        );
        assert!(!ss.skipped.is_empty());
        assert!(ss
            .manifest
            .required_host_libs
            .contains(&"libpsm2".to_string()));
        assert_eq!(ss.manifest.isa_level, 4, "tuned build");
    }

    #[test]
    fn arch_follows_build_host() {
        let out = BuildEngine::self_contained(CpuModel::power9_8335gtg())
            .build(&alya_recipe())
            .unwrap();
        assert_eq!(out.manifest.arch, CpuArch::Ppc64le);
    }

    #[test]
    fn unknown_base_rejected() {
        let eng = BuildEngine::self_contained(CpuModel::xeon_e5_2697v3());
        let recipe = ImageRecipe::parse("x", "FROM nixos:unstable\n").unwrap();
        let err = eng.build(&recipe).unwrap_err();
        assert_eq!(err, BuildError::UnknownBaseImage("nixos:unstable".into()));
        assert_eq!(err.to_string(), "unknown base image \"nixos:unstable\"");
    }

    #[test]
    fn build_counter_advances_per_build() {
        let eng = BuildEngine::self_contained(CpuModel::xeon_e5_2697v3());
        let before = builds_executed();
        eng.build(&alya_recipe()).unwrap();
        eng.build(&alya_recipe()).unwrap();
        // other tests build concurrently, so only a lower bound is exact
        assert!(builds_executed() >= before + 2);
        // a failed build does not count
        let bad = ImageRecipe::parse("x", "FROM nixos:unstable\n").unwrap();
        let mid = builds_executed();
        let _ = eng.build(&bad);
        assert!(builds_executed() >= mid);
    }

    #[test]
    fn packaging_times() {
        let eng = BuildEngine::self_contained(CpuModel::xeon_e5_2697v3());
        let out = eng.build(&alya_recipe()).unwrap();
        let sif = eng.package_seconds(&out.manifest, ImageFormat::SingularitySif);
        assert!(sif > 5.0, "squashing ~1GB takes a while: {sif}");
        assert_eq!(
            eng.package_seconds(&out.manifest, ImageFormat::DockerLayered),
            0.0
        );
    }

    #[test]
    fn deterministic_manifest_digests() {
        let eng = BuildEngine::self_contained(CpuModel::xeon_e5_2697v3());
        let a = eng.build(&alya_recipe()).unwrap();
        let b = eng.build(&alya_recipe()).unwrap();
        assert_eq!(a.manifest.digest(), b.manifest.digest());
    }

    #[test]
    fn strip_preserves_non_stack_packages() {
        match strip_host_stack("yum install gcc openmpi") {
            StripResult::Reduced(r) => assert_eq!(r, "yum install gcc"),
            _ => panic!("expected reduction"),
        }
        assert!(matches!(
            strip_host_stack("yum install openmpi"),
            StripResult::Emptied
        ));
        assert!(matches!(
            strip_host_stack("echo hello"),
            StripResult::Unchanged
        ));
    }
}
