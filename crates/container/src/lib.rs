//! # harborsim-container
//!
//! The container substrate of the HarborSim study: everything between a
//! `Containerfile` and a running containerized MPI rank.
//!
//! - [`digest`] — content-addressed layer digests (own FNV-based 256-bit
//!   construction; stable, dependency-free).
//! - [`recipe`] — a Containerfile-like recipe language with a parser, plus
//!   a package database that prices `yum/apt install` lines in bytes and
//!   seconds.
//! - [`image`] — layers, manifests, and the three on-disk formats of the
//!   study: Docker's layered tarballs, Singularity's single-file SIF
//!   (squashfs), Shifter's gateway-converted UDI.
//! - [`build`] — the build engine: recipe × containment policy → manifest,
//!   with build-time modelling.
//! - [`registry`] — a content-addressed blob registry with pull protocol
//!   (parallel layer streams, client-side layer cache).
//! - [`runtime`] — behavioural models of Docker, Singularity and Shifter
//!   (namespaces, privilege model, network data path, compute tax, startup
//!   sequence) plus bare metal as the control.
//! - [`containment`] — the *system-specific vs self-contained* axis: which
//!   libraries are inside the image, which must be bind-mounted from the
//!   host, and the resulting MPI transport selection — the paper's whole
//!   portability trade-off.
//! - [`deploy`] — a discrete-event deployment pipeline: registry pulls,
//!   gateway conversions, parallel-filesystem mount storms, per-node
//!   container start, at any node count.
//! - [`launch`] — the job-launch model: launcher-tree fanout plus per-rank
//!   container spawn costs (the Docker daemon serializes them; SUID
//!   runtimes barely notice).
//! - [`storm`] — per-job staging demands for open-system deployment
//!   storms: registry bytes, filesystem bytes, and fixed latency per
//!   runtime, cold vs warm.

pub mod build;
pub mod containment;
pub mod deploy;
pub mod digest;
pub mod image;
pub mod launch;
pub mod recipe;
pub mod registry;
pub mod runtime;
pub mod storm;

pub use build::{builds_executed, BuildEngine, BuildError, BuildOutput};
pub use containment::Containment;
pub use deploy::{DeployPlan, DeploymentReport};
pub use digest::Digest;
pub use image::{ImageFormat, ImageManifest, Layer};
pub use launch::LaunchModel;
pub use recipe::{ImageRecipe, Instruction};
pub use registry::Registry;
pub use runtime::{ExecutionEnvironment, RuntimeKind};
pub use storm::StagePlan;
