//! Per-job staging demand for open-system deployment storms.
//!
//! The closed-world [`crate::deploy`] pipeline simulates *one* job's
//! deployment in isolation. Open campaigns need the opposite cut: many
//! jobs arriving at once, each bringing a staging demand that contends
//! with every co-arriving job for the same two shared pipes — the
//! registry uplink and the parallel filesystem. [`StagePlan`] is that
//! demand, reduced to three numbers the open scheduler
//! (`harborsim-batch`) feeds into its fair-share [`FluidLink`]s:
//! registry bytes, filesystem bytes, and a fixed serial latency
//! (metadata round-trips, unpack, gateway conversion, launcher fan-out).
//! The constants are the deploy pipeline's own, so a solo job's staging
//! estimate stays consistent with [`crate::deploy::DeployPlan`].
//!
//! Cold vs warm is the deployment-storm axis: a tenant's *first* job per
//! runtime pulls the image (Docker: every node pulls compressed layers;
//! Shifter: the gateway converts once), later jobs hit node-local layer
//! caches or the converted UDI.
//!
//! [`FluidLink`]: harborsim_des::FluidLink

use crate::deploy::{GATEWAY_PACK_BPS, REGISTRY_METADATA_S, UNPACK_BPS, WORKING_SET_BYTES};
use crate::image::{ImageFormat, ImageManifest};
use crate::launch::LaunchModel;
use crate::runtime::{ExecutionEnvironment, RuntimeKind};

/// A job's staging demand: what must move through the shared pipes and
/// what is paid serially, between node grant and the first solver
/// instruction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StagePlan {
    /// Bytes pulled through the shared registry uplink.
    pub registry_bytes: f64,
    /// Bytes through the shared parallel filesystem (working-set reads,
    /// plus the gateway's UDI write for a cold Shifter pull).
    pub pfs_bytes: f64,
    /// Fixed serial seconds: registry metadata, local unpack, gateway
    /// squashfs pack, and the launcher fanning ranks out over the nodes.
    pub fixed_s: f64,
}

impl StagePlan {
    /// The staging demand of a `nodes`-node, `rpn`-ranks-per-node job in
    /// `env`. `warm` means this tenant already staged `image` under this
    /// runtime (node-local layer caches / converted UDI are hot).
    pub fn for_job(
        env: ExecutionEnvironment,
        image: &ImageManifest,
        nodes: u32,
        rpn: u32,
        warm: bool,
    ) -> StagePlan {
        let launch = LaunchModel::default().launch_seconds(env.runtime, nodes, rpn);
        let compressed: f64 = image
            .layers
            .iter()
            .map(|l| l.compressed_bytes() as f64)
            .sum();
        let uncompressed = image.uncompressed_bytes() as f64;
        let n = nodes as f64;
        match env.runtime {
            RuntimeKind::BareMetal => StagePlan {
                registry_bytes: 0.0,
                pfs_bytes: WORKING_SET_BYTES.min(170_000_000) as f64 * n,
                fixed_s: launch,
            },
            RuntimeKind::Docker => {
                if warm {
                    StagePlan {
                        registry_bytes: 0.0,
                        pfs_bytes: 0.0,
                        fixed_s: REGISTRY_METADATA_S + launch,
                    }
                } else {
                    // every node pulls the full compressed image, then
                    // unpacks it into its local overlayfs
                    StagePlan {
                        registry_bytes: compressed * n,
                        pfs_bytes: 0.0,
                        fixed_s: REGISTRY_METADATA_S + uncompressed / UNPACK_BPS + launch,
                    }
                }
            }
            RuntimeKind::Singularity => {
                let sif = image.size_bytes(ImageFormat::SingularitySif).max(1);
                StagePlan {
                    registry_bytes: 0.0,
                    pfs_bytes: WORKING_SET_BYTES.min(sif) as f64 * n,
                    fixed_s: launch,
                }
            }
            RuntimeKind::Shifter => {
                let udi = image.size_bytes(ImageFormat::ShifterUdi).max(1);
                let ws = WORKING_SET_BYTES.min(udi) as f64 * n;
                if warm {
                    StagePlan {
                        registry_bytes: 0.0,
                        pfs_bytes: ws,
                        fixed_s: launch,
                    }
                } else {
                    // the gateway pulls one compressed copy, packs the
                    // squashfs UDI, and writes it to the parallel FS
                    StagePlan {
                        registry_bytes: compressed,
                        pfs_bytes: udi as f64 + ws,
                        fixed_s: REGISTRY_METADATA_S + uncompressed / GATEWAY_PACK_BPS + launch,
                    }
                }
            }
        }
    }

    /// Uncontended staging estimate in seconds, given the two pipes'
    /// full capacities — the basis for a walltime request.
    pub fn solo_seconds(&self, registry_bps: f64, pfs_bps: f64) -> f64 {
        self.fixed_s + self.registry_bytes / registry_bps + self.pfs_bytes / pfs_bps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{alya_recipe, BuildEngine};
    use crate::containment::Containment;
    use harborsim_hw::CpuModel;

    fn image() -> ImageManifest {
        BuildEngine::self_contained(CpuModel::xeon_e5_2697v3())
            .build(&alya_recipe())
            .unwrap()
            .manifest
    }

    fn env(r: RuntimeKind) -> ExecutionEnvironment {
        ExecutionEnvironment {
            runtime: r,
            containment: Containment::SelfContained,
        }
    }

    #[test]
    fn docker_cold_registry_demand_scales_with_nodes() {
        let img = image();
        let two = StagePlan::for_job(env(RuntimeKind::Docker), &img, 2, 14, false);
        let eight = StagePlan::for_job(env(RuntimeKind::Docker), &img, 8, 14, false);
        assert!((eight.registry_bytes / two.registry_bytes - 4.0).abs() < 1e-9);
        // Shifter pulls once through the gateway whatever the node count
        let shifter = StagePlan::for_job(env(RuntimeKind::Shifter), &img, 8, 14, false);
        assert!(shifter.registry_bytes < eight.registry_bytes / 4.0);
    }

    #[test]
    fn warm_stages_are_cheaper_than_cold() {
        let img = image();
        for r in [RuntimeKind::Docker, RuntimeKind::Shifter] {
            let cold = StagePlan::for_job(env(r), &img, 4, 14, false);
            let warm = StagePlan::for_job(env(r), &img, 4, 14, true);
            assert!(
                warm.solo_seconds(117e6, 1e9) < cold.solo_seconds(117e6, 1e9),
                "{r:?}"
            );
            assert_eq!(warm.registry_bytes, 0.0);
        }
    }

    #[test]
    fn shifter_pays_the_gateway_serially_docker_pays_the_registry() {
        let img = image();
        let docker = StagePlan::for_job(env(RuntimeKind::Docker), &img, 4, 1, false);
        let shifter = StagePlan::for_job(env(RuntimeKind::Shifter), &img, 4, 1, false);
        // the gateway squashfs pack is fixed serial time...
        assert!(shifter.fixed_s > docker.fixed_s);
        // ...but Docker moves ~4x the bytes through the shared uplink
        assert!(docker.registry_bytes > 3.0 * shifter.registry_bytes);
    }

    #[test]
    fn bare_metal_never_touches_the_registry() {
        let img = image();
        for warm in [false, true] {
            let p = StagePlan::for_job(env(RuntimeKind::BareMetal), &img, 4, 28, warm);
            assert_eq!(p.registry_bytes, 0.0);
            assert!(p.pfs_bytes > 0.0);
            assert!(p.solo_seconds(117e6, 1e9) > 0.0);
        }
    }
}
