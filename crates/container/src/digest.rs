//! Content digests for layers and manifests.
//!
//! Real OCI registries use SHA-256; HarborSim needs *content addressing*
//! (equal content ⇒ equal digest, distinct content ⇒ distinct digest with
//! overwhelming probability for simulation-scale inputs), not cryptographic
//! strength. We build a 256-bit digest from four FNV-1a-style lanes with
//! different primes and offsets — dependency-free and stable across
//! platforms, which keeps the whole simulation byte-reproducible.

use std::fmt;

/// A 256-bit content digest.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Digest(pub [u64; 4]);

const OFFSETS: [u64; 4] = [
    0xcbf2_9ce4_8422_2325,
    0x9ae1_6a3b_2f90_404f,
    0x6c62_272e_07bb_0142,
    0x2f72_b421_8ef4_1149,
];
const PRIMES: [u64; 4] = [
    0x0000_0100_0000_01b3,
    0x0000_0100_0000_01b5,
    0x0000_0100_0000_0277,
    0x0000_0100_0000_02a1,
];

impl Digest {
    /// Digest of a byte string.
    pub fn of_bytes(bytes: &[u8]) -> Digest {
        let mut lanes = OFFSETS;
        for (i, &b) in bytes.iter().enumerate() {
            for (lane, prime) in lanes.iter_mut().zip(PRIMES) {
                // mix the position in so permutations differ
                *lane ^= b as u64 ^ ((i as u64) << 8);
                *lane = lane.wrapping_mul(prime);
                *lane ^= *lane >> 31;
            }
        }
        // final avalanche
        for lane in &mut lanes {
            *lane = lane.wrapping_mul(0x94d0_49bb_1331_11eb);
            *lane ^= *lane >> 29;
        }
        Digest(lanes)
    }

    /// Digest of a UTF-8 string.
    pub fn of_str(s: &str) -> Digest {
        Digest::of_bytes(s.as_bytes())
    }

    /// Chain this digest with another (layer stacking: the identity of a
    /// layer depends on everything below it, as in OCI chain IDs).
    pub fn chain(&self, next: &Digest) -> Digest {
        let mut buf = Vec::with_capacity(64);
        for lane in self.0.iter().chain(next.0.iter()) {
            buf.extend_from_slice(&lane.to_le_bytes());
        }
        Digest::of_bytes(&buf)
    }

    /// Short hex prefix, as container tools display.
    pub fn short(&self) -> String {
        format!("{:016x}", self.0[0])[..12].to_string()
    }
}

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "fnv256:{:016x}{:016x}{:016x}{:016x}",
            self.0[0], self.0[1], self.0[2], self.0[3]
        )
    }
}

impl fmt::Debug for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn equal_content_equal_digest() {
        assert_eq!(Digest::of_str("hello"), Digest::of_str("hello"));
    }

    #[test]
    fn distinct_content_distinct_digest() {
        let inputs = [
            "", "a", "b", "ab", "ba", "hello", "hello ", "layer-1", "layer-2",
        ];
        let set: HashSet<Digest> = inputs.iter().map(|s| Digest::of_str(s)).collect();
        assert_eq!(set.len(), inputs.len());
    }

    #[test]
    fn permutation_sensitivity() {
        assert_ne!(Digest::of_str("abc"), Digest::of_str("cba"));
        assert_ne!(Digest::of_str("aab"), Digest::of_str("aba"));
    }

    #[test]
    fn chain_depends_on_order() {
        let a = Digest::of_str("base");
        let b = Digest::of_str("mpi");
        assert_ne!(a.chain(&b), b.chain(&a));
        assert_eq!(a.chain(&b), a.chain(&b));
    }

    #[test]
    fn display_format() {
        let d = Digest::of_str("x");
        let s = d.to_string();
        assert!(s.starts_with("fnv256:"));
        assert_eq!(s.len(), 7 + 64);
        assert_eq!(d.short().len(), 12);
    }

    #[test]
    fn no_collisions_over_many_inputs() {
        let set: HashSet<Digest> = (0..10_000)
            .map(|i| Digest::of_str(&format!("blob-{i}")))
            .collect();
        assert_eq!(set.len(), 10_000);
    }
}
