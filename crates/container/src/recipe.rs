//! The recipe language: a Containerfile dialect with a parser and a
//! package database.
//!
//! HarborSim images are *built* from text recipes, exactly as the study's
//! images were built from Dockerfiles/Singularity definition files. The
//! dialect supports the instructions the Alya images actually use:
//!
//! ```text
//! FROM centos:7.4
//! RUN yum install gcc gfortran
//! RUN yum install openmpi
//! COPY alya.bin /opt/alya/alya.bin 120MB
//! ENV PATH=/opt/alya:$PATH
//! LABEL org.bsc.case=artery
//! ENTRYPOINT /opt/alya/alya.bin
//! ```
//!
//! `RUN <mgr> install <pkgs...>` resolves sizes and install times from the
//! [`PackageDb`]; `COPY` declares its payload size inline (the build
//! context is not a real filesystem).

use std::collections::BTreeMap;
use std::fmt;

/// One parsed instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum Instruction {
    /// Base image reference, e.g. `centos:7.4`.
    From(String),
    /// A shell command; `install` commands resolve through the package DB.
    Run(String),
    /// Copy `src` to `dst` with a declared payload size in bytes.
    Copy {
        /// Source path in the build context.
        src: String,
        /// Destination path in the image.
        dst: String,
        /// Declared payload size.
        bytes: u64,
    },
    /// Environment variable `KEY=VALUE`.
    Env(String, String),
    /// Metadata label `key=value`.
    Label(String, String),
    /// Working directory.
    Workdir(String),
    /// Container entrypoint.
    Entrypoint(String),
}

/// Parse errors with line information.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "recipe line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// A parsed recipe.
#[derive(Debug, Clone, PartialEq)]
pub struct ImageRecipe {
    /// Human name ("alya-artery").
    pub name: String,
    /// Instructions in order; the first is always `FROM`.
    pub instructions: Vec<Instruction>,
}

/// Parse a size like `120MB`, `1.5GB`, `900KB`, `42B`.
fn parse_size(s: &str) -> Option<u64> {
    let s = s.trim();
    let (num, mult) = if let Some(n) = s.strip_suffix("GB") {
        (n, 1_000_000_000.0)
    } else if let Some(n) = s.strip_suffix("MB") {
        (n, 1_000_000.0)
    } else if let Some(n) = s.strip_suffix("KB") {
        (n, 1_000.0)
    } else if let Some(n) = s.strip_suffix('B') {
        (n, 1.0)
    } else {
        return None;
    };
    let v: f64 = num.trim().parse().ok()?;
    (v >= 0.0).then_some((v * mult) as u64)
}

impl ImageRecipe {
    /// Parse recipe text. Blank lines and `#` comments are ignored; the
    /// first instruction must be `FROM`.
    pub fn parse(name: &str, text: &str) -> Result<ImageRecipe, ParseError> {
        let mut instructions = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = idx + 1;
            let trimmed = raw.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            let (word, rest) = trimmed.split_once(char::is_whitespace).ok_or(ParseError {
                line,
                message: format!("instruction without arguments: {trimmed:?}"),
            })?;
            let rest = rest.trim();
            let inst = match word.to_ascii_uppercase().as_str() {
                "FROM" => Instruction::From(rest.to_string()),
                "RUN" => Instruction::Run(rest.to_string()),
                "COPY" => {
                    let parts: Vec<&str> = rest.split_whitespace().collect();
                    if parts.len() != 3 {
                        return Err(ParseError {
                            line,
                            message: "COPY needs: <src> <dst> <size>".into(),
                        });
                    }
                    let bytes = parse_size(parts[2]).ok_or(ParseError {
                        line,
                        message: format!("bad size {:?}", parts[2]),
                    })?;
                    Instruction::Copy {
                        src: parts[0].to_string(),
                        dst: parts[1].to_string(),
                        bytes,
                    }
                }
                "ENV" | "LABEL" => {
                    let (k, v) = rest.split_once('=').ok_or(ParseError {
                        line,
                        message: format!("{word} needs KEY=VALUE"),
                    })?;
                    if word.eq_ignore_ascii_case("ENV") {
                        Instruction::Env(k.trim().to_string(), v.trim().to_string())
                    } else {
                        Instruction::Label(k.trim().to_string(), v.trim().to_string())
                    }
                }
                "WORKDIR" => Instruction::Workdir(rest.to_string()),
                "ENTRYPOINT" => Instruction::Entrypoint(rest.to_string()),
                other => {
                    return Err(ParseError {
                        line,
                        message: format!("unknown instruction {other:?}"),
                    })
                }
            };
            instructions.push(inst);
        }
        match instructions.first() {
            Some(Instruction::From(_)) => {}
            _ => {
                return Err(ParseError {
                    line: 1,
                    message: "recipe must start with FROM".into(),
                })
            }
        }
        if instructions
            .iter()
            .skip(1)
            .any(|i| matches!(i, Instruction::From(_)))
        {
            return Err(ParseError {
                line: 0,
                message: "multi-stage builds are not modelled: one FROM only".into(),
            });
        }
        Ok(ImageRecipe {
            name: name.to_string(),
            instructions,
        })
    }

    /// The base image reference.
    pub fn base(&self) -> &str {
        match &self.instructions[0] {
            Instruction::From(b) => b,
            _ => unreachable!("parser guarantees FROM first"),
        }
    }

    /// All labels as a map.
    pub fn labels(&self) -> BTreeMap<String, String> {
        self.instructions
            .iter()
            .filter_map(|i| match i {
                Instruction::Label(k, v) => Some((k.clone(), v.clone())),
                _ => None,
            })
            .collect()
    }
}

/// Size/time cost of installing one package.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PackageCost {
    /// Installed size in bytes.
    pub bytes: u64,
    /// Install time on the build host, seconds.
    pub install_s: f64,
}

/// The package/base-image database used to price recipes.
#[derive(Debug, Clone, Default)]
pub struct PackageDb {
    packages: BTreeMap<String, PackageCost>,
    bases: BTreeMap<String, u64>,
}

impl PackageDb {
    /// The database used throughout the study, priced from real package
    /// sizes of the era (CentOS 7 / Ubuntu 16.04 HPC stacks).
    pub fn standard() -> PackageDb {
        let mut db = PackageDb::default();
        let mut pkg = |name: &str, mb: u64, s: f64| {
            db.packages.insert(
                name.to_string(),
                PackageCost {
                    bytes: mb * 1_000_000,
                    install_s: s,
                },
            );
        };
        pkg("gcc", 180, 35.0);
        pkg("gfortran", 120, 25.0);
        pkg("make", 8, 3.0);
        pkg("cmake", 35, 8.0);
        pkg("openmpi", 150, 30.0);
        pkg("mpich", 120, 25.0);
        pkg("impi-runtime", 160, 28.0);
        pkg("openblas", 90, 15.0);
        pkg("hdf5", 60, 14.0);
        pkg("metis", 12, 5.0);
        pkg("libibverbs", 25, 6.0);
        pkg("libpsm2", 18, 5.0);
        pkg("infiniband-diags", 15, 4.0);
        pkg("python2", 80, 18.0);
        pkg("vim", 25, 5.0);
        db.bases.insert("centos:7.4".into(), 210_000_000);
        db.bases.insert("ubuntu:16.04".into(), 130_000_000);
        db.bases.insert("debian:9".into(), 110_000_000);
        db.bases.insert("alpine:3.7".into(), 5_000_000);
        db
    }

    /// Look up one package.
    pub fn package(&self, name: &str) -> Option<PackageCost> {
        self.packages.get(name).copied()
    }

    /// Installed size of a base image, if known.
    pub fn base_size(&self, reference: &str) -> Option<u64> {
        self.bases.get(reference).copied()
    }

    /// Price a RUN command: recognized `yum/apt-get/apk install` lines sum
    /// their packages; anything else is a small metadata-only layer.
    pub fn price_run(&self, cmd: &str) -> PackageCost {
        let tokens: Vec<&str> = cmd.split_whitespace().collect();
        let is_install = tokens.windows(2).any(|w| {
            matches!(w[0], "yum" | "apt-get" | "apt" | "apk" | "dnf") && w[1] == "install"
        });
        if !is_install {
            // scripts, chmod, ldconfig...: ~1 MB of filesystem churn, 2 s
            return PackageCost {
                bytes: 1_000_000,
                install_s: 2.0,
            };
        }
        let mut total = PackageCost {
            bytes: 2_000_000, // package-manager metadata
            install_s: 5.0,   // repo refresh
        };
        for t in tokens {
            if let Some(c) = self.package(t) {
                total.bytes += c.bytes;
                total.install_s += c.install_s;
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# Alya artery image
FROM centos:7.4
RUN yum install gcc gfortran openmpi
COPY alya.bin /opt/alya/alya.bin 120MB
ENV PATH=/opt/alya:$PATH
LABEL case=artery
WORKDIR /opt/alya
ENTRYPOINT /opt/alya/alya.bin
";

    #[test]
    fn parses_sample() {
        let r = ImageRecipe::parse("alya", SAMPLE).unwrap();
        assert_eq!(r.base(), "centos:7.4");
        assert_eq!(r.instructions.len(), 7);
        assert_eq!(r.labels().get("case").map(String::as_str), Some("artery"));
        assert!(matches!(
            &r.instructions[2],
            Instruction::Copy { bytes, .. } if *bytes == 120_000_000
        ));
    }

    #[test]
    fn rejects_missing_from() {
        let err = ImageRecipe::parse("x", "RUN echo hi\n").unwrap_err();
        assert!(err.message.contains("FROM"));
    }

    #[test]
    fn rejects_second_from() {
        let err = ImageRecipe::parse("x", "FROM a:1\nFROM b:2\n").unwrap_err();
        assert!(err.message.contains("one FROM"));
    }

    #[test]
    fn rejects_unknown_instruction() {
        let err = ImageRecipe::parse("x", "FROM a:1\nVOLUME /data\n").unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn rejects_bad_copy() {
        assert!(ImageRecipe::parse("x", "FROM a:1\nCOPY a b\n").is_err());
        assert!(ImageRecipe::parse("x", "FROM a:1\nCOPY a b 12XB\n").is_err());
    }

    #[test]
    fn size_units() {
        assert_eq!(parse_size("42B"), Some(42));
        assert_eq!(parse_size("900KB"), Some(900_000));
        assert_eq!(parse_size("120MB"), Some(120_000_000));
        assert_eq!(parse_size("1.5GB"), Some(1_500_000_000));
        assert_eq!(parse_size("x"), None);
        assert_eq!(parse_size("-3MB"), None);
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let r = ImageRecipe::parse("x", "\n# hi\nFROM a:1\n\n# more\nRUN echo ok\n").unwrap();
        assert_eq!(r.instructions.len(), 2);
    }

    #[test]
    fn package_pricing() {
        let db = PackageDb::standard();
        let c = db.price_run("yum install gcc openmpi");
        assert_eq!(c.bytes, 2_000_000 + 180_000_000 + 150_000_000);
        assert!(c.install_s > 60.0);
        let noop = db.price_run("echo hello && ldconfig");
        assert_eq!(noop.bytes, 1_000_000);
    }

    #[test]
    fn unknown_packages_cost_only_metadata() {
        let db = PackageDb::standard();
        let c = db.price_run("yum install no-such-package");
        assert_eq!(c.bytes, 2_000_000);
    }

    #[test]
    fn base_sizes() {
        let db = PackageDb::standard();
        assert_eq!(db.base_size("centos:7.4"), Some(210_000_000));
        assert_eq!(db.base_size("scratch"), None);
    }
}
